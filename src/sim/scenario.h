// Scenario runner: warm-up + measurement-window experiment harness.
//
// Wraps the build-network / attach-traffic / warm-up / measure sequence that
// every whole-network experiment (Table 1, fig. 13, the examples, the
// integration tests) repeats.

#pragma once

#include <string>

#include "src/net/topology.h"
#include "src/sim/network.h"

namespace arpanet::sim {

enum class TrafficShape { kUniform, kPeakHour };

struct ScenarioConfig {
  metrics::MetricKind metric = metrics::MetricKind::kHnSpf;
  /// Total offered load summed over all pairs, bits/second.
  double offered_load_bps = 300e3;
  TrafficShape shape = TrafficShape::kPeakHour;
  util::SimTime warmup = util::SimTime::from_sec(120);
  util::SimTime window = util::SimTime::from_sec(600);
  std::uint64_t seed = 0x19870726ULL;
  NetworkConfig network;  ///< metric field is overwritten from `metric`
};

struct ScenarioResult {
  stats::NetworkIndicators indicators;
  NetworkStats stats;
};

/// Runs one scenario to completion and returns the measurement-window
/// results. `label` names the indicator column (e.g. "D-SPF").
[[nodiscard]] ScenarioResult run_scenario(const net::Topology& topo,
                                          const ScenarioConfig& cfg,
                                          const std::string& label);

/// Builds the scenario's traffic matrix without running (for reuse).
[[nodiscard]] traffic::TrafficMatrix scenario_matrix(const net::Topology& topo,
                                                     const ScenarioConfig& cfg);

}  // namespace arpanet::sim
