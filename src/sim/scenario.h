// Scenario runner: warm-up + measurement-window experiment harness.
//
// Wraps the build-network / attach-traffic / warm-up / measure sequence that
// every whole-network experiment (Table 1, fig. 13, the examples, the
// integration tests) repeats.
//
// ScenarioConfig is both an aggregate (existing call sites assign fields
// directly) and a fluent builder with validated setters:
//
//   auto cfg = sim::ScenarioConfig{}
//                  .with_metric(metrics::MetricKind::kHnSpf)
//                  .with_load_bps(414e3)
//                  .with_seed(0x1987);
//
// New code should go through exp::Experiment (src/exp/experiment.h), which
// runs single scenarios and parallel sweeps through this config type.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/analysis/invariants.h"
#include "src/net/graph_spec.h"
#include "src/net/topology.h"
#include "src/obs/counters.h"
#include "src/sim/network.h"
#include "src/traffic/traffic_matrix.h"

namespace arpanet::sim {

enum class TrafficShape { kUniform, kPeakHour };

[[nodiscard]] constexpr const char* to_string(TrafficShape s) {
  switch (s) {
    case TrafficShape::kUniform: return "uniform";
    case TrafficShape::kPeakHour: return "peak-hour";
  }
  return "?";
}

struct ScenarioConfig {
  metrics::MetricKind metric = metrics::MetricKind::kHnSpf;
  /// Total offered load summed over all pairs, bits/second.
  double offered_load_bps = 300e3;
  TrafficShape shape = TrafficShape::kPeakHour;
  util::SimTime warmup = util::SimTime::from_sec(120);
  util::SimTime window = util::SimTime::from_sec(600);
  std::uint64_t seed = 0x19870726ULL;
  NetworkConfig network;  ///< metric field is overwritten from `metric`
  /// Result label (indicator column). Empty: derived from the metric.
  std::string label;
  /// Explicit traffic matrix; overrides shape/offered_load_bps when set.
  std::optional<traffic::TrafficMatrix> matrix;
  /// Declarative topology: when set, the run_scenario(cfg) overload builds
  /// it through the TopologyBuilder registry. Overloads taking an explicit
  /// Topology ignore it.
  std::optional<net::GraphSpec> topology;
  /// Deterministic fault schedule (link flaps, crashes, outages, partitions,
  /// line upgrades) injected through the calendar queue. Compiled against
  /// the topology at run time; horizon is warmup + window.
  std::optional<FaultPlan> faults;
  /// Run analysis::audit_network when the measurement window ends: every
  /// reported cost, cost trace and SPF tree is checked against the paper's
  /// invariants, and any violation aborts. Costs one pass over the final
  /// network state, so sweeps keep it on by default.
  bool self_audit = true;

  // ---- fluent, validated setters ----
  // Each returns *this so calls chain; each throws std::invalid_argument on
  // a value the simulator could not run.

  ScenarioConfig& with_metric(metrics::MetricKind m);
  /// Also clears `metric`-based construction: the factory wins.
  ScenarioConfig& with_metric_factory(
      std::shared_ptr<const metrics::MetricFactory> factory);
  ScenarioConfig& with_load_bps(double bps);       ///< rejects negative load
  ScenarioConfig& with_shape(TrafficShape s);
  ScenarioConfig& with_warmup(util::SimTime t);    ///< rejects negative
  ScenarioConfig& with_window(util::SimTime t);    ///< rejects zero/negative
  ScenarioConfig& with_seed(std::uint64_t s);
  ScenarioConfig& with_label(std::string l);
  ScenarioConfig& with_network(NetworkConfig cfg);
  ScenarioConfig& with_matrix(traffic::TrafficMatrix m);
  /// Validates the spec against the TopologyBuilder registry immediately
  /// (unknown family / bad params throw here, not at run time).
  ScenarioConfig& with_topology(net::GraphSpec spec);
  ScenarioConfig& with_faults(FaultPlan plan);
  /// Parses a fault-plan spec string ("flap:link=3,period_s=10,dwell_s=2";
  /// see FaultPlan::parse) — the sweep-friendly form. Throws
  /// std::invalid_argument on a malformed spec.
  ScenarioConfig& with_faults(std::string_view spec);
  ScenarioConfig& with_self_audit(bool enabled);

  /// The label a run of this config reports: `label`, or the metric
  /// factory's name, or the metric kind's.
  [[nodiscard]] std::string effective_label() const;

  /// Full-config check (the setters validate only their own field; direct
  /// aggregate writes bypass them). Throws std::invalid_argument.
  void validate() const;
};

struct ScenarioResult {
  stats::NetworkIndicators indicators;
  NetworkStats stats;
  // ---- per-run telemetry ----
  double wall_seconds = 0.0;            ///< host time spent in the run
  std::uint64_t events_processed = 0;   ///< simulator events executed
  /// Whole-run observability counters (src/obs/counters.h), warm-up
  /// included — SPF work, flooding volume, forwarding, queue depth.
  obs::Counters counters;
  /// What the end-of-run self-audit covered (all zeros when disabled).
  analysis::AuditStats audit;
  /// Routing-stability telemetry for the measurement window (all zeros when
  /// the run had no faults and no route churn).
  StabilityStats stability;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events_processed) / wall_seconds
                            : 0.0;
  }
};

/// Runs one scenario to completion and returns the measurement-window
/// results. `label` names the indicator column (e.g. "D-SPF"); when empty
/// the config's effective label is used. Prefer exp::Experiment for new
/// code; this remains the single-run primitive underneath it.
[[nodiscard]] ScenarioResult run_scenario(const net::Topology& topo,
                                          const ScenarioConfig& cfg,
                                          const std::string& label);

/// Runs a config that carries its own topology (with_topology): builds the
/// graph through the TopologyBuilder registry, then runs as above. Throws
/// std::invalid_argument if cfg.topology is unset.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Builds the scenario's traffic matrix without running (for reuse).
[[nodiscard]] traffic::TrafficMatrix scenario_matrix(const net::Topology& topo,
                                                     const ScenarioConfig& cfg);

}  // namespace arpanet::sim
