#include "src/sim/scenario.h"

namespace arpanet::sim {

traffic::TrafficMatrix scenario_matrix(const net::Topology& topo,
                                       const ScenarioConfig& cfg) {
  switch (cfg.shape) {
    case TrafficShape::kUniform:
      return traffic::TrafficMatrix::uniform(topo.node_count(),
                                             cfg.offered_load_bps);
    case TrafficShape::kPeakHour:
      return traffic::TrafficMatrix::peak_hour(topo.node_count(),
                                               cfg.offered_load_bps,
                                               util::Rng{cfg.seed ^ 0xfeedULL});
  }
  throw std::invalid_argument("unknown TrafficShape");
}

ScenarioResult run_scenario(const net::Topology& topo, const ScenarioConfig& cfg,
                            const std::string& label) {
  NetworkConfig ncfg = cfg.network;
  ncfg.metric = cfg.metric;
  ncfg.seed = cfg.seed;
  Network network{topo, ncfg};
  network.add_traffic(scenario_matrix(topo, cfg));
  network.run_for(cfg.warmup);
  network.reset_stats();
  network.run_for(cfg.window);
  return ScenarioResult{network.indicators(label), network.stats()};
}

}  // namespace arpanet::sim
