#include "src/sim/scenario.h"

#include <stdexcept>
#include <utility>

#include "src/net/builders/registry.h"
#include "src/obs/stopwatch.h"
#include "src/util/alloc_guard.h"

namespace arpanet::sim {

ScenarioConfig& ScenarioConfig::with_metric(metrics::MetricKind m) {
  metric = m;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_metric_factory(
    std::shared_ptr<const metrics::MetricFactory> factory) {
  if (!factory) {
    throw std::invalid_argument("ScenarioConfig: null metric factory");
  }
  network.metric_factory = std::move(factory);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_load_bps(double bps) {
  if (bps < 0.0) {
    throw std::invalid_argument("ScenarioConfig: offered load must be >= 0");
  }
  offered_load_bps = bps;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_shape(TrafficShape s) {
  shape = s;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_warmup(util::SimTime t) {
  if (t < util::SimTime::zero()) {
    throw std::invalid_argument("ScenarioConfig: warmup must be >= 0");
  }
  warmup = t;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_window(util::SimTime t) {
  if (t <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "ScenarioConfig: measurement window must be > 0");
  }
  window = t;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ScenarioConfig& ScenarioConfig::with_label(std::string l) {
  label = std::move(l);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_network(NetworkConfig cfg) {
  network = std::move(cfg);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_matrix(traffic::TrafficMatrix m) {
  matrix = std::move(m);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_topology(net::GraphSpec spec) {
  net::TopologyBuilder::registry().validate(spec);
  topology = std::move(spec);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_faults(FaultPlan plan) {
  faults = std::move(plan);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_faults(std::string_view spec) {
  faults = FaultPlan::parse(spec);
  return *this;
}

ScenarioConfig& ScenarioConfig::with_self_audit(bool enabled) {
  self_audit = enabled;
  return *this;
}

std::string ScenarioConfig::effective_label() const {
  if (!label.empty()) return label;
  if (network.metric_factory) return network.metric_factory->name();
  return to_string(metric);
}

void ScenarioConfig::validate() const {
  if (offered_load_bps < 0.0) {
    throw std::invalid_argument("ScenarioConfig: offered load must be >= 0");
  }
  if (warmup < util::SimTime::zero()) {
    throw std::invalid_argument("ScenarioConfig: warmup must be >= 0");
  }
  if (window <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "ScenarioConfig: measurement window must be > 0");
  }
  if (network.queue_capacity <= 0) {
    throw std::invalid_argument("ScenarioConfig: queue capacity must be > 0");
  }
}

traffic::TrafficMatrix scenario_matrix(const net::Topology& topo,
                                       const ScenarioConfig& cfg) {
  if (cfg.matrix) {
    if (cfg.matrix->nodes() != topo.node_count()) {
      throw std::invalid_argument(
          "ScenarioConfig: explicit matrix size does not match topology");
    }
    return *cfg.matrix;
  }
  switch (cfg.shape) {
    case TrafficShape::kUniform:
      return traffic::TrafficMatrix::uniform(topo.node_count(),
                                             cfg.offered_load_bps);
    case TrafficShape::kPeakHour:
      return traffic::TrafficMatrix::peak_hour(topo.node_count(),
                                               cfg.offered_load_bps,
                                               util::Rng{cfg.seed ^ 0xfeedULL});
  }
  throw std::invalid_argument("unknown TrafficShape");
}

ScenarioResult run_scenario(const net::Topology& topo, const ScenarioConfig& cfg,
                            const std::string& label) {
  cfg.validate();
  ScenarioResult result;
  {
    const obs::ScopedTimer timer{result.wall_seconds};
    NetworkConfig ncfg = cfg.network;
    ncfg.metric = cfg.metric;
    ncfg.seed = cfg.seed;
    Network network{topo, ncfg};
    if (cfg.faults && !cfg.faults->empty()) {
      network.install_faults(*cfg.faults, cfg.warmup + cfg.window);
    }
    network.add_traffic(scenario_matrix(topo, cfg));
    network.run_for(cfg.warmup);
    network.reset_stats();
    // Pre-extend the bucketed series past the window, then count every
    // heap allocation the steady-state phase makes. Zero is the expected
    // Release-build value for the battery topologies (the pools and
    // scratch buffers reach their high-water capacity during warm-up);
    // the count is reported, not asserted, so debug/sanitizer builds and
    // unusual configs stay valid.
    network.reserve_stats_until(network.now() + cfg.window);
    // The calendar queue rebuilds its bucket array when the pending
    // population crosses a power-of-two boundary; fault churn (queue drains,
    // restart floods) can push the window's peak past anything warm-up saw,
    // so give the geometry headroom now instead of allocating mid-window.
    network.reserve_event_headroom();
    std::uint64_t window_alloc_bytes = 0;
    {
      const util::AllocGuard guard;
      network.run_for(cfg.window);
      window_alloc_bytes = guard.bytes();
    }
    result.indicators =
        network.indicators(label.empty() ? cfg.effective_label() : label);
    result.stats = network.stats();
    if (cfg.self_audit) {
      result.audit = analysis::audit_network(network);
    }
    result.stability = network.stability();
    result.counters = network.counters();
    result.counters.alloc_guard_scopes = 1;
    result.counters.alloc_guard_bytes_peak = window_alloc_bytes;
    result.events_processed = network.events_processed();
  }
  return result;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  if (!cfg.topology) {
    throw std::invalid_argument(
        "run_scenario(cfg): config has no topology (use with_topology, or "
        "the overload taking an explicit net::Topology)");
  }
  const net::Topology topo =
      net::TopologyBuilder::registry().build(*cfg.topology);
  return run_scenario(topo, cfg, /*label=*/"");
}

}  // namespace arpanet::sim
