#include "src/sim/host_flow.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace arpanet::sim {

namespace {

/// Pair key for hook dispatch.
std::uint64_t key(net::NodeId src, net::NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

/// ARPANET messages were capped at eight packets.
constexpr int kMaxPacketsPerMessage = 8;

}  // namespace

HostFlowLayer::HostFlowLayer(Network& net, HostFlowConfig cfg)
    : net_{net}, cfg_{cfg}, start_{net.now()} {
  if (cfg.window < 1 || cfg.mean_message_bits <= 0 ||
      cfg.packet_bits_max <= 0 || cfg.max_retransmits < 0) {
    throw std::invalid_argument("bad HostFlowConfig");
  }
  net_.set_delivery_hook([this](const Packet& pkt) { on_delivered(pkt); });
}

void HostFlowLayer::add_pair(net::NodeId src, net::NodeId dst, double bps) {
  if (src == dst) throw std::invalid_argument("self traffic");
  const double msgs_per_sec = bps / cfg_.mean_message_bits;
  const std::uint64_t stream = key(src, dst);
  pairs_.push_back(std::make_unique<Pair>(Pair{
      src, dst,
      traffic::PoissonProcess{msgs_per_sec,
                              util::Rng{net_.config().seed}.split(stream)},
      util::Rng{net_.config().seed ^ 0x90edULL}.split(stream),
      {}, {}}));
  pair_index_[stream] = pairs_.size() - 1;
  schedule_message(pairs_.size() - 1);
}

void HostFlowLayer::add_traffic(const traffic::TrafficMatrix& matrix) {
  for (net::NodeId s = 0; s < matrix.nodes(); ++s) {
    for (net::NodeId d = 0; d < matrix.nodes(); ++d) {
      if (matrix.at(s, d) > 0.0) add_pair(s, d, matrix.at(s, d));
    }
  }
}

void HostFlowLayer::schedule_message(std::size_t pair_index) {
  Pair& pair = *pairs_[pair_index];
  net_.simulator().schedule_in(
      pair.arrivals.next_gap(),
      SimEvent::host_flow_message(*this,
                                  static_cast<std::uint32_t>(pair_index)));
}

void HostFlowLayer::handle_event(SimEvent& ev) {
  switch (ev.kind()) {
    case SimEvent::Kind::kHostFlowMessage: {
      Pair& p = *pairs_[ev.index()];
      Message msg;
      msg.id = ++next_message_id_;
      // Shifted-exponential message sizes, truncated to the 8-packet cap.
      const double cap = cfg_.packet_bits_max * kMaxPacketsPerMessage;
      msg.bits = std::min(
          64.0 + p.size_rng.exponential(cfg_.mean_message_bits - 64.0), cap);
      msg.packet_count = std::max(
          1, static_cast<int>(std::ceil(msg.bits / cfg_.packet_bits_max)));
      msg.submitted = net_.now();
      ++messages_offered_;
      p.backlog.push_back(msg);
      try_send(p);
      schedule_message(ev.index());
      break;
    }
    case SimEvent::Kind::kHostFlowTimeout:
      on_timeout(ev.index(), ev.id(), ev.generation());
      break;
    default:
      throw std::logic_error("host-flow layer dispatched unknown event kind");
  }
}

void HostFlowLayer::try_send(Pair& pair) {
  while (static_cast<int>(pair.outstanding.size()) < cfg_.window &&
         !pair.backlog.empty()) {
    Message msg = pair.backlog.front();
    pair.backlog.pop_front();
    pair.outstanding.emplace(msg.id, msg);
    transmit_message(pair, msg);
    arm_timeout(pair_index_.at(key(pair.src, pair.dst)), msg.id, 0);
  }
}

void HostFlowLayer::transmit_message(Pair& pair, const Message& msg) {
  double remaining = msg.bits;
  for (int i = 0; i < msg.packet_count; ++i) {
    Packet pkt;
    pkt.kind = Packet::Kind::kData;
    pkt.dst = pair.dst;
    pkt.bits = std::min(remaining, cfg_.packet_bits_max);
    remaining -= pkt.bits;
    pkt.message_id = msg.id;
    pkt.pkt_index = static_cast<std::uint16_t>(i);
    pkt.pkt_count = static_cast<std::uint16_t>(msg.packet_count);
    net_.psn(pair.src).originate_packet(std::move(pkt));
  }
}

void HostFlowLayer::arm_timeout(std::size_t pair_index, std::uint64_t message_id,
                                int retransmit_generation) {
  net_.simulator().schedule_in(
      cfg_.rfnm_timeout,
      SimEvent::host_flow_timeout(*this,
                                  static_cast<std::uint32_t>(pair_index),
                                  message_id, retransmit_generation));
}

void HostFlowLayer::on_timeout(std::size_t pair_index, std::uint64_t message_id,
                               int retransmit_generation) {
  Pair& pair = *pairs_[pair_index];
  const auto it = pair.outstanding.find(message_id);
  if (it == pair.outstanding.end()) return;  // acked meanwhile
  if (it->second.retransmits != retransmit_generation) return;  // stale
  if (it->second.retransmits >= cfg_.max_retransmits) {
    ++messages_abandoned_;
    pair.outstanding.erase(it);
    try_send(pair);
    return;
  }
  ++it->second.retransmits;
  ++retransmissions_;
  transmit_message(pair, it->second);
  arm_timeout(pair_index, message_id, it->second.retransmits);
}

void HostFlowLayer::on_delivered(const Packet& pkt) {
  if (pkt.message_id == 0) return;  // plain datagram traffic

  if (pkt.rfnm) {
    // RFNM arriving back at the message source.
    const auto pit = pair_index_.find(key(pkt.dst, pkt.src));
    if (pit == pair_index_.end()) return;
    Pair& pair = *pairs_[pit->second];
    const auto it = pair.outstanding.find(pkt.message_id);
    if (it == pair.outstanding.end()) return;  // duplicate RFNM
    ++messages_completed_;
    completed_bits_ += it->second.bits;
    message_delay_ms_.add((net_.now() - it->second.submitted).ms());
    pair.outstanding.erase(it);
    try_send(pair);
    return;
  }

  // Data packet at the destination: reassemble. Per-index bits, so
  // retransmitted duplicates of one packet can't complete a message that is
  // genuinely missing another.
  if (completed_at_dst_.contains(pkt.message_id)) {
    // Duplicate from a retransmission whose original completed: the RFNM
    // was lost or late; send it again (idempotent at the source).
  } else {
    auto& mask = reassembly_[pkt.message_id];
    mask |= 1u << pkt.pkt_index;
    if (std::popcount(static_cast<unsigned>(mask)) < pkt.pkt_count) return;
    reassembly_.erase(pkt.message_id);
    completed_at_dst_.insert(pkt.message_id);
  }
  Packet rfnm;
  rfnm.kind = Packet::Kind::kData;
  rfnm.dst = pkt.src;
  rfnm.bits = cfg_.rfnm_bits;
  rfnm.message_id = pkt.message_id;
  rfnm.pkt_count = 1;
  rfnm.rfnm = true;
  net_.psn(pkt.dst).originate_packet(std::move(rfnm));
}

double HostFlowLayer::goodput_bps() const {
  const double elapsed = (net_.now() - start_).sec();
  return elapsed > 0 ? completed_bits_ / elapsed : 0.0;
}

}  // namespace arpanet::sim
