// Per-window measurement aggregates for one Network run.
//
// Split out of sim/network.h so the sharded engine's per-shard state
// (sim/shard.h) can hold its own copy of each aggregate without pulling in
// the whole Network interface. Every struct here merges associatively:
// counts add, Welford summaries combine, histograms add bin-wise — which is
// what lets K shards record independently and the coordinator present one
// network-wide view on demand.

#pragma once

#include <cstdint>

#include "src/net/topology.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/util/units.h"

namespace arpanet::sim {

struct NetworkStats {
  long packets_generated = 0;
  long packets_delivered = 0;
  long packets_dropped_queue = 0;       ///< tail drops (congestion)
  long packets_dropped_unreachable = 0; ///< no route
  long packets_dropped_loop = 0;        ///< hop budget exceeded (routing loop)
  double bits_delivered = 0.0;
  stats::Summary one_way_delay_ms;
  /// One-way delay distribution (0-5000 ms, 2 ms bins) for percentiles.
  stats::Histogram delay_histogram_ms{0.0, 5000.0, 2500};
  stats::Summary path_hops;
  stats::Summary min_hops;  ///< min-hop length of each delivered packet's pair
  long updates_originated = 0;
  long update_packets_sent = 0;  ///< flooded transmissions (overhead)

  /// Folds another shard's window into this one.
  void merge(const NetworkStats& other) {
    packets_generated += other.packets_generated;
    packets_delivered += other.packets_delivered;
    packets_dropped_queue += other.packets_dropped_queue;
    packets_dropped_unreachable += other.packets_dropped_unreachable;
    packets_dropped_loop += other.packets_dropped_loop;
    bits_delivered += other.bits_delivered;
    one_way_delay_ms.merge(other.one_way_delay_ms);
    delay_histogram_ms.merge(other.delay_histogram_ms);
    path_hops.merge(other.path_hops);
    min_hops.merge(other.min_hops);
    updates_originated += other.updates_originated;
    update_packets_sent += other.update_packets_sent;
  }
};

/// Routing-stability telemetry for the measurement window (reset with the
/// other stats after warm-up). The quantities the paper's stability claims
/// are stated in: how much routes move, how far a cost may jump per update
/// period, whether the flat region really is flat, and how quickly the
/// network settles after the last fault transition.
struct StabilityStats {
  /// Destinations whose first hop changed, summed over every PSN tree
  /// update in the window.
  long route_changes = 0;
  /// Measurement periods in which a link's cost moved while its utilization
  /// sat inside the metric's flat region (paper section 4.2: the cost
  /// should be constant there; movement means decay-in-progress or noise).
  long flat_oscillations = 0;
  /// Largest per-period cost movement observed on any up link.
  double max_movement = 0.0;
  /// Fault actions dispatched inside the window.
  long faults_applied = 0;
  /// Seconds from the window's last fault action to the last first-hop
  /// change anywhere — the reconvergence time after the final heal. Zero
  /// when the window saw no fault.
  double reconverge_sec = 0.0;
};

/// One applied line-type upgrade: which simplex link, when, and to what
/// type. The audit uses this to pick the right era's movement limits for
/// each reported-cost trace step and to skip the restart step across the
/// swap itself (section 5.4: an upgraded line eases in from the new
/// type's maximum, which is not a per-period movement).
struct AppliedUpgrade {
  net::LinkId link = net::kInvalidLink;
  util::SimTime at;
  net::LineType type = net::LineType::kTerrestrial56;
};

}  // namespace arpanet::sim
