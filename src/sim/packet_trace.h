// Packet-level event tracing.
//
// A bounded in-memory recorder for per-packet events — the tool you reach
// for when a simulation result looks wrong ("which links did packet 4711
// actually cross, and where did it sit in queue?"). Disabled by default;
// when enabled on a Network it records hop/drop/delivery events into a ring
// buffer with optional packet-id filtering, costing one branch when off.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::sim {

enum class TraceEventKind : std::uint8_t {
  kOriginated,
  kEnqueued,
  kTransmitted,   ///< finished serialization onto a link
  kDelivered,
  kDroppedQueue,
  kDroppedLoop,
  kDroppedUnreachable,
};

[[nodiscard]] const char* to_string(TraceEventKind kind);

struct TraceEvent {
  util::SimTime at;
  TraceEventKind kind = TraceEventKind::kOriginated;
  std::uint64_t packet_id = 0;
  net::NodeId node = net::kInvalidNode;    ///< where it happened
  net::LinkId link = net::kInvalidLink;    ///< link involved (if any)
};

class PacketTracer {
 public:
  /// Keeps at most `capacity` most-recent events (ring buffer).
  explicit PacketTracer(std::size_t capacity = 65536);

  /// Restrict recording to one packet id (common when re-running a seed to
  /// chase a specific packet).
  void filter_packet(std::uint64_t id) { filter_ = id; }
  void clear_filter() { filter_.reset(); }

  void record(util::SimTime at, TraceEventKind kind, std::uint64_t packet_id,
              net::NodeId node, net::LinkId link = net::kInvalidLink);

  /// Events in chronological order (oldest survivor first).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Just one packet's events, chronological.
  [[nodiscard]] std::vector<TraceEvent> events_for(std::uint64_t packet_id) const;

  [[nodiscard]] std::uint64_t recorded_total() const { return recorded_; }
  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t recorded_ = 0;
  std::optional<std::uint64_t> filter_;
};

}  // namespace arpanet::sim
