// Network: the assembled simulation — topology, PSNs, traffic, statistics.
//
// This is the library's main entry point for whole-network experiments:
//
//   net::Topology topo = net::builders::arpanet87();
//   sim::NetworkConfig cfg;
//   cfg.metric = metrics::MetricKind::kHnSpf;
//   sim::Network net{topo, cfg};
//   net.add_traffic(traffic::TrafficMatrix::peak_hour(topo.node_count(),
//                                                     400e3, rng));
//   net.run_for(util::SimTime::from_sec(300));   // warm-up
//   net.reset_stats();
//   net.run_for(util::SimTime::from_sec(600));   // measurement window
//   auto table1 = net.indicators("HN-SPF");
//
// Engine structure: the PSNs are partitioned into cfg.shards shards
// (src/net/partition.h), each owning its own Simulator/EventQueue, packet
// and update slabs, and statistics (src/sim/shard.h). run_until executes
// shards in barrier-synchronized windows of length equal to the minimum
// propagation delay of any cut trunk (the conservative lookahead): a packet
// sent across a shard boundary inside one window cannot arrive before the
// next, so each shard runs a window without ever looking at another
// shard's queue. Cross-shard arrivals travel through per-shard-pair
// mailboxes drained in deterministic (time, source shard, sequence) order
// at window boundaries. With the default shards=1 the same code runs the
// caller's thread straight through — no second engine, no divergence.

#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/core/line_params.h"
#include "src/metrics/link_metric.h"
#include "src/metrics/metric_factory.h"
#include "src/net/partition.h"
#include "src/net/topology.h"
#include "src/obs/counters.h"
#include "src/obs/trace_sink.h"
#include "src/routing/routing_table.h"
#include "src/sim/event.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network_stats.h"
#include "src/sim/packet_pool.h"
#include "src/sim/packet_trace.h"
#include "src/sim/shard.h"
#include "src/sim/update_pool.h"
#include "src/sim/psn.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/stats/indicators.h"
#include "src/stats/summary.h"
#include "src/stats/time_series.h"
#include "src/traffic/poisson_source.h"
#include "src/traffic/traffic_matrix.h"
#include "src/util/rng.h"

namespace arpanet::sim {

struct NetworkConfig {
  /// Route computation generation; kSpf is the 1979+ scheme the paper
  /// modifies, kDistanceVector the 1969 original kept as a baseline.
  routing::RoutingAlgorithm algorithm = routing::RoutingAlgorithm::kSpf;
  metrics::MetricKind metric = metrics::MetricKind::kHnSpf;
  /// Open injection point for custom link metrics. When set it overrides
  /// `metric`; when null the network builds a KindMetricFactory from
  /// `metric`. Shared (not owned) so sweep cells can reuse one factory.
  std::shared_ptr<const metrics::MetricFactory> metric_factory;
  core::LineParamsTable line_params = core::LineParamsTable::arpanet_defaults();
  /// The ARPANET's ten-second measurement interval.
  util::SimTime measurement_period = util::SimTime::from_sec(10);
  /// Output data-queue capacity, packets; routing updates bypass it.
  int queue_capacity = 40;
  double mean_packet_bits = util::kAveragePacketBits;
  std::uint64_t seed = 0x19870726ULL;
  /// Bucket width for drop/utilization time series.
  util::SimTime stats_bucket = util::SimTime::from_sec(10);
  /// Record per-link reported-cost traces (fig. 1 style plots).
  bool track_reported_costs = false;
  /// Data packets exceeding this many hops are counted as loop drops
  /// (only the 1969 algorithm ever reaches it).
  int hop_limit = 128;
  /// Distance-vector mode: table exchange interval ("every 2/3 seconds").
  util::SimTime dv_exchange_period = util::SimTime::from_us(666'667);
  /// Distance-vector mode: the fixed constant added to the instantaneous
  /// queue length.
  double dv_bias = 1.0;
  /// Extension (paper section 4.5): spread each destination's packets
  /// round-robin over all equal-cost shortest-path next hops instead of the
  /// single canonical first hop. SPF mode only.
  bool multipath = false;
  /// Costs within this many routing units count as "equal" for multipath —
  /// measured metrics never produce exact ties (HN-SPF reporting
  /// granularity is about a half-hop, 15 units on a 56 kb/s line). The PSN
  /// additionally caps it below the cheapest current link cost so multipath
  /// forwarding stays loop-free.
  double multipath_tolerance = 15.0;
  /// Ablation hook: overrides the metric's update-generation threshold
  /// (routing units) when >= 0. The shipped behaviour (-1) uses the
  /// metric's own value — "a little less than a half-hop" for HN-SPF, the
  /// decaying 64-unit scheme for D-SPF.
  double significance_threshold_override = -1.0;
  /// Validate paper invariants on every reported cost (absolute bounds and
  /// movement limits, src/analysis/invariants.h); a violation aborts via
  /// ARPA_CHECK. A few comparisons per update origination — leave it on
  /// unless profiling says otherwise.
  bool check_invariants = true;
  /// Simulation shards (worker threads) for one network. 1 (the default)
  /// runs single-threaded on the caller's thread. K>1 partitions the PSNs
  /// into K BFS-grown regions and requires every cross-shard trunk to have
  /// nonzero propagation delay (the conservative lookahead). Tracing and
  /// delivery hooks require shards == 1.
  int shards = 1;
};

class Network : public EventSink {
 public:
  Network(const net::Topology& topo, NetworkConfig cfg);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs Poisson sources for every nonzero matrix entry. May be called
  /// once, before running.
  void add_traffic(const traffic::TrafficMatrix& matrix);

  /// Stops all sources: no packet is originated after this call. Running
  /// further drains the queues, after which conservation holds exactly
  /// (generated == delivered + dropped).
  void stop_traffic() { traffic_enabled_ = false; }

  /// Called (after statistics) for every delivered data packet. Used by
  /// host-level layers (sim/host_flow.h); one hook at a time. shards=1 only.
  void set_delivery_hook(std::function<void(const Packet&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Attaches a packet tracer (nullptr detaches). The tracer must outlive
  /// the run; recording costs one branch per event when detached.
  /// shards=1 only.
  void attach_tracer(PacketTracer* tracer) { tracer_ = tracer; }

  /// Attaches a per-link observability sink receiving every reported cost
  /// and each link's per-period busy fraction (nullptr detaches). Same
  /// lifetime/cost contract as attach_tracer. shards=1 only.
  void attach_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  /// Psn-side tracing entry point.
  void trace(TraceEventKind kind, const Packet& pkt, net::NodeId node,
             net::LinkId link = net::kInvalidLink) {
    if (tracer_) tracer_->record(now(), kind, pkt.id, node, link);
  }

  void run_for(util::SimTime duration);
  void run_until(util::SimTime end);

  /// Zeroes counters and restarts the measurement window (call after
  /// warm-up).
  void reset_stats();

  /// Network-wide window statistics; with shards>1 this is a merge of the
  /// per-shard aggregates, rebuilt on each call (post-run reads only).
  [[nodiscard]] const NetworkStats& stats() const;
  [[nodiscard]] util::SimTime window_length() const {
    return shards_.front()->sim.now() - window_start_;
  }
  [[nodiscard]] stats::NetworkIndicators indicators(std::string label) const;

  /// Whole-run telemetry snapshot: live counters merged with per-PSN SPF
  /// work and every shard's event-engine totals. Unlike stats(), never
  /// reset by reset_stats() — values cover the network's lifetime including
  /// warm-up. Monotonic counts sum across shards; capacity/peak gauges take
  /// the per-shard maximum.
  [[nodiscard]] obs::Counters counters() const;

  [[nodiscard]] const net::Topology& topology() const { return *topo_; }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }
  /// The metric factory in effect (config's, or one built from its kind).
  [[nodiscard]] const metrics::MetricFactory& metric_factory() const {
    return *factory_;
  }
  /// The calling context's simulator: a shard worker gets its own shard's
  /// engine; outside a run this is shard 0 (with shards=1, the only one).
  [[nodiscard]] Simulator& simulator() { return current_shard().sim; }
  [[nodiscard]] util::SimTime now() const { return current_shard().sim.now(); }

  /// Events processed across all shards over the network's lifetime.
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Pre-sizes every shard's calendar queue to 4x its observed peak depth,
  /// so a measurement window after warm-up schedules into existing storage.
  void reserve_event_headroom();

  /// Number of simulation shards (== config().shards).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// The node-to-shard assignment in effect.
  [[nodiscard]] const net::Partition& partition() const { return part_; }
  /// The conservative sync window: minimum propagation delay over trunks
  /// crossing a shard boundary. Zero when shards == 1 (never synced).
  [[nodiscard]] util::SimTime lookahead() const { return lookahead_; }

  [[nodiscard]] const Psn& psn(net::NodeId id) const { return *psns_.at(id); }
  [[nodiscard]] Psn& psn(net::NodeId id) { return *psns_.at(id); }

  /// Link utilization (busy fraction) per stats bucket.
  [[nodiscard]] const stats::TimeSeries& link_busy_series(net::LinkId id) const {
    return link_busy_.at(id);
  }
  [[nodiscard]] double link_utilization(net::LinkId id,
                                        std::size_t bucket) const;

  /// Reported-cost trace of a link (empty unless track_reported_costs).
  [[nodiscard]] const std::vector<std::pair<util::SimTime, double>>&
  reported_cost_trace(net::LinkId id) const {
    return cost_traces_.at(id);
  }

  /// Drops per stats bucket (fig. 13's quantity); merged across shards.
  [[nodiscard]] const stats::TimeSeries& drop_series() const;

  /// Takes a trunk (both simplex directions) down or up mid-run.
  void set_trunk_up(net::LinkId link, bool up);

  /// Compiles `plan` against the topology and schedules every resulting
  /// fault action as a kFaultAction event through the owning shard's
  /// calendar queue (an action touching links on two shards dispatches on
  /// both, each applying only its own half). `horizon` is the scenario end
  /// (warmup + window); the plan must not reach past it. Call once, before
  /// running: all scheduling (and all allocation — line-upgrade metrics are
  /// pre-built here) happens up front, so fault dispatch inside the
  /// measurement window stays on the warm slab.
  void install_faults(const FaultPlan& plan, util::SimTime horizon);

  /// Administrative state of one simplex link (its trunk's state: both
  /// directions always agree). Distinct from the advertised cost — a down
  /// link still carries Psn::kDownLinkCost in every map.
  [[nodiscard]] bool link_admin_up(net::LinkId link) const;

  /// The link record in effect right now: the topology's, unless a
  /// mid-run line-type upgrade replaced the type and rate (propagation
  /// delay never changes — trunk mileage is fixed, and the sharded
  /// engine's lookahead depends on it). All rate/params lookups on hot
  /// paths go through here.
  [[nodiscard]] const net::Link& effective_link(net::LinkId link) const {
    return effective_links_[link];
  }

  /// Routing updates currently in flight (origination slots plus flooded
  /// copies not yet consumed), summed across shards. Zero means every
  /// flooded report has been applied at every PSN — the quiescence gate for
  /// map-agreement checks. Mailboxes are always drained by the time
  /// run_until returns, so nothing hides between shards.
  [[nodiscard]] std::size_t updates_in_flight() const;

  /// Window stability telemetry; reconverge_sec is derived at call time
  /// from the latest fault/route-change timestamps across shards.
  [[nodiscard]] StabilityStats stability() const;

  using AppliedUpgrade = ::arpanet::sim::AppliedUpgrade;
  /// Applied line-type upgrades in time order (stable across equal times,
  /// forward half before reverse), merged across shards.
  [[nodiscard]] std::span<const AppliedUpgrade> upgrades_applied() const;

  /// Takes a whole PSN down or up: all its trunks at once (a node crash /
  /// restart). Down nodes still exist in every map; their links carry
  /// Psn::kDownLinkCost so traffic routes around them.
  void set_node_up(net::NodeId node, bool up);

  /// The route a data packet submitted right now at `src` would take,
  /// walking each PSN's *own* current tree hop by hop — so during update
  /// transients this can legitimately report a loop, exactly as a real
  /// packet could experience one.
  [[nodiscard]] routing::PathTrace current_route(net::NodeId src,
                                                 net::NodeId dst) const;

  /// Cost most recently passed to on_cost_reported for each link (the
  /// link's metric initial cost before any report). The invariant layer
  /// checks each new report's movement against this baseline.
  [[nodiscard]] double last_reported_cost(net::LinkId link) const {
    return last_reported_cost_.at(link);
  }

  // ---- callbacks from Psn (not for external use) ----
  void on_generated() { ++current_shard().stats.packets_generated; }
  void on_delivered(const Packet& pkt);
  void on_queue_drop(const Packet& pkt);
  void on_unreachable_drop(const Packet& pkt);
  void on_loop_drop(const Packet& pkt);
  void on_update_originated() {
    Shard& sh = current_shard();
    ++sh.stats.updates_originated;
    ++sh.counters.updates_originated;
  }
  void on_update_packet_sent() {
    Shard& sh = current_shard();
    ++sh.stats.update_packets_sent;
    ++sh.counters.update_packets_sent;
  }
  void on_data_packet_sent() { ++current_shard().counters.packets_forwarded; }
  void on_transmission(net::LinkId link, util::SimTime busy);
  void on_cost_reported(net::LinkId link, double cost);
  /// Typed-event dispatch (sim/event.h): source ticks, propagation
  /// arrivals, transmit completions and the per-node timers all route
  /// through here — one switch, no per-event allocation.
  void handle_event(SimEvent& ev) override;
  /// The calling shard's pooled packet slab; hot paths pass PacketHandle
  /// indices instead of moving Packet structs.
  [[nodiscard]] PacketPool& packet_pool() { return current_shard().pool; }
  /// The calling shard's refcounted routing-update slab.
  [[nodiscard]] UpdatePool& update_pool() { return current_shard().updates; }
  /// Pre-extends the bucketed statistics series (per-link utilization,
  /// drops) to cover sim time up to `end`, so recording during a
  /// measurement window that ends by then allocates nothing. Call before
  /// an AllocGuard-wrapped window.
  void reserve_stats_until(util::SimTime end);
  /// One measurement period closed on `link`: `previous` and `candidate`
  /// are the metric's consecutive per-period costs (kDownLinkCost while the
  /// link is down), `busy_fraction` the period's transmitter utilization.
  /// Enforces the exact section 4.3 movement bound between consecutive
  /// update periods (no significance-threshold widening — the metric
  /// limits every period's move, reported or not) and feeds the trace sink.
  /// The strong analysis types make the cost/cost/utilization argument row
  /// un-swappable at the call site.
  void on_period_measured(net::LinkId link, analysis::Cost previous,
                          analysis::Cost candidate,
                          analysis::Utilization busy_fraction);
  /// Hands a transmitted packet to the link's far end. Same-shard links
  /// schedule the arrival directly; cross-shard links copy the packet into
  /// the destination shard's mailbox, to be drained at the next window
  /// boundary (the conservative lookahead guarantees that boundary is at or
  /// before the arrival time).
  void deliver_to_peer(net::LinkId link, PacketHandle pkt);
  [[nodiscard]] std::uint64_t next_packet_id() {
    Shard& sh = current_shard();
    return (static_cast<std::uint64_t>(sh.index) << 48) | ++sh.packet_seq;
  }
  /// A batch of spf cost changes moved `delta` destinations' first hops at
  /// some PSN (stability telemetry; called by Psn after each batch).
  void on_route_change(long delta) {
    if (delta > 0) {
      Shard& sh = current_shard();
      sh.stability.route_changes += delta;
      sh.last_route_change_at = sh.sim.now();
    }
  }

 private:
  struct Source {
    net::NodeId src;
    net::NodeId dst;
    traffic::PoissonProcess process;
    util::Rng size_rng;
  };
  /// Resources a line-type upgrade needs, built at install_faults time so
  /// applying the upgrade mid-window performs no allocation: the new link
  /// records, the freshly-constructed metrics (moved into the PSNs on
  /// apply) and the new cost bounds. The forward and reverse halves apply
  /// independently (possibly on different shards), each touching only
  /// state its own shard owns.
  struct PreparedUpgrade {
    std::uint32_t action_index = 0;
    net::Link fwd;
    net::Link rev;
    std::unique_ptr<metrics::LinkMetric> fwd_metric;
    std::unique_ptr<metrics::LinkMetric> rev_metric;
    std::optional<metrics::CostBounds> fwd_bounds;
    std::optional<metrics::CostBounds> rev_bounds;
  };

  /// Which shard the calling thread is executing for: inside a run each
  /// worker pins itself via ShardScope; any other context (setup, tests,
  /// post-run reads) resolves to shard 0, which with shards=1 is exactly
  /// the old single-engine behaviour.
  struct Tls {
    const Network* net = nullptr;
    Shard* shard = nullptr;
  };
  class ShardScope {
   public:
    ShardScope(const Network& net, Shard& shard) : prev_{tls_} {
      tls_ = Tls{&net, &shard};
    }
    ~ShardScope() { tls_ = prev_; }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    Tls prev_;
  };
  [[nodiscard]] Shard& current_shard() const {
    return tls_.net == this ? *tls_.shard : *shards_.front();
  }
  [[nodiscard]] Shard& shard_of_node(net::NodeId n) const {
    return *shards_[part_.shard_of[n]];
  }

  void schedule_arrival(std::size_t source_index);
  void apply_fault(Shard& sh, std::uint32_t shard_action_index);
  void apply_upgrade_half(Shard& sh, const ShardFaultOp& op);
  /// Moves every message addressed to `sh` from the other shards' outboxes
  /// into sh's queue, in (arrival time, source shard, send order) order.
  void drain_mailboxes(Shard& sh);
  void run_window_loop(Shard& sh, util::SimTime end, std::barrier<>& sync);

  static thread_local Tls tls_;

  const net::Topology* topo_;
  NetworkConfig cfg_;
  std::shared_ptr<const metrics::MetricFactory> factory_;
  net::Partition part_;
  /// Per-shard engines; shards_[0] doubles as the external-context default.
  std::vector<std::unique_ptr<Shard>> shards_;
  util::SimTime lookahead_ = util::SimTime::zero();
  util::Rng rng_;
  traffic::PacketSizer sizer_;
  std::vector<std::unique_ptr<Psn>> psns_;
  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::vector<int>> min_hop_table_;
  std::function<void(const Packet&)> delivery_hook_;
  PacketTracer* tracer_ = nullptr;
  obs::TraceSink* trace_sink_ = nullptr;
  /// Per-link cost bounds promised by the factory (nullopt = unbounded).
  /// Written only by the owning (from-node) shard, like every per-link
  /// record below.
  std::vector<std::optional<metrics::CostBounds>> link_bounds_;
  bool traffic_enabled_ = true;
  util::SimTime window_start_ = util::SimTime::zero();
  std::vector<stats::TimeSeries> link_busy_;
  std::vector<double> last_reported_cost_;
  bool hnspf_invariants_ = false;  ///< HN-SPF semantics known for all links
  std::vector<std::vector<std::pair<util::SimTime, double>>> cost_traces_;
  /// Mutable view of the topology's link records (line-type upgrades swap
  /// type and rate in place); indexed by LinkId like the topology's own.
  std::vector<net::Link> effective_links_;
  /// Compiled fault schedule (empty unless install_faults was called).
  std::vector<FaultAction> fault_actions_;
  std::vector<PreparedUpgrade> prepared_upgrades_;
  // Merge-on-demand caches for the cross-shard read accessors. Rebuilt on
  // every call when shards > 1; with one shard the accessors return the
  // shard's own aggregate and never touch these.
  mutable NetworkStats merged_stats_;
  mutable stats::TimeSeries merged_drops_;
  mutable std::vector<AppliedUpgrade> merged_upgrades_;
};

}  // namespace arpanet::sim
