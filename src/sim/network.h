// Network: the assembled simulation — topology, PSNs, traffic, statistics.
//
// This is the library's main entry point for whole-network experiments:
//
//   net::Topology topo = net::builders::arpanet87();
//   sim::NetworkConfig cfg;
//   cfg.metric = metrics::MetricKind::kHnSpf;
//   sim::Network net{topo, cfg};
//   net.add_traffic(traffic::TrafficMatrix::peak_hour(topo.node_count(),
//                                                     400e3, rng));
//   net.run_for(util::SimTime::from_sec(300));   // warm-up
//   net.reset_stats();
//   net.run_for(util::SimTime::from_sec(600));   // measurement window
//   auto table1 = net.indicators("HN-SPF");

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/core/line_params.h"
#include "src/metrics/link_metric.h"
#include "src/metrics/metric_factory.h"
#include "src/net/topology.h"
#include "src/obs/counters.h"
#include "src/obs/trace_sink.h"
#include "src/routing/routing_table.h"
#include "src/sim/event.h"
#include "src/sim/fault_plan.h"
#include "src/sim/packet_pool.h"
#include "src/sim/packet_trace.h"
#include "src/sim/update_pool.h"
#include "src/sim/psn.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/stats/indicators.h"
#include "src/stats/summary.h"
#include "src/stats/time_series.h"
#include "src/traffic/poisson_source.h"
#include "src/traffic/traffic_matrix.h"
#include "src/util/rng.h"

namespace arpanet::sim {

struct NetworkConfig {
  /// Route computation generation; kSpf is the 1979+ scheme the paper
  /// modifies, kDistanceVector the 1969 original kept as a baseline.
  routing::RoutingAlgorithm algorithm = routing::RoutingAlgorithm::kSpf;
  metrics::MetricKind metric = metrics::MetricKind::kHnSpf;
  /// Open injection point for custom link metrics. When set it overrides
  /// `metric`; when null the network builds a KindMetricFactory from
  /// `metric`. Shared (not owned) so sweep cells can reuse one factory.
  std::shared_ptr<const metrics::MetricFactory> metric_factory;
  core::LineParamsTable line_params = core::LineParamsTable::arpanet_defaults();
  /// The ARPANET's ten-second measurement interval.
  util::SimTime measurement_period = util::SimTime::from_sec(10);
  /// Output data-queue capacity, packets; routing updates bypass it.
  int queue_capacity = 40;
  double mean_packet_bits = util::kAveragePacketBits;
  std::uint64_t seed = 0x19870726ULL;
  /// Bucket width for drop/utilization time series.
  util::SimTime stats_bucket = util::SimTime::from_sec(10);
  /// Record per-link reported-cost traces (fig. 1 style plots).
  bool track_reported_costs = false;
  /// Data packets exceeding this many hops are counted as loop drops
  /// (only the 1969 algorithm ever reaches it).
  int hop_limit = 128;
  /// Distance-vector mode: table exchange interval ("every 2/3 seconds").
  util::SimTime dv_exchange_period = util::SimTime::from_us(666'667);
  /// Distance-vector mode: the fixed constant added to the instantaneous
  /// queue length.
  double dv_bias = 1.0;
  /// Extension (paper section 4.5): spread each destination's packets
  /// round-robin over all equal-cost shortest-path next hops instead of the
  /// single canonical first hop. SPF mode only.
  bool multipath = false;
  /// Costs within this many routing units count as "equal" for multipath —
  /// measured metrics never produce exact ties (HN-SPF reporting
  /// granularity is about a half-hop, 15 units on a 56 kb/s line). The PSN
  /// additionally caps it below the cheapest current link cost so multipath
  /// forwarding stays loop-free.
  double multipath_tolerance = 15.0;
  /// Ablation hook: overrides the metric's update-generation threshold
  /// (routing units) when >= 0. The shipped behaviour (-1) uses the
  /// metric's own value — "a little less than a half-hop" for HN-SPF, the
  /// decaying 64-unit scheme for D-SPF.
  double significance_threshold_override = -1.0;
  /// Validate paper invariants on every reported cost (absolute bounds and
  /// movement limits, src/analysis/invariants.h); a violation aborts via
  /// ARPA_CHECK. A few comparisons per update origination — leave it on
  /// unless profiling says otherwise.
  bool check_invariants = true;
};

struct NetworkStats {
  long packets_generated = 0;
  long packets_delivered = 0;
  long packets_dropped_queue = 0;       ///< tail drops (congestion)
  long packets_dropped_unreachable = 0; ///< no route
  long packets_dropped_loop = 0;        ///< hop budget exceeded (routing loop)
  double bits_delivered = 0.0;
  stats::Summary one_way_delay_ms;
  /// One-way delay distribution (0-5000 ms, 2 ms bins) for percentiles.
  stats::Histogram delay_histogram_ms{0.0, 5000.0, 2500};
  stats::Summary path_hops;
  stats::Summary min_hops;  ///< min-hop length of each delivered packet's pair
  long updates_originated = 0;
  long update_packets_sent = 0;  ///< flooded transmissions (overhead)
};

/// Routing-stability telemetry for the measurement window (reset with the
/// other stats after warm-up). The quantities the paper's stability claims
/// are stated in: how much routes move, how far a cost may jump per update
/// period, whether the flat region really is flat, and how quickly the
/// network settles after the last fault transition.
struct StabilityStats {
  /// Destinations whose first hop changed, summed over every PSN tree
  /// update in the window.
  long route_changes = 0;
  /// Measurement periods in which a link's cost moved while its utilization
  /// sat inside the metric's flat region (paper section 4.2: the cost
  /// should be constant there; movement means decay-in-progress or noise).
  long flat_oscillations = 0;
  /// Largest per-period cost movement observed on any up link.
  double max_movement = 0.0;
  /// Fault actions dispatched inside the window.
  long faults_applied = 0;
  /// Seconds from the window's last fault action to the last first-hop
  /// change anywhere — the reconvergence time after the final heal. Zero
  /// when the window saw no fault.
  double reconverge_sec = 0.0;
};

class Network : public EventSink {
 public:
  Network(const net::Topology& topo, NetworkConfig cfg);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs Poisson sources for every nonzero matrix entry. May be called
  /// once, before running.
  void add_traffic(const traffic::TrafficMatrix& matrix);

  /// Stops all sources: no packet is originated after this call. Running
  /// further drains the queues, after which conservation holds exactly
  /// (generated == delivered + dropped).
  void stop_traffic() { traffic_enabled_ = false; }

  /// Called (after statistics) for every delivered data packet. Used by
  /// host-level layers (sim/host_flow.h); one hook at a time.
  void set_delivery_hook(std::function<void(const Packet&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Attaches a packet tracer (nullptr detaches). The tracer must outlive
  /// the run; recording costs one branch per event when detached.
  void attach_tracer(PacketTracer* tracer) { tracer_ = tracer; }

  /// Attaches a per-link observability sink receiving every reported cost
  /// and each link's per-period busy fraction (nullptr detaches). Same
  /// lifetime/cost contract as attach_tracer.
  void attach_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  /// Psn-side tracing entry point.
  void trace(TraceEventKind kind, const Packet& pkt, net::NodeId node,
             net::LinkId link = net::kInvalidLink) {
    if (tracer_) tracer_->record(sim_.now(), kind, pkt.id, node, link);
  }

  void run_for(util::SimTime duration);
  void run_until(util::SimTime end);

  /// Zeroes counters and restarts the measurement window (call after
  /// warm-up).
  void reset_stats();

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] util::SimTime window_length() const {
    return sim_.now() - window_start_;
  }
  [[nodiscard]] stats::NetworkIndicators indicators(std::string label) const;

  /// Whole-run telemetry snapshot: live counters merged with per-PSN SPF
  /// work and the event engine's totals. Unlike stats(), never reset by
  /// reset_stats() — values cover the network's lifetime including warm-up.
  [[nodiscard]] obs::Counters counters() const;

  [[nodiscard]] const net::Topology& topology() const { return *topo_; }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }
  /// The metric factory in effect (config's, or one built from its kind).
  [[nodiscard]] const metrics::MetricFactory& metric_factory() const {
    return *factory_;
  }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] util::SimTime now() const { return sim_.now(); }

  [[nodiscard]] const Psn& psn(net::NodeId id) const { return *psns_.at(id); }
  [[nodiscard]] Psn& psn(net::NodeId id) { return *psns_.at(id); }

  /// Link utilization (busy fraction) per stats bucket.
  [[nodiscard]] const stats::TimeSeries& link_busy_series(net::LinkId id) const {
    return link_busy_.at(id);
  }
  [[nodiscard]] double link_utilization(net::LinkId id,
                                        std::size_t bucket) const;

  /// Reported-cost trace of a link (empty unless track_reported_costs).
  [[nodiscard]] const std::vector<std::pair<util::SimTime, double>>&
  reported_cost_trace(net::LinkId id) const {
    return cost_traces_.at(id);
  }

  /// Drops per stats bucket (fig. 13's quantity).
  [[nodiscard]] const stats::TimeSeries& drop_series() const { return drops_; }

  /// Takes a trunk (both simplex directions) down or up mid-run.
  void set_trunk_up(net::LinkId link, bool up);

  /// Compiles `plan` against the topology and schedules every resulting
  /// fault action as a kFaultAction event through the calendar queue.
  /// `horizon` is the scenario end (warmup + window); the plan must not
  /// reach past it. Call once, before running: all scheduling (and all
  /// allocation — line-upgrade metrics are pre-built here) happens up
  /// front, so fault dispatch inside the measurement window stays on the
  /// warm slab.
  void install_faults(const FaultPlan& plan, util::SimTime horizon);

  /// Administrative state of one simplex link (its trunk's state: both
  /// directions always agree). Distinct from the advertised cost — a down
  /// link still carries Psn::kDownLinkCost in every map.
  [[nodiscard]] bool link_admin_up(net::LinkId link) const;

  /// The link record in effect right now: the topology's, unless a
  /// mid-run line-type upgrade replaced the type and rate (propagation
  /// delay never changes — trunk mileage is fixed). All rate/params
  /// lookups on hot paths go through here.
  [[nodiscard]] const net::Link& effective_link(net::LinkId link) const {
    return effective_links_[link];
  }

  /// Routing updates currently in flight (origination slots plus flooded
  /// copies not yet consumed). Zero means every flooded report has been
  /// applied at every PSN — the quiescence gate for map-agreement checks.
  [[nodiscard]] std::size_t updates_in_flight() const { return updates_.in_use(); }

  /// Window stability telemetry; reconverge_sec is derived at call time.
  [[nodiscard]] StabilityStats stability() const;

  /// One applied line-type upgrade: which simplex link, when, and to what
  /// type. The audit uses this to pick the right era's movement limits for
  /// each reported-cost trace step and to skip the restart step across the
  /// swap itself (section 5.4: an upgraded line eases in from the new
  /// type's maximum, which is not a per-period movement).
  struct AppliedUpgrade {
    net::LinkId link = net::kInvalidLink;
    util::SimTime at;
    net::LineType type = net::LineType::kTerrestrial56;
  };
  [[nodiscard]] std::span<const AppliedUpgrade> upgrades_applied() const {
    return upgrades_applied_;
  }

  /// Takes a whole PSN down or up: all its trunks at once (a node crash /
  /// restart). Down nodes still exist in every map; their links carry
  /// Psn::kDownLinkCost so traffic routes around them.
  void set_node_up(net::NodeId node, bool up);

  /// The route a data packet submitted right now at `src` would take,
  /// walking each PSN's *own* current tree hop by hop — so during update
  /// transients this can legitimately report a loop, exactly as a real
  /// packet could experience one.
  [[nodiscard]] routing::PathTrace current_route(net::NodeId src,
                                                 net::NodeId dst) const;

  /// Cost most recently passed to on_cost_reported for each link (the
  /// link's metric initial cost before any report). The invariant layer
  /// checks each new report's movement against this baseline.
  [[nodiscard]] double last_reported_cost(net::LinkId link) const {
    return last_reported_cost_.at(link);
  }

  // ---- callbacks from Psn (not for external use) ----
  void on_generated() { ++stats_.packets_generated; }
  void on_delivered(const Packet& pkt);
  void on_queue_drop(const Packet& pkt);
  void on_unreachable_drop(const Packet& pkt);
  void on_loop_drop(const Packet& pkt);
  void on_update_originated() {
    ++stats_.updates_originated;
    ++counters_.updates_originated;
  }
  void on_update_packet_sent() {
    ++stats_.update_packets_sent;
    ++counters_.update_packets_sent;
  }
  void on_data_packet_sent() { ++counters_.packets_forwarded; }
  void on_transmission(net::LinkId link, util::SimTime busy);
  void on_cost_reported(net::LinkId link, double cost);
  /// Typed-event dispatch (sim/event.h): source ticks, propagation
  /// arrivals, transmit completions and the per-node timers all route
  /// through here — one switch, no per-event allocation.
  void handle_event(SimEvent& ev) override;
  /// The pooled packet slab every in-flight packet lives in; hot paths pass
  /// PacketHandle indices instead of moving Packet structs.
  [[nodiscard]] PacketPool& packet_pool() { return pool_; }
  /// The refcounted routing-update slab flooded packets share slots in.
  [[nodiscard]] UpdatePool& update_pool() { return updates_; }
  /// Pre-extends the bucketed statistics series (per-link utilization,
  /// drops) to cover sim time up to `end`, so recording during a
  /// measurement window that ends by then allocates nothing. Call before
  /// an AllocGuard-wrapped window.
  void reserve_stats_until(util::SimTime end);
  /// One measurement period closed on `link`: `previous` and `candidate`
  /// are the metric's consecutive per-period costs (kDownLinkCost while the
  /// link is down), `busy_fraction` the period's transmitter utilization.
  /// Enforces the exact section 4.3 movement bound between consecutive
  /// update periods (no significance-threshold widening — the metric
  /// limits every period's move, reported or not) and feeds the trace sink.
  /// The strong analysis types make the cost/cost/utilization argument row
  /// un-swappable at the call site.
  void on_period_measured(net::LinkId link, analysis::Cost previous,
                          analysis::Cost candidate,
                          analysis::Utilization busy_fraction);
  void deliver_to_peer(net::LinkId link, PacketHandle pkt);
  [[nodiscard]] std::uint64_t next_packet_id() { return ++packet_id_; }
  /// A batch of spf cost changes moved `delta` destinations' first hops at
  /// some PSN (stability telemetry; called by Psn after each batch).
  void on_route_change(long delta) {
    if (delta > 0) {
      stability_.route_changes += delta;
      last_route_change_at_ = sim_.now();
    }
  }

 private:
  struct Source {
    net::NodeId src;
    net::NodeId dst;
    traffic::PoissonProcess process;
    util::Rng size_rng;
  };
  /// Resources a line-type upgrade needs, built at install_faults time so
  /// applying the upgrade mid-window performs no allocation: the new link
  /// records, the freshly-constructed metrics (moved into the PSNs on
  /// apply) and the new cost bounds.
  struct PreparedUpgrade {
    std::uint32_t action_index = 0;
    net::Link fwd;
    net::Link rev;
    std::unique_ptr<metrics::LinkMetric> fwd_metric;
    std::unique_ptr<metrics::LinkMetric> rev_metric;
    std::optional<metrics::CostBounds> fwd_bounds;
    std::optional<metrics::CostBounds> rev_bounds;
  };
  void schedule_arrival(std::size_t source_index);
  void apply_fault(std::uint32_t action_index);
  void apply_upgrade(std::uint32_t action_index);

  const net::Topology* topo_;
  NetworkConfig cfg_;
  std::shared_ptr<const metrics::MetricFactory> factory_;
  Simulator sim_;
  PacketPool pool_;
  UpdatePool updates_;
  util::Rng rng_;
  traffic::PacketSizer sizer_;
  std::vector<std::unique_ptr<Psn>> psns_;
  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::vector<int>> min_hop_table_;
  NetworkStats stats_;
  std::function<void(const Packet&)> delivery_hook_;
  PacketTracer* tracer_ = nullptr;
  obs::TraceSink* trace_sink_ = nullptr;
  /// Live counters; SPF and event-engine fields are merged in counters().
  obs::Counters counters_;
  /// Per-link cost bounds promised by the factory (nullopt = unbounded).
  std::vector<std::optional<metrics::CostBounds>> link_bounds_;
  bool traffic_enabled_ = true;
  util::SimTime window_start_ = util::SimTime::zero();
  std::vector<stats::TimeSeries> link_busy_;
  std::vector<double> last_reported_cost_;
  bool hnspf_invariants_ = false;  ///< HN-SPF semantics known for all links
  std::vector<std::vector<std::pair<util::SimTime, double>>> cost_traces_;
  stats::TimeSeries drops_;
  std::uint64_t packet_id_ = 0;
  /// Mutable view of the topology's link records (line-type upgrades swap
  /// type and rate in place); indexed by LinkId like the topology's own.
  std::vector<net::Link> effective_links_;
  /// Compiled fault schedule (empty unless install_faults was called).
  std::vector<FaultAction> fault_actions_;
  std::vector<PreparedUpgrade> prepared_upgrades_;
  std::vector<AppliedUpgrade> upgrades_applied_;
  StabilityStats stability_;
  util::SimTime last_fault_at_ = util::SimTime::zero();
  util::SimTime last_route_change_at_ = util::SimTime::zero();
};

}  // namespace arpanet::sim
