// PSN: one packet-switching node.
//
// Each PSN owns, exactly as in the ARPANET scheme:
//   * a resident incremental SPF over its own copy of the network cost map,
//   * destination-based single-path forwarding (first hop from its tree),
//   * per-outgoing-link output queues — routing updates at high priority,
//     data FIFO behind them, finite data buffering with tail drop,
//   * the 10-second delay measurement and the link metric (min-hop, D-SPF
//     or HN-SPF) feeding the significance filter,
//   * origin + flood duplicate-suppression state for routing updates.
//
// The PSN calls back into Network for scheduling, packet hand-off to the
// neighbor PSN, and statistics.

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/metrics/delay_measurement.h"
#include "src/metrics/link_metric.h"
#include "src/net/topology.h"
#include "src/routing/algorithm.h"
#include "src/routing/flooding.h"
#include "src/routing/multipath.h"
#include "src/routing/significance.h"
#include "src/routing/spf.h"
#include "src/sim/event.h"
#include "src/sim/packet.h"
#include "src/sim/ring_queue.h"

namespace arpanet::sim {

class Network;

class Psn {
 public:
  Psn(Network& net, net::NodeId id, routing::LinkCosts initial_costs);

  /// Schedules the first measurement period (staggered per node).
  void start();

  /// A locally attached host hands in a packet for `dst`.
  void originate_data(net::NodeId dst, double bits);

  /// Host layer entry: injects a pre-framed packet (message fields set by
  /// the caller); the PSN stamps id/src/created and forwards it.
  void originate_packet(Packet pkt);

  /// A pooled packet arrives from a neighbor over `via_link` (an in-link of
  /// this node). Ownership of the handle transfers to the PSN.
  void receive(PacketHandle pkt, net::LinkId via_link);

  // ---- typed-event completions (called by Network::handle_event) ----
  /// The transmitter on `link` finished serializing the pooled packet.
  void on_transmit_complete(net::LinkId link, util::SimTime queue_delay,
                            util::SimTime tx_time, bool is_update,
                            PacketHandle pkt);
  /// The 10-second measurement-period timer fired.
  void measurement_period();
  /// The 1969 distance-vector exchange timer fired.
  void dv_tick();

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const routing::SpfTree& tree() const { return spf_.tree(); }
  [[nodiscard]] const routing::IncrementalSpf& spf() const { return spf_; }
  [[nodiscard]] long updates_originated() const { return updates_originated_; }

  /// Cost this node's metric most recently reported for one of its own
  /// outgoing links.
  [[nodiscard]] double reported_cost(net::LinkId out_link) const;

  /// Distance-vector mode accessors (RoutingAlgorithm::kDistanceVector).
  [[nodiscard]] double dv_distance(net::NodeId dst) const { return dv_dist_.at(dst); }
  [[nodiscard]] net::LinkId dv_next_hop(net::NodeId dst) const {
    return dv_next_.at(dst);
  }

  /// Marks a local outgoing link up/down. Down links advertise
  /// kDownLinkCost and stop transmitting; on up, the metric eases back in.
  void set_local_link_up(net::LinkId out_link, bool up);

  /// Administrative state of one local outgoing link.
  [[nodiscard]] bool link_up(net::LinkId out_link) const;

  /// Replaces one local out-link's metric, measurement and filter state
  /// after a mid-run line-type upgrade (Network::apply_upgrade). The new
  /// metric is pre-built by the caller so this allocates nothing inside the
  /// measurement window; if the link is up, the upgraded type's highest
  /// cost is flooded immediately (the section 5.4 restart rule — a changed
  /// line eases in exactly like a restarted one).
  void upgrade_local_link(net::LinkId out_link,
                          std::unique_ptr<metrics::LinkMetric> metric);

  /// Cost advertised for an unusable link: finite (so SPF stays total) but
  /// large enough that no path uses it unless the network is partitioned.
  static constexpr double kDownLinkCost = 1e7;

  /// Distance-vector "infinity": estimates at or above this are treated as
  /// unreachable.
  static constexpr double kUnreachable = 1e9;

 private:
  /// One waiting pooled packet: the queues move 16-byte records, never the
  /// Packet structs themselves.
  struct Queued {
    PacketHandle pkt = kInvalidPacketHandle;
    util::SimTime enqueued;
  };

  struct OutLink {
    net::LinkId id = net::kInvalidLink;
    RingQueue<Queued> data_q;
    RingQueue<Queued> update_q;
    bool busy = false;
    bool up = true;
    metrics::DelayMeasurement meas;
    std::unique_ptr<metrics::LinkMetric> metric;
    routing::SignificanceFilter filter;
    double reported = 0.0;
    /// Previous measurement period's candidate cost (reported or not) —
    /// the baseline the per-period movement invariant is checked against.
    double last_candidate = 0.0;

    OutLink(net::LinkId lid, metrics::DelayMeasurement m,
            std::unique_ptr<metrics::LinkMetric> met,
            routing::SignificanceFilter f, double initial)
        : id{lid}, meas{std::move(m)}, metric{std::move(met)},
          filter{std::move(f)}, reported{initial}, last_candidate{initial} {}
  };

  void forward(PacketHandle pkt);
  void enqueue(OutLink& out, PacketHandle pkt, bool priority);
  void drop_queued(OutLink& out);
  void maybe_start_tx(OutLink& out);
  void handle_update(PacketHandle pkt, net::LinkId via_link);
  void originate_update(std::span<const double> candidates);
  void flood_copies(UpdateHandle update, net::LinkId arrived_on);
  OutLink& out_for(net::LinkId link);

  // --- the 1969 distance-vector mode ---
  void dv_recompute();
  void dv_advertise();
  [[nodiscard]] double dv_link_metric(const OutLink& out) const;
  void handle_distance_vector(PacketHandle pkt, net::LinkId via_link);

  Network& net_;
  net::NodeId id_;
  routing::IncrementalSpf spf_;
  routing::FloodingState flood_state_;
  std::vector<OutLink> out_;
  std::uint64_t seq_ = 0;
  long updates_originated_ = 0;
  /// Scratch for measurement_period's per-link candidate costs; persistent
  /// so closing a period allocates nothing at steady state.
  std::vector<double> candidate_scratch_;

  // Distance-vector state (used only under RoutingAlgorithm::kDistanceVector):
  // own estimates, chosen next hops, and each neighbor's last advertisement
  // (indexed like out_).
  std::vector<double> dv_dist_;
  std::vector<net::LinkId> dv_next_;
  std::vector<std::vector<double>> dv_neighbor_;

  // Multipath extension state: equal-cost next-hop sets, rebuilt lazily
  // after cost changes, plus a per-destination round-robin cursor.
  routing::MultipathSets mp_sets_;
  std::vector<std::uint32_t> mp_cursor_;
  bool mp_dirty_ = true;
};

}  // namespace arpanet::sim
