// RFNM host-level flow control — the ARPANET's end-to-end message layer.
//
// The subnet the paper's metric runs in did not carry raw datagrams: hosts
// submitted *messages* (up to ~8000 bits) which the source IMP split into
// packets, the destination IMP reassembled, and acknowledged with a
// Request-For-Next-Message (RFNM). A source could have only a small window
// of messages outstanding per destination, which throttled offered load
// under congestion. This layer reproduces that mechanism on top of
// sim::Network:
//
//   * Poisson message arrivals per (source, destination) pair, message
//     sizes shifted-exponential, split into <= packet_bits_max packets;
//   * at most `window` messages outstanding per pair (window 1 = the
//     original scheme, 8 = the later one); excess messages queue at the
//     source host;
//   * destination reassembles (counts packets per message id) and returns a
//     small RFNM packet; its arrival opens the window;
//   * a lost packet is recovered by retransmitting the whole message when
//     the RFNM fails to arrive within rfnm_timeout (as the source IMP did);
//     duplicate deliveries after completion just re-trigger the RFNM.
//
// Use it when an experiment needs closed-loop load (e.g. congestion
// studies); the figure benches use open-loop Poisson datagrams, matching
// the paper's per-packet analysis.

#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/network.h"
#include "src/stats/summary.h"

namespace arpanet::sim {

struct HostFlowConfig {
  double mean_message_bits = 4000.0;  ///< multi-packet messages (~4 packets)
  double packet_bits_max = 1008.0;    ///< ARPANET packet payload ceiling
  int window = 1;                     ///< outstanding messages per pair
  util::SimTime rfnm_timeout = util::SimTime::from_sec(15);
  int max_retransmits = 10;           ///< per message, before giving up
  double rfnm_bits = 152.0;           ///< RFNM wire size
};

class HostFlowLayer : public EventSink {
 public:
  /// Attaches to `net` (installs the delivery hook; the layer must outlive
  /// the network run). Call add_traffic() for each pair, then run the
  /// network as usual.
  HostFlowLayer(Network& net, HostFlowConfig cfg);

  HostFlowLayer(const HostFlowLayer&) = delete;
  HostFlowLayer& operator=(const HostFlowLayer&) = delete;

  /// Poisson message traffic of `bps` average payload rate from src to dst.
  void add_pair(net::NodeId src, net::NodeId dst, double bps);

  /// Message traffic for every nonzero matrix entry.
  void add_traffic(const traffic::TrafficMatrix& matrix);

  // ---- results ----
  [[nodiscard]] long messages_offered() const { return messages_offered_; }
  [[nodiscard]] long messages_completed() const { return messages_completed_; }
  [[nodiscard]] long messages_abandoned() const { return messages_abandoned_; }
  [[nodiscard]] long retransmissions() const { return retransmissions_; }
  /// Host-to-host message latency: submission to RFNM receipt, ms.
  [[nodiscard]] const stats::Summary& message_delay_ms() const {
    return message_delay_ms_;
  }
  /// Completed payload bits per second over the run so far.
  [[nodiscard]] double goodput_bps() const;

  /// Typed-event dispatch: message arrivals and RFNM timeouts (sim/event.h)
  /// — the layer's recurring events schedule without allocation.
  void handle_event(SimEvent& ev) override;

 private:
  struct Message {
    std::uint64_t id = 0;
    double bits = 0.0;
    int packet_count = 0;
    util::SimTime submitted;
    int retransmits = 0;
  };

  struct Pair {
    net::NodeId src;
    net::NodeId dst;
    traffic::PoissonProcess arrivals;
    util::Rng size_rng;
    std::deque<Message> backlog;
    std::unordered_map<std::uint64_t, Message> outstanding;
  };

  void schedule_message(std::size_t pair_index);
  void try_send(Pair& pair);
  void transmit_message(Pair& pair, const Message& msg);
  void arm_timeout(std::size_t pair_index, std::uint64_t message_id,
                   int retransmit_generation);
  void on_timeout(std::size_t pair_index, std::uint64_t message_id,
                  int retransmit_generation);
  void on_delivered(const Packet& pkt);

  Network& net_;
  HostFlowConfig cfg_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  /// (src,dst) -> pair index, for hook dispatch.
  std::unordered_map<std::uint64_t, std::size_t> pair_index_;
  /// Destination-side reassembly: message id -> packets seen.
  std::unordered_map<std::uint64_t, std::uint16_t> reassembly_;
  std::unordered_set<std::uint64_t> completed_at_dst_;
  std::uint64_t next_message_id_ = 0;
  long messages_offered_ = 0;
  long messages_completed_ = 0;
  long messages_abandoned_ = 0;
  long retransmissions_ = 0;
  stats::Summary message_delay_ms_;
  double completed_bits_ = 0.0;
  util::SimTime start_;
};

}  // namespace arpanet::sim
