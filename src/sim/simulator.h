// Simulation driver: the virtual clock plus the event queue.

#pragma once

#include <cstdint>
#include <utility>

#include "src/sim/event.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace arpanet::sim {

class Simulator {
 public:
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules a typed event at an absolute time (must not be in the past).
  void schedule_at(util::SimTime at, SimEvent ev);
  /// Schedules a typed event `delay` from now.
  void schedule_in(util::SimTime delay, SimEvent ev) {
    schedule_at(now_ + delay, std::move(ev));
  }

  /// Callable convenience overloads (rare/test-only events; recurring kinds
  /// should use the allocation-free typed constructors in sim/event.h).
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  void schedule_at(util::SimTime at, F&& f) {
    schedule_at(at, SimEvent::callback(SmallFn{std::forward<F>(f)}));
  }
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  void schedule_in(util::SimTime delay, F&& f) {
    schedule_at(now_ + delay, SimEvent::callback(SmallFn{std::forward<F>(f)}));
  }

  /// Runs events until the queue is empty or the next event is later than
  /// `end`; the clock is left at `end`.
  void run_until(util::SimTime end);

  /// Executes a single event if one exists. Returns false on empty queue.
  bool step();

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }
  /// Pre-sizes the calendar queue for up to `events` pending events; see
  /// EventQueue::reserve.
  void reserve_events(std::size_t events) { queue_.reserve(events); }
  /// High-water mark of the pending-event count (telemetry).
  [[nodiscard]] std::size_t queue_peak_depth() const {
    return queue_.peak_size();
  }
  /// Event-slab slots ever allocated by the calendar queue (telemetry).
  [[nodiscard]] std::size_t queue_slab_slots() const {
    return queue_.slab_slots();
  }
  /// Calendar bucket-array rebuilds over the run (telemetry).
  [[nodiscard]] std::uint64_t queue_resizes() const {
    return queue_.resizes();
  }
  /// Events scheduled beyond the calendar window (telemetry).
  [[nodiscard]] std::uint64_t queue_overflow_scheduled() const {
    return queue_.overflow_scheduled();
  }

 private:
  EventQueue queue_;
  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t processed_ = 0;
};

}  // namespace arpanet::sim
