// Per-shard simulation state for the sharded (conservative parallel) engine.
//
// A Network partitions its PSNs into K shards (src/net/partition.h). Each
// shard owns everything its PSNs touch on the hot path — the event queue and
// clock, the packet and update slabs, and every mutable statistic — so a
// shard's worker thread never writes memory another shard reads during a
// sync window. Cross-shard packets are the single exception, and they travel
// through the outbox mailboxes below, which are only written in the run
// phase and only read in the drain phase, with a barrier between the two.
//
// K=1 is not a special engine: it is the same structure with one shard, one
// thread (the caller's), and mailboxes that never see a message, which is
// what keeps the golden battery byte-identical.

#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/counters.h"
#include "src/routing/flooding.h"
#include "src/sim/network_stats.h"
#include "src/sim/packet.h"
#include "src/sim/packet_pool.h"
#include "src/sim/simulator.h"
#include "src/sim/update_pool.h"
#include "src/stats/time_series.h"
#include "src/util/units.h"

namespace arpanet::sim {

/// A packet crossing a shard boundary. The sender copies the packet out of
/// its slab (releasing its own handle) and the receiver copies it into its
/// slab at drain time; pooled routing-update payloads are carried by value
/// so the two shards' UpdatePools never share a slot.
struct MailMsg {
  std::int64_t arrival_us = 0;  ///< absolute arrival time, microseconds
  net::LinkId link = net::kInvalidLink;
  Packet pkt;
  bool has_update = false;
  routing::RoutingUpdate update;
};

/// One primitive applied by a fault action on the shard owning its target.
/// A compiled FaultAction expands to per-shard op lists at install time
/// (a trunk's two simplex halves may live on different shards).
struct ShardFaultOp {
  enum class Kind : std::uint8_t {
    kSetLink,      ///< set_local_link_up(link, up) at `node`
    kUpgradeFwd,   ///< apply the forward half of prepared upgrade `prepared`
    kUpgradeRev,   ///< apply the reverse half of prepared upgrade `prepared`
  };
  Kind kind = Kind::kSetLink;
  bool up = false;
  net::NodeId node = net::kInvalidNode;
  net::LinkId link = net::kInvalidLink;
  std::uint32_t prepared = 0;
};

/// A fault action's slice of one shard's op list. `primary` marks the shard
/// that owns the action's nominal target; only it counts the action in its
/// stability stats so the merged faults_applied matches the plan.
struct ShardFaultAction {
  std::uint32_t action_index = 0;
  bool primary = false;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Everything one shard's worker thread owns. Cache-line aligned so two
/// shards' hot counters never share a line.
struct alignas(64) Shard {
  Shard(std::uint32_t idx, std::size_t shard_count, util::SimTime stats_bucket)
      : index{idx}, drops{stats_bucket}, outbox(shard_count) {
    pool.attach_update_pool(&updates);
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  std::uint32_t index = 0;
  Simulator sim;
  PacketPool pool;
  UpdatePool updates;

  // Window statistics (reset_stats zeroes these per shard).
  NetworkStats stats;
  StabilityStats stability;
  stats::TimeSeries drops;
  util::SimTime last_fault_at = util::SimTime::zero();
  util::SimTime last_route_change_at = util::SimTime::zero();

  /// Live whole-run counters (the engine/pool fields are read from sim and
  /// pool directly when merging).
  obs::Counters counters;

  /// Upgrades applied by this shard's fault ops, in this shard's time order.
  std::vector<AppliedUpgrade> upgrades_applied;

  /// Compiled fault schedule fragments owned by this shard.
  std::vector<ShardFaultAction> fault_actions;
  std::vector<ShardFaultOp> fault_ops;

  /// Packet-id sequence; ids are (shard << 48) | local so they stay unique
  /// network-wide without a shared counter (shard 0 therefore produces the
  /// same ids a single-threaded run does).
  std::uint64_t packet_seq = 0;

  /// outbox[d]: messages headed to shard d, appended during this shard's
  /// run phase, drained (and cleared) by shard d in the next drain phase.
  std::vector<std::vector<MailMsg>> outbox;

  /// Drain-phase scratch: (arrival, source shard, index) sort keys.
  struct MailRef {
    std::int64_t arrival_us;
    std::uint32_t src_shard;
    std::uint32_t idx;
  };
  std::vector<MailRef> drain_scratch;
};

}  // namespace arpanet::sim
