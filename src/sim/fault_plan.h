// Deterministic, schedule-driven fault injection.
//
// A FaultPlan is a declarative list of faults — link flaps, node
// crash/restart, regional outages, min-cut partitions, mid-run line-type
// upgrades — that a scenario applies to an otherwise fault-free run. The
// plan is compiled once at scenario setup into a flat, time-sorted vector
// of primitive FaultActions; sim::Network schedules one kFaultAction
// SimEvent per action through the ordinary calendar queue before the run
// starts. Nothing about fault dispatch allocates or consults wall-clock
// state, so golden byte-determinism and the zero-allocation measurement
// window both survive fault-heavy scenarios.
//
// Compilation validates the plan with ARPA_CHECK (death-testable): every
// fault must name an existing trunk or node, no two faults may hold the
// same trunk down over overlapping intervals (node and regional faults are
// expanded to their adjacent trunks first, so cross-kind overlap is caught
// too), and no action may land past the scenario end.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/line_type.h"
#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::sim {

/// The fault families the plan layer models (tentpole list, ISSUE 8).
enum class FaultKind : std::uint8_t {
  kLinkFlap,        ///< one trunk down for `dwell`, optionally repeating
  kNodeCrash,       ///< all trunks touching one node down for `dwell`
  kRegionalOutage,  ///< all trunks touching a node set down for `dwell`
  kPartition,       ///< min-cut between two node sets down for `dwell`
  kLineUpgrade,     ///< trunk swaps line type (rate, metric params) at `at`
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkFlap: return "flap";
    case FaultKind::kNodeCrash: return "crash";
    case FaultKind::kRegionalOutage: return "outage";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLineUpgrade: return "upgrade";
  }
  return "?";
}

/// One declared fault, before compilation against a topology.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkFlap;
  /// Onset of the first (or only) occurrence, relative to scenario start
  /// (t = 0 is the beginning of warm-up).
  util::SimTime at;
  /// How long the affected trunks stay down. Unused by kLineUpgrade.
  util::SimTime dwell;
  /// Flap repetition period (onset-to-onset). Zero = single occurrence.
  util::SimTime period;
  /// Flap repetitions. With a nonzero period, 0 means "repeat until the
  /// scenario horizon"; otherwise it must be >= 1.
  int count = 1;
  /// Trunk for kLinkFlap / kLineUpgrade: either simplex id names the trunk.
  net::LinkId link = net::kInvalidLink;
  /// Node for kNodeCrash.
  net::NodeId node = net::kInvalidNode;
  /// Node set for kRegionalOutage.
  std::vector<net::NodeId> region;
  /// Node sets for kPartition; the compiled cut severs every min-cut trunk
  /// separating side_a from side_b.
  std::vector<net::NodeId> side_a;
  std::vector<net::NodeId> side_b;
  /// New line type for kLineUpgrade.
  net::LineType new_type = net::LineType::kTerrestrial56;
};

/// One primitive state change, produced by FaultPlan::compile. Actions are
/// time-sorted; Network schedules them all before the run begins.
struct FaultAction {
  enum class Op : std::uint8_t { kLinkDown, kLinkUp, kNodeDown, kNodeUp, kUpgrade };
  Op op = Op::kLinkDown;
  util::SimTime at;
  net::LinkId link = net::kInvalidLink;
  net::NodeId node = net::kInvalidNode;
  net::LineType new_type = net::LineType::kTerrestrial56;
};

[[nodiscard]] constexpr const char* to_string(FaultAction::Op op) {
  switch (op) {
    case FaultAction::Op::kLinkDown: return "link-down";
    case FaultAction::Op::kLinkUp: return "link-up";
    case FaultAction::Op::kNodeDown: return "node-down";
    case FaultAction::Op::kNodeUp: return "node-up";
    case FaultAction::Op::kUpgrade: return "upgrade";
  }
  return "?";
}

/// A deterministic schedule of faults. Built fluently or parsed from the
/// sweep-friendly string form (see parse()); compiled against a concrete
/// topology at scenario setup.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Trunk `link` goes down at `at` for `dwell`, repeating every `period`
  /// (`count` times; count 0 with a period = until the horizon).
  FaultPlan& flap_link(net::LinkId link, util::SimTime at, util::SimTime dwell,
                       util::SimTime period = util::SimTime::zero(), int count = 1);

  /// Every trunk touching `node` goes down at `at`, back up at `at + dwell`.
  FaultPlan& crash_node(net::NodeId node, util::SimTime at, util::SimTime dwell);

  /// Every trunk touching any node in `region` goes down for `dwell`.
  FaultPlan& regional_outage(std::vector<net::NodeId> region, util::SimTime at,
                             util::SimTime dwell);

  /// A min-cut set of trunks separating `side_a` from `side_b` goes down at
  /// `at` and heals at `at + dwell`, splitting the network into (at least)
  /// two components for the dwell.
  FaultPlan& partition(std::vector<net::NodeId> side_a, std::vector<net::NodeId> side_b,
                       util::SimTime at, util::SimTime dwell);

  /// Trunk `link` becomes `new_type` at `at`: both simplex directions get
  /// the new rate and fresh metric state that eases in from the new type's
  /// highest cost, exactly like a link restart (paper section 5.4).
  FaultPlan& upgrade_line(net::LinkId link, util::SimTime at, net::LineType new_type);

  /// Parses the sweep-friendly string form: ';'-separated faults, each
  /// `kind:key=value,...`. Examples:
  ///   "flap:link=3,period_s=10,dwell_s=2"
  ///   "flap:link=2,at_s=24,dwell_s=6"
  ///   "crash:node=4,at_s=30,dwell_s=10"
  ///   "outage:nodes=1+2+5,at_s=30,dwell_s=10"
  ///   "partition:a=0+1+2,b=3+4+5,at_s=30,dwell_s=10"
  ///   "upgrade:link=1,at_s=60,type=112kb-multitrunk"
  /// Node/link lists use '+' separators. `at_s` defaults to `period_s`
  /// when repeating, else 0; `count` defaults to 0 (until horizon) when a
  /// period is given, else 1. Malformed specs throw std::invalid_argument.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }

  /// Expands and validates the plan against `topo` into a time-sorted
  /// action list. `horizon` is the scenario end (warmup + window); any
  /// action past it fails validation. Invalid plans abort via ARPA_CHECK:
  /// nonexistent links/nodes, non-positive dwell, overlapping
  /// down-intervals on the same trunk (across fault kinds), actions past
  /// the scenario end, or partition sides that overlap.
  [[nodiscard]] std::vector<FaultAction> compile(const net::Topology& topo,
                                                 util::SimTime horizon) const;

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace arpanet::sim
