#include "src/sim/fault_plan.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace arpanet::sim {

namespace {

// ---------------------------------------------------------------------------
// String-spec parsing. Setup-time only; errors are user configuration
// mistakes and throw std::invalid_argument (compile-time plan validation
// against a topology uses ARPA_CHECK instead, see compile()).

[[noreturn]] void parse_fail(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: " + why + " in \"" +
                              std::string(spec) + "\"");
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

double to_double(std::string_view spec, std::string_view key, std::string_view value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(std::string(value), &consumed);
    if (consumed != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    parse_fail(spec, "bad numeric value for '" + std::string(key) + "'");
  }
}

std::uint32_t to_id(std::string_view spec, std::string_view key, std::string_view value) {
  const double v = to_double(spec, key, value);
  if (v < 0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    parse_fail(spec, "'" + std::string(key) + "' must be a non-negative integer");
  }
  return static_cast<std::uint32_t>(v);
}

std::vector<net::NodeId> to_node_list(std::string_view spec, std::string_view key,
                                      std::string_view value) {
  std::vector<net::NodeId> out;
  for (std::string_view item : split(value, '+')) out.push_back(to_id(spec, key, item));
  if (out.empty()) parse_fail(spec, "empty node list for '" + std::string(key) + "'");
  return out;
}

net::LineType to_line_type(std::string_view spec, std::string_view value) {
  const net::LineTypeInfo* all = net::all_line_types();
  for (int i = 0; i < net::kLineTypeCount; ++i) {
    if (all[i].name == value) return all[i].type;
  }
  parse_fail(spec, "unknown line type '" + std::string(value) + "'");
}

struct KeyValues {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;

  [[nodiscard]] std::string_view get(std::string_view key) const {
    for (const auto& kv : pairs) {
      if (kv.first == key) return kv.second;
    }
    return {};
  }
  [[nodiscard]] bool has(std::string_view key) const {
    for (const auto& kv : pairs) {
      if (kv.first == key) return true;
    }
    return false;
  }
};

KeyValues parse_kvs(std::string_view spec, std::string_view body,
                    std::initializer_list<std::string_view> allowed) {
  KeyValues kvs;
  for (std::string_view item : split(body, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      parse_fail(spec, "expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      parse_fail(spec, "unknown key '" + std::string(key) + "'");
    }
    if (kvs.has(key)) parse_fail(spec, "duplicate key '" + std::string(key) + "'");
    kvs.pairs.emplace_back(key, item.substr(eq + 1));
  }
  return kvs;
}

void require(std::string_view spec, const KeyValues& kvs,
             std::initializer_list<std::string_view> keys) {
  for (std::string_view key : keys) {
    if (!kvs.has(key)) parse_fail(spec, "missing required key '" + std::string(key) + "'");
  }
}

// ---------------------------------------------------------------------------
// Min-cut (Edmonds-Karp, unit trunk capacities). The topology's two simplex
// links per trunk are exactly the two unit-capacity directions of an
// undirected edge, so max-flow between the sides followed by a residual
// reachability pass yields a minimum set of trunks whose removal separates
// side_a from side_b.

struct FlowEdge {
  std::uint32_t to = 0;
  int cap = 0;
  std::size_t rev = 0;             // index of the reverse edge in adj[to]
  net::LinkId link = net::kInvalidLink;  // original simplex link, if any
};

class FlowGraph {
 public:
  explicit FlowGraph(std::size_t nodes) : adj_(nodes) {}

  void add_edge(std::uint32_t from, std::uint32_t to, int cap, net::LinkId link) {
    adj_[from].push_back(FlowEdge{to, cap, adj_[to].size(), link});
    adj_[to].push_back(FlowEdge{from, 0, adj_[from].size() - 1, net::kInvalidLink});
  }

  int max_flow(std::uint32_t source, std::uint32_t sink) {
    int total = 0;
    while (true) {
      // BFS for a shortest augmenting path.
      std::vector<std::pair<std::uint32_t, std::size_t>> parent(
          adj_.size(), {source, static_cast<std::size_t>(-1)});
      std::vector<bool> seen(adj_.size(), false);
      std::queue<std::uint32_t> frontier;
      frontier.push(source);
      seen[source] = true;
      while (!frontier.empty() && !seen[sink]) {
        const std::uint32_t v = frontier.front();
        frontier.pop();
        for (std::size_t i = 0; i < adj_[v].size(); ++i) {
          const FlowEdge& e = adj_[v][i];
          if (e.cap > 0 && !seen[e.to]) {
            seen[e.to] = true;
            parent[e.to] = {v, i};
            frontier.push(e.to);
          }
        }
      }
      if (!seen[sink]) return total;
      // Unit capacities: every augmenting path carries exactly 1.
      for (std::uint32_t v = sink; v != source;) {
        const auto [pv, pi] = parent[v];
        FlowEdge& e = adj_[pv][pi];
        e.cap -= 1;
        adj_[e.to][e.rev].cap += 1;
        v = pv;
      }
      total += 1;
    }
  }

  /// Nodes reachable from `source` in the residual graph (call after
  /// max_flow); the saturated edges leaving this set form a minimum cut.
  [[nodiscard]] std::vector<bool> residual_reachable(std::uint32_t source) const {
    std::vector<bool> seen(adj_.size(), false);
    std::queue<std::uint32_t> frontier;
    frontier.push(source);
    seen[source] = true;
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop();
      for (const FlowEdge& e : adj_[v]) {
        if (e.cap > 0 && !seen[e.to]) {
          seen[e.to] = true;
          frontier.push(e.to);
        }
      }
    }
    return seen;
  }

  [[nodiscard]] const std::vector<std::vector<FlowEdge>>& adj() const { return adj_; }

 private:
  std::vector<std::vector<FlowEdge>> adj_;
};

/// Canonical trunk id: the smaller of the two simplex ids.
net::LinkId canonical_trunk(const net::Topology& topo, net::LinkId link) {
  const net::LinkId rev = topo.link(link).reverse;
  return std::min(link, rev);
}

std::vector<net::LinkId> min_cut_trunks(const net::Topology& topo,
                                        const std::vector<net::NodeId>& side_a,
                                        const std::vector<net::NodeId>& side_b) {
  const std::uint32_t n = static_cast<std::uint32_t>(topo.node_count());
  const std::uint32_t source = n;
  const std::uint32_t sink = n + 1;
  FlowGraph graph{n + 2};
  for (const net::Link& l : topo.links()) {
    graph.add_edge(l.from, l.to, 1, l.id);
  }
  const int uncuttable = static_cast<int>(topo.link_count()) + 1;
  for (net::NodeId a : side_a) graph.add_edge(source, a, uncuttable, net::kInvalidLink);
  for (net::NodeId b : side_b) graph.add_edge(b, sink, uncuttable, net::kInvalidLink);
  const int flow = graph.max_flow(source, sink);
  ARPA_CHECK(flow > 0 && flow <= static_cast<int>(topo.trunk_count()))
      << "partition: sides are not connected by any trunk (flow " << flow << ")";
  const std::vector<bool> reach = graph.residual_reachable(source);
  std::vector<net::LinkId> cut;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!reach[v]) continue;
    for (const FlowEdge& e : graph.adj()[v]) {
      if (e.link == net::kInvalidLink || reach[e.to]) continue;
      const net::LinkId trunk = canonical_trunk(topo, e.link);
      if (std::find(cut.begin(), cut.end(), trunk) == cut.end()) cut.push_back(trunk);
    }
  }
  std::sort(cut.begin(), cut.end());
  ARPA_CHECK(!cut.empty()) << "partition: min-cut produced no trunks";
  return cut;
}

// ---------------------------------------------------------------------------
// Compile-time validation helpers.

void check_node(const net::Topology& topo, net::NodeId node) {
  ARPA_CHECK(node < topo.node_count())
      << "fault names nonexistent node " << node << " (topology has "
      << topo.node_count() << " nodes)";
}

void check_link(const net::Topology& topo, net::LinkId link) {
  ARPA_CHECK(link < topo.link_count())
      << "fault names nonexistent link " << link << " (topology has "
      << topo.link_count() << " simplex links)";
}

/// Appends the canonical trunks adjacent to `node`, deduplicating in place.
void add_adjacent_trunks(const net::Topology& topo, net::NodeId node,
                         std::vector<net::LinkId>& trunks) {
  for (net::LinkId l : topo.out_links(node)) {
    const net::LinkId trunk = canonical_trunk(topo, l);
    if (std::find(trunks.begin(), trunks.end(), trunk) == trunks.end()) {
      trunks.push_back(trunk);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Fluent builders.

FaultPlan& FaultPlan::flap_link(net::LinkId link, util::SimTime at, util::SimTime dwell,
                                util::SimTime period, int count) {
  FaultSpec s;
  s.kind = FaultKind::kLinkFlap;
  s.link = link;
  s.at = at;
  s.dwell = dwell;
  s.period = period;
  s.count = count;
  specs_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::crash_node(net::NodeId node, util::SimTime at, util::SimTime dwell) {
  FaultSpec s;
  s.kind = FaultKind::kNodeCrash;
  s.node = node;
  s.at = at;
  s.dwell = dwell;
  specs_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::regional_outage(std::vector<net::NodeId> region, util::SimTime at,
                                      util::SimTime dwell) {
  FaultSpec s;
  s.kind = FaultKind::kRegionalOutage;
  s.region = std::move(region);
  s.at = at;
  s.dwell = dwell;
  specs_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<net::NodeId> side_a,
                                std::vector<net::NodeId> side_b, util::SimTime at,
                                util::SimTime dwell) {
  FaultSpec s;
  s.kind = FaultKind::kPartition;
  s.side_a = std::move(side_a);
  s.side_b = std::move(side_b);
  s.at = at;
  s.dwell = dwell;
  specs_.push_back(std::move(s));
  return *this;
}

FaultPlan& FaultPlan::upgrade_line(net::LinkId link, util::SimTime at,
                                   net::LineType new_type) {
  FaultSpec s;
  s.kind = FaultKind::kLineUpgrade;
  s.link = link;
  s.at = at;
  s.new_type = new_type;
  specs_.push_back(std::move(s));
  return *this;
}

// ---------------------------------------------------------------------------
// String form.

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      parse_fail(entry, "expected kind:key=value,...");
    }
    const std::string_view kind = entry.substr(0, colon);
    const std::string_view body = entry.substr(colon + 1);
    if (kind == "flap") {
      const KeyValues kvs =
          parse_kvs(entry, body, {"link", "at_s", "dwell_s", "period_s", "count"});
      require(entry, kvs, {"link", "dwell_s"});
      const double period_s =
          kvs.has("period_s") ? to_double(entry, "period_s", kvs.get("period_s")) : 0.0;
      const double at_s =
          kvs.has("at_s") ? to_double(entry, "at_s", kvs.get("at_s")) : period_s;
      const int count = kvs.has("count")
                            ? static_cast<int>(to_id(entry, "count", kvs.get("count")))
                            : (period_s > 0.0 ? 0 : 1);
      plan.flap_link(to_id(entry, "link", kvs.get("link")), util::SimTime::from_sec(at_s),
                     util::SimTime::from_sec(to_double(entry, "dwell_s", kvs.get("dwell_s"))),
                     util::SimTime::from_sec(period_s), count);
    } else if (kind == "crash") {
      const KeyValues kvs = parse_kvs(entry, body, {"node", "at_s", "dwell_s"});
      require(entry, kvs, {"node", "at_s", "dwell_s"});
      plan.crash_node(to_id(entry, "node", kvs.get("node")),
                      util::SimTime::from_sec(to_double(entry, "at_s", kvs.get("at_s"))),
                      util::SimTime::from_sec(to_double(entry, "dwell_s", kvs.get("dwell_s"))));
    } else if (kind == "outage") {
      const KeyValues kvs = parse_kvs(entry, body, {"nodes", "at_s", "dwell_s"});
      require(entry, kvs, {"nodes", "at_s", "dwell_s"});
      plan.regional_outage(to_node_list(entry, "nodes", kvs.get("nodes")),
                           util::SimTime::from_sec(to_double(entry, "at_s", kvs.get("at_s"))),
                           util::SimTime::from_sec(to_double(entry, "dwell_s", kvs.get("dwell_s"))));
    } else if (kind == "partition") {
      const KeyValues kvs = parse_kvs(entry, body, {"a", "b", "at_s", "dwell_s"});
      require(entry, kvs, {"a", "b", "at_s", "dwell_s"});
      plan.partition(to_node_list(entry, "a", kvs.get("a")),
                     to_node_list(entry, "b", kvs.get("b")),
                     util::SimTime::from_sec(to_double(entry, "at_s", kvs.get("at_s"))),
                     util::SimTime::from_sec(to_double(entry, "dwell_s", kvs.get("dwell_s"))));
    } else if (kind == "upgrade") {
      const KeyValues kvs = parse_kvs(entry, body, {"link", "at_s", "type"});
      require(entry, kvs, {"link", "at_s", "type"});
      plan.upgrade_line(to_id(entry, "link", kvs.get("link")),
                        util::SimTime::from_sec(to_double(entry, "at_s", kvs.get("at_s"))),
                        to_line_type(entry, kvs.get("type")));
    } else {
      parse_fail(entry, "unknown fault kind '" + std::string(kind) + "'");
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Compilation.

std::vector<FaultAction> FaultPlan::compile(const net::Topology& topo,
                                            util::SimTime horizon) const {
  std::vector<FaultAction> actions;
  // Every down/up interval a compiled action pair holds on a trunk, for the
  // cross-fault overlap check. Node faults expand to their adjacent trunks
  // here so a crash overlapping a flap on an adjacent trunk is caught too.
  struct TrunkEvent {
    net::LinkId trunk;
    util::SimTime at;
    bool down;
  };
  std::vector<TrunkEvent> trunk_events;

  auto emit_interval = [&](FaultAction::Op down_op, FaultAction::Op up_op,
                           net::LinkId link, net::NodeId node, util::SimTime at,
                           util::SimTime dwell,
                           const std::vector<net::LinkId>& trunks) {
    ARPA_CHECK(dwell > util::SimTime::zero())
        << "fault dwell must be > 0 (got " << dwell.sec() << "s)";
    ARPA_CHECK(at >= util::SimTime::zero())
        << "fault onset must be >= 0 (got " << at.sec() << "s)";
    ARPA_CHECK(at + dwell <= horizon)
        << "fault event past scenario end: interval [" << at.sec() << "s, "
        << (at + dwell).sec() << "s] vs horizon " << horizon.sec() << "s";
    FaultAction down;
    down.op = down_op;
    down.at = at;
    down.link = link;
    down.node = node;
    actions.push_back(down);
    FaultAction up = down;
    up.op = up_op;
    up.at = at + dwell;
    actions.push_back(up);
    for (net::LinkId trunk : trunks) {
      trunk_events.push_back({trunk, at, true});
      trunk_events.push_back({trunk, at + dwell, false});
    }
  };

  std::vector<net::LinkId> trunks_scratch;
  for (const FaultSpec& s : specs_) {
    trunks_scratch.clear();
    switch (s.kind) {
      case FaultKind::kLinkFlap: {
        check_link(topo, s.link);
        trunks_scratch.push_back(canonical_trunk(topo, s.link));
        const bool repeating = s.period > util::SimTime::zero();
        ARPA_CHECK(repeating || s.count == 1)
            << "flap without a period must have count 1 (got " << s.count << ")";
        ARPA_CHECK(!repeating || s.period > s.dwell)
            << "flap period (" << s.period.sec() << "s) must exceed dwell ("
            << s.dwell.sec() << "s): consecutive occurrences would hold "
            << "overlapping down-intervals on link " << s.link;
        ARPA_CHECK(s.count >= 0) << "flap count must be >= 0 (got " << s.count << ")";
        int emitted = 0;
        for (util::SimTime at = s.at;; at += s.period) {
          if (s.count > 0 && emitted >= s.count) break;
          if (s.count == 0 && at + s.dwell > horizon) break;  // until horizon
          emit_interval(FaultAction::Op::kLinkDown, FaultAction::Op::kLinkUp, s.link,
                        net::kInvalidNode, at, s.dwell, trunks_scratch);
          ++emitted;
          if (!repeating) break;
        }
        ARPA_CHECK(emitted > 0)
            << "flap on link " << s.link << " emits no occurrence before the "
            << "scenario end (" << horizon.sec() << "s)";
        break;
      }
      case FaultKind::kNodeCrash: {
        check_node(topo, s.node);
        add_adjacent_trunks(topo, s.node, trunks_scratch);
        emit_interval(FaultAction::Op::kNodeDown, FaultAction::Op::kNodeUp,
                      net::kInvalidLink, s.node, s.at, s.dwell, trunks_scratch);
        break;
      }
      case FaultKind::kRegionalOutage: {
        ARPA_CHECK(!s.region.empty()) << "regional outage with empty node set";
        for (net::NodeId node : s.region) {
          check_node(topo, node);
          add_adjacent_trunks(topo, node, trunks_scratch);
        }
        // Expand to explicit per-trunk actions so a trunk interior to the
        // region (both endpoints down) is taken down exactly once.
        for (net::LinkId trunk : trunks_scratch) {
          emit_interval(FaultAction::Op::kLinkDown, FaultAction::Op::kLinkUp, trunk,
                        net::kInvalidNode, s.at, s.dwell, {trunk});
        }
        break;
      }
      case FaultKind::kPartition: {
        for (net::NodeId node : s.side_a) check_node(topo, node);
        for (net::NodeId node : s.side_b) check_node(topo, node);
        ARPA_CHECK(!s.side_a.empty() && !s.side_b.empty())
            << "partition sides must be non-empty";
        for (net::NodeId a : s.side_a) {
          ARPA_CHECK(std::find(s.side_b.begin(), s.side_b.end(), a) == s.side_b.end())
              << "partition sides overlap at node " << a;
        }
        for (net::LinkId trunk : min_cut_trunks(topo, s.side_a, s.side_b)) {
          emit_interval(FaultAction::Op::kLinkDown, FaultAction::Op::kLinkUp, trunk,
                        net::kInvalidNode, s.at, s.dwell, {trunk});
        }
        break;
      }
      case FaultKind::kLineUpgrade: {
        check_link(topo, s.link);
        ARPA_CHECK(s.at >= util::SimTime::zero())
            << "fault onset must be >= 0 (got " << s.at.sec() << "s)";
        ARPA_CHECK(s.at <= horizon)
            << "fault event past scenario end: upgrade at " << s.at.sec()
            << "s vs horizon " << horizon.sec() << "s";
        FaultAction a;
        a.op = FaultAction::Op::kUpgrade;
        a.at = s.at;
        a.link = s.link;
        a.new_type = s.new_type;
        actions.push_back(a);
        break;
      }
    }
  }

  // Overlap validation: per trunk, the down/up boundary sequence sorted by
  // time must strictly alternate down, up, down, up... — two downs in a row
  // (or coincident boundaries) mean two faults hold the trunk down over
  // overlapping intervals, which would heal early at the first up event.
  std::stable_sort(trunk_events.begin(), trunk_events.end(),
                   [](const TrunkEvent& x, const TrunkEvent& y) {
                     if (x.trunk != y.trunk) return x.trunk < y.trunk;
                     return x.at < y.at;
                   });
  for (std::size_t i = 1; i < trunk_events.size(); ++i) {
    const TrunkEvent& prev = trunk_events[i - 1];
    const TrunkEvent& cur = trunk_events[i];
    if (cur.trunk != prev.trunk) continue;
    ARPA_CHECK(cur.at > prev.at && cur.down != prev.down)
        << "overlapping down-intervals on trunk " << cur.trunk << " around t="
        << cur.at.sec() << "s: each trunk must be fully up between faults";
  }

  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  return actions;
}

}  // namespace arpanet::sim
