#include "src/sim/psn.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/analysis/invariants.h"
#include "src/metrics/metric_factory.h"
#include "src/sim/network.h"
#include "src/util/check.h"

namespace arpanet::sim {

namespace {

routing::SignificanceFilter make_filter(const metrics::LinkMetric& metric,
                                        double threshold_override) {
  if (threshold_override >= 0.0) {
    return routing::SignificanceFilter{
        routing::SignificanceFilter::fixed_config(threshold_override)};
  }
  return routing::SignificanceFilter{
      metric.threshold_decays()
          ? routing::SignificanceFilter::dspf_config()
          : routing::SignificanceFilter::fixed_config(metric.change_threshold())};
}

}  // namespace

Psn::Psn(Network& net, net::NodeId id, routing::LinkCosts initial_costs)
    : net_{net},
      id_{id},
      spf_{net.topology(), id, std::move(initial_costs)},
      flood_state_{net.topology().node_count()} {
  const net::Topology& topo = net.topology();
  out_.reserve(topo.out_links(id).size());
  for (const net::LinkId lid : topo.out_links(id)) {
    const net::Link& link = topo.link(lid);
    auto metric = net.metric_factory().create(link, net.config().line_params);
    auto filter =
        make_filter(*metric, net.config().significance_threshold_override);
    const double initial = metric->initial_cost();
    filter.force_report(initial);
    out_.emplace_back(lid,
                      metrics::DelayMeasurement{link.rate, link.prop_delay},
                      std::move(metric), std::move(filter), initial);
    // Pre-size the rings to their working bounds so no queue grows
    // mid-measurement: data_q is hard-capped at queue_capacity by the drop
    // check in enqueue(); update_q's working set is one in-flight update
    // per origin node.
    OutLink& out = out_.back();
    out.data_q.reserve(static_cast<std::size_t>(net.config().queue_capacity));
    out.update_q.reserve(topo.node_count());
  }
  // Sized up front so the first fault-driven origination (which can precede
  // the first measurement period) already finds warm storage.
  candidate_scratch_.reserve(out_.size());
}

void Psn::start() {
  if (net_.config().algorithm == routing::RoutingAlgorithm::kDistanceVector) {
    const std::size_t n = net_.topology().node_count();
    dv_dist_.assign(n, kUnreachable);
    dv_dist_[id_] = 0.0;
    dv_next_.assign(n, net::kInvalidLink);
    dv_neighbor_.assign(out_.size(), std::vector<double>(n, kUnreachable));
    const util::SimTime period = net_.config().dv_exchange_period;
    const util::SimTime offset = util::SimTime::from_us(
        period.us() * (static_cast<std::int64_t>(id_) % 16) / 16);
    net_.simulator().schedule_in(period + offset, SimEvent::dv_tick(net_, id_));
    return;
  }
  // Measurement periods are staggered across nodes (the real PSNs' clocks
  // were unsynchronized); the *response* to an update is still
  // near-simultaneous network-wide because flooding is fast.
  const util::SimTime period = net_.config().measurement_period;
  const auto nodes = static_cast<std::int64_t>(net_.topology().node_count());
  const util::SimTime offset = util::SimTime::from_us(
      period.us() * (static_cast<std::int64_t>(id_) % nodes) / std::max<std::int64_t>(nodes, 1));
  net_.simulator().schedule_in(period + offset,
                               SimEvent::measurement_period(net_, id_));
}

Psn::OutLink& Psn::out_for(net::LinkId link) {
  // out_ was filled in out_links(id_) order, so the CSR slot of the link
  // within its from-node's span is also its index here.
  const net::Topology& topo = net_.topology();
  if (link >= topo.link_count() || topo.link(link).from != id_) {
    throw std::out_of_range("link is not an out-link of this PSN");
  }
  return out_[topo.out_pos(link)];
}

double Psn::reported_cost(net::LinkId out_link) const {
  const net::Topology& topo = net_.topology();
  if (out_link >= topo.link_count() || topo.link(out_link).from != id_) {
    throw std::out_of_range("link is not an out-link of this PSN");
  }
  return out_[topo.out_pos(out_link)].reported;
}

bool Psn::link_up(net::LinkId out_link) const {
  const net::Topology& topo = net_.topology();
  if (out_link >= topo.link_count() || topo.link(out_link).from != id_) {
    throw std::out_of_range("link is not an out-link of this PSN");
  }
  return out_[topo.out_pos(out_link)].up;
}

void Psn::originate_data(net::NodeId dst, double bits) {
  PacketPool& pool = net_.packet_pool();
  const PacketHandle h = pool.acquire();
  Packet& pkt = pool.at(h);
  pkt.id = net_.next_packet_id();
  pkt.kind = Packet::Kind::kData;
  pkt.src = id_;
  pkt.dst = dst;
  pkt.bits = bits;
  pkt.created = net_.now();
  net_.on_generated();
  net_.trace(TraceEventKind::kOriginated, pkt, id_);
  forward(h);
}

void Psn::originate_packet(Packet pkt) {
  PacketPool& pool = net_.packet_pool();
  const PacketHandle h = pool.acquire(std::move(pkt));
  Packet& p = pool.at(h);
  p.id = net_.next_packet_id();
  p.src = id_;
  p.created = net_.now();
  net_.on_generated();
  net_.trace(TraceEventKind::kOriginated, p, id_);
  forward(h);
}

// ARPALINT-HOTPATH-BEGIN: the per-packet forwarding core — receive,
// route, enqueue, transmit completion — runs once per hop.
void Psn::receive(PacketHandle h, net::LinkId via_link) {
  PacketPool& pool = net_.packet_pool();
  Packet& pkt = pool.at(h);
  ++pkt.hops;
  if (pkt.kind == Packet::Kind::kRoutingUpdate) {
    handle_update(h, via_link);
    return;
  }
  if (pkt.kind == Packet::Kind::kDistanceVector) {
    handle_distance_vector(h, via_link);
    return;
  }
  if (pkt.dst == id_) {
    net_.trace(TraceEventKind::kDelivered, pkt, id_, via_link);
    net_.on_delivered(pkt);
    pool.release(h);
    return;
  }
  // A hop budget keeps packets finite under the 1969 algorithm's transient
  // loops (SPF forwarding never loops between consistent tables, so the
  // budget is inert there). Loop drops are an observable statistic.
  if (pkt.hops >= net_.config().hop_limit) {
    net_.trace(TraceEventKind::kDroppedLoop, pkt, id_, via_link);
    net_.on_loop_drop(pkt);
    pool.release(h);
    return;
  }
  forward(h);
}

void Psn::forward(PacketHandle h) {
  Packet& pkt = net_.packet_pool().at(h);
  net::LinkId next = net::kInvalidLink;
  if (net_.config().algorithm == routing::RoutingAlgorithm::kDistanceVector) {
    next = dv_next_[pkt.dst];
  } else if (net_.config().multipath) {
    if (mp_dirty_) {
      // Cap the near-equality tolerance below the cheapest current cost so
      // every admitted next hop still strictly shortens the path.
      double min_cost = std::numeric_limits<double>::infinity();
      for (const double c : spf_.costs()) min_cost = std::min(min_cost, c);
      const double tolerance =
          std::min(net_.config().multipath_tolerance, 0.49 * min_cost);
      // ARPALINT-ALLOW(hot-path-alloc): the lazy multipath rebuild runs per
      // cost change, not per packet, and only when multipath is enabled.
      mp_sets_ = routing::MultipathSets::compute(net_.topology(), id_,
                                                 spf_.costs(), tolerance);
      // ARPALINT-ALLOW(hot-path-alloc): cursor vector retains capacity.
      mp_cursor_.assign(net_.topology().node_count(), 0);
      mp_dirty_ = false;
    }
    const std::span<const net::LinkId> hops = mp_sets_.next_hops(pkt.dst);
    if (!hops.empty()) {
      next = hops[mp_cursor_[pkt.dst]++ % hops.size()];
    }
  } else {
    next = spf_.tree().first_hop[pkt.dst];
  }
  if (next == net::kInvalidLink) {
    net_.trace(TraceEventKind::kDroppedUnreachable, pkt, id_);
    net_.on_unreachable_drop(pkt);
    net_.packet_pool().release(h);
    return;
  }
  enqueue(out_for(next), h, /*priority=*/false);
}

void Psn::enqueue(OutLink& out, PacketHandle h, bool priority) {
  const Packet& pkt = net_.packet_pool().at(h);
  if (!out.up) {
    // A dead line accepts nothing: whatever is routed or flooded onto it is
    // lost. Flooded updates are redundant by design and not a charged drop;
    // data packets count against the line's queue.
    if (!priority) {
      net_.trace(TraceEventKind::kDroppedQueue, pkt, id_, out.id);
      net_.on_queue_drop(pkt);
    }
    net_.packet_pool().release(h);
    return;
  }
  if (priority) {
    net_.trace(TraceEventKind::kEnqueued, pkt, id_, out.id);
    // ARPALINT-ALLOW(hot-path-alloc): RingQueue retains its power-of-two capacity
    out.update_q.push_back(Queued{h, net_.now()});
  } else {
    if (static_cast<int>(out.data_q.size()) >= net_.config().queue_capacity) {
      net_.trace(TraceEventKind::kDroppedQueue, pkt, id_, out.id);
      net_.on_queue_drop(pkt);
      net_.packet_pool().release(h);
      return;
    }
    net_.trace(TraceEventKind::kEnqueued, pkt, id_, out.id);
    // ARPALINT-ALLOW(hot-path-alloc): see above — capacity-retaining ring.
    out.data_q.push_back(Queued{h, net_.now()});
  }
  maybe_start_tx(out);
}

// Empties a dead line's queues: a trunk loses everything it was holding the
// moment it goes down. Pool releases recycle handles from the freelist, so
// this stays clean inside the zero-allocation measurement window.
void Psn::drop_queued(OutLink& out) {
  PacketPool& pool = net_.packet_pool();
  while (!out.update_q.empty()) {
    pool.release(out.update_q.front().pkt);
    out.update_q.pop_front();
  }
  while (!out.data_q.empty()) {
    const Queued item = out.data_q.front();
    out.data_q.pop_front();
    net_.trace(TraceEventKind::kDroppedQueue, pool.at(item.pkt), id_, out.id);
    net_.on_queue_drop(pool.at(item.pkt));
    pool.release(item.pkt);
  }
}

void Psn::maybe_start_tx(OutLink& out) {
  if (out.busy || !out.up) return;
  RingQueue<Queued>* q = nullptr;
  if (!out.update_q.empty()) {
    q = &out.update_q;
  } else if (!out.data_q.empty()) {
    q = &out.data_q;
  } else {
    return;
  }

  const Queued item = q->front();
  q->pop_front();
  out.busy = true;

  // The effective link record: a mid-run line-type upgrade changes the rate.
  const net::Link& link = net_.effective_link(out.id);
  const Packet& pkt = net_.packet_pool().at(item.pkt);
  const util::SimTime queue_delay = net_.now() - item.enqueued;
  const util::SimTime tx = link.rate.transmission_time(pkt.bits);
  // Both update kinds (flooded link costs, distance vectors) count as
  // routing overhead.
  const bool is_update = pkt.kind != Packet::Kind::kData;

  // The packet rides the typed completion event; no closure, no copy.
  net_.simulator().schedule_in(
      tx, SimEvent::transmit_complete(net_, id_, out.id, item.pkt, queue_delay,
                                      tx, is_update));
}

void Psn::on_transmit_complete(net::LinkId link, util::SimTime queue_delay,
                               util::SimTime tx_time, bool is_update,
                               PacketHandle pkt) {
  OutLink& o = out_for(link);
  if (!o.up) {
    // The line died while the packet was serializing onto it: the packet is
    // lost, and the queues were already drained by set_local_link_up.
    if (!is_update) {
      net_.trace(TraceEventKind::kDroppedQueue, net_.packet_pool().at(pkt),
                 id_, link);
      net_.on_queue_drop(net_.packet_pool().at(pkt));
    }
    net_.packet_pool().release(pkt);
    o.busy = false;
    return;
  }
  o.meas.record_packet(queue_delay, tx_time);
  net_.on_transmission(link, tx_time);
  net_.trace(TraceEventKind::kTransmitted, net_.packet_pool().at(pkt), id_,
             link);
  if (is_update) {
    net_.on_update_packet_sent();
  } else {
    net_.on_data_packet_sent();
  }
  // Hand the packet to the propagation medium; it arrives at the neighbor
  // prop_delay later (Network routes it to the peer PSN).
  net_.deliver_to_peer(link, pkt);
  o.busy = false;
  maybe_start_tx(o);
}
// ARPALINT-HOTPATH-END

// ARPALINT-HOTPATH-BEGIN: update receipt + flooding, once per flooded copy.
void Psn::handle_update(PacketHandle h, net::LinkId via_link) {
  PacketPool& pool = net_.packet_pool();
  UpdatePool& updates = net_.update_pool();
  // Take over the packet's reference before the slot is reset, keeping the
  // pooled payload alive past the release.
  const UpdateHandle uh = pool.at(h).update;
  pool.at(h).update = kInvalidUpdateHandle;
  pool.release(h);
  if (uh == kInvalidUpdateHandle) {
    throw std::logic_error("update packet without payload");
  }
  const routing::RoutingUpdate& update = updates.at(uh);
  if (!flood_state_.accept(update)) {  // duplicate
    updates.release(uh);
    return;
  }
  const long hops_before = spf_.first_hop_changes();
  for (const routing::LinkCostReport& r : update.reports) {
    spf_.set_cost(r.link, r.cost);
  }
  net_.on_route_change(spf_.first_hop_changes() - hops_before);
  mp_dirty_ = true;
  flood_copies(uh, via_link);
  updates.release(uh);
}
// ARPALINT-HOTPATH-END

// ARPALINT-HOTPATH-BEGIN: the 10-second metric timer fires throughout the
// measurement window on every node.
void Psn::measurement_period() {
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  candidate_scratch_.assign(out_.size(), 0.0);
  std::span<double> candidates{candidate_scratch_};
  bool significant = false;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    OutLink& o = out_[i];
    const metrics::PeriodMeasurement m =
        o.meas.end_period(net_.config().measurement_period);
    candidates[i] = o.up ? o.metric->on_period(m) : kDownLinkCost;
    net_.on_period_measured(o.id, analysis::Cost{o.last_candidate},
                            analysis::Cost{candidates[i]},
                            analysis::Utilization{m.busy_fraction});
    o.last_candidate = candidates[i];
    if (o.filter.should_report(candidates[i])) significant = true;
  }
  if (significant) originate_update(candidates);

  net_.simulator().schedule_in(net_.config().measurement_period,
                               SimEvent::measurement_period(net_, id_));
}
// ARPALINT-HOTPATH-END

// ARPALINT-HOTPATH-BEGIN: update origination runs inside the measurement
// window whenever a period's cost change is significant.
void Psn::originate_update(std::span<const double> candidates) {
  UpdatePool& updates = net_.update_pool();
  const UpdateHandle uh = updates.acquire();
  routing::RoutingUpdate& update = updates.at(uh);
  update.origin = id_;
  update.seq = ++seq_;
  const long hops_before = spf_.first_hop_changes();
  for (std::size_t i = 0; i < out_.size(); ++i) {
    OutLink& o = out_[i];
    // Every advertised cost must keep SPF well-defined (positive, finite);
    // the metric transforms guarantee it, the flooding layer relies on it.
    ARPA_DCHECK(candidates[i] > 0.0 && candidates[i] <= kDownLinkCost)
        << "link " << o.id << " produced unusable cost " << candidates[i];
    // The node reports all its links in one update; values that didn't
    // trip the filter themselves become the new baseline anyway.
    o.filter.force_report(candidates[i]);
    o.reported = candidates[i];
    // ARPALINT-ALLOW(hot-path-alloc): recycled slots keep their reports capacity
    update.reports.push_back({o.id, candidates[i]});
    net_.on_cost_reported(o.id, candidates[i]);
    // Apply locally at once: the PSN's own table always reflects its own
    // latest reports.
    spf_.set_cost(o.id, candidates[i]);
  }
  net_.on_route_change(spf_.first_hop_changes() - hops_before);
  mp_dirty_ = true;
  ++updates_originated_;
  net_.on_update_originated();
  // Record our own sequence number so flooded-back copies are rejected.
  flood_state_.accept(update);
  flood_copies(uh, net::kInvalidLink);
  updates.release(uh);
}

void Psn::flood_copies(UpdateHandle update, net::LinkId arrived_on) {
  const net::LinkId except =
      arrived_on == net::kInvalidLink
          ? net::kInvalidLink
          : net_.topology().link(arrived_on).reverse;
  UpdatePool& updates = net_.update_pool();
  for (OutLink& o : out_) {
    if (o.id == except) continue;
    PacketPool& pool = net_.packet_pool();
    const PacketHandle h = pool.acquire();
    Packet& pkt = pool.at(h);
    pkt.id = net_.next_packet_id();
    pkt.kind = Packet::Kind::kRoutingUpdate;
    pkt.src = updates.at(update).origin;
    pkt.bits = updates.at(update).wire_bits();
    pkt.created = net_.now();
    pkt.update = update;
    updates.add_ref(update);
    enqueue(o, h, /*priority=*/true);
  }
}
// ARPALINT-HOTPATH-END

// ---- the 1969 distance-vector mode ----

double Psn::dv_link_metric(const OutLink& out) const {
  // "The link metric was simply the instantaneous queue length at the moment
  // of updating plus a fixed constant" (section 2.1).
  if (!out.up) return kUnreachable;
  return static_cast<double>(out.data_q.size() + out.update_q.size()) +
         net_.config().dv_bias;
}

void Psn::dv_tick() {
  dv_recompute();
  dv_advertise();
  net_.simulator().schedule_in(net_.config().dv_exchange_period,
                               SimEvent::dv_tick(net_, id_));
}

void Psn::dv_recompute() {
  const std::size_t n = net_.topology().node_count();
  for (net::NodeId dst = 0; dst < n; ++dst) {
    if (dst == id_) continue;
    double best = kUnreachable;
    net::LinkId best_link = net::kInvalidLink;
    for (std::size_t i = 0; i < out_.size(); ++i) {
      const double neighbor_dist = dv_neighbor_[i][dst];
      if (neighbor_dist >= kUnreachable) continue;
      const double cand = dv_link_metric(out_[i]) + neighbor_dist;
      if (cand < best || (cand == best && out_[i].id < best_link)) {
        best = cand;
        best_link = out_[i].id;
      }
    }
    dv_dist_[dst] = best;
    dv_next_[dst] = best_link;
  }
}

void Psn::dv_advertise() {
  auto advert = std::make_shared<DistanceVector>();
  advert->origin = id_;
  advert->dist = dv_dist_;
  mp_dirty_ = true;
  ++updates_originated_;
  net_.on_update_originated();
  for (OutLink& o : out_) {
    PacketPool& pool = net_.packet_pool();
    const PacketHandle h = pool.acquire();
    Packet& pkt = pool.at(h);
    pkt.id = net_.next_packet_id();
    pkt.kind = Packet::Kind::kDistanceVector;
    pkt.src = id_;
    pkt.bits = advert->wire_bits();
    pkt.created = net_.now();
    pkt.dv = advert;
    enqueue(o, h, /*priority=*/true);
  }
}

void Psn::handle_distance_vector(PacketHandle h, net::LinkId via_link) {
  PacketPool& pool = net_.packet_pool();
  const std::shared_ptr<const DistanceVector> dv = std::move(pool.at(h).dv);
  pool.release(h);
  if (!dv) throw std::logic_error("distance-vector packet without payload");
  const net::Topology& topo = net_.topology();
  const net::LinkId out_link = topo.link(via_link).reverse;
  if (topo.link(out_link).from != id_) {
    throw std::logic_error("distance vector arrived over unknown link");
  }
  dv_neighbor_[topo.out_pos(out_link)] = dv->dist;
  // The original algorithm re-minimized on new information.
  dv_recompute();
}

// ARPALINT-HOTPATH-BEGIN: fault plans flap links inside the measurement
// window (flap storms run at 1 Hz); admin-state changes must stay on the
// warm slab like every other in-window path.
void Psn::set_local_link_up(net::LinkId out_link, bool up) {
  OutLink& o = out_for(out_link);
  if (o.up == up) return;
  o.up = up;
  if (!up) drop_queued(o);
  if (net_.config().algorithm == routing::RoutingAlgorithm::kDistanceVector) {
    // No flooded updates in 1969 mode: the change shows up as an
    // unreachable metric in the next table exchanges.
    if (up) {
      o.metric->on_link_up();
      maybe_start_tx(o);
    }
    dv_recompute();
    return;
  }
  // Safe to share measurement_period's scratch: both run only as top-level
  // event handlers and originate_update does not re-enter either.
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  candidate_scratch_.assign(out_.size(), 0.0);
  for (std::size_t i = 0; i < out_.size(); ++i) {
    candidate_scratch_[i] = out_[i].reported;
  }
  const auto idx = static_cast<std::size_t>(&o - out_.data());
  if (up) {
    o.metric->on_link_up();
    // "When a link comes up it starts with its highest cost" (section 5.4).
    candidate_scratch_[idx] = o.metric->initial_cost();
    // The next period's movement is limited against the restart cost, not
    // whatever the link reported before it went down.
    o.last_candidate = o.metric->initial_cost();
    maybe_start_tx(o);
  } else {
    candidate_scratch_[idx] = kDownLinkCost;
    o.last_candidate = kDownLinkCost;
  }
  originate_update(candidate_scratch_);
}

void Psn::upgrade_local_link(net::LinkId out_link,
                             std::unique_ptr<metrics::LinkMetric> metric) {
  OutLink& o = out_for(out_link);
  // Network::apply_upgrade already swapped the effective link record, so
  // the new rate and propagation delay are what the measurement sees.
  const net::Link& link = net_.effective_link(out_link);
  o.metric = std::move(metric);
  o.meas = metrics::DelayMeasurement{link.rate, link.prop_delay};
  o.filter = make_filter(*o.metric, net_.config().significance_threshold_override);
  if (!o.up) {
    // Upgraded while down: keep advertising kDownLinkCost; the new line
    // eases in when the trunk heals (set_local_link_up's restart path).
    o.filter.force_report(kDownLinkCost);
    return;
  }
  // A line-type change restarts the link's cost history: advertise the new
  // type's highest cost and decay in, exactly like a restarted link.
  const double initial = o.metric->initial_cost();
  o.last_candidate = initial;
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  candidate_scratch_.assign(out_.size(), 0.0);
  for (std::size_t i = 0; i < out_.size(); ++i) {
    candidate_scratch_[i] = out_[i].reported;
  }
  candidate_scratch_[static_cast<std::size_t>(&o - out_.data())] = initial;
  originate_update(candidate_scratch_);
}
// ARPALINT-HOTPATH-END

}  // namespace arpanet::sim
