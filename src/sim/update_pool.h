// Pooled routing-update storage.
//
// Flooding one link-state update used to allocate a shared_ptr control
// block plus a reports vector per origination, and every measurement period
// with a significant change paid that cost inside the measurement window —
// the one steady-state allocation left after the packet slab and the
// calendar queue went allocation-free. The pool replaces the shared_ptr
// with a slab of refcounted RoutingUpdate slots: flooded packet copies
// share one slot through a 4-byte UpdateHandle, and when the last copy is
// consumed the slot returns to a freelist with its reports vector's
// capacity intact, so a recycled origination writes into existing storage.
//
// Slots live in a deque so growth never relocates an update a flooded
// packet still references. Like sim::PacketPool the pool is owned by one
// sim::Network and is strictly single-threaded (sweep parallelism is
// across Networks, never within one), so the refcounts are plain integers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/routing/flooding.h"
#include "src/sim/packet.h"
#include "src/util/check.h"

namespace arpanet::sim {

class UpdatePool {
 public:
  // ARPALINT-HOTPATH-BEGIN
  /// Acquires a slot with refcount 1. The slot's reports vector is empty
  /// but keeps whatever capacity its previous occupant grew.
  [[nodiscard]] UpdateHandle acquire() {
    ++acquired_;
    if (!free_.empty()) {
      ++recycled_;
      const UpdateHandle h = free_.back();
      free_.pop_back();
      slots_[h].refs = 1;
      ++in_use_;
      return h;
    }
    const UpdateHandle h = static_cast<UpdateHandle>(slots_.size());
    // ARPALINT-ALLOW(hot-path-alloc): slab growth; freelist serves steady state
    slots_.emplace_back();
    // ARPALINT-ALLOW(hot-path-alloc): one-time reserve at slot creation
    slots_[h].update.reports.reserve(report_capacity_);
    slots_[h].refs = 1;
    ++in_use_;
    return h;
  }

  [[nodiscard]] routing::RoutingUpdate& at(UpdateHandle h) {
    return slots_[h].update;
  }
  [[nodiscard]] const routing::RoutingUpdate& at(UpdateHandle h) const {
    return slots_[h].update;
  }

  /// Another flooded copy now shares the slot.
  void add_ref(UpdateHandle h) {
    ARPA_DCHECK(slots_[h].refs > 0) << "add_ref on a parked update slot";
    ++slots_[h].refs;
  }

  /// Drops one reference; the last drop parks the slot on the freelist with
  /// its reports storage retained (clear(), not shrink).
  void release(UpdateHandle h) {
    ARPA_DCHECK(h < slots_.size() && slots_[h].refs > 0)
        << "released update handle " << h << " with no live reference";
    if (--slots_[h].refs == 0) {
      slots_[h].update.origin = net::kInvalidNode;
      slots_[h].update.seq = 0;
      slots_[h].update.reports.clear();
      // ARPALINT-ALLOW(hot-path-alloc): freelist retains capacity
      free_.push_back(h);
      --in_use_;
    }
  }
  // ARPALINT-HOTPATH-END

  /// Sets the reports capacity every slot is created with. Without a floor
  /// a slot first used by a low-degree origin and later recycled by a
  /// high-degree one regrows its vector mid-measurement; sim::Network sets
  /// the topology's maximum out-degree so a slot fits any origin from birth.
  void set_report_capacity(std::size_t n) {
    report_capacity_ = n;
    for (Slot& s : slots_) s.update.reports.reserve(n);
  }

  /// Distinct slots ever created (the pool's footprint).
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }
  /// Slots currently referenced by at least one packet or originator.
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  /// Total acquire() calls.
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  /// acquire() calls served from the freelist rather than new storage.
  [[nodiscard]] std::uint64_t recycled() const { return recycled_; }

 private:
  struct Slot {
    routing::RoutingUpdate update;
    std::uint32_t refs = 0;
  };

  std::deque<Slot> slots_;
  std::vector<UpdateHandle> free_;
  std::size_t report_capacity_ = 0;
  std::size_t in_use_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace arpanet::sim
