// Discrete-event queue.
//
// A calendar queue (Brown 1988): pending events hang off an array of
// power-of-two-width "day" buckets covering a sliding window of virtual
// time, with a sorted overflow list for events beyond the window. Scheduling
// links the event into its day's bucket in O(1); dequeueing drains one day
// at a time, sorting that day's handful of entries by (time, sequence) —
// amortized O(1) per event for the near-future-clustered distributions a
// queueing-network simulation produces, where the old binary heap paid an
// O(log n) sift on every operation at depths in the thousands.
//
// The sequence number makes ordering of simultaneous events deterministic
// (FIFO in scheduling order); the drain sort recovers the exact (time, seq)
// total order the heap produced, so whole-network runs stay bit-reproducible
// for a given seed — the golden bench report does not move.
//
// Events live in a recycled slab (contiguous vector + freelist, like
// sim/packet_pool.h); buckets are intrusive singly-linked lists threaded
// through per-slot metadata, so a resize — triggered when the population
// outgrows or collapses below the bucket array, or when the overflow list
// gets deep — relinks slot indices without moving a single SimEvent. The
// bucket width is re-derived from the observed horizon (max − min pending
// time) so that the mean bucket holds O(1) events. Scheduling a recurring
// typed event performs no allocation once the slab and bucket array have
// reached their high-water capacity.
//
// Contract: schedule() times must be >= the last popped time (the Simulator
// enforces this — its clock never runs backwards). The window's base day
// advances monotonically as days drain; an event scheduled into the current
// day merges into the day's sorted drain list, still in exact order.

#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/event.h"
#include "src/util/units.h"

namespace arpanet::sim {

class EventQueue {
 public:
  EventQueue();

  void schedule(util::SimTime at, SimEvent ev);

  /// Convenience: wraps a callable into a SimEvent::callback event.
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  void schedule(util::SimTime at, F&& f) {
    schedule(at, SimEvent::callback(SmallFn{std::forward<F>(f)}));
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// High-water mark of size() over the queue's lifetime (telemetry).
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  /// Pre-sizes every index structure (slab, freelist, bucket array, drain /
  /// overflow / relink staging) for a pending population of up to `events`,
  /// so growth past a power-of-two geometry boundary inside a
  /// zero-allocation window needs no heap. sim::run_scenario calls this
  /// with headroom over the warm-up peak before arming its AllocGuard.
  void reserve(std::size_t events);

  /// Earliest pending time. Precondition: !empty(). Not const: it readies
  /// the sorted drain list for the front day, which the following pop()
  /// reuses.
  [[nodiscard]] util::SimTime next_time();

  /// Pops and moves out the earliest event. Precondition: !empty().
  [[nodiscard]] SimEvent pop(util::SimTime& at);

  // ---- telemetry (obs counters) ----
  /// Distinct slab slots ever allocated (high-water pending population).
  [[nodiscard]] std::size_t slab_slots() const { return slots_.size(); }
  /// Bucket-array rebuilds (width/size re-derivations) over the lifetime.
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
  /// Events that landed beyond the bucket window on schedule().
  [[nodiscard]] std::uint64_t overflow_scheduled() const {
    return overflow_scheduled_;
  }

 private:
  /// A (time, seq) key plus the slab slot it refers to; the element of the
  /// sorted drain and overflow lists.
  struct Entry {
    std::int64_t at_us = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Per-slot schedule key and intrusive bucket-list link.
  struct SlotMeta {
    std::int64_t at_us = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = 0;
  };

  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  /// Initial day width: 2^10 us ≈ 1 ms, the order of a trunk's transmission
  /// and propagation delays. Resizes re-derive it from the live horizon.
  static constexpr int kDefaultShift = 10;
  static constexpr int kMaxShift = 40;  ///< day width cap (~13 days of sim time)
  /// Overflow depth that triggers a window re-derivation (when it also
  /// holds the majority of pending events).
  static constexpr std::size_t kOverflowTrigger = 64;

  /// Strict descending (time, seq) order, so the back() of a sorted vector
  /// is the earliest entry and pops are pop_back().
  [[nodiscard]] static bool later(const Entry& a, const Entry& b) {
    return a.at_us != b.at_us ? a.at_us > b.at_us : a.seq > b.seq;
  }

  [[nodiscard]] std::int64_t day_of(std::int64_t at_us) const {
    return at_us >> shift_;  // arithmetic shift, well-defined since C++20
  }

  /// Files one slot into the structure: the active drain day, a bucket, or
  /// the overflow list. `count_overflow` is false during resize relinks so
  /// the overflow_scheduled telemetry only counts real schedule() calls.
  void insert_entry(std::uint32_t slot, bool count_overflow);

  /// Moves overflow entries whose day now falls inside the window into
  /// their buckets (the overflow list is sorted, so this peels the back).
  void migrate_overflow();

  /// Ensures drain_ holds the front day's entries, sorted. Pre: size_ > 0.
  void prepare();

  /// Rebuilds the bucket array: re-derives the day width from the pending
  /// horizon, sizes the array to the population, and relinks every slot
  /// (indices only — no SimEvent moves).
  void resize();

  // Slab: the events themselves plus per-slot metadata and a freelist.
  std::vector<SimEvent> slots_;
  std::vector<SlotMeta> meta_;
  std::vector<std::uint32_t> free_;

  // Calendar: head slot index per bucket; day d maps to d & mask_ and the
  // window [base_day_, base_day_ + buckets_.size()) holds one day per
  // bucket, so no bucket ever mixes days.
  std::vector<std::uint32_t> buckets_;
  std::size_t mask_ = kMinBuckets - 1;
  int shift_ = kDefaultShift;
  std::int64_t base_day_ = 0;
  std::size_t bucketed_ = 0;  ///< events currently linked into buckets_

  // The front day, sorted descending; back() pops first. While a drain is
  // active, new events for base_day_ merge here instead of the bucket.
  std::vector<Entry> drain_;
  bool drain_active_ = false;

  /// Events beyond the window, sorted descending; back() migrates first.
  std::vector<Entry> overflow_;

  std::vector<std::uint32_t> scratch_;  ///< resize relink staging

  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t resizes_ = 0;
  std::uint64_t overflow_scheduled_ = 0;
};

}  // namespace arpanet::sim
