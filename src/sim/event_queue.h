// Discrete-event queue.
//
// A binary min-heap of (time, sequence) keyed typed events (sim/event.h).
// The sequence number makes ordering of simultaneous events deterministic
// (FIFO in scheduling order), which keeps whole-network runs
// bit-reproducible for a given seed.
//
// Events live in a recycled slab (stable deque + freelist, like
// sim/packet_pool.h) and the heap itself holds only 24-byte
// (time, seq, slot) records, so the O(log n) sift on every schedule/pop
// moves small trivially-copyable entries instead of full SimEvents — the
// event is moved exactly twice, into its slot and back out. The heap is a
// plain std::vector driven by std::push_heap/std::pop_heap, and popping
// moves the event out of its slot (SimEvent carries a move-only SmallFn).
// Scheduling a recurring typed event performs no allocation once the slab
// and heap have reached their high-water capacity.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/sim/event.h"
#include "src/util/units.h"

namespace arpanet::sim {

class EventQueue {
 public:
  void schedule(util::SimTime at, SimEvent ev);

  /// Convenience: wraps a callable into a SimEvent::callback event.
  template <typename F>
    requires std::invocable<std::remove_cvref_t<F>&>
  void schedule(util::SimTime at, F&& f) {
    schedule(at, SimEvent::callback(SmallFn{std::forward<F>(f)}));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// High-water mark of size() over the queue's lifetime (telemetry).
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }
  [[nodiscard]] util::SimTime next_time() const { return heap_.front().at; }

  /// Pops and moves out the earliest event. Precondition: !empty().
  [[nodiscard]] SimEvent pop(util::SimTime& at);

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;

    /// Min-heap order under std::greater-style comparison: earliest time
    /// first, scheduling order among ties.
    [[nodiscard]] bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::vector<Entry> heap_;
  /// Pending events, indexed by Entry::slot. A deque keeps existing events
  /// in place while the slab grows.
  std::deque<SimEvent> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace arpanet::sim
