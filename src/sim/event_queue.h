// Discrete-event queue.
//
// A binary min-heap of (time, sequence) keyed events. The sequence number
// makes ordering of simultaneous events deterministic (FIFO in scheduling
// order), which keeps whole-network runs bit-reproducible for a given seed.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/units.h"

namespace arpanet::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(util::SimTime at, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// High-water mark of size() over the queue's lifetime (telemetry).
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }
  [[nodiscard]] util::SimTime next_time() const { return heap_.top().at; }

  /// Pops and returns the earliest event. Precondition: !empty().
  Action pop(util::SimTime& at);

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;
    // shared_ptr rather than storing the move-only closures directly: the
    // std heap needs copyable entries, and actions are scheduled once.
    std::shared_ptr<Action> action;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace arpanet::sim
