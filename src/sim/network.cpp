#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/analysis/invariants.h"
#include "src/metrics/metric_factory.h"
#include "src/net/line_type.h"
#include "src/util/check.h"

namespace arpanet::sim {

Network::Network(const net::Topology& topo, NetworkConfig cfg)
    : topo_{&topo},
      cfg_{cfg},
      factory_{cfg.metric_factory
                   ? cfg.metric_factory
                   : std::make_shared<metrics::KindMetricFactory>(cfg.metric)},
      rng_{cfg.seed},
      sizer_{cfg.mean_packet_bits},
      min_hop_table_{routing::min_hop_lengths(topo)},
      drops_{cfg.stats_bucket} {
  if (!topo.is_connected()) {
    throw std::invalid_argument("topology must be connected");
  }
  pool_.attach_update_pool(&updates_);
  std::size_t max_degree = 0;
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    max_degree = std::max(max_degree, topo.out_links(v).size());
  }
  updates_.set_report_capacity(max_degree);
  // Queue-bound packet working set: every output queue full (enqueue drops
  // beyond queue_capacity) plus a transmitting/propagating packet per link,
  // plus slack for flooded updates (not queue-capped, but short-lived).
  pool_.reserve(topo.link_count() *
                    (static_cast<std::size_t>(cfg.queue_capacity) + 2) +
                topo.node_count() * 8);
  // Every PSN starts from the same cost map (each link at its metric's
  // initial cost), so the initial trees are consistent network-wide.
  routing::LinkCosts initial(topo.link_count());
  for (const net::Link& l : topo.links()) {
    initial[l.id] = factory_->create(l, cfg.line_params)->initial_cost();
  }
  // Movement-limit checks need HN-SPF semantics; absolute bounds come from
  // whatever range the factory promises (custom factories included).
  const auto* kind_factory =
      dynamic_cast<const metrics::KindMetricFactory*>(factory_.get());
  hnspf_invariants_ =
      kind_factory && kind_factory->kind() == metrics::MetricKind::kHnSpf;
  link_bounds_.reserve(topo.link_count());
  for (const net::Link& l : topo.links()) {
    link_bounds_.push_back(factory_->bounds(l, cfg.line_params));
  }
  last_reported_cost_ = initial;
  effective_links_.assign(topo.links().begin(), topo.links().end());
  psns_.reserve(topo.node_count());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    psns_.push_back(std::make_unique<Psn>(*this, n, initial));
  }
  link_busy_.reserve(topo.link_count());
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    link_busy_.emplace_back(cfg.stats_bucket);
  }
  cost_traces_.resize(topo.link_count());
  for (auto& psn : psns_) psn->start();
}

Network::~Network() = default;

void Network::add_traffic(const traffic::TrafficMatrix& matrix) {
  if (matrix.nodes() != topo_->node_count()) {
    throw std::invalid_argument("traffic matrix size != node count");
  }
  for (net::NodeId s = 0; s < matrix.nodes(); ++s) {
    for (net::NodeId d = 0; d < matrix.nodes(); ++d) {
      const double bps = matrix.at(s, d);
      if (bps <= 0.0) continue;
      const double pkts_per_sec = bps / cfg_.mean_packet_bits;
      const std::uint64_t stream =
          static_cast<std::uint64_t>(s) * matrix.nodes() + d;
      sources_.push_back(std::make_unique<Source>(Source{
          s, d, traffic::PoissonProcess{pkts_per_sec, rng_.split(stream)},
          rng_.split(stream + 0x8000'0000ULL)}));
      schedule_arrival(sources_.size() - 1);
    }
  }
}

void Network::schedule_arrival(std::size_t source_index) {
  Source& src = *sources_[source_index];
  sim_.schedule_in(
      src.process.next_gap(),
      SimEvent::source_tick(*this, static_cast<std::uint32_t>(source_index)));
}

void Network::handle_event(SimEvent& ev) {
  switch (ev.kind()) {
    case SimEvent::Kind::kSourceTick: {
      if (!traffic_enabled_) break;  // stop_traffic(): let the queues drain
      Source& s = *sources_[ev.index()];
      psns_[s.src]->originate_data(s.dst, sizer_.sample(s.size_rng));
      schedule_arrival(ev.index());
      break;
    }
    case SimEvent::Kind::kPropagationArrival:
      psns_[topo_->link(ev.link()).to]->receive(ev.packet(), ev.link());
      break;
    case SimEvent::Kind::kTransmitComplete:
      psns_[ev.index()]->on_transmit_complete(ev.link(), ev.t1(), ev.t2(),
                                              ev.flag(), ev.packet());
      break;
    case SimEvent::Kind::kMeasurementPeriod:
      psns_[ev.index()]->measurement_period();
      break;
    case SimEvent::Kind::kDvTick:
      psns_[ev.index()]->dv_tick();
      break;
    case SimEvent::Kind::kFaultAction:
      apply_fault(ev.index());
      break;
    default:
      ARPA_CHECK(false) << "network dispatched unknown event kind "
                        << static_cast<int>(ev.kind());
  }
}

void Network::run_for(util::SimTime duration) { run_until(sim_.now() + duration); }

void Network::run_until(util::SimTime end) { sim_.run_until(end); }

void Network::reset_stats() {
  stats_ = NetworkStats{};
  stability_ = StabilityStats{};
  window_start_ = sim_.now();
  last_fault_at_ = window_start_;
  last_route_change_at_ = window_start_;
}

void Network::reserve_stats_until(util::SimTime end) {
  for (stats::TimeSeries& series : link_busy_) series.reserve_until(end);
  drops_.reserve_until(end);
}

void Network::on_delivered(const Packet& pkt) {
  ++stats_.packets_delivered;
  stats_.bits_delivered += pkt.bits;
  stats_.one_way_delay_ms.add((sim_.now() - pkt.created).ms());
  stats_.delay_histogram_ms.add((sim_.now() - pkt.created).ms());
  stats_.path_hops.add(pkt.hops);
  stats_.min_hops.add(min_hop_table_[pkt.src][pkt.dst]);
  if (delivery_hook_) delivery_hook_(pkt);
}

void Network::on_queue_drop(const Packet& pkt) {
  (void)pkt;
  ++stats_.packets_dropped_queue;
  ++counters_.packets_dropped;
  drops_.add(sim_.now(), 1.0);
}

void Network::on_unreachable_drop(const Packet& pkt) {
  (void)pkt;
  ++stats_.packets_dropped_unreachable;
  ++counters_.packets_dropped;
}

void Network::on_loop_drop(const Packet& pkt) {
  (void)pkt;
  ++stats_.packets_dropped_loop;
  ++counters_.packets_dropped;
  drops_.add(sim_.now(), 1.0);
}

void Network::on_transmission(net::LinkId link, util::SimTime busy) {
  link_busy_[link].add(sim_.now(), static_cast<double>(busy.us()));
}

void Network::on_cost_reported(net::LinkId link, double cost) {
  if (cfg_.check_invariants && cost != Psn::kDownLinkCost) {
    ARPA_CHECK(std::isfinite(cost) && cost > 0.0)
        << "link " << link << " reported non-positive cost " << cost;
    if (link_bounds_[link]) {
      analysis::check_cost_in_bounds(analysis::Cost{cost},
                                     analysis::Cost{link_bounds_[link]->min_cost},
                                     analysis::Cost{link_bounds_[link]->max_cost});
    }
    // Movement limiting is enforced per measurement period (the granularity
    // the paper states it at) in on_period_measured, not report-to-report.
  }
  last_reported_cost_[link] = cost;
  if (cfg_.track_reported_costs) {
    cost_traces_[link].emplace_back(sim_.now(), cost);
  }
  if (trace_sink_) trace_sink_->on_cost_reported(link, sim_.now(), cost);
}

void Network::on_period_measured(net::LinkId link, analysis::Cost previous,
                                 analysis::Cost candidate,
                                 analysis::Utilization busy_fraction) {
  if (cfg_.check_invariants) {
    analysis::check_utilization_in_range(busy_fraction);
    if (hnspf_invariants_ && previous.value() != Psn::kDownLinkCost &&
        candidate.value() != Psn::kDownLinkCost) {
      const net::Link& l = effective_links_[link];
      // The exact section 4.3 bound: consecutive periods' costs differ by at
      // most the movement limit, with no threshold slack — HN-SPF limits the
      // candidate against the previous period's value whether or not either
      // was significant enough to flood.
      analysis::check_movement_limited(previous, candidate,
                                       cfg_.line_params.for_type(l.type),
                                       /*extra_slack=*/0.0);
      ++counters_.invariant_period_checks;
    }
  }
  if (previous.value() != Psn::kDownLinkCost &&
      candidate.value() != Psn::kDownLinkCost) {
    const double movement = std::abs(candidate.value() - previous.value());
    if (movement > stability_.max_movement) stability_.max_movement = movement;
    const core::LineTypeParams& params =
        cfg_.line_params.for_type(effective_links_[link].type);
    if (movement > analysis::kCostSlack &&
        busy_fraction.value() <= params.flat_threshold) {
      ++stability_.flat_oscillations;
    }
  }
  if (trace_sink_) {
    trace_sink_->on_utilization(link, sim_.now(), busy_fraction.value());
  }
}

void Network::deliver_to_peer(net::LinkId link, PacketHandle pkt) {
  sim_.schedule_in(effective_links_[link].prop_delay,
                   SimEvent::propagation_arrival(*this, link, pkt));
}

double Network::link_utilization(net::LinkId id, std::size_t bucket) const {
  const double busy_us = link_busy_.at(id).bucket(bucket);
  return busy_us / static_cast<double>(cfg_.stats_bucket.us());
}

void Network::set_trunk_up(net::LinkId link, bool up) {
  const net::Link& l = topo_->link(link);
  psns_[l.from]->set_local_link_up(l.id, up);
  psns_[l.to]->set_local_link_up(l.reverse, up);
}

routing::PathTrace Network::current_route(net::NodeId src,
                                          net::NodeId dst) const {
  routing::PathTrace trace;
  std::vector<bool> visited(topo_->node_count(), false);
  net::NodeId at = src;
  while (at != dst) {
    if (visited[at]) {
      trace.looped = true;
      return trace;
    }
    visited[at] = true;
    const net::LinkId next = psns_[at]->tree().first_hop[dst];
    if (next == net::kInvalidLink) return trace;
    trace.links.push_back(next);
    at = topo_->link(next).to;
  }
  trace.reached = true;
  return trace;
}

void Network::set_node_up(net::NodeId node, bool up) {
  for (const net::LinkId lid : topo_->out_links(node)) {
    set_trunk_up(lid, up);
  }
}

bool Network::link_admin_up(net::LinkId link) const {
  const net::Link& l = topo_->link(link);
  return psns_[l.from]->link_up(l.id);
}

void Network::install_faults(const FaultPlan& plan, util::SimTime horizon) {
  ARPA_CHECK(fault_actions_.empty())
      << "install_faults may be called at most once per network";
  fault_actions_ = plan.compile(*topo_, horizon);
  for (std::uint32_t i = 0; i < fault_actions_.size(); ++i) {
    const FaultAction& a = fault_actions_[i];
    if (a.op == FaultAction::Op::kUpgrade) {
      PreparedUpgrade up;
      up.action_index = i;
      up.fwd = effective_links_[a.link];
      up.fwd.type = a.new_type;
      up.fwd.rate = net::info(a.new_type).rate;
      up.rev = effective_links_[up.fwd.reverse];
      up.rev.type = a.new_type;
      up.rev.rate = up.fwd.rate;
      up.fwd_metric = factory_->create(up.fwd, cfg_.line_params);
      up.rev_metric = factory_->create(up.rev, cfg_.line_params);
      up.fwd_bounds = factory_->bounds(up.fwd, cfg_.line_params);
      up.rev_bounds = factory_->bounds(up.rev, cfg_.line_params);
      prepared_upgrades_.push_back(std::move(up));
    }
    sim_.schedule_at(a.at, SimEvent::fault_action(*this, i));
  }
  // Two simplex records per applied upgrade; sized here so the mid-window
  // push_back in apply_upgrade never allocates.
  upgrades_applied_.reserve(prepared_upgrades_.size() * 2);
}

void Network::apply_fault(std::uint32_t action_index) {
  const FaultAction& a = fault_actions_[action_index];
  switch (a.op) {
    case FaultAction::Op::kLinkDown:
      set_trunk_up(a.link, false);
      break;
    case FaultAction::Op::kLinkUp:
      set_trunk_up(a.link, true);
      break;
    case FaultAction::Op::kNodeDown:
      set_node_up(a.node, false);
      break;
    case FaultAction::Op::kNodeUp:
      set_node_up(a.node, true);
      break;
    case FaultAction::Op::kUpgrade:
      apply_upgrade(action_index);
      break;
  }
  ++stability_.faults_applied;
  last_fault_at_ = sim_.now();
}

void Network::apply_upgrade(std::uint32_t action_index) {
  for (PreparedUpgrade& up : prepared_upgrades_) {
    if (up.action_index != action_index) continue;
    effective_links_[up.fwd.id] = up.fwd;
    effective_links_[up.rev.id] = up.rev;
    link_bounds_[up.fwd.id] = up.fwd_bounds;
    link_bounds_[up.rev.id] = up.rev_bounds;
    psns_[up.fwd.from]->upgrade_local_link(up.fwd.id, std::move(up.fwd_metric));
    psns_[up.rev.from]->upgrade_local_link(up.rev.id, std::move(up.rev_metric));
    upgrades_applied_.push_back({up.fwd.id, sim_.now(), up.fwd.type});
    upgrades_applied_.push_back({up.rev.id, sim_.now(), up.rev.type});
    return;
  }
  ARPA_CHECK(false) << "no prepared upgrade for fault action " << action_index;
}

StabilityStats Network::stability() const {
  StabilityStats s = stability_;
  if (s.faults_applied > 0 && last_route_change_at_ >= last_fault_at_) {
    s.reconverge_sec = (last_route_change_at_ - last_fault_at_).sec();
  }
  return s;
}

obs::Counters Network::counters() const {
  obs::Counters c = counters_;
  for (const auto& psn : psns_) {
    const routing::IncrementalSpf& spf = psn->spf();
    c.spf_full += static_cast<std::uint64_t>(spf.full_recomputes());
    c.spf_incremental += static_cast<std::uint64_t>(spf.incremental_updates());
    c.spf_skipped += static_cast<std::uint64_t>(spf.skipped_updates());
    c.spf_nodes_touched += static_cast<std::uint64_t>(spf.nodes_touched());
  }
  c.events_processed = sim_.events_processed();
  c.event_queue_peak_depth = sim_.queue_peak_depth();
  c.event_queue_slab_slots = sim_.queue_slab_slots();
  c.event_queue_resizes = sim_.queue_resizes();
  c.event_queue_overflow_scheduled = sim_.queue_overflow_scheduled();
  c.packet_pool_slots = pool_.slots();
  c.packet_pool_acquired = pool_.acquired();
  c.packet_pool_recycled = pool_.recycled();
  return c;
}

stats::NetworkIndicators Network::indicators(std::string label) const {
  const double window_sec = window_length().sec();
  stats::NetworkIndicators ind;
  ind.label = std::move(label);
  if (window_sec <= 0.0) return ind;
  ind.internode_traffic_kbps = stats_.bits_delivered / window_sec / 1e3;
  ind.round_trip_delay_ms = 2.0 * stats_.one_way_delay_ms.mean();
  ind.updates_per_trunk_sec =
      static_cast<double>(stats_.update_packets_sent) /
      static_cast<double>(topo_->trunk_count()) / window_sec;
  ind.update_period_per_node_sec =
      stats_.updates_originated > 0
          ? window_sec * static_cast<double>(topo_->node_count()) /
                static_cast<double>(stats_.updates_originated)
          : 0.0;
  ind.actual_path_hops = stats_.path_hops.mean();
  ind.minimum_path_hops = stats_.min_hops.mean();
  ind.packets_dropped_per_sec =
      static_cast<double>(stats_.packets_dropped_queue) / window_sec;
  ind.delivered_packets_per_sec =
      static_cast<double>(stats_.packets_delivered) / window_sec;
  ind.delay_p50_ms = stats_.delay_histogram_ms.quantile(0.50);
  ind.delay_p95_ms = stats_.delay_histogram_ms.quantile(0.95);
  ind.delay_p99_ms = stats_.delay_histogram_ms.quantile(0.99);
  return ind;
}

}  // namespace arpanet::sim
