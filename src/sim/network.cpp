#include "src/sim/network.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/analysis/invariants.h"
#include "src/metrics/metric_factory.h"
#include "src/net/line_type.h"
#include "src/util/check.h"

namespace arpanet::sim {

thread_local Network::Tls Network::tls_;

Network::Network(const net::Topology& topo, NetworkConfig cfg)
    : topo_{&topo},
      cfg_{cfg},
      factory_{cfg.metric_factory
                   ? cfg.metric_factory
                   : std::make_shared<metrics::KindMetricFactory>(cfg.metric)},
      rng_{cfg.seed},
      sizer_{cfg.mean_packet_bits},
      min_hop_table_{routing::min_hop_lengths(topo)},
      merged_drops_{cfg.stats_bucket} {
  if (!topo.is_connected()) {
    throw std::invalid_argument("topology must be connected");
  }
  part_ = net::partition_topology(topo, cfg.shards, cfg.seed);
  const auto shard_count = static_cast<std::size_t>(part_.shards);
  shards_.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, shard_count, cfg.stats_bucket));
  }
  if (shard_count > 1) {
    // Conservative lookahead: nothing sent across a shard boundary can
    // arrive sooner than the cheapest cut trunk's propagation delay, so
    // that delay is the sync window length.
    bool any_cut = false;
    util::SimTime min_prop = util::SimTime::zero();
    for (const net::Link& l : topo.links()) {
      if (part_.shard_of[l.from] == part_.shard_of[l.to]) continue;
      if (!any_cut || l.prop_delay < min_prop) min_prop = l.prop_delay;
      any_cut = true;
    }
    ARPA_CHECK(any_cut) << "multi-shard partition of a connected topology "
                           "must cut at least one trunk";
    ARPA_CHECK(min_prop > util::SimTime::zero())
        << "sharded run requires nonzero propagation delay on every "
           "cross-shard trunk (lookahead would be zero)";
    lookahead_ = min_prop;
  }
  std::size_t max_degree = 0;
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    max_degree = std::max(max_degree, topo.out_links(v).size());
  }
  // Queue-bound packet working set per shard: every owned output queue full
  // (enqueue drops beyond queue_capacity) plus a transmitting/propagating
  // packet per owned link, plus slack for flooded updates (not queue-capped,
  // but short-lived).
  std::vector<std::size_t> nodes_owned(shard_count, 0);
  std::vector<std::size_t> links_owned(shard_count, 0);
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    ++nodes_owned[part_.shard_of[v]];
    links_owned[part_.shard_of[v]] += topo.out_links(v).size();
  }
  for (auto& sh : shards_) {
    sh->updates.set_report_capacity(max_degree);
    sh->pool.reserve(
        links_owned[sh->index] *
            (static_cast<std::size_t>(cfg.queue_capacity) + 2) +
        nodes_owned[sh->index] * 8);
  }
  // Every PSN starts from the same cost map (each link at its metric's
  // initial cost), so the initial trees are consistent network-wide.
  routing::LinkCosts initial(topo.link_count());
  for (const net::Link& l : topo.links()) {
    initial[l.id] = factory_->create(l, cfg.line_params)->initial_cost();
  }
  // Movement-limit checks need HN-SPF semantics; absolute bounds come from
  // whatever range the factory promises (custom factories included).
  const auto* kind_factory =
      dynamic_cast<const metrics::KindMetricFactory*>(factory_.get());
  hnspf_invariants_ =
      kind_factory && kind_factory->kind() == metrics::MetricKind::kHnSpf;
  link_bounds_.reserve(topo.link_count());
  for (const net::Link& l : topo.links()) {
    link_bounds_.push_back(factory_->bounds(l, cfg.line_params));
  }
  last_reported_cost_ = initial;
  effective_links_.assign(topo.links().begin(), topo.links().end());
  psns_.reserve(topo.node_count());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    psns_.push_back(std::make_unique<Psn>(*this, n, initial));
  }
  link_busy_.reserve(topo.link_count());
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    link_busy_.emplace_back(cfg.stats_bucket);
  }
  cost_traces_.resize(topo.link_count());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    // Each PSN's startup timers must land in the queue of the shard that
    // will execute them.
    const ShardScope scope{*this, shard_of_node(n)};
    psns_[n]->start();
  }
}

Network::~Network() = default;

void Network::add_traffic(const traffic::TrafficMatrix& matrix) {
  if (matrix.nodes() != topo_->node_count()) {
    throw std::invalid_argument("traffic matrix size != node count");
  }
  for (net::NodeId s = 0; s < matrix.nodes(); ++s) {
    for (net::NodeId d = 0; d < matrix.nodes(); ++d) {
      const double bps = matrix.at(s, d);
      if (bps <= 0.0) continue;
      const double pkts_per_sec = bps / cfg_.mean_packet_bits;
      const std::uint64_t stream =
          static_cast<std::uint64_t>(s) * matrix.nodes() + d;
      sources_.push_back(std::make_unique<Source>(Source{
          s, d, traffic::PoissonProcess{pkts_per_sec, rng_.split(stream)},
          rng_.split(stream + 0x8000'0000ULL)}));
      // Source ticks belong to the source node's shard.
      const ShardScope scope{*this, shard_of_node(s)};
      schedule_arrival(sources_.size() - 1);
    }
  }
}

void Network::schedule_arrival(std::size_t source_index) {
  Source& src = *sources_[source_index];
  current_shard().sim.schedule_in(
      src.process.next_gap(),
      SimEvent::source_tick(*this, static_cast<std::uint32_t>(source_index)));
}

void Network::handle_event(SimEvent& ev) {
  switch (ev.kind()) {
    case SimEvent::Kind::kSourceTick: {
      if (!traffic_enabled_) break;  // stop_traffic(): let the queues drain
      Source& s = *sources_[ev.index()];
      psns_[s.src]->originate_data(s.dst, sizer_.sample(s.size_rng));
      schedule_arrival(ev.index());
      break;
    }
    case SimEvent::Kind::kPropagationArrival:
      psns_[topo_->link(ev.link()).to]->receive(ev.packet(), ev.link());
      break;
    case SimEvent::Kind::kTransmitComplete:
      psns_[ev.index()]->on_transmit_complete(ev.link(), ev.t1(), ev.t2(),
                                              ev.flag(), ev.packet());
      break;
    case SimEvent::Kind::kMeasurementPeriod:
      psns_[ev.index()]->measurement_period();
      break;
    case SimEvent::Kind::kDvTick:
      psns_[ev.index()]->dv_tick();
      break;
    case SimEvent::Kind::kFaultAction:
      apply_fault(current_shard(), ev.index());
      break;
    default:
      ARPA_CHECK(false) << "network dispatched unknown event kind "
                        << static_cast<int>(ev.kind());
  }
}

void Network::run_for(util::SimTime duration) { run_until(now() + duration); }

void Network::run_until(util::SimTime end) {
  if (shards_.size() == 1) {
    shards_.front()->sim.run_until(end);
    return;
  }
  ARPA_CHECK(tracer_ == nullptr && trace_sink_ == nullptr && !delivery_hook_)
      << "packet tracing, trace sinks and delivery hooks require shards == 1";
  std::barrier sync{static_cast<std::ptrdiff_t>(shards_.size())};
  std::vector<std::thread> workers;
  workers.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    workers.emplace_back(
        [this, end, &sync](Shard& sh) { run_window_loop(sh, end, sync); },
        std::ref(*shards_[i]));
  }
  run_window_loop(*shards_.front(), end, sync);
  for (std::thread& t : workers) t.join();
}

void Network::run_window_loop(Shard& sh, util::SimTime end,
                              std::barrier<>& sync) {
  const ShardScope scope{*this, sh};
  // Every shard's clock follows the same trajectory (min(now + lookahead,
  // end) from a common start), so all workers execute the same number of
  // iterations and the barrier phases stay aligned.
  while (sh.sim.now() < end) {
    sync.arrive_and_wait();  // all outboxes from the previous window final
    drain_mailboxes(sh);
    sync.arrive_and_wait();  // all inboxes drained; outboxes reusable
    sh.sim.run_until(std::min(sh.sim.now() + lookahead_, end));
  }
  // Final drain: messages sent during the last window arrive at or after
  // `end`; deposit them into the destination queues now so in-flight
  // accounting (updates_in_flight) never hides work inside a mailbox and a
  // later run_until resumes exactly where a single-shard run would.
  sync.arrive_and_wait();
  drain_mailboxes(sh);
}

void Network::drain_mailboxes(Shard& sh) {
  std::vector<Shard::MailRef>& scratch = sh.drain_scratch;
  scratch.clear();
  for (const auto& src : shards_) {
    const std::vector<MailMsg>& box = src->outbox[sh.index];
    for (std::size_t i = 0; i < box.size(); ++i) {
      scratch.push_back(
          {box[i].arrival_us, src->index, static_cast<std::uint32_t>(i)});
    }
  }
  if (scratch.empty()) return;
  // Deterministic admission order: arrival time, then source shard, then
  // send order within the mailbox. Every run with the same partition
  // schedules cross-shard arrivals in exactly this sequence.
  std::sort(scratch.begin(), scratch.end(),
            [](const Shard::MailRef& a, const Shard::MailRef& b) {
              if (a.arrival_us != b.arrival_us) {
                return a.arrival_us < b.arrival_us;
              }
              if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
              return a.idx < b.idx;
            });
  for (const Shard::MailRef& r : scratch) {
    MailMsg& m = shards_[r.src_shard]->outbox[sh.index][r.idx];
    const PacketHandle h = sh.pool.acquire(std::move(m.pkt));
    if (m.has_update) {
      const UpdateHandle uh = sh.updates.acquire();
      routing::RoutingUpdate& u = sh.updates.at(uh);
      u.origin = m.update.origin;
      u.seq = m.update.seq;
      u.reports.assign(m.update.reports.begin(), m.update.reports.end());
      sh.pool.at(h).update = uh;
    }
    sh.sim.schedule_at(util::SimTime::from_us(m.arrival_us),
                       SimEvent::propagation_arrival(*this, m.link, h));
  }
  for (const auto& src : shards_) src->outbox[sh.index].clear();
}

void Network::reset_stats() {
  window_start_ = shards_.front()->sim.now();
  for (auto& sh : shards_) {
    sh->stats = NetworkStats{};
    sh->stability = StabilityStats{};
    sh->last_fault_at = window_start_;
    sh->last_route_change_at = window_start_;
  }
}

void Network::reserve_stats_until(util::SimTime end) {
  for (stats::TimeSeries& series : link_busy_) series.reserve_until(end);
  for (auto& sh : shards_) sh->drops.reserve_until(end);
}

void Network::on_delivered(const Packet& pkt) {
  Shard& sh = current_shard();
  ++sh.stats.packets_delivered;
  sh.stats.bits_delivered += pkt.bits;
  sh.stats.one_way_delay_ms.add((sh.sim.now() - pkt.created).ms());
  sh.stats.delay_histogram_ms.add((sh.sim.now() - pkt.created).ms());
  sh.stats.path_hops.add(pkt.hops);
  sh.stats.min_hops.add(min_hop_table_[pkt.src][pkt.dst]);
  if (delivery_hook_) delivery_hook_(pkt);
}

void Network::on_queue_drop(const Packet& pkt) {
  (void)pkt;
  Shard& sh = current_shard();
  ++sh.stats.packets_dropped_queue;
  ++sh.counters.packets_dropped;
  sh.drops.add(sh.sim.now(), 1.0);
}

void Network::on_unreachable_drop(const Packet& pkt) {
  (void)pkt;
  Shard& sh = current_shard();
  ++sh.stats.packets_dropped_unreachable;
  ++sh.counters.packets_dropped;
}

void Network::on_loop_drop(const Packet& pkt) {
  (void)pkt;
  Shard& sh = current_shard();
  ++sh.stats.packets_dropped_loop;
  ++sh.counters.packets_dropped;
  sh.drops.add(sh.sim.now(), 1.0);
}

void Network::on_transmission(net::LinkId link, util::SimTime busy) {
  link_busy_[link].add(now(), static_cast<double>(busy.us()));
}

void Network::on_cost_reported(net::LinkId link, double cost) {
  if (cfg_.check_invariants && cost != Psn::kDownLinkCost) {
    ARPA_CHECK(std::isfinite(cost) && cost > 0.0)
        << "link " << link << " reported non-positive cost " << cost;
    if (link_bounds_[link]) {
      analysis::check_cost_in_bounds(analysis::Cost{cost},
                                     analysis::Cost{link_bounds_[link]->min_cost},
                                     analysis::Cost{link_bounds_[link]->max_cost});
    }
    // Movement limiting is enforced per measurement period (the granularity
    // the paper states it at) in on_period_measured, not report-to-report.
  }
  last_reported_cost_[link] = cost;
  if (cfg_.track_reported_costs) {
    cost_traces_[link].emplace_back(now(), cost);
  }
  if (trace_sink_) trace_sink_->on_cost_reported(link, now(), cost);
}

void Network::on_period_measured(net::LinkId link, analysis::Cost previous,
                                 analysis::Cost candidate,
                                 analysis::Utilization busy_fraction) {
  Shard& sh = current_shard();
  if (cfg_.check_invariants) {
    analysis::check_utilization_in_range(busy_fraction);
    if (hnspf_invariants_ && previous.value() != Psn::kDownLinkCost &&
        candidate.value() != Psn::kDownLinkCost) {
      const net::Link& l = effective_links_[link];
      // The exact section 4.3 bound: consecutive periods' costs differ by at
      // most the movement limit, with no threshold slack — HN-SPF limits the
      // candidate against the previous period's value whether or not either
      // was significant enough to flood.
      analysis::check_movement_limited(previous, candidate,
                                       cfg_.line_params.for_type(l.type),
                                       /*extra_slack=*/0.0);
      ++sh.counters.invariant_period_checks;
    }
  }
  if (previous.value() != Psn::kDownLinkCost &&
      candidate.value() != Psn::kDownLinkCost) {
    const double movement = std::abs(candidate.value() - previous.value());
    if (movement > sh.stability.max_movement) {
      sh.stability.max_movement = movement;
    }
    const core::LineTypeParams& params =
        cfg_.line_params.for_type(effective_links_[link].type);
    if (movement > analysis::kCostSlack &&
        busy_fraction.value() <= params.flat_threshold) {
      ++sh.stability.flat_oscillations;
    }
  }
  if (trace_sink_) {
    trace_sink_->on_utilization(link, now(), busy_fraction.value());
  }
}

void Network::deliver_to_peer(net::LinkId link, PacketHandle pkt) {
  Shard& sh = current_shard();
  Shard& dst = shard_of_node(topo_->link(link).to);
  if (&dst == &sh) {
    sh.sim.schedule_in(effective_links_[link].prop_delay,
                       SimEvent::propagation_arrival(*this, link, pkt));
    return;
  }
  // Cross-shard hop: copy the packet (and any pooled update payload) out of
  // this shard's slabs into the destination's mailbox. The receiver copies
  // it into its own slabs at the next window boundary — the two shards
  // never share a pool slot.
  Packet& p = sh.pool.at(pkt);
  MailMsg msg;
  msg.arrival_us = (sh.sim.now() + effective_links_[link].prop_delay).us();
  msg.link = link;
  if (p.update != kInvalidUpdateHandle) {
    msg.has_update = true;
    msg.update = sh.updates.at(p.update);
  }
  msg.pkt = p;
  msg.pkt.update = kInvalidUpdateHandle;
  sh.outbox[dst.index].push_back(std::move(msg));
  sh.pool.release(pkt);  // drops this shard's update reference too
}

double Network::link_utilization(net::LinkId id, std::size_t bucket) const {
  const double busy_us = link_busy_.at(id).bucket(bucket);
  return busy_us / static_cast<double>(cfg_.stats_bucket.us());
}

void Network::set_trunk_up(net::LinkId link, bool up) {
  const net::Link& l = topo_->link(link);
  psns_[l.from]->set_local_link_up(l.id, up);
  psns_[l.to]->set_local_link_up(l.reverse, up);
}

routing::PathTrace Network::current_route(net::NodeId src,
                                          net::NodeId dst) const {
  routing::PathTrace trace;
  std::vector<bool> visited(topo_->node_count(), false);
  net::NodeId at = src;
  while (at != dst) {
    if (visited[at]) {
      trace.looped = true;
      return trace;
    }
    visited[at] = true;
    const net::LinkId next = psns_[at]->tree().first_hop[dst];
    if (next == net::kInvalidLink) return trace;
    trace.links.push_back(next);
    at = topo_->link(next).to;
  }
  trace.reached = true;
  return trace;
}

void Network::set_node_up(net::NodeId node, bool up) {
  for (const net::LinkId lid : topo_->out_links(node)) {
    set_trunk_up(lid, up);
  }
}

bool Network::link_admin_up(net::LinkId link) const {
  const net::Link& l = topo_->link(link);
  return psns_[l.from]->link_up(l.id);
}

void Network::install_faults(const FaultPlan& plan, util::SimTime horizon) {
  ARPA_CHECK(fault_actions_.empty())
      << "install_faults may be called at most once per network";
  fault_actions_ = plan.compile(*topo_, horizon);
  // Expand each action into per-shard op lists: a trunk's two simplex
  // halves apply on (possibly) two shards, each in its own kFaultAction
  // event. The shard owning the action's nominal target is primary and
  // alone counts the action in its stability stats.
  struct PendingOp {
    std::uint32_t shard;
    ShardFaultOp op;
  };
  std::vector<PendingOp> ops;
  for (std::uint32_t i = 0; i < fault_actions_.size(); ++i) {
    const FaultAction& a = fault_actions_[i];
    ops.clear();
    std::uint32_t primary = 0;
    const auto add_trunk = [&](net::LinkId link, bool up) {
      const net::Link& l = topo_->link(link);
      ops.push_back({part_.shard_of[l.from],
                     {ShardFaultOp::Kind::kSetLink, up, l.from, l.id, 0}});
      ops.push_back({part_.shard_of[l.to],
                     {ShardFaultOp::Kind::kSetLink, up, l.to, l.reverse, 0}});
    };
    switch (a.op) {
      case FaultAction::Op::kLinkDown:
      case FaultAction::Op::kLinkUp: {
        const bool up = a.op == FaultAction::Op::kLinkUp;
        primary = part_.shard_of[topo_->link(a.link).from];
        add_trunk(a.link, up);
        break;
      }
      case FaultAction::Op::kNodeDown:
      case FaultAction::Op::kNodeUp: {
        const bool up = a.op == FaultAction::Op::kNodeUp;
        primary = part_.shard_of[a.node];
        for (const net::LinkId lid : topo_->out_links(a.node)) {
          add_trunk(lid, up);
        }
        break;
      }
      case FaultAction::Op::kUpgrade: {
        PreparedUpgrade up;
        up.action_index = i;
        up.fwd = effective_links_[a.link];
        up.fwd.type = a.new_type;
        up.fwd.rate = net::info(a.new_type).rate;
        up.rev = effective_links_[up.fwd.reverse];
        up.rev.type = a.new_type;
        up.rev.rate = up.fwd.rate;
        up.fwd_metric = factory_->create(up.fwd, cfg_.line_params);
        up.rev_metric = factory_->create(up.rev, cfg_.line_params);
        up.fwd_bounds = factory_->bounds(up.fwd, cfg_.line_params);
        up.rev_bounds = factory_->bounds(up.rev, cfg_.line_params);
        const auto prepared =
            static_cast<std::uint32_t>(prepared_upgrades_.size());
        primary = part_.shard_of[up.fwd.from];
        ops.push_back({part_.shard_of[up.fwd.from],
                       {ShardFaultOp::Kind::kUpgradeFwd, false, up.fwd.from,
                        up.fwd.id, prepared}});
        ops.push_back({part_.shard_of[up.rev.from],
                       {ShardFaultOp::Kind::kUpgradeRev, false, up.rev.from,
                        up.rev.id, prepared}});
        prepared_upgrades_.push_back(std::move(up));
        break;
      }
    }
    for (std::uint32_t k = 0; k < shards_.size(); ++k) {
      Shard& sh = *shards_[k];
      const auto begin = static_cast<std::uint32_t>(sh.fault_ops.size());
      for (const PendingOp& po : ops) {
        if (po.shard == k) sh.fault_ops.push_back(po.op);
      }
      const auto end = static_cast<std::uint32_t>(sh.fault_ops.size());
      if (end == begin) continue;
      sh.fault_actions.push_back({i, k == primary, begin, end});
      sh.sim.schedule_at(
          a.at, SimEvent::fault_action(
                    *this,
                    static_cast<std::uint32_t>(sh.fault_actions.size() - 1)));
    }
  }
  // One AppliedUpgrade record per upgrade half a shard owns (bounded by its
  // op count); sized here so the mid-window push_back never allocates.
  for (auto& sh : shards_) {
    sh->upgrades_applied.reserve(sh->fault_ops.size());
  }
}

void Network::apply_fault(Shard& sh, std::uint32_t shard_action_index) {
  const ShardFaultAction& act = sh.fault_actions[shard_action_index];
  for (std::uint32_t i = act.begin; i < act.end; ++i) {
    const ShardFaultOp& op = sh.fault_ops[i];
    switch (op.kind) {
      case ShardFaultOp::Kind::kSetLink:
        psns_[op.node]->set_local_link_up(op.link, op.up);
        break;
      case ShardFaultOp::Kind::kUpgradeFwd:
      case ShardFaultOp::Kind::kUpgradeRev:
        apply_upgrade_half(sh, op);
        break;
    }
  }
  if (act.primary) {
    ++sh.stability.faults_applied;
    sh.last_fault_at = sh.sim.now();
  }
}

void Network::apply_upgrade_half(Shard& sh, const ShardFaultOp& op) {
  PreparedUpgrade& up = prepared_upgrades_[op.prepared];
  const bool fwd = op.kind == ShardFaultOp::Kind::kUpgradeFwd;
  const net::Link& rec = fwd ? up.fwd : up.rev;
  effective_links_[rec.id] = rec;
  link_bounds_[rec.id] = fwd ? up.fwd_bounds : up.rev_bounds;
  psns_[rec.from]->upgrade_local_link(
      rec.id, std::move(fwd ? up.fwd_metric : up.rev_metric));
  sh.upgrades_applied.push_back({rec.id, sh.sim.now(), rec.type});
}

StabilityStats Network::stability() const {
  StabilityStats s;
  util::SimTime last_fault = util::SimTime::zero();
  util::SimTime last_change = util::SimTime::zero();
  for (const auto& sh : shards_) {
    s.route_changes += sh->stability.route_changes;
    s.flat_oscillations += sh->stability.flat_oscillations;
    s.max_movement = std::max(s.max_movement, sh->stability.max_movement);
    s.faults_applied += sh->stability.faults_applied;
    last_fault = std::max(last_fault, sh->last_fault_at);
    last_change = std::max(last_change, sh->last_route_change_at);
  }
  if (s.faults_applied > 0 && last_change >= last_fault) {
    s.reconverge_sec = (last_change - last_fault).sec();
  }
  return s;
}

const NetworkStats& Network::stats() const {
  if (shards_.size() == 1) return shards_.front()->stats;
  merged_stats_ = NetworkStats{};
  for (const auto& sh : shards_) merged_stats_.merge(sh->stats);
  return merged_stats_;
}

const stats::TimeSeries& Network::drop_series() const {
  if (shards_.size() == 1) return shards_.front()->drops;
  merged_drops_ = stats::TimeSeries{cfg_.stats_bucket};
  for (const auto& sh : shards_) merged_drops_.merge(sh->drops);
  return merged_drops_;
}

std::span<const AppliedUpgrade> Network::upgrades_applied() const {
  if (shards_.size() == 1) return shards_.front()->upgrades_applied;
  merged_upgrades_.clear();
  for (const auto& sh : shards_) {
    merged_upgrades_.insert(merged_upgrades_.end(),
                            sh->upgrades_applied.begin(),
                            sh->upgrades_applied.end());
  }
  std::stable_sort(merged_upgrades_.begin(), merged_upgrades_.end(),
                   [](const AppliedUpgrade& a, const AppliedUpgrade& b) {
                     return a.at < b.at;
                   });
  return merged_upgrades_;
}

std::size_t Network::updates_in_flight() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->updates.in_use();
  return total;
}

std::uint64_t Network::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.events_processed();
  return total;
}

void Network::reserve_event_headroom() {
  for (auto& sh : shards_) {
    sh->sim.reserve_events(4 * sh->sim.queue_peak_depth());
  }
}

obs::Counters Network::counters() const {
  obs::Counters c;
  for (const auto& psn : psns_) {
    const routing::IncrementalSpf& spf = psn->spf();
    c.spf_full += static_cast<std::uint64_t>(spf.full_recomputes());
    c.spf_incremental += static_cast<std::uint64_t>(spf.incremental_updates());
    c.spf_skipped += static_cast<std::uint64_t>(spf.skipped_updates());
    c.spf_nodes_touched += static_cast<std::uint64_t>(spf.nodes_touched());
  }
  for (const auto& sh : shards_) {
    obs::Counters s = sh->counters;
    s.events_processed = sh->sim.events_processed();
    s.event_queue_peak_depth = sh->sim.queue_peak_depth();
    s.event_queue_slab_slots = sh->sim.queue_slab_slots();
    s.event_queue_resizes = sh->sim.queue_resizes();
    s.event_queue_overflow_scheduled = sh->sim.queue_overflow_scheduled();
    s.packet_pool_slots = sh->pool.slots();
    s.packet_pool_acquired = sh->pool.acquired();
    s.packet_pool_recycled = sh->pool.recycled();
    c += s;
  }
  return c;
}

stats::NetworkIndicators Network::indicators(std::string label) const {
  const NetworkStats& st = stats();
  const double window_sec = window_length().sec();
  stats::NetworkIndicators ind;
  ind.label = std::move(label);
  if (window_sec <= 0.0) return ind;
  ind.internode_traffic_kbps = st.bits_delivered / window_sec / 1e3;
  ind.round_trip_delay_ms = 2.0 * st.one_way_delay_ms.mean();
  ind.updates_per_trunk_sec =
      static_cast<double>(st.update_packets_sent) /
      static_cast<double>(topo_->trunk_count()) / window_sec;
  ind.update_period_per_node_sec =
      st.updates_originated > 0
          ? window_sec * static_cast<double>(topo_->node_count()) /
                static_cast<double>(st.updates_originated)
          : 0.0;
  ind.actual_path_hops = st.path_hops.mean();
  ind.minimum_path_hops = st.min_hops.mean();
  ind.packets_dropped_per_sec =
      static_cast<double>(st.packets_dropped_queue) / window_sec;
  ind.delivered_packets_per_sec =
      static_cast<double>(st.packets_delivered) / window_sec;
  ind.delay_p50_ms = st.delay_histogram_ms.quantile(0.50);
  ind.delay_p95_ms = st.delay_histogram_ms.quantile(0.95);
  ind.delay_p99_ms = st.delay_histogram_ms.quantile(0.99);
  return ind;
}

}  // namespace arpanet::sim
