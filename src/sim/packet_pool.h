// Pooled packet storage.
//
// Routing a packet through the network used to move the full 80-byte Packet
// struct (with two shared_ptr payload members) into a per-hop closure at
// every enqueue, transmit and propagation step. The pool replaces that with
// a slab of Packet slots and a freelist of indices: the hot paths move a
// 4-byte PacketHandle while the struct itself stays put. Slots live in a
// deque so growth never relocates a packet a caller still references, and
// release() resets the slot so recycled packets carry no stale payload
// references. After warm-up the freelist covers the steady-state population
// and the pool allocates nothing.
//
// The pool is owned by one sim::Network and is strictly single-threaded,
// like the event queue it feeds (sweep parallelism is across Networks, never
// within one).

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/packet.h"
#include "src/sim/update_pool.h"
#include "src/util/check.h"

namespace arpanet::sim {

class PacketPool {
 public:
  /// Wires the update pool that backs Packet::update handles; release()
  /// drops the packet's reference through it. Must be set before any
  /// routing-update packet is released (sim::Network does so on
  /// construction).
  void attach_update_pool(UpdatePool* updates) { updates_ = updates; }

  // ARPALINT-HOTPATH-BEGIN: acquire/release run once per packet hop.
  /// Acquires a default-initialized slot, recycling a released one when
  /// available.
  [[nodiscard]] PacketHandle acquire() {
    ++acquired_;
    if (!free_.empty()) {
      ++recycled_;
      const PacketHandle h = free_.back();
      free_.pop_back();
      live_slot(h);
      return h;
    }
    const PacketHandle h = static_cast<PacketHandle>(slots_.size());
    // ARPALINT-ALLOW(hot-path-alloc): slab growth; after warm-up every acquire recycles
    slots_.emplace_back();
    live_slot(h);
    return h;
  }

  /// Acquires a slot holding `pkt`.
  [[nodiscard]] PacketHandle acquire(Packet pkt) {
    const PacketHandle h = acquire();
    slots_[h] = std::move(pkt);
    return h;
  }

  [[nodiscard]] Packet& at(PacketHandle h) { return slots_[h]; }
  [[nodiscard]] const Packet& at(PacketHandle h) const { return slots_[h]; }

  /// Returns a slot to the freelist. The slot is reset to a blank Packet so
  /// shared payloads (routing updates, distance vectors) are released now,
  /// not at some future reuse; a routing-update reference is dropped
  /// through the attached UpdatePool.
  void release(PacketHandle h) {
    ARPA_DCHECK(h < slots_.size()) << "released handle " << h
                                   << " outside pool of " << slots_.size();
    if (slots_[h].update != kInvalidUpdateHandle) {
      ARPA_DCHECK(updates_ != nullptr)
          << "update packet released with no attached UpdatePool";
      updates_->release(slots_[h].update);
    }
    slots_[h] = Packet{};
    // ARPALINT-ALLOW(hot-path-alloc): freelist retains its high-water capacity
    free_.push_back(h);
    --in_use_;
  }
  // ARPALINT-HOTPATH-END

  /// Pre-creates slots (parked on the freelist) until the slab holds `n`.
  /// The lazy slab sizes itself to the warm-up transient, but a longer
  /// measurement window can push the in-flight population past that
  /// high-water mark; sim::Network reserves the queue-bound working set at
  /// construction so the window never pays deque chunk growth.
  void reserve(std::size_t n) {
    if (n <= slots_.size()) return;
    free_.reserve(n);
    while (slots_.size() < n) {
      free_.push_back(static_cast<PacketHandle>(slots_.size()));
      slots_.emplace_back();
    }
  }

  /// Distinct slots ever created (the pool's footprint).
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }
  /// Total acquire() calls.
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  /// acquire() calls served from the freelist rather than new storage.
  [[nodiscard]] std::uint64_t recycled() const { return recycled_; }
  /// Slots currently held by callers.
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  /// High-water mark of in_use().
  [[nodiscard]] std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  void live_slot(PacketHandle) {
    if (++in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  }

  std::deque<Packet> slots_;
  std::vector<PacketHandle> free_;
  UpdatePool* updates_ = nullptr;
  std::uint64_t acquired_ = 0;
  std::uint64_t recycled_ = 0;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace arpanet::sim
