// Pooled packet storage.
//
// Routing a packet through the network used to move the full 80-byte Packet
// struct (with two shared_ptr payload members) into a per-hop closure at
// every enqueue, transmit and propagation step. The pool replaces that with
// a slab of Packet slots and a freelist of indices: the hot paths move a
// 4-byte PacketHandle while the struct itself stays put. Slots live in a
// deque so growth never relocates a packet a caller still references, and
// release() resets the slot so recycled packets carry no stale payload
// references. After warm-up the freelist covers the steady-state population
// and the pool allocates nothing.
//
// The pool is owned by one sim::Network and is strictly single-threaded,
// like the event queue it feeds (sweep parallelism is across Networks, never
// within one).

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/packet.h"
#include "src/util/check.h"

namespace arpanet::sim {

class PacketPool {
 public:
  /// Acquires a default-initialized slot, recycling a released one when
  /// available.
  [[nodiscard]] PacketHandle acquire() {
    ++acquired_;
    if (!free_.empty()) {
      ++recycled_;
      const PacketHandle h = free_.back();
      free_.pop_back();
      live_slot(h);
      return h;
    }
    const PacketHandle h = static_cast<PacketHandle>(slots_.size());
    slots_.emplace_back();
    live_slot(h);
    return h;
  }

  /// Acquires a slot holding `pkt`.
  [[nodiscard]] PacketHandle acquire(Packet pkt) {
    const PacketHandle h = acquire();
    slots_[h] = std::move(pkt);
    return h;
  }

  [[nodiscard]] Packet& at(PacketHandle h) { return slots_[h]; }
  [[nodiscard]] const Packet& at(PacketHandle h) const { return slots_[h]; }

  /// Returns a slot to the freelist. The slot is reset to a blank Packet so
  /// shared payloads (routing updates, distance vectors) are released now,
  /// not at some future reuse.
  void release(PacketHandle h) {
    ARPA_DCHECK(h < slots_.size()) << "released handle " << h
                                   << " outside pool of " << slots_.size();
    slots_[h] = Packet{};
    free_.push_back(h);
    --in_use_;
  }

  /// Distinct slots ever created (the pool's footprint).
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }
  /// Total acquire() calls.
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  /// acquire() calls served from the freelist rather than new storage.
  [[nodiscard]] std::uint64_t recycled() const { return recycled_; }
  /// Slots currently held by callers.
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  /// High-water mark of in_use().
  [[nodiscard]] std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  void live_slot(PacketHandle) {
    if (++in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  }

  std::deque<Packet> slots_;
  std::vector<PacketHandle> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t recycled_ = 0;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace arpanet::sim
