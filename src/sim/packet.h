// Packets.
//
// A data packet's header carries only the destination PSN — the whole point
// of consistent network-wide routing trees (paper section 4.1). Routing
// updates travel as packets too, so their bandwidth consumption (one of the
// D-SPF complaints, section 3.3 point 4) is charged against the links.

#pragma once

#include <cstdint>
#include <memory>

#include <vector>

#include "src/net/topology.h"
#include "src/routing/flooding.h"
#include "src/util/units.h"

namespace arpanet::sim {

/// Index of a pooled RoutingUpdate slot (sim/update_pool.h). Flooded copies
/// of one update share the slot by refcount, so forwarding an update moves
/// a 4-byte handle instead of touching a shared_ptr control block.
using UpdateHandle = std::uint32_t;
inline constexpr UpdateHandle kInvalidUpdateHandle =
    static_cast<UpdateHandle>(-1);

/// A distance-vector advertisement, as exchanged by the original (1969)
/// routing algorithm: the sender's current estimated distance to every node
/// (paper section 2.1). Sent hop-by-hop to neighbors only — never flooded.
struct DistanceVector {
  net::NodeId origin = net::kInvalidNode;
  std::vector<double> dist;  ///< indexed by destination node

  /// Wire size: header plus one 16-bit distance per destination — the
  /// full-table exchange that made the original scheme costly on slow lines.
  [[nodiscard]] double wire_bits() const {
    return 128.0 + 16.0 * static_cast<double>(dist.size());
  }
};

struct Packet {
  enum class Kind : std::uint8_t { kData, kRoutingUpdate, kDistanceVector };

  std::uint64_t id = 0;
  Kind kind = Kind::kData;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;  ///< unused for routing messages
  double bits = 0.0;
  util::SimTime created;
  int hops = 0;

  // Host-level message framing (sim/host_flow.h). Zero/false for plain
  // datagram traffic.
  std::uint64_t message_id = 0;  ///< nonzero when part of a host message
  std::uint16_t pkt_index = 0;   ///< position within the message
  std::uint16_t pkt_count = 0;   ///< packets in the message
  bool rfnm = false;             ///< this is a Request-For-Next-Message ack

  /// Payload for Kind::kRoutingUpdate: a refcounted sim::UpdatePool slot
  /// shared between flooded copies. PacketPool::release drops the
  /// reference through its attached UpdatePool.
  UpdateHandle update = kInvalidUpdateHandle;
  /// Payload for Kind::kDistanceVector (the 1969 baseline mode; cold path,
  /// so the shared_ptr's allocation is acceptable there).
  std::shared_ptr<const DistanceVector> dv;
};

}  // namespace arpanet::sim
