// Typed simulation events.
//
// The hot paths of a large queueing-network run schedule the same handful of
// event shapes millions of times: a transmitter finishing a packet, a packet
// arriving after the propagation delay, a Poisson source ticking, a
// measurement-period timer, a host-flow RFNM timeout. Representing those as a
// tagged struct (SimEvent) instead of a type-erased std::function means
// scheduling a recurring event allocates nothing: the payload is a few plain
// fields and dispatch is one virtual call into the owning subsystem plus a
// switch on the kind.
//
// Rare events (test fixtures, one-off scenario drivers like a trunk failure
// at t=15s) still take an arbitrary callable through SmallFn, a move-only
// small-buffer function wrapper: callables up to SmallFn::kInlineBytes are
// stored in place, larger ones fall back to the heap — acceptable precisely
// because those events are not recurring.

#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::sim {

/// Index of a pooled Packet slot (sim/packet_pool.h).
using PacketHandle = std::uint32_t;
inline constexpr PacketHandle kInvalidPacketHandle =
    static_cast<PacketHandle>(-1);

/// Move-only callable wrapper with inline storage; the fallback event
/// payload. Unlike std::function it accepts move-only callables (so packets
/// or buffers can be moved into an event) and never allocates for callables
/// of at most kInlineBytes.
class SmallFn {
 public:
  /// Inline capacity, sized for a captured `this` plus a few words — every
  /// recurring closure in the simulator fits.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, SmallFn> &&
             std::invocable<std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(bugprone-forwarding-reference-overload): constrained above
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      static constexpr VTable kVt{
          [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
          [](void* from, void* to) noexcept {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from));
            ::new (to) Fn(std::move(*src));
            src->~Fn();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Fn*>(s))->~Fn();
          }};
      vt_ = &kVt;
    } else {
      // Oversized or throwing-move callables go to the heap; fine for
      // rare/test-only events, never used by the recurring kinds.
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable kVt{
          [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
          [](void* from, void* to) noexcept {
            ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
          },
          [](void* s) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(s));
          }};
      vt_ = &kVt;
    }
  }

  SmallFn(SmallFn&& other) noexcept : vt_{other.vt_} {
    if (vt_ != nullptr) {
      vt_->relocate(other.storage_, storage_);
      other.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.storage_, storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the callable at `to` from `from`, destroying `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

struct SimEvent;

/// Receiver of typed events. sim::Network and sim::HostFlowLayer implement
/// this; each typed SimEvent carries the sink that knows how to dispatch it,
/// so the Simulator stays ignorant of the subsystems above it.
class EventSink {
 public:
  virtual void handle_event(SimEvent& ev) = 0;

 protected:
  ~EventSink() = default;  // sinks are never owned through this interface
};

/// One scheduled event: a tag, a trivially-copyable payload for the
/// recurring kinds, and the SmallFn fallback for everything else.
struct SimEvent {
  enum class Kind : std::uint8_t {
    kCallback,           ///< fn()           — rare/test-only events
    kSourceTick,         ///< index = Poisson source index
    kPropagationArrival, ///< link, packet   — packet reaches the peer PSN
    kTransmitComplete,   ///< index = node, link, packet, t1 = queue delay,
                         ///< t2 = transmission time, flag = is_update
    kMeasurementPeriod,  ///< index = node   — the 10-second metric timer
    kDvTick,             ///< index = node   — 1969 distance-vector exchange
    kHostFlowMessage,    ///< index = host-flow pair
    kHostFlowTimeout,    ///< index = pair, id = message, generation
  };

  Kind kind = Kind::kCallback;
  EventSink* sink = nullptr;
  std::uint32_t index = 0;
  net::LinkId link = net::kInvalidLink;
  PacketHandle packet = kInvalidPacketHandle;
  std::int32_t generation = 0;
  std::uint64_t id = 0;
  util::SimTime t1;
  util::SimTime t2;
  bool flag = false;
  SmallFn fn;

  /// Executes the event: typed kinds dispatch through their sink, callbacks
  /// invoke the stored function.
  void fire() {
    if (kind == Kind::kCallback) {
      fn();
    } else {
      sink->handle_event(*this);
    }
  }

  [[nodiscard]] static SimEvent callback(SmallFn f) {
    SimEvent ev;
    ev.kind = Kind::kCallback;
    ev.fn = std::move(f);
    return ev;
  }

  [[nodiscard]] static SimEvent source_tick(EventSink& sink,
                                            std::uint32_t source_index) {
    SimEvent ev;
    ev.kind = Kind::kSourceTick;
    ev.sink = &sink;
    ev.index = source_index;
    return ev;
  }

  [[nodiscard]] static SimEvent propagation_arrival(EventSink& sink,
                                                    net::LinkId link,
                                                    PacketHandle packet) {
    SimEvent ev;
    ev.kind = Kind::kPropagationArrival;
    ev.sink = &sink;
    ev.link = link;
    ev.packet = packet;
    return ev;
  }

  [[nodiscard]] static SimEvent transmit_complete(
      EventSink& sink, net::NodeId node, net::LinkId link, PacketHandle packet,
      util::SimTime queue_delay, util::SimTime tx_time, bool is_update) {
    SimEvent ev;
    ev.kind = Kind::kTransmitComplete;
    ev.sink = &sink;
    ev.index = node;
    ev.link = link;
    ev.packet = packet;
    ev.t1 = queue_delay;
    ev.t2 = tx_time;
    ev.flag = is_update;
    return ev;
  }

  [[nodiscard]] static SimEvent measurement_period(EventSink& sink,
                                                   net::NodeId node) {
    SimEvent ev;
    ev.kind = Kind::kMeasurementPeriod;
    ev.sink = &sink;
    ev.index = node;
    return ev;
  }

  [[nodiscard]] static SimEvent dv_tick(EventSink& sink, net::NodeId node) {
    SimEvent ev;
    ev.kind = Kind::kDvTick;
    ev.sink = &sink;
    ev.index = node;
    return ev;
  }

  [[nodiscard]] static SimEvent host_flow_message(EventSink& sink,
                                                  std::uint32_t pair_index) {
    SimEvent ev;
    ev.kind = Kind::kHostFlowMessage;
    ev.sink = &sink;
    ev.index = pair_index;
    return ev;
  }

  [[nodiscard]] static SimEvent host_flow_timeout(EventSink& sink,
                                                  std::uint32_t pair_index,
                                                  std::uint64_t message_id,
                                                  std::int32_t generation) {
    SimEvent ev;
    ev.kind = Kind::kHostFlowTimeout;
    ev.sink = &sink;
    ev.index = pair_index;
    ev.id = message_id;
    ev.generation = generation;
    return ev;
  }
};

}  // namespace arpanet::sim
