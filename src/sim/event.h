// Typed simulation events.
//
// The hot paths of a large queueing-network run schedule the same handful of
// event shapes millions of times: a transmitter finishing a packet, a packet
// arriving after the propagation delay, a Poisson source ticking, a
// measurement-period timer, a host-flow RFNM timeout. Representing those as a
// tagged struct (SimEvent) instead of a type-erased std::function means
// scheduling a recurring event allocates nothing: the payload is a few plain
// fields and dispatch is one virtual call into the owning subsystem plus a
// switch on the kind.
//
// Rare events (test fixtures, one-off scenario drivers like a trunk failure
// at t=15s) still take an arbitrary callable through SmallFn, a move-only
// small-buffer function wrapper: callables up to SmallFn::kInlineBytes are
// stored in place, larger ones fall back to the heap — acceptable precisely
// because those events are not recurring.
//
// SimEvent stores the SmallFn in a union with the typed payload: a callback
// event never carries link/packet fields and a typed event never carries a
// callable, so overlapping them halves every event-queue slab slot to one
// cache line (64 bytes, pinned below). The union is managed manually off the
// kind tag; all payload access goes through the accessors, which check the
// kind in debug builds.

#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "src/net/topology.h"
#include "src/util/check.h"
#include "src/util/units.h"

namespace arpanet::sim {

/// Index of a pooled Packet slot (sim/packet_pool.h).
using PacketHandle = std::uint32_t;
inline constexpr PacketHandle kInvalidPacketHandle =
    static_cast<PacketHandle>(-1);

/// Move-only callable wrapper with inline storage; the fallback event
/// payload. Unlike std::function it accepts move-only callables (so packets
/// or buffers can be moved into an event) and never allocates for callables
/// of at most kInlineBytes.
class SmallFn {
 public:
  /// Inline capacity, sized for a captured `this` plus a few words — every
  /// recurring closure in the simulator fits.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, SmallFn> &&
             std::invocable<std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(bugprone-forwarding-reference-overload): constrained above
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      static constexpr VTable kVt{
          [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
          [](void* from, void* to) noexcept {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from));
            ::new (to) Fn(std::move(*src));
            src->~Fn();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Fn*>(s))->~Fn();
          }};
      vt_ = &kVt;
    } else {
      // Oversized, overaligned or throwing-move callables go to the heap;
      // fine for rare/test-only events, never used by the recurring kinds.
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable kVt{
          [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
          [](void* from, void* to) noexcept {
            ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
          },
          [](void* s) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(s));
          }};
      vt_ = &kVt;
    }
  }

  SmallFn(SmallFn&& other) noexcept : vt_{other.vt_} {
    if (vt_ != nullptr) {
      vt_->relocate(other.storage_, storage_);
      other.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.storage_, storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the callable at `to` from `from`, destroying `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  // Pointer alignment suffices: inline eligibility above rejects callables
  // with stricter alignment (they take the heap path). Keeping the buffer at
  // alignof(void*) instead of max_align_t is what lets the whole wrapper
  // share a 56-byte union member with SimEvent's typed payload.
  alignas(void*) std::byte storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

static_assert(sizeof(SmallFn) == 56 && alignof(SmallFn) == alignof(void*),
              "SmallFn layout drifted; SimEvent's union sizing relies on it");

struct SimEvent;

/// Receiver of typed events. sim::Network and sim::HostFlowLayer implement
/// this; each typed SimEvent carries the sink that knows how to dispatch it,
/// so the Simulator stays ignorant of the subsystems above it.
class EventSink {
 public:
  virtual void handle_event(SimEvent& ev) = 0;

 protected:
  ~EventSink() = default;  // sinks are never owned through this interface
};

/// One scheduled event: a tag plus a union of the trivially-copyable payload
/// for the recurring kinds and the SmallFn fallback for everything else.
struct SimEvent {
  enum class Kind : std::uint8_t {
    kCallback,           ///< fn()           — rare/test-only events
    kSourceTick,         ///< index = Poisson source index
    kPropagationArrival, ///< link, packet   — packet reaches the peer PSN
    kTransmitComplete,   ///< index = node, link, packet, t1 = queue delay,
                         ///< t2 = transmission time, flag = is_update
    kMeasurementPeriod,  ///< index = node   — the 10-second metric timer
    kDvTick,             ///< index = node   — 1969 distance-vector exchange
    kHostFlowMessage,    ///< index = host-flow pair
    kHostFlowTimeout,    ///< index = pair, id = message, generation
    kFaultAction,        ///< index = compiled fault-action index
  };

  SimEvent() noexcept { ::new (static_cast<void*>(&fn_)) SmallFn{}; }

  SimEvent(SimEvent&& other) noexcept : kind_{other.kind_} {
    if (kind_ == Kind::kCallback) {
      ::new (static_cast<void*>(&fn_)) SmallFn{std::move(other.fn_)};
    } else {
      ::new (static_cast<void*>(&typed_)) Typed(other.typed_);
    }
  }

  SimEvent& operator=(SimEvent&& other) noexcept {
    if (this != &other) {
      if (kind_ == Kind::kCallback && other.kind_ == Kind::kCallback) {
        fn_ = std::move(other.fn_);
      } else {
        destroy_payload();
        kind_ = other.kind_;
        if (kind_ == Kind::kCallback) {
          ::new (static_cast<void*>(&fn_)) SmallFn{std::move(other.fn_)};
        } else {
          ::new (static_cast<void*>(&typed_)) Typed(other.typed_);
        }
      }
    }
    return *this;
  }

  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  ~SimEvent() { destroy_payload(); }

  [[nodiscard]] Kind kind() const { return kind_; }

  // Typed-payload accessors; valid only for the kinds documented on Kind.
  [[nodiscard]] std::uint32_t index() const { return typed().index; }
  [[nodiscard]] net::LinkId link() const { return typed().link; }
  [[nodiscard]] PacketHandle packet() const { return typed().packet; }
  [[nodiscard]] std::int32_t generation() const { return typed().generation; }
  [[nodiscard]] std::uint64_t id() const { return typed().id; }
  [[nodiscard]] util::SimTime t1() const { return typed().t1; }
  [[nodiscard]] util::SimTime t2() const { return typed().t2; }
  [[nodiscard]] bool flag() const { return typed().flag; }

  /// Executes the event: typed kinds dispatch through their sink, callbacks
  /// invoke the stored function.
  void fire() {
    if (kind_ == Kind::kCallback) {
      fn_();
    } else {
      typed_.sink->handle_event(*this);
    }
  }

  [[nodiscard]] static SimEvent callback(SmallFn f) {
    SimEvent ev;
    ev.fn_ = std::move(f);
    return ev;
  }

  [[nodiscard]] static SimEvent source_tick(EventSink& sink,
                                            std::uint32_t source_index) {
    SimEvent ev{Kind::kSourceTick, sink};
    ev.typed_.index = source_index;
    return ev;
  }

  [[nodiscard]] static SimEvent propagation_arrival(EventSink& sink,
                                                    net::LinkId link,
                                                    PacketHandle packet) {
    SimEvent ev{Kind::kPropagationArrival, sink};
    ev.typed_.link = link;
    ev.typed_.packet = packet;
    return ev;
  }

  [[nodiscard]] static SimEvent transmit_complete(
      EventSink& sink, net::NodeId node, net::LinkId link, PacketHandle packet,
      util::SimTime queue_delay, util::SimTime tx_time, bool is_update) {
    SimEvent ev{Kind::kTransmitComplete, sink};
    ev.typed_.index = node;
    ev.typed_.link = link;
    ev.typed_.packet = packet;
    ev.typed_.t1 = queue_delay;
    ev.typed_.t2 = tx_time;
    ev.typed_.flag = is_update;
    return ev;
  }

  [[nodiscard]] static SimEvent measurement_period(EventSink& sink,
                                                   net::NodeId node) {
    SimEvent ev{Kind::kMeasurementPeriod, sink};
    ev.typed_.index = node;
    return ev;
  }

  [[nodiscard]] static SimEvent dv_tick(EventSink& sink, net::NodeId node) {
    SimEvent ev{Kind::kDvTick, sink};
    ev.typed_.index = node;
    return ev;
  }

  [[nodiscard]] static SimEvent host_flow_message(EventSink& sink,
                                                  std::uint32_t pair_index) {
    SimEvent ev{Kind::kHostFlowMessage, sink};
    ev.typed_.index = pair_index;
    return ev;
  }

  [[nodiscard]] static SimEvent host_flow_timeout(EventSink& sink,
                                                  std::uint32_t pair_index,
                                                  std::uint64_t message_id,
                                                  std::int32_t generation) {
    SimEvent ev{Kind::kHostFlowTimeout, sink};
    ev.typed_.index = pair_index;
    ev.typed_.id = message_id;
    ev.typed_.generation = generation;
    return ev;
  }

  [[nodiscard]] static SimEvent fault_action(EventSink& sink,
                                             std::uint32_t action_index) {
    SimEvent ev{Kind::kFaultAction, sink};
    ev.typed_.index = action_index;
    return ev;
  }

 private:
  /// The payload of every recurring (non-callback) kind; trivially copyable
  /// so moving a typed event is a plain 56-byte copy.
  struct Typed {
    EventSink* sink = nullptr;
    std::uint32_t index = 0;
    net::LinkId link = net::kInvalidLink;
    PacketHandle packet = kInvalidPacketHandle;
    std::int32_t generation = 0;
    std::uint64_t id = 0;
    util::SimTime t1;
    util::SimTime t2;
    bool flag = false;
  };
  static_assert(std::is_trivially_copyable_v<Typed>);

  SimEvent(Kind kind, EventSink& sink) noexcept : kind_{kind} {
    ::new (static_cast<void*>(&typed_)) Typed{};
    typed_.sink = &sink;
  }

  [[nodiscard]] const Typed& typed() const {
    ARPA_DCHECK(kind_ != Kind::kCallback)
        << "typed payload read on a callback event";
    return typed_;
  }

  void destroy_payload() noexcept {
    if (kind_ == Kind::kCallback) fn_.~SmallFn();
  }

  Kind kind_ = Kind::kCallback;
  union {
    Typed typed_;  ///< every kind except kCallback
    SmallFn fn_;   ///< kCallback only
  };
};

static_assert(sizeof(SimEvent) == 64,
              "SimEvent must stay one cache line; the union of the typed "
              "payload and SmallFn is sized to make the slab slot 64 bytes");

}  // namespace arpanet::sim
