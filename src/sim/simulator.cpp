#include "src/sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "src/util/check.h"

namespace arpanet::sim {

void Simulator::schedule_at(util::SimTime at, SimEvent ev) {
  if (at < now_) throw std::logic_error("scheduling into the past");
  queue_.schedule(at, std::move(ev));
}

void Simulator::run_until(util::SimTime end) {
  while (!queue_.empty() && queue_.next_time() <= end) {
    step();
  }
  if (now_ < end) now_ = end;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  util::SimTime at;
  SimEvent ev = queue_.pop(at);
  // The virtual clock never runs backwards: schedule_at rejects past times,
  // and the heap pops in (time, seq) order.
  ARPA_DCHECK(at >= now_) << "event queue popped " << at.us()
                          << "us behind the clock " << now_.us() << "us";
  now_ = at;
  ++processed_;
  ev.fire();
  return true;
}

}  // namespace arpanet::sim
