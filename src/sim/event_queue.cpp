#include "src/sim/event_queue.h"

#include <memory>
#include <utility>

#include "src/util/check.h"

namespace arpanet::sim {

void EventQueue::schedule(util::SimTime at, Action action) {
  heap_.push(Entry{at, next_seq_++, std::make_shared<Action>(std::move(action))});
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
}

EventQueue::Action EventQueue::pop(util::SimTime& at) {
  ARPA_DCHECK(!heap_.empty()) << "pop from an empty event queue";
  Entry e = heap_.top();
  heap_.pop();
  at = e.at;
  return std::move(*e.action);
}

}  // namespace arpanet::sim
