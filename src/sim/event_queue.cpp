#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace arpanet::sim {

EventQueue::EventQueue() : buckets_(kMinBuckets, kNil) {}

void EventQueue::reserve(std::size_t events) {
  // Capacity only: the live geometry (bucket count, day width) is untouched,
  // so ordering semantics and resize() accounting stay exactly as they were.
  const std::size_t nb = std::bit_ceil(
      std::clamp<std::size_t>(events, kMinBuckets, kMaxBuckets));
  buckets_.reserve(nb);
  scratch_.reserve(events);
  drain_.reserve(events);
  overflow_.reserve(events);
  slots_.reserve(events);
  meta_.reserve(events);
  free_.reserve(events);
}

// ARPALINT-HOTPATH-BEGIN
void EventQueue::schedule(util::SimTime at, SimEvent ev) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(ev);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    // ARPALINT-ALLOW(hot-path-alloc): slab growth; freelist serves steady state
    slots_.push_back(std::move(ev));
    // ARPALINT-ALLOW(hot-path-alloc): slab growth; freelist serves steady state
    meta_.emplace_back();
  }
  meta_[slot].at_us = at.us();
  meta_[slot].seq = next_seq_++;

  if (size_ == 0) {
    // Empty queue: re-anchor the window so the first event's day is the
    // base — keeps the bucket scan from walking dead days after idle gaps.
    base_day_ = day_of(at.us());
    drain_active_ = false;
  }
  ++size_;
  if (size_ > peak_size_) peak_size_ = size_;

  insert_entry(slot, /*count_overflow=*/true);

  // Density drifted: the population outgrew the array (mean bucket depth
  // above 2) or far-future events dominate. Both re-derive the geometry.
  if (size_ > 2 * buckets_.size() ||
      (overflow_.size() > kOverflowTrigger &&
       2 * overflow_.size() > size_)) {
    resize();
  }
}

void EventQueue::insert_entry(std::uint32_t slot, bool count_overflow) {
  const std::int64_t at_us = meta_[slot].at_us;
  std::int64_t day = day_of(at_us);
  // An event can be scheduled for a day the window base has already passed
  // (its time is still >= the last pop, per the class contract); clamping
  // to the base day files it where the next scan looks, and the drain sort
  // restores the exact (time, seq) order.
  if (day < base_day_) day = base_day_;

  if (drain_active_ && day == base_day_) {
    // The day being drained keeps its entries sorted; merge in place.
    const Entry e{at_us, meta_[slot].seq, slot};
    // ARPALINT-ALLOW(hot-path-alloc): drain vector retains capacity across days
    drain_.insert(std::lower_bound(drain_.begin(), drain_.end(), e, later),
                  e);
    return;
  }
  if (day < base_day_ + static_cast<std::int64_t>(buckets_.size())) {
    std::uint32_t& head = buckets_[static_cast<std::size_t>(day) & mask_];
    meta_[slot].next = head;
    head = slot;
    ++bucketed_;
    return;
  }
  const Entry e{at_us, meta_[slot].seq, slot};
  // ARPALINT-ALLOW(hot-path-alloc): overflow vector retains capacity
  overflow_.insert(
      std::lower_bound(overflow_.begin(), overflow_.end(), e, later), e);
  if (count_overflow) ++overflow_scheduled_;
}

void EventQueue::migrate_overflow() {
  const std::int64_t limit =
      base_day_ + static_cast<std::int64_t>(buckets_.size());
  while (!overflow_.empty() && day_of(overflow_.back().at_us) < limit) {
    const Entry e = overflow_.back();
    overflow_.pop_back();
    std::uint32_t& head =
        buckets_[static_cast<std::size_t>(day_of(e.at_us)) & mask_];
    meta_[e.slot].next = head;
    head = e.slot;
    ++bucketed_;
  }
}

void EventQueue::prepare() {
  if (!drain_.empty()) return;
  drain_active_ = false;
  if (bucketed_ == 0) {
    // Everything pending sits beyond the window; jump the base to the
    // earliest far-future day rather than scanning empty buckets.
    ARPA_DCHECK(!overflow_.empty());
    base_day_ = day_of(overflow_.back().at_us);
  }
  migrate_overflow();
  ARPA_DCHECK(bucketed_ > 0);
  std::int64_t d = base_day_;
  while (buckets_[static_cast<std::size_t>(d) & mask_] == kNil) ++d;
  base_day_ = d;
  std::uint32_t s = buckets_[static_cast<std::size_t>(d) & mask_];
  buckets_[static_cast<std::size_t>(d) & mask_] = kNil;
  while (s != kNil) {
    // ARPALINT-ALLOW(hot-path-alloc): drain vector retains capacity across days
    drain_.push_back(Entry{meta_[s].at_us, meta_[s].seq, s});
    s = meta_[s].next;
    --bucketed_;
  }
  std::sort(drain_.begin(), drain_.end(), later);
  drain_active_ = true;
}

util::SimTime EventQueue::next_time() {
  ARPA_DCHECK(size_ > 0) << "next_time on an empty event queue";
  prepare();
  return util::SimTime::from_us(drain_.back().at_us);
}

SimEvent EventQueue::pop(util::SimTime& at) {
  ARPA_DCHECK(size_ > 0) << "pop from an empty event queue";
  prepare();
  const Entry e = drain_.back();
  drain_.pop_back();
  // The next pop's slab slot is already known (the new drain back); start
  // pulling its cache line while this event dispatches — freelist reuse
  // scatters consecutive pops across the slab, so they rarely share a line.
  if (!drain_.empty()) __builtin_prefetch(&slots_[drain_.back().slot]);
  at = util::SimTime::from_us(e.at_us);
  SimEvent ev = std::move(slots_[e.slot]);
  // ARPALINT-ALLOW(hot-path-alloc): freelist retains capacity
  free_.push_back(e.slot);
  --size_;
  if (size_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    if (size_ == 0) {
      // Fully drained: fall back to the initial geometry for free instead
      // of running (and counting) a rebuild over nothing.
      // ARPALINT-ALLOW(hot-path-alloc): shrinking assign reuses storage
      buckets_.assign(kMinBuckets, kNil);
      mask_ = kMinBuckets - 1;
      shift_ = kDefaultShift;
      drain_.clear();
      drain_active_ = false;
    } else {
      resize();
    }
  }
  return ev;
}
// ARPALINT-HOTPATH-END

void EventQueue::resize() {
  // Collect every pending slot; the events themselves never move, only the
  // index structures are rebuilt around them.
  scratch_.clear();
  for (std::uint32_t& head : buckets_) {
    std::uint32_t s = head;
    head = kNil;
    while (s != kNil) {
      scratch_.push_back(s);
      s = meta_[s].next;
    }
  }
  for (const Entry& e : drain_) scratch_.push_back(e.slot);
  for (const Entry& e : overflow_) scratch_.push_back(e.slot);
  drain_.clear();
  drain_active_ = false;
  overflow_.clear();
  bucketed_ = 0;
  ++resizes_;
  ARPA_DCHECK(scratch_.size() == size_);
  if (scratch_.empty()) return;

  std::int64_t min_at = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_at = std::numeric_limits<std::int64_t>::min();
  for (const std::uint32_t slot : scratch_) {
    min_at = std::min(min_at, meta_[slot].at_us);
    max_at = std::max(max_at, meta_[slot].at_us);
  }

  // Day width ≈ horizon / population, rounded down to a power of two, so
  // the mean bucket holds one or two events and the drain sort stays tiny.
  const auto n = static_cast<std::uint64_t>(scratch_.size());
  const auto horizon = static_cast<std::uint64_t>(max_at - min_at) + 1;
  const std::uint64_t width = std::max<std::uint64_t>(horizon / n, 1);
  shift_ = std::min(static_cast<int>(std::bit_width(width)) - 1, kMaxShift);

  const std::size_t nb = std::bit_ceil(
      std::clamp<std::size_t>(scratch_.size(), kMinBuckets, kMaxBuckets));
  buckets_.assign(nb, kNil);
  mask_ = nb - 1;
  base_day_ = day_of(min_at);
  for (const std::uint32_t slot : scratch_) {
    insert_entry(slot, /*count_overflow=*/false);
  }
}

}  // namespace arpanet::sim
