#include "src/sim/event_queue.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/util/check.h"

namespace arpanet::sim {

void EventQueue::schedule(util::SimTime at, SimEvent ev) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(ev);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(ev));
  }
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
}

SimEvent EventQueue::pop(util::SimTime& at) {
  ARPA_DCHECK(!heap_.empty()) << "pop from an empty event queue";
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Entry e = heap_.back();
  heap_.pop_back();
  at = e.at;
  SimEvent ev = std::move(slots_[e.slot]);
  free_.push_back(e.slot);
  return ev;
}

}  // namespace arpanet::sim
