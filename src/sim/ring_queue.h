// Allocation-free FIFO for per-link packet queues.
//
// The PSN output queues used to be std::deque<Queued>; a deque of large
// elements allocates and frees a chunk every few dozen pushes even at steady
// state. RingQueue is a power-of-two circular buffer that only allocates
// when the high-water mark grows, so a queue that has reached its working
// depth never touches the allocator again. Elements are assumed cheap to
// move (the queues now hold 16-byte {PacketHandle, SimTime} records).
//
// ARPALINT-HOTPATH

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace arpanet::sim {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  [[nodiscard]] T& front() {
    ARPA_DCHECK(count_ > 0) << "front() on an empty RingQueue";
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    ARPA_DCHECK(count_ > 0) << "front() on an empty RingQueue";
    return buf_[head_];
  }

  void pop_front() {
    ARPA_DCHECK(count_ > 0) << "pop_front() on an empty RingQueue";
    buf_[head_] = T{};  // drop any owned state now, not at overwrite time
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Capacity currently reserved (a power of two; 0 before first push).
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Pre-sizes the ring so it holds at least `n` elements without growing —
  /// queues with a known depth bound pay their allocation at construction
  /// instead of mid-measurement.
  void reserve(std::size_t n) {
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < n) cap *= 2;
    if (cap > buf_.size()) regrow(cap);
  }

 private:
  void grow() { regrow(buf_.empty() ? 8 : buf_.size() * 2); }

  void regrow(std::size_t new_cap) {
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace arpanet::sim
