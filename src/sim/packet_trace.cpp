#include "src/sim/packet_trace.h"

#include <algorithm>
#include <stdexcept>

namespace arpanet::sim {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kOriginated: return "originated";
    case TraceEventKind::kEnqueued: return "enqueued";
    case TraceEventKind::kTransmitted: return "transmitted";
    case TraceEventKind::kDelivered: return "delivered";
    case TraceEventKind::kDroppedQueue: return "dropped-queue";
    case TraceEventKind::kDroppedLoop: return "dropped-loop";
    case TraceEventKind::kDroppedUnreachable: return "dropped-unreachable";
  }
  return "?";
}

PacketTracer::PacketTracer(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) throw std::invalid_argument("tracer capacity must be > 0");
  ring_.reserve(capacity);
}

void PacketTracer::record(util::SimTime at, TraceEventKind kind,
                          std::uint64_t packet_id, net::NodeId node,
                          net::LinkId link) {
  if (filter_ && *filter_ != packet_id) return;
  const TraceEvent event{at, kind, packet_id, node, link};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    wrapped_ = true;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> PacketTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  } else {
    out = ring_;
  }
  return out;
}

std::vector<TraceEvent> PacketTracer::events_for(std::uint64_t packet_id) const {
  std::vector<TraceEvent> out = events();
  std::erase_if(out, [packet_id](const TraceEvent& e) {
    return e.packet_id != packet_id;
  });
  return out;
}

void PacketTracer::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  recorded_ = 0;
}

}  // namespace arpanet::sim
