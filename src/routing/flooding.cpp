// FloodingState is header-only; this translation unit exists so the module
// has a home for future out-of-line additions (e.g. update aging) and keeps
// the build list in src/CMakeLists.txt one-per-module.
#include "src/routing/flooding.h"
