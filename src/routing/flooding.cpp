#include "src/routing/flooding.h"

#include <stdexcept>

namespace arpanet::routing {

FloodingState::FloodingState(const net::Topology& topo)
    : FloodingState{topo.node_count()} {}

void FloodingState::reset(std::size_t node_count) {
  last_seq_.assign(node_count, 0);
  accepted_ = 0;
  duplicates_ = 0;
}

std::size_t flood_copy_count(const net::Topology& topo, net::NodeId node,
                             net::LinkId arrived_on) {
  const std::size_t fanout = topo.out_links(node).size();
  if (arrived_on == net::kInvalidLink) return fanout;
  if (topo.link(arrived_on).to != node) {
    throw std::invalid_argument(
        "flood_copy_count: arrived_on is not an in-link of the node");
  }
  // The reverse of the arrival link is by construction one of the node's
  // out-links, so exactly one copy is suppressed.
  return fanout - 1;
}

}  // namespace arpanet::routing
