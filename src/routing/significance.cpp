// SignificanceFilter is header-only; see significance.h.
#include "src/routing/significance.h"
