#include "src/routing/routing_table.h"

namespace arpanet::routing {

ForwardingTables ForwardingTables::compute_all(const net::Topology& topo,
                                               std::span<const double> costs) {
  ForwardingTables t;
  t.table_.resize(topo.node_count());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const SpfTree tree = Spf::compute(topo, n, costs);
    t.table_[n] = tree.first_hop;
  }
  return t;
}

ForwardingTables ForwardingTables::from_trees(std::span<const SpfTree> trees) {
  ForwardingTables t;
  t.table_.resize(trees.size());
  for (const SpfTree& tree : trees) {
    t.table_.at(tree.root) = tree.first_hop;
  }
  return t;
}

PathTrace trace_path(const net::Topology& topo, const ForwardingTables& tables,
                     net::NodeId src, net::NodeId dst) {
  PathTrace trace;
  std::vector<bool> visited(topo.node_count(), false);
  net::NodeId at = src;
  while (at != dst) {
    if (visited[at]) {
      trace.looped = true;
      return trace;
    }
    visited[at] = true;
    const net::LinkId next = tables.next_hop(at, dst);
    if (next == net::kInvalidLink) return trace;  // unreachable
    trace.links.push_back(next);
    at = topo.link(next).to;
  }
  trace.reached = true;
  return trace;
}

}  // namespace arpanet::routing
