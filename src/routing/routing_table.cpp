#include "src/routing/routing_table.h"

#include <algorithm>
#include <stdexcept>

namespace arpanet::routing {

ForwardingTables ForwardingTables::compute_all(const net::Topology& topo,
                                               std::span<const double> costs) {
  ForwardingTables t;
  t.stride_ = topo.node_count();
  t.table_.assign(t.stride_ * t.stride_, net::kInvalidLink);
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const SpfTree tree = Spf::compute(topo, n, costs);
    std::copy(tree.first_hop.begin(), tree.first_hop.end(),
              t.table_.begin() + static_cast<std::ptrdiff_t>(n * t.stride_));
  }
  return t;
}

ForwardingTables ForwardingTables::from_trees(std::span<const SpfTree> trees) {
  ForwardingTables t;
  t.stride_ = trees.size();
  t.table_.assign(t.stride_ * t.stride_, net::kInvalidLink);
  for (const SpfTree& tree : trees) {
    if (tree.root >= trees.size() || tree.first_hop.size() != t.stride_) {
      throw std::invalid_argument("from_trees: trees must cover nodes 0..n-1");
    }
    std::copy(tree.first_hop.begin(), tree.first_hop.end(),
              t.table_.begin() + static_cast<std::ptrdiff_t>(tree.root * t.stride_));
  }
  return t;
}

PathTrace trace_path(const net::Topology& topo, const ForwardingTables& tables,
                     net::NodeId src, net::NodeId dst) {
  PathTrace trace;
  std::vector<bool> visited(topo.node_count(), false);
  net::NodeId at = src;
  while (at != dst) {
    if (visited[at]) {
      trace.looped = true;
      return trace;
    }
    visited[at] = true;
    const net::LinkId next = tables.next_hop(at, dst);
    if (next == net::kInvalidLink) return trace;  // unreachable
    trace.links.push_back(next);
    at = topo.link(next).to;
  }
  trace.reached = true;
  return trace;
}

}  // namespace arpanet::routing
