#include "src/routing/bellman_ford.h"

#include <limits>
#include <stdexcept>

namespace arpanet::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DistributedBellmanFord::DistributedBellmanFord(const net::Topology& topo,
                                               double bias)
    : topo_{&topo}, bias_{bias} {
  if (!(bias > 0.0)) throw std::invalid_argument("Bellman-Ford bias must be positive");
  const std::size_t n = topo.node_count();
  dist_.assign(n, std::vector<double>(n, kInf));
  next_.assign(n, std::vector<net::LinkId>(n, net::kInvalidLink));
  for (std::size_t i = 0; i < n; ++i) dist_[i][i] = 0.0;
}

int DistributedBellmanFord::run_round(std::span<const double> queue_lengths) {
  if (queue_lengths.size() != topo_->link_count()) {
    throw std::invalid_argument("queue length vector size != link count");
  }
  const std::size_t n = topo_->node_count();
  // Snapshot: everybody advertises last round's vector (synchronous rounds).
  const auto advertised = dist_;

  int changed = 0;
  for (net::NodeId node = 0; node < n; ++node) {
    for (net::NodeId dst = 0; dst < n; ++dst) {
      if (dst == node) continue;
      double best = kInf;
      net::LinkId best_link = net::kInvalidLink;
      for (const net::LinkId lid : topo_->out_links(node)) {
        const net::Link& l = topo_->link(lid);
        const double metric = queue_lengths[lid] + bias_;
        const double cand = metric + advertised[l.to][dst];
        if (cand < best || (cand == best && lid < best_link)) {
          best = cand;
          best_link = lid;
        }
      }
      if (best != dist_[node][dst] || best_link != next_[node][dst]) {
        dist_[node][dst] = best;
        next_[node][dst] = best_link;
        ++changed;
      }
    }
  }
  return changed;
}

int DistributedBellmanFord::run_to_convergence(std::span<const double> queue_lengths,
                                               int max_rounds) {
  for (int round = 1; round <= max_rounds; ++round) {
    if (run_round(queue_lengths) == 0) return round;
  }
  return max_rounds;
}

bool DistributedBellmanFord::has_loop(net::NodeId src, net::NodeId dst) const {
  std::vector<bool> visited(topo_->node_count(), false);
  net::NodeId at = src;
  while (at != dst) {
    if (visited[at]) return true;
    visited[at] = true;
    const net::LinkId l = next_[at][dst];
    if (l == net::kInvalidLink) return false;
    at = topo_->link(l).to;
  }
  return false;
}

}  // namespace arpanet::routing
