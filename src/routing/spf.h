// Shortest Path First route computation.
//
// This is the route-computation half of the ARPANET scheme installed in May
// 1979 (McQuillan, Richer & Rosen): every PSN knows the full topology and all
// link costs, and computes a shortest-path tree rooted at itself with
// Dijkstra's algorithm. The July 1987 revision this library reproduces
// changed only the link costs fed into this computation, never the
// computation itself (paper abstract, section 4).
//
// Two entry points are provided:
//   * Spf::compute       — one-shot Dijkstra, used by analysis code.
//   * IncrementalSpf     — the PSN's resident algorithm, which "attempts to
//     perform only incremental adjustments necessitated by a link cost
//     change, e.g. if a routing update reports an increase in the cost for a
//     link not in the tree, the algorithm does not recompute any part of the
//     tree" (paper section 2.2).
//
// Determinism: ties between equal-cost paths are broken canonically (parent =
// lowest-id in-link achieving the node's distance), so every PSN derives the
// same tree from the same costs; with destination-only packet headers this
// consistency is what keeps forwarding loop-free between updates, because
// shortest paths are hereditary (paper section 4.1).

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/net/topology.h"

namespace arpanet::routing {

/// Link costs in routing units, indexed by LinkId. Costs must be positive.
using LinkCosts = std::vector<double>;

/// A shortest-path tree rooted at one node.
struct SpfTree {
  net::NodeId root = net::kInvalidNode;
  /// Distance from root, per node; +inf if unreachable.
  std::vector<double> dist;
  /// The in-link on the shortest path to each node (kInvalidLink for the
  /// root and unreachable nodes).
  std::vector<net::LinkId> parent_link;
  /// The root's outgoing link used to reach each node — the forwarding
  /// decision (kInvalidLink for the root and unreachable nodes).
  std::vector<net::LinkId> first_hop;
  /// Path length in hops from the root, per node (-1 if unreachable; 0 for
  /// the root).
  std::vector<int> hops;

  /// True iff `link` is a tree edge (the parent link of its head node).
  [[nodiscard]] bool uses_link(const net::Topology& topo, net::LinkId link) const {
    return parent_link[topo.link(link).to] == link;
  }
};

/// One-shot SPF.
class Spf {
 public:
  [[nodiscard]] static SpfTree compute(const net::Topology& topo, net::NodeId root,
                                       std::span<const double> link_costs);
};

/// Reusable workspace for the incremental passes. One instance lives inside
/// each IncrementalSpf so a steady-state cost change allocates nothing: the
/// Dijkstra heap, the subtree bitmap/stack, the CSR children index and the
/// distance-ordered derivation buffer all keep their capacity across updates.
struct SpfScratch {
  /// Binary min-heap of (dist, node), driven via std::push_heap/pop_heap.
  std::vector<std::pair<double, net::NodeId>> heap;
  /// Nodes in nondecreasing distance order, persisted between updates so the
  /// usual case is a cheap is_sorted check over an almost-sorted buffer.
  std::vector<net::NodeId> order;
  /// Subtree membership for increase_pass (0/1; plain bytes, not
  /// vector<bool>, so assign() is a memset).
  std::vector<std::uint8_t> affected;
  std::vector<net::NodeId> stack;
  /// CSR children index: children of u are child_list[child_start[u-1] ..
  /// child_start[u]) (start of node 0 is 0) — see increase_pass.
  std::vector<std::uint32_t> child_start;
  std::vector<net::NodeId> child_list;
  /// first_hop snapshot taken before each re-derivation, for the
  /// route-change counter.
  std::vector<net::LinkId> prev_first_hop;
};

/// Resident incremental SPF, as run inside a PSN.
///
/// Maintains the tree across a stream of single-link cost changes. Distances
/// are updated with localized Dijkstra passes touching only affected nodes;
/// parents/first-hops/hop-counts are then re-derived canonically, so the
/// result is always bit-identical to a full Spf::compute with the same
/// costs (verified by property tests). Counters expose how much work each
/// class of update required.
class IncrementalSpf {
 public:
  IncrementalSpf(const net::Topology& topo, net::NodeId root, LinkCosts costs);

  [[nodiscard]] const SpfTree& tree() const { return tree_; }
  [[nodiscard]] std::span<const double> costs() const { return costs_; }
  [[nodiscard]] net::NodeId root() const { return tree_.root; }

  /// Applies one link-cost change and updates the tree.
  void set_cost(net::LinkId link, double new_cost);

  /// Replaces all costs (e.g. first full update after startup).
  void reset(LinkCosts costs);

  /// Full Dijkstra recomputations (construction plus every reset()).
  [[nodiscard]] long full_recomputes() const { return full_; }
  /// Updates that required no distance work at all (cost increase on a
  /// non-tree link — the paper's example).
  [[nodiscard]] long skipped_updates() const { return skipped_; }
  /// Updates handled by a localized pass.
  [[nodiscard]] long incremental_updates() const { return incremental_; }
  /// Total nodes whose distance was recomputed across incremental passes.
  [[nodiscard]] long nodes_touched() const { return nodes_touched_; }
  /// Cumulative count of destinations whose first hop changed across all
  /// updates — the stability layer's route-change metric. Monotone;
  /// callers diff before/after a batch of set_cost calls.
  [[nodiscard]] long first_hop_changes() const { return first_hop_changes_; }

 private:
  void rederive_structure();
  void decrease_pass(net::LinkId link);
  void increase_pass(net::LinkId link);

  const net::Topology* topo_;
  LinkCosts costs_;
  SpfTree tree_;
  SpfScratch scratch_;
  long full_ = 0;
  long skipped_ = 0;
  long incremental_ = 0;
  long nodes_touched_ = 0;
  long first_hop_changes_ = 0;
};

/// Hop counts of minimum-hop paths from every node (BFS). Used for the
/// "Internode Minimum Path" row of Table 1.
[[nodiscard]] std::vector<std::vector<int>> min_hop_lengths(const net::Topology& topo);

}  // namespace arpanet::routing
