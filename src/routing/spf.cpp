#include "src/routing/spf.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "src/util/check.h"

namespace arpanet::routing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// (dist, node) binary min-heap over a plain vector. std::push_heap/pop_heap
// sift exactly like std::priority_queue's, but the vector's capacity can be
// reused across passes (SpfScratch::heap).
using HeapEntry = std::pair<double, net::NodeId>;
using HeapVec = std::vector<HeapEntry>;

// ARPALINT-HOTPATH-BEGIN
void heap_push(HeapVec& heap, double dist, net::NodeId node) {
  // ARPALINT-ALLOW(hot-path-alloc): scratch heap retains capacity across passes
  heap.emplace_back(dist, node);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

HeapEntry heap_pop(HeapVec& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const HeapEntry e = heap.back();
  heap.pop_back();
  return e;
}
// ARPALINT-HOTPATH-END

void check_costs(const net::Topology& topo, std::span<const double> costs) {
  if (costs.size() != topo.link_count()) {
    throw std::invalid_argument("link cost vector size != link count");
  }
  for (const double c : costs) {
    if (!(c > 0.0)) throw std::invalid_argument("link costs must be positive");
  }
}

/// Re-derives parent links, first hops and hop counts from final distances.
///
/// The canonical parent of v is the lowest-id in-link (u,v) with
/// dist[u] + cost == dist[v]; because relaxations only ever propagate from
/// settled nodes, the achieving sum is bit-exact and the equality test is
/// safe. Deriving structure from distances (rather than keeping whatever
/// parents Dijkstra's settle order happened to produce) is what makes every
/// PSN compute the identical tree from identical costs.
// ARPALINT-HOTPATH-BEGIN
void derive_structure(const net::Topology& topo, std::span<const double> costs,
                      SpfTree& tree, std::vector<net::NodeId>& order) {
  const std::size_t n = topo.node_count();
  // ARPALINT-ALLOW(hot-path-alloc): same-size assigns reuse the tree's storage
  tree.parent_link.assign(n, net::kInvalidLink);
  // ARPALINT-ALLOW(hot-path-alloc): same-size assigns reuse the tree's storage
  tree.first_hop.assign(n, net::kInvalidLink);
  // ARPALINT-ALLOW(hot-path-alloc): same-size assigns reuse the tree's storage
  tree.hops.assign(n, -1);
  tree.hops[tree.root] = 0;

  for (const net::Link& l : topo.links()) {
    if (l.to == tree.root) continue;
    const double du = tree.dist[l.from];
    if (du == kInf) continue;
    if (du + costs[l.id] == tree.dist[l.to]) {
      if (tree.parent_link[l.to] == net::kInvalidLink ||
          l.id < tree.parent_link[l.to]) {
        tree.parent_link[l.to] = l.id;
      }
    }
  }

  // Positive costs mean dist strictly increases along tree edges, so any
  // nondecreasing-distance order visits parents before children (tie order
  // among equal distances is irrelevant: equal-dist nodes are never
  // parent/child). The caller's buffer persists between updates and an
  // incremental pass only perturbs the affected region's distances, so the
  // buffer is almost sorted already — insertion sort runs in
  // O(n + inversions), typically a single sweep, where a comparison sort
  // would pay its full O(n log n) on every rederivation.
  if (order.size() != n) {
    // ARPALINT-ALLOW(hot-path-alloc): grows once; persistent across updates
    order.resize(n);
    std::iota(order.begin(), order.end(), net::NodeId{0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    const net::NodeId v = order[i];
    const double dv = tree.dist[v];
    std::size_t j = i;
    for (; j > 0 && dv < tree.dist[order[j - 1]]; --j) order[j] = order[j - 1];
    order[j] = v;
  }
  for (const net::NodeId v : order) {
    if (v == tree.root || tree.parent_link[v] == net::kInvalidLink) continue;
    const net::Link& pl = topo.link(tree.parent_link[v]);
    // Parents settle before children in this order, so the parent's
    // structure must already exist — a -1 here means the distance array is
    // inconsistent with the parent derivation.
    ARPA_DCHECK(pl.from == tree.root || tree.hops[pl.from] >= 0)
        << "node " << v << " derived a parent (" << pl.from
        << ") with no structure yet";
    tree.hops[v] = tree.hops[pl.from] + 1;
    tree.first_hop[v] =
        (pl.from == tree.root) ? pl.id : tree.first_hop[pl.from];
  }
}
// ARPALINT-HOTPATH-END

}  // namespace

SpfTree Spf::compute(const net::Topology& topo, net::NodeId root,
                     std::span<const double> link_costs) {
  check_costs(topo, link_costs);
  if (root >= topo.node_count()) throw std::out_of_range("SPF root out of range");

  SpfTree tree;
  tree.root = root;
  tree.dist.assign(topo.node_count(), kInf);
  tree.dist[root] = 0.0;

  HeapVec heap;
  heap_push(heap, 0.0, root);
  std::vector<bool> settled(topo.node_count(), false);
  while (!heap.empty()) {
    const auto [d, u] = heap_pop(heap);
    if (settled[u]) continue;
    settled[u] = true;
    // Parallel CSR slices: the relaxation touches only the link id (cost
    // index) and the target node, never the 48-byte Link record.
    const std::span<const net::LinkId> lids = topo.out_links(u);
    const std::span<const net::NodeId> tos = topo.out_targets(u);
    for (std::size_t i = 0; i < lids.size(); ++i) {
      const double nd = d + link_costs[lids[i]];
      if (nd < tree.dist[tos[i]]) {
        tree.dist[tos[i]] = nd;
        heap_push(heap, nd, tos[i]);
      }
    }
  }

  std::vector<net::NodeId> order;
  derive_structure(topo, link_costs, tree, order);
  return tree;
}

IncrementalSpf::IncrementalSpf(const net::Topology& topo, net::NodeId root,
                               LinkCosts costs)
    : topo_{&topo}, costs_{std::move(costs)} {
  check_costs(topo, costs_);
  tree_ = Spf::compute(topo, root, costs_);
  ++full_;
  // Size the scratch up front: the passes' assign/resize/push_back then
  // never grow, even for a PSN whose first incremental update arrives long
  // after construction (the AllocGuard window assumes exactly this).
  const std::size_t n = topo.node_count();
  scratch_.heap.reserve(topo.link_count());
  scratch_.order.reserve(n);
  scratch_.affected.reserve(n);
  scratch_.stack.reserve(n);
  scratch_.child_start.reserve(n + 1);
  scratch_.child_list.reserve(n);
  scratch_.prev_first_hop.reserve(n);
}

void IncrementalSpf::reset(LinkCosts costs) {
  check_costs(*topo_, costs);
  costs_ = std::move(costs);
  tree_ = Spf::compute(*topo_, tree_.root, costs_);
  ++full_;
}

// ARPALINT-HOTPATH-BEGIN
void IncrementalSpf::set_cost(net::LinkId link, double new_cost) {
  if (!(new_cost > 0.0)) throw std::invalid_argument("link costs must be positive");
  const double old_cost = costs_.at(link);
  if (new_cost == old_cost) return;

  if (new_cost > old_cost && !tree_.uses_link(*topo_, link)) {
    // A cost increase on a link not in the tree cannot improve or invalidate
    // any path; the PSN skips all work (paper section 2.2).
    costs_[link] = new_cost;
    ++skipped_;
    return;
  }

  costs_[link] = new_cost;
  ++incremental_;
  if (new_cost < old_cost) {
    decrease_pass(link);
  } else {
    increase_pass(link);
  }
  rederive_structure();
}

void IncrementalSpf::decrease_pass(net::LinkId link) {
  const net::Link& l = topo_->link(link);
  if (tree_.dist[l.from] == kInf) return;
  const double cand = tree_.dist[l.from] + costs_[link];
  if (cand >= tree_.dist[l.to]) return;

  HeapVec& heap = scratch_.heap;
  heap.clear();
  heap_push(heap, cand, l.to);
  while (!heap.empty()) {
    const auto [d, w] = heap_pop(heap);
    if (d >= tree_.dist[w]) continue;
    tree_.dist[w] = d;
    ++nodes_touched_;
    const std::span<const net::LinkId> lids = topo_->out_links(w);
    const std::span<const net::NodeId> tos = topo_->out_targets(w);
    for (std::size_t i = 0; i < lids.size(); ++i) {
      const double nd = d + costs_[lids[i]];
      if (nd < tree_.dist[tos[i]]) heap_push(heap, nd, tos[i]);
    }
  }
}

void IncrementalSpf::increase_pass(net::LinkId link) {
  const net::Link& l = topo_->link(link);
  const std::size_t n = topo_->node_count();

  // Affected region: the subtree hanging below the head of the increased
  // link. Everything else keeps its distance. The children adjacency is a
  // two-pass counting build into a CSR index (child_start/child_list) so no
  // per-node vectors are allocated.
  auto& cs = scratch_.child_start;
  auto& cl = scratch_.child_list;
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  cs.assign(n + 1, 0);
  for (net::NodeId v = 0; v < n; ++v) {
    const net::LinkId pl = tree_.parent_link[v];
    if (pl != net::kInvalidLink) ++cs[topo_->link(pl).from + 1];
  }
  for (std::size_t u = 0; u < n; ++u) cs[u + 1] += cs[u];
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  cl.resize(cs[n]);
  // The fill advances cs[u] from u's start offset to its end offset, so
  // afterwards u's children live in cl[cs[u-1] .. cs[u]) (start of node 0
  // is 0).
  for (net::NodeId v = 0; v < n; ++v) {
    const net::LinkId pl = tree_.parent_link[v];
    if (pl != net::kInvalidLink) cl[cs[topo_->link(pl).from]++] = v;
  }

  auto& affected = scratch_.affected;
  auto& stack = scratch_.stack;
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  affected.assign(n, 0);
  stack.clear();
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  stack.push_back(l.to);
  affected[l.to] = 1;
  while (!stack.empty()) {
    const net::NodeId v = stack.back();
    stack.pop_back();
    const std::uint32_t begin = (v == 0) ? 0 : cs[v - 1];
    for (std::uint32_t i = begin; i < cs[v]; ++i) {
      const net::NodeId c = cl[i];
      if (!affected[c]) {
        affected[c] = 1;
        // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
        stack.push_back(c);
      }
    }
  }

  // Re-run Dijkstra over the affected region, seeded with the best entry
  // from the unaffected frontier (which includes the increased link itself).
  HeapVec& heap = scratch_.heap;
  heap.clear();
  for (net::NodeId v = 0; v < n; ++v) {
    if (!affected[v]) continue;
    tree_.dist[v] = kInf;
    ++nodes_touched_;
  }
  for (const net::Link& in : topo_->links()) {
    if (!affected[in.to] || affected[in.from]) continue;
    if (tree_.dist[in.from] == kInf) continue;
    heap_push(heap, tree_.dist[in.from] + costs_[in.id], in.to);
  }
  while (!heap.empty()) {
    const auto [d, w] = heap_pop(heap);
    if (d >= tree_.dist[w]) continue;
    tree_.dist[w] = d;
    const std::span<const net::LinkId> lids = topo_->out_links(w);
    const std::span<const net::NodeId> tos = topo_->out_targets(w);
    for (std::size_t i = 0; i < lids.size(); ++i) {
      if (!affected[tos[i]]) continue;
      const double nd = d + costs_[lids[i]];
      if (nd < tree_.dist[tos[i]]) heap_push(heap, nd, tos[i]);
    }
  }
}

void IncrementalSpf::rederive_structure() {
  // ARPALINT-ALLOW(hot-path-alloc): persistent scratch retains capacity
  scratch_.prev_first_hop.assign(tree_.first_hop.begin(), tree_.first_hop.end());
  derive_structure(*topo_, costs_, tree_, scratch_.order);
  for (std::size_t v = 0; v < tree_.first_hop.size(); ++v) {
    if (tree_.first_hop[v] != scratch_.prev_first_hop[v]) ++first_hop_changes_;
  }
}
// ARPALINT-HOTPATH-END

std::vector<std::vector<int>> min_hop_lengths(const net::Topology& topo) {
  const std::size_t n = topo.node_count();
  std::vector<std::vector<int>> result(n, std::vector<int>(n, -1));
  for (net::NodeId src = 0; src < n; ++src) {
    auto& row = result[src];
    row[src] = 0;
    std::queue<net::NodeId> q;
    q.push(src);
    while (!q.empty()) {
      const net::NodeId u = q.front();
      q.pop();
      for (const net::NodeId v : topo.out_targets(u)) {
        if (row[v] == -1) {
          row[v] = row[u] + 1;
          q.push(v);
        }
      }
    }
  }
  return result;
}

}  // namespace arpanet::routing
