#include "src/routing/multipath.h"

#include <limits>
#include <stdexcept>

namespace arpanet::routing {

MultipathSets MultipathSets::compute(const net::Topology& topo, net::NodeId root,
                                     std::span<const double> costs,
                                     double tolerance) {
  if (tolerance < 0.0) throw std::invalid_argument("negative multipath tolerance");
  for (const double c : costs) {
    if (tolerance >= c) {
      throw std::invalid_argument(
          "multipath tolerance must be below every link cost (loop freedom)");
    }
  }
  MultipathSets mp;
  mp.root_ = root;
  mp.sets_.resize(topo.node_count());

  const SpfTree own = Spf::compute(topo, root, costs);

  // One SPF per distinct neighbor (a neighbor reachable over two parallel
  // trunks is computed once).
  std::vector<const SpfTree*> neighbor_tree_of_link(topo.link_count(), nullptr);
  std::vector<SpfTree> neighbor_trees;
  neighbor_trees.reserve(topo.out_links(root).size());
  std::vector<int> tree_index(topo.node_count(), -1);
  for (const net::LinkId lid : topo.out_links(root)) {
    const net::NodeId x = topo.link(lid).to;
    if (tree_index[x] == -1) {
      tree_index[x] = static_cast<int>(neighbor_trees.size());
      neighbor_trees.push_back(Spf::compute(topo, x, costs));
    }
  }
  for (const net::LinkId lid : topo.out_links(root)) {
    neighbor_tree_of_link[lid] =
        &neighbor_trees[static_cast<std::size_t>(tree_index[topo.link(lid).to])];
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (net::NodeId dst = 0; dst < topo.node_count(); ++dst) {
    if (dst == root || own.dist[dst] == kInf) continue;
    // Numerical slack absorbs the different summation orders of the two
    // Dijkstra runs; the caller's tolerance admits nearly-equal paths (see
    // header for why both keep forwarding loop-free).
    const double tol = tolerance + 1e-9 * (1.0 + own.dist[dst]);
    for (const net::LinkId lid : topo.out_links(root)) {
      const double via = costs[lid] + neighbor_tree_of_link[lid]->dist[dst];
      if (via <= own.dist[dst] + tol) {
        mp.sets_[dst].push_back(lid);
      }
    }
  }
  return mp;
}

std::vector<MultipathSets> compute_all_multipath(const net::Topology& topo,
                                                 std::span<const double> costs) {
  std::vector<MultipathSets> all;
  all.reserve(topo.node_count());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    all.push_back(MultipathSets::compute(topo, n, costs));
  }
  return all;
}

}  // namespace arpanet::routing
