// The original (1969) ARPANET routing algorithm: distributed Bellman-Ford.
//
// Each node keeps a table of estimated distances to every other node and
// exchanges it with its neighbors every 2/3 second; on each exchange it
// re-minimizes over (link metric to neighbor + neighbor's advertised
// distance). The link metric was the *instantaneous* output queue length at
// the moment of updating plus a fixed constant (paper section 2.1).
//
// This implementation models the synchronous-round behaviour: run_round()
// performs one network-wide exchange using the advertisements from the
// *previous* round, which is exactly the information staleness that caused
// the historical algorithm's persistent loops under a volatile metric. It is
// included as the paper's first baseline and to demonstrate those loops.

#pragma once

#include <span>
#include <vector>

#include "src/net/topology.h"

namespace arpanet::routing {

class DistributedBellmanFord {
 public:
  /// The fixed constant added to the instantaneous queue length; the paper
  /// notes this positive bias "helped to alleviate" routing oscillations.
  static constexpr double kDefaultBias = 1.0;

  explicit DistributedBellmanFord(const net::Topology& topo,
                                  double bias = kDefaultBias);

  /// One synchronous exchange round: every node recomputes its distance
  /// vector from its neighbors' previous-round vectors and the current link
  /// metrics (metric for link l = queue_lengths[l] + bias). Returns the
  /// number of (node, destination) estimates that changed.
  int run_round(std::span<const double> queue_lengths);

  /// Runs rounds with the given (static) queue lengths until no estimate
  /// changes or max_rounds is hit. Returns rounds executed.
  int run_to_convergence(std::span<const double> queue_lengths, int max_rounds = 1000);

  [[nodiscard]] double distance(net::NodeId from, net::NodeId to) const {
    return dist_.at(from).at(to);
  }
  /// The outgoing link `from` currently uses toward `to` (kInvalidLink if
  /// from == to or no estimate yet).
  [[nodiscard]] net::LinkId next_hop(net::NodeId from, net::NodeId to) const {
    return next_.at(from).at(to);
  }

  /// True if following next hops from src toward dst revisits a node —
  /// i.e. the current tables contain a routing loop for this pair.
  [[nodiscard]] bool has_loop(net::NodeId src, net::NodeId dst) const;

 private:
  const net::Topology* topo_;
  double bias_;
  std::vector<std::vector<double>> dist_;     // [node][dst]
  std::vector<std::vector<net::LinkId>> next_;  // [node][dst]
};

}  // namespace arpanet::routing
