// Routing algorithm selector.

#pragma once

namespace arpanet::routing {

/// Which route computation generation a simulated network runs:
///  * kSpf           — the May 1979 scheme: full-topology SPF driven by
///                     flooded link-cost updates (pair with any LinkMetric).
///  * kDistanceVector — the original 1969 scheme: distributed Bellman-Ford
///                     with neighbor table exchange every 2/3 second and an
///                     instantaneous queue-length link metric. Kept as the
///                     paper's historical baseline (section 2.1); its
///                     transient loops and table-exchange overhead are
///                     observable in the simulator.
enum class RoutingAlgorithm { kSpf, kDistanceVector };

[[nodiscard]] constexpr const char* to_string(RoutingAlgorithm a) {
  switch (a) {
    case RoutingAlgorithm::kSpf: return "SPF";
    case RoutingAlgorithm::kDistanceVector: return "Bellman-Ford-1969";
  }
  return "?";
}

}  // namespace arpanet::routing
