// Equal-cost multi-path forwarding (the paper's section 4.5 extension).
//
// "HN-SPF can only accomplish load-sharing indirectly ... To accomplish
// load-sharing when network traffic is dominated by several large flows
// would require a multi-path routing algorithm." This module implements the
// natural SPF-compatible version: a node forwards a destination's packets
// over *every* outgoing link that lies on some shortest path, i.e. every
// link l = (r, x) with cost(l) + dist(x, dst) == dist(r, dst).
//
// Measured metrics never make two parallel paths *exactly* equal — reported
// costs carry noise up to the metric's own reporting granularity (about a
// half-hop for HN-SPF). compute() therefore accepts a tolerance: links whose
// via-cost is within `tolerance` of the optimum join the set. Loop freedom
// survives as long as the tolerance is smaller than every link cost: each
// admitted next hop still strictly decreases the remaining distance
// (dist(x,dst) <= dist(r,dst) + tolerance - cost(l) < dist(r,dst)), so any
// walk over consistent cost maps terminates — the same consistency argument
// that protects single-path SPF.

#pragma once

#include <span>
#include <vector>

#include "src/routing/spf.h"

namespace arpanet::routing {

/// Shortest-path next-hop *sets* for one root node.
class MultipathSets {
 public:
  /// Computes the sets for `root` given global link costs. Runs one SPF per
  /// distinct neighbor plus one for the root. `tolerance` (routing units)
  /// widens membership to nearly-equal paths; it must be smaller than the
  /// cheapest link cost (checked) to preserve loop freedom.
  [[nodiscard]] static MultipathSets compute(const net::Topology& topo,
                                             net::NodeId root,
                                             std::span<const double> costs,
                                             double tolerance = 0.0);

  /// All equal-cost outgoing links toward dst (empty if unreachable or
  /// dst == root). The single-path first hop is always a member.
  [[nodiscard]] std::span<const net::LinkId> next_hops(net::NodeId dst) const {
    return sets_.at(dst);
  }

  [[nodiscard]] net::NodeId root() const { return root_; }

 private:
  net::NodeId root_ = net::kInvalidNode;
  std::vector<std::vector<net::LinkId>> sets_;  // [dst] -> links
};

/// Analysis-side helper: per-node multipath sets for the whole network.
/// Returned vector is indexed by root node.
[[nodiscard]] std::vector<MultipathSets> compute_all_multipath(
    const net::Topology& topo, std::span<const double> costs);

}  // namespace arpanet::routing
