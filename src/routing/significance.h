// Update-generation significance criterion.
//
// A PSN does not flood a new cost every measurement period; the change must
// pass a significance test. Under D-SPF the threshold *decays* each time it
// is not met, so that an update goes out at most 50 seconds after the last
// one even on a quiet link (paper section 2.2). HN-SPF replaced the decay
// with a fixed threshold of a little less than half a hop (paper section
// 4.3, "Minimum Change") while keeping the 50-second reliability cap.
// Both behaviours are expressed by one filter with different configs.

#pragma once

#include <stdexcept>

namespace arpanet::routing {

class SignificanceFilter {
 public:
  struct Config {
    /// Threshold a cost change must reach to be reported (routing units).
    double threshold = 0.0;
    /// Amount subtracted from the working threshold after each period in
    /// which no update was generated (D-SPF style decay; 0 = fixed).
    double decay_per_period = 0.0;
    /// Hard cap: an update is forced after this many consecutive quiet
    /// periods (the ARPANET's 50 s / 10 s-period reliability rule).
    int max_quiet_periods = 5;
  };

  /// D-SPF defaults: threshold 64 routing units decaying by 12.8 per 10 s
  /// period, reaching zero at the fifth period — the historical constants'
  /// shape (update at latest every 50 s).
  [[nodiscard]] static Config dspf_config() { return Config{64.0, 12.8, 5}; }

  /// HN-SPF: fixed threshold supplied by the metric ("a little less than a
  /// half-hop" for the line type), 50 s cap retained.
  [[nodiscard]] static Config fixed_config(double threshold) {
    return Config{threshold, 0.0, 5};
  }

  explicit SignificanceFilter(Config cfg) : cfg_{cfg}, working_threshold_{cfg.threshold} {
    if (cfg.threshold < 0 || cfg.decay_per_period < 0 || cfg.max_quiet_periods < 1) {
      throw std::invalid_argument("invalid SignificanceFilter config");
    }
  }

  /// Called once per measurement period with the metric's candidate cost.
  /// Returns true if an update should be generated (and records the value
  /// as reported).
  bool should_report(double candidate) {
    if (!ever_reported_) {
      note_reported(candidate);
      return true;
    }
    const double change =
        candidate >= last_reported_ ? candidate - last_reported_ : last_reported_ - candidate;
    ++quiet_periods_;
    if (change >= working_threshold_ || quiet_periods_ >= cfg_.max_quiet_periods) {
      note_reported(candidate);
      return true;
    }
    working_threshold_ -= cfg_.decay_per_period;
    if (working_threshold_ < 0) working_threshold_ = 0;
    return false;
  }

  /// Records `value` as reported without testing it. Used when a node
  /// bundles all its links into one update because some *other* link's
  /// change was significant — every included value becomes the new baseline.
  void force_report(double value) { note_reported(value); }

  [[nodiscard]] double last_reported() const { return last_reported_; }
  [[nodiscard]] double working_threshold() const { return working_threshold_; }

 private:
  void note_reported(double value) {
    last_reported_ = value;
    ever_reported_ = true;
    quiet_periods_ = 0;
    working_threshold_ = cfg_.threshold;
  }

  Config cfg_;
  double working_threshold_;
  double last_reported_ = 0.0;
  bool ever_reported_ = false;
  int quiet_periods_ = 0;
};

}  // namespace arpanet::routing
