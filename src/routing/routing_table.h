// Forwarding tables and path tracing.
//
// ARPANET forwarding is destination-based and single-path: a packet header
// carries only the destination PSN, and each PSN's table maps destination to
// one outgoing link (paper section 2). This module derives those tables from
// SPF trees and provides the hop-by-hop path walk used by the simulator's
// diagnostics and by the analysis layer. Because each node routes
// independently, a walk can loop when nodes hold inconsistent costs; the
// trace reports that rather than hiding it — transient loops are part of the
// phenomenon under study.

#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "src/net/topology.h"
#include "src/routing/spf.h"

namespace arpanet::routing {

/// All nodes' forwarding tables, derived from per-node SPF over one shared
/// cost vector. next_hop(n, d) is the outgoing link node n uses for packets
/// destined to d (kInvalidLink if d == n or unreachable).
///
/// Storage is one flat node-major array (node n's row is the contiguous
/// stride starting at n * node_count), so the all-pairs analyses that walk
/// whole rows stream linear memory instead of chasing a vector per node.
class ForwardingTables {
 public:
  ForwardingTables() = default;

  /// Builds tables for every node with a full SPF each. Analysis-side helper;
  /// the simulator instead maintains one IncrementalSpf per PSN.
  [[nodiscard]] static ForwardingTables compute_all(const net::Topology& topo,
                                                    std::span<const double> costs);

  /// Builds from already-computed trees (one per node, index = root id).
  [[nodiscard]] static ForwardingTables from_trees(std::span<const SpfTree> trees);

  [[nodiscard]] net::LinkId next_hop(net::NodeId node, net::NodeId dst) const {
    return table_[idx(node, dst)];
  }

  void set_next_hop(net::NodeId node, net::NodeId dst, net::LinkId link) {
    table_[idx(node, dst)] = link;
  }

  /// Node n's full row: next hop per destination, indexed by NodeId.
  [[nodiscard]] std::span<const net::LinkId> row(net::NodeId node) const {
    return {table_.data() + idx(node, 0), stride_};
  }

  [[nodiscard]] std::size_t node_count() const {
    return stride_ == 0 ? 0 : table_.size() / stride_;
  }

 private:
  [[nodiscard]] std::size_t idx(net::NodeId node, net::NodeId dst) const {
    if (node >= node_count() || dst >= stride_) {
      throw std::out_of_range("ForwardingTables: node or destination id out of range");
    }
    return node * stride_ + dst;
  }

  std::vector<net::LinkId> table_;  ///< node-major, stride_ entries per node
  std::size_t stride_ = 0;          ///< = node_count of the topology
};

/// Result of walking a packet's path through the forwarding tables.
struct PathTrace {
  std::vector<net::LinkId> links;  ///< links traversed, in order
  bool reached = false;            ///< destination was reached
  bool looped = false;             ///< a node was visited twice
  [[nodiscard]] int hops() const { return static_cast<int>(links.size()); }
};

/// Walks from src toward dst, following each node's next hop.
[[nodiscard]] PathTrace trace_path(const net::Topology& topo,
                                   const ForwardingTables& tables,
                                   net::NodeId src, net::NodeId dst);

}  // namespace arpanet::routing
