// Routing-update dissemination (flooding).
//
// After the May 1979 change, routing updates carry only link-cost
// information: each PSN periodically originates an update reporting the
// costs of its own outgoing links, stamped with a per-origin sequence
// number, and every PSN forwards a newly-seen update on all links other than
// the one it arrived on (Rosen, "The Updating Protocol of ARPANET's New
// Routing Algorithm"). This module implements the origin/accept/forward
// decisions; the simulator provides transport, delivery delay and the
// high-priority treatment that makes all nodes react near-simultaneously
// (one of the oscillation ingredients in paper section 3.2).

#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"

namespace arpanet::routing {

/// One link's reported cost inside an update.
struct LinkCostReport {
  net::LinkId link = net::kInvalidLink;
  double cost = 0.0;
};

/// A routing update as flooded through the network.
struct RoutingUpdate {
  net::NodeId origin = net::kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<LinkCostReport> reports;

  /// Wire size in bits, used to charge the update against link bandwidth
  /// (paper section 3.3 point 4: update traffic consumes link bandwidth).
  /// Header ~128 bits plus 32 bits per reported link.
  [[nodiscard]] double wire_bits() const {
    return 128.0 + 32.0 * static_cast<double>(reports.size());
  }
};

/// Per-node flooding state: duplicate suppression by origin sequence number.
class FloodingState {
 public:
  explicit FloodingState(std::size_t node_count)
      : last_seq_(node_count, 0) {}
  /// Sized for one slot per node of `topo`.
  explicit FloodingState(const net::Topology& topo);

  /// Forgets all sequence numbers and counters and resizes for `node_count`
  /// nodes (a PSN restart loses its flooding memory).
  void reset(std::size_t node_count);

  /// True iff this update is newer than anything previously seen from its
  /// origin; if so, records it (caller should then apply and forward it).
  bool accept(const RoutingUpdate& update) {
    auto& last = last_seq_.at(update.origin);
    if (update.seq <= last) {
      ++duplicates_;
      return false;
    }
    last = update.seq;
    ++accepted_;
    return true;
  }

  [[nodiscard]] std::uint64_t last_seq(net::NodeId origin) const {
    return last_seq_.at(origin);
  }
  [[nodiscard]] long accepted() const { return accepted_; }
  [[nodiscard]] long duplicates() const { return duplicates_; }

 private:
  std::vector<std::uint64_t> last_seq_;
  long accepted_ = 0;
  long duplicates_ = 0;
};

/// Number of copies a node forwards when a newly-accepted update arrives on
/// `arrived_on` (an in-link of `node`, or kInvalidLink for a self-originated
/// update): every outgoing link except the arrival link's reverse. Walks the
/// topology's CSR span; used by the protocol tests to cross-check the
/// simulator's flooding fan-out.
[[nodiscard]] std::size_t flood_copy_count(const net::Topology& topo,
                                           net::NodeId node,
                                           net::LinkId arrived_on);

}  // namespace arpanet::routing
