// Deterministic random number generation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64
// rather than relying on std::mt19937 so that streams are cheap to split
// (every traffic source gets an independent, reproducible stream derived
// from the scenario seed) and results are identical across standard-library
// implementations.

#pragma once

#include <array>
#include <cstdint>

namespace arpanet::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1987'07'26ULL);  // default: HNM install week

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// A new generator whose stream is statistically independent of this one.
  /// Derived deterministically from the parent state and `stream_id` so
  /// that e.g. traffic source i always sees the same stream for a given
  /// scenario seed, regardless of construction order elsewhere.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Exponential with the given mean (> 0). Used for Poisson interarrivals.
  double exponential(double mean);
  /// true with probability p.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace arpanet::util
