// Strong unit types used throughout the library.
//
// The simulator works in integer microseconds (SimTime) so event ordering is
// exact and runs are bit-reproducible across platforms; rates and sizes carry
// their units in the type so a bandwidth can never be confused with a delay
// (C++ Core Guidelines P.1/I.4: make interfaces precisely and strongly typed).

#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace arpanet::util {

/// A point in (or span of) simulated time, in integer microseconds.
///
/// SimTime is used both as an absolute clock value (microseconds since the
/// start of the run) and as a duration; the arithmetic operators below cover
/// both uses. Construction is explicit via the from_* factories so callers
/// always state the unit.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e3 + (ms >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr SimTime from_sec(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) { us_ += o.us_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { us_ -= o.us_; return *this; }

  [[nodiscard]] friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Link bandwidth in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bps(double v) { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate kbps(double v) { return DataRate{v * 1e3}; }

  [[nodiscard]] constexpr double bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double kilobits_per_sec() const { return bps_ / 1e3; }

  /// Time to serialize `bits` onto a line of this rate.
  [[nodiscard]] constexpr SimTime transmission_time(double bits) const {
    return SimTime::from_sec(bits / bps_);
  }

  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  constexpr explicit DataRate(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

/// The network-wide average packet size the ARPANET HNM assumed when
/// converting delay to utilization with its M/M/1 model (paper section 4.1).
inline constexpr double kAveragePacketBits = 600.0;

}  // namespace arpanet::util
