// Runtime allocation accounting: the dynamic complement to arpalint's
// static hot-path-alloc rule (tools/arpalint, docs/static_analysis.md).
//
// The static analyzer proves the annotated hot regions contain no
// lexically-visible allocating calls; AllocGuard proves the runtime truth —
// that a steady-state measurement window really performs zero heap
// allocations — by interposing the global operator new/delete (see
// alloc_guard.cpp) and counting per-thread. An RAII guard snapshots the
// thread's counters on entry, so `guard.allocations()` is exactly the
// number of heap allocations this thread made inside the scope.
//
// The interposed operators count unconditionally into thread_local
// integers (two increments per allocation — negligible against the
// allocation itself), so guards nest trivially and sweep worker threads
// never contend. sim::run_scenario wraps every measurement window in a
// guard and reports the result through obs::Counters
// (alloc_guard_scopes / alloc_guard_bytes_peak); tests/stress_test.cpp
// asserts the arpanet87 battery cell's window counts zero under Release.

#pragma once

#include <cstdint>

namespace arpanet::util {

/// Counts this thread's heap allocations between construction and the call
/// sites of allocations()/bytes(). Cheap enough to wrap every measurement
/// window unconditionally.
class AllocGuard {
 public:
  AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Heap allocations (operator new calls) this thread made since the
  /// guard was constructed.
  [[nodiscard]] std::uint64_t allocations() const;
  /// Bytes requested by those allocations.
  [[nodiscard]] std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocations_;
  std::uint64_t start_bytes_;
};

/// Lifetime totals for the calling thread (monotonic; what AllocGuard
/// snapshots). Exposed for tests of the interposition itself.
[[nodiscard]] std::uint64_t thread_allocations();
[[nodiscard]] std::uint64_t thread_alloc_bytes();

}  // namespace arpanet::util
