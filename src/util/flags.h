// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value and boolean --name. Unknown-flag detection is the
// caller's job via unknown(): the parser records which flags were consumed
// so a tool can reject typos instead of silently ignoring them.

#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace arpanet::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Raw value of --name=value (empty optional if absent).
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view def) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] long get_long(std::string_view name, long def) const;
  /// True if --name was passed (with or without a value).
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Flags present on the command line that no get* call asked about.
  [[nodiscard]] std::vector<std::string> unknown() const;

  /// Positional (non --flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string, std::less<>> queried_;
};

}  // namespace arpanet::util
