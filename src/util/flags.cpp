#include "src/util/flags.h"

#include <charconv>

namespace arpanet::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_.emplace(std::string(body), "");
    } else {
      values_.emplace(std::string(body.substr(0, eq)),
                      std::string(body.substr(eq + 1)));
    }
  }
}

std::optional<std::string> Flags::get(std::string_view name) const {
  queried_.emplace(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(std::string_view name, std::string_view def) const {
  const auto v = get(name);
  return v ? *v : std::string(def);
}

double Flags::get_double(std::string_view name, double def) const {
  const auto v = get(name);
  if (!v) return def;
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                ": expected a number, got '" + *v + "'");
  }
  return out;
}

long Flags::get_long(std::string_view name, long def) const {
  const auto v = get(name);
  if (!v) return def;
  long out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                ": expected an integer, got '" + *v + "'");
  }
  return out;
}

bool Flags::get_bool(std::string_view name) const {
  return get(name).has_value();
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace arpanet::util
