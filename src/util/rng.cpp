#include "src/util/rng.h"

#include <bit>
#include <cmath>

namespace arpanet::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return std::rotl(x, k); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the parent's state with the stream id through SplitMix64; the child
  // seed differs in every bit for distinct stream ids with overwhelming
  // probability, giving independent streams without jump polynomials.
  SplitMix64 sm{s_[0] ^ rotl(s_[3], 13) ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1))};
  return Rng{sm.next()};
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // the n (< 2^32) used here, and determinism is what matters. __extension__
  // keeps -Wpedantic quiet about the GCC/Clang 128-bit builtin.
  __extension__ using Uint128 = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<Uint128>(next()) * n) >> 64);
}

double Rng::exponential(double mean) {
  // Avoid log(0) by nudging u away from zero.
  const double u = 1.0 - uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace arpanet::util
