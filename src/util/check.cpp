#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace arpanet::util::check_internal {

FailureMessage::FailureMessage(const char* file, int line,
                               const char* condition) {
  stream_ << file << ":" << line << ": ARPA_CHECK failed: " << condition
          << " ";
}

FailureMessage::~FailureMessage() {
  // Single unbuffered write so the message survives the abort even when
  // stderr is redirected (gtest death tests match against this output).
  const std::string message = stream_.str() + "\n";
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace arpanet::util::check_internal
