// Fatal invariant checks: ARPA_CHECK and ARPA_DCHECK.
//
// The library's correctness story (docs/static_analysis.md) layers three
// mechanisms: sanitizers catch memory/UB/race errors, clang-tidy catches
// bug patterns statically, and these macros catch *semantic* violations —
// the paper's own invariants (cost bounds, movement limits, event-time
// monotonicity) enforced at runtime by src/analysis/invariants.h.
//
//   ARPA_CHECK(cost <= max) << "link " << id << " reported " << cost;
//
// On failure the streamed message is printed to stderr with file:line and
// the stringified condition, then std::abort() — so a violation is loud,
// immediate, and death-testable, never a silently corrupted CSV.
//
//   * ARPA_CHECK  — always on, in every build type. Use it where the check
//     runs at most a handful of times per scenario (end-of-run audits,
//     construction, per-update-origination validation).
//   * ARPA_DCHECK — compiled out when NDEBUG is defined (Release /
//     RelWithDebInfo), so hot paths (per-period metric transforms, the
//     event loop) stay free in optimized builds. The condition and message
//     still type-check in all builds but are never evaluated under NDEBUG.

#pragma once

#include <ostream>
#include <sstream>

namespace arpanet::util::check_internal {

// Accumulates the failure message for one failed ARPA_CHECK. The destructor
// — which runs at the end of the failing full-expression, after every `<<`
// has appended — prints the assembled message and aborts.
class FailureMessage {
 public:
  FailureMessage(const char* file, int line, const char* condition);
  ~FailureMessage();  // prints to stderr and calls std::abort()

  FailureMessage(const FailureMessage&) = delete;
  FailureMessage& operator=(const FailureMessage&) = delete;

  [[nodiscard]] std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Gives the failure arm of the ternary in ARPA_CHECK type void, whatever
// message types were streamed. operator& binds looser than operator<<, so
// the whole `<<` chain completes first.
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace arpanet::util::check_internal

/// Always-on invariant check. On failure, prints the condition plus any
/// streamed message and aborts. Usable as a statement with optional
/// `<< message` chain.
#define ARPA_CHECK(condition)                                       \
  __builtin_expect(static_cast<bool>(condition), 1)                 \
      ? (void)0                                                     \
      : ::arpanet::util::check_internal::Voidify{} &                \
            ::arpanet::util::check_internal::FailureMessage(        \
                __FILE__, __LINE__, #condition)                     \
                .stream()

/// Debug-only invariant check: identical to ARPA_CHECK unless NDEBUG is
/// defined, in which case the condition and message are type-checked but
/// never evaluated (zero cost in release hot paths).
#ifdef NDEBUG
#define ARPA_DCHECK(condition) \
  while (false) ARPA_CHECK(condition)
#else
#define ARPA_DCHECK(condition) ARPA_CHECK(condition)
#endif
