// Global operator new/delete replacement with per-thread accounting.
//
// Every replaceable allocation form funnels into counted_alloc(), which
// bumps two thread_local counters and delegates to std::malloc (aligned
// requests via posix_memalign); every delete form funnels into std::free,
// which handles both. Replacing the operators here — in the translation
// unit that also defines AllocGuard — means any binary using the guard
// links the counting allocator automatically, and binaries that never
// reference it keep the toolchain default.
//
// Works under the sanitizers: ASan/TSan intercept the underlying malloc /
// free, so leak and race detection still see every allocation; only
// new/delete mismatch checking is ceded, which the tier-1 non-sanitized
// build retains. The counters are trivially-destructible thread_locals, so
// the operators are safe during static initialization and thread start-up.

#include "src/util/alloc_guard.h"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace arpanet::util {

namespace {

thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_bytes = 0;

void* counted_alloc(std::size_t size, std::size_t align) noexcept {
  ++t_allocations;
  t_bytes += size;
  if (align <= alignof(std::max_align_t)) return std::malloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

void* counted_alloc_or_throw(std::size_t size, std::size_t align) {
  for (;;) {
    if (void* p = counted_alloc(size, align)) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

}  // namespace

AllocGuard::AllocGuard()
    : start_allocations_{t_allocations}, start_bytes_{t_bytes} {}

std::uint64_t AllocGuard::allocations() const {
  return t_allocations - start_allocations_;
}

std::uint64_t AllocGuard::bytes() const { return t_bytes - start_bytes_; }

std::uint64_t thread_allocations() { return t_allocations; }

std::uint64_t thread_alloc_bytes() { return t_bytes; }

}  // namespace arpanet::util

// ---- replaced global allocation functions ----

namespace {
constexpr std::size_t kDefaultAlign = alignof(std::max_align_t);
}

void* operator new(std::size_t size) {
  return arpanet::util::counted_alloc_or_throw(size, kDefaultAlign);
}

void* operator new[](std::size_t size) {
  return arpanet::util::counted_alloc_or_throw(size, kDefaultAlign);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return arpanet::util::counted_alloc_or_throw(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return arpanet::util::counted_alloc_or_throw(
      size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return arpanet::util::counted_alloc(size, kDefaultAlign);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return arpanet::util::counted_alloc(size, kDefaultAlign);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return arpanet::util::counted_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return arpanet::util::counted_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
