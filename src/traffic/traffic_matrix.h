// Traffic matrices.
//
// An N x N matrix of offered load (bits/second) between PSN pairs. The
// paper's section 5 analysis runs against "the July 1987 ARPANET topology
// and peak hour traffic matrix"; builders below synthesize matrices with the
// properties that analysis depends on (many small node-to-node flows — the
// regime the paper says single-path routing handles well, section 4.5).

#pragma once

#include <cstddef>
#include <vector>

#include "src/net/topology.h"
#include "src/util/rng.h"

namespace arpanet::traffic {

class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t nodes);

  [[nodiscard]] std::size_t nodes() const { return n_; }

  [[nodiscard]] double at(net::NodeId src, net::NodeId dst) const {
    return rates_[index(src, dst)];
  }
  void set(net::NodeId src, net::NodeId dst, double bps);
  void add(net::NodeId src, net::NodeId dst, double bps);

  /// Sum of all entries (bits/second offered network-wide).
  [[nodiscard]] double total_bps() const;

  /// Multiplies every entry; used for offered-load sweeps.
  void scale(double factor);
  /// Rescales so total_bps() == total.
  void normalize_total(double total_bps);

  // ---- builders ----

  /// Equal rate between every ordered pair.
  [[nodiscard]] static TrafficMatrix uniform(std::size_t nodes, double total_bps);

  /// Gravity model: rate(s,d) proportional to w[s]*w[d].
  [[nodiscard]] static TrafficMatrix gravity(const std::vector<double>& weights,
                                             double total_bps);

  /// Synthetic "peak hour" matrix: log-normal-ish node weights drawn from
  /// rng feed a gravity model, giving a few busy hosts and many small flows.
  [[nodiscard]] static TrafficMatrix peak_hour(std::size_t nodes, double total_bps,
                                               util::Rng rng);

 private:
  [[nodiscard]] std::size_t index(net::NodeId s, net::NodeId d) const {
    return static_cast<std::size_t>(s) * n_ + d;
  }
  std::size_t n_;
  std::vector<double> rates_;
};

}  // namespace arpanet::traffic
