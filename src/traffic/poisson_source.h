// Poisson packet arrival sampling.
//
// Each nonzero traffic-matrix entry becomes an independent Poisson arrival
// process with shifted-exponential packet sizes, matching the M/M/1
// assumptions of the HNM's delay-to-utilization conversion (mean 600 bits
// network-wide).

#pragma once

#include "src/util/rng.h"
#include "src/util/units.h"

namespace arpanet::traffic {

/// Interarrival-gap sampler for a Poisson process.
class PoissonProcess {
 public:
  PoissonProcess(double rate_per_sec, util::Rng rng);

  [[nodiscard]] double rate_per_sec() const { return rate_; }
  /// Next exponential interarrival gap.
  [[nodiscard]] util::SimTime next_gap();

 private:
  double rate_;
  util::Rng rng_;
};

/// Packet sizes: floor + exponential tail, with the configured overall mean.
/// The floor models minimum header size; with the 600-bit default mean and
/// 32-bit floor the tail mean is 568 bits.
class PacketSizer {
 public:
  explicit PacketSizer(double mean_bits, double floor_bits = 32.0);

  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean_bits() const { return mean_; }

 private:
  double mean_;
  double floor_;
};

}  // namespace arpanet::traffic
