#include "src/traffic/poisson_source.h"

#include <stdexcept>

namespace arpanet::traffic {

PoissonProcess::PoissonProcess(double rate_per_sec, util::Rng rng)
    : rate_{rate_per_sec}, rng_{rng} {
  if (!(rate_per_sec > 0.0)) throw std::invalid_argument("rate must be positive");
}

util::SimTime PoissonProcess::next_gap() {
  return util::SimTime::from_sec(rng_.exponential(1.0 / rate_));
}

PacketSizer::PacketSizer(double mean_bits, double floor_bits)
    : mean_{mean_bits}, floor_{floor_bits} {
  if (!(mean_bits > floor_bits) || floor_bits < 0.0) {
    throw std::invalid_argument("packet size mean must exceed floor");
  }
}

double PacketSizer::sample(util::Rng& rng) const {
  return floor_ + rng.exponential(mean_ - floor_);
}

}  // namespace arpanet::traffic
