#include "src/traffic/traffic_matrix.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace arpanet::traffic {

TrafficMatrix::TrafficMatrix(std::size_t nodes)
    : n_{nodes}, rates_(nodes * nodes, 0.0) {
  if (nodes == 0) throw std::invalid_argument("empty traffic matrix");
}

void TrafficMatrix::set(net::NodeId src, net::NodeId dst, double bps) {
  if (src == dst && bps != 0.0) throw std::invalid_argument("self traffic");
  if (bps < 0.0) throw std::invalid_argument("negative rate");
  rates_.at(index(src, dst)) = bps;
}

void TrafficMatrix::add(net::NodeId src, net::NodeId dst, double bps) {
  set(src, dst, at(src, dst) + bps);
}

double TrafficMatrix::total_bps() const {
  return std::accumulate(rates_.begin(), rates_.end(), 0.0);
}

void TrafficMatrix::scale(double factor) {
  if (factor < 0.0) throw std::invalid_argument("negative scale");
  for (double& r : rates_) r *= factor;
}

void TrafficMatrix::normalize_total(double total_bps) {
  const double current = this->total_bps();
  if (current <= 0.0) throw std::logic_error("cannot normalize empty matrix");
  scale(total_bps / current);
}

TrafficMatrix TrafficMatrix::uniform(std::size_t nodes, double total_bps) {
  TrafficMatrix m{nodes};
  if (nodes < 2) return m;
  const double per_pair =
      total_bps / static_cast<double>(nodes * (nodes - 1));
  for (net::NodeId s = 0; s < nodes; ++s) {
    for (net::NodeId d = 0; d < nodes; ++d) {
      if (s != d) m.set(s, d, per_pair);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::gravity(const std::vector<double>& weights,
                                     double total_bps) {
  const std::size_t n = weights.size();
  TrafficMatrix m{n};
  double denom = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s != d) denom += weights[s] * weights[d];
    }
  }
  if (denom <= 0.0) throw std::invalid_argument("gravity weights sum to zero");
  for (net::NodeId s = 0; s < n; ++s) {
    for (net::NodeId d = 0; d < n; ++d) {
      if (s != d) m.set(s, d, total_bps * weights[s] * weights[d] / denom);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::peak_hour(std::size_t nodes, double total_bps,
                                       util::Rng rng) {
  // Log-normal-ish weights: exp(N(0, 0.8)) approximated by summing uniforms
  // (we avoid a normal sampler dependency; the shape — a few heavy sites,
  // a long tail of light ones — is what matters).
  std::vector<double> weights(nodes);
  for (double& w : weights) {
    double g = 0.0;
    for (int i = 0; i < 12; ++i) g += rng.uniform();
    g -= 6.0;  // ~N(0,1)
    w = std::exp(0.8 * g);
  }
  return gravity(weights, total_bps);
}

}  // namespace arpanet::traffic
