// Per-link delay measurement.
//
// "For every packet the PSN receives and forwards, it measures queueing and
// processing delay to which it adds tabled values of transmission and
// propagation delay. For each of its outgoing links, it averages this total
// delay over a ten-second period" (paper section 2.2). This accumulator is
// that mechanism for one simplex link; the PSN calls record_packet() as each
// forwarded packet finishes transmission and end_period() once per
// measurement period.

#pragma once

#include "src/metrics/link_metric.h"
#include "src/util/units.h"

namespace arpanet::metrics {

class DelayMeasurement {
 public:
  /// `rate` and `prop_delay` are the link's tabled values; the idle-period
  /// delay floor is one average-packet transmission plus propagation.
  DelayMeasurement(util::DataRate rate, util::SimTime prop_delay);

  /// Records one forwarded packet. `queue_and_processing` is the time from
  /// arrival at (or origination in) the PSN until transmission began;
  /// `transmission` is this packet's serialization time.
  void record_packet(util::SimTime queue_and_processing, util::SimTime transmission);

  /// Closes the current period and resets the accumulators.
  /// `period_length` is used for the busy fraction.
  [[nodiscard]] PeriodMeasurement end_period(util::SimTime period_length);

  [[nodiscard]] long packets_this_period() const { return packets_; }

 private:
  util::SimTime idle_floor_;
  util::SimTime prop_delay_;
  util::SimTime delay_sum_ = util::SimTime::zero();
  util::SimTime busy_sum_ = util::SimTime::zero();
  long packets_ = 0;
};

}  // namespace arpanet::metrics
