#include "src/metrics/delay_measurement.h"

#include "src/core/mm1.h"

namespace arpanet::metrics {

DelayMeasurement::DelayMeasurement(util::DataRate rate, util::SimTime prop_delay)
    : idle_floor_{core::mean_service_time(rate) + prop_delay},
      prop_delay_{prop_delay} {}

void DelayMeasurement::record_packet(util::SimTime queue_and_processing,
                                     util::SimTime transmission) {
  delay_sum_ += queue_and_processing + transmission + prop_delay_;
  busy_sum_ += transmission;
  ++packets_;
}

PeriodMeasurement DelayMeasurement::end_period(util::SimTime period_length) {
  PeriodMeasurement m;
  if (packets_ == 0) {
    // An idle line reports its floor; the metric's bias/minimum then applies.
    m.avg_delay = idle_floor_;
  } else {
    m.avg_delay = util::SimTime::from_us(delay_sum_.us() / packets_);
  }
  m.busy_fraction = period_length > util::SimTime::zero()
                        ? static_cast<double>(busy_sum_.us()) /
                              static_cast<double>(period_length.us())
                        : 0.0;
  m.packets = packets_;

  delay_sum_ = util::SimTime::zero();
  busy_sum_ = util::SimTime::zero();
  packets_ = 0;
  return m;
}

}  // namespace arpanet::metrics
