// Construction of per-link metric instances.
//
// Two forms:
//   * make_metric(kind, link, params) — the closed-set constructor for the
//     three metrics the paper compares;
//   * MetricFactory — an open injection point. sim::NetworkConfig carries a
//     factory so experiments (ablations, tunings, hybrid metrics) can plug
//     in custom LinkMetric implementations without every call site
//     switching on MetricKind. When no factory is set the network falls
//     back to KindMetricFactory over NetworkConfig::metric.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/core/line_params.h"
#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

/// Creates the metric instance for one simplex link.
[[nodiscard]] std::unique_ptr<LinkMetric> make_metric(
    MetricKind kind, const net::Link& link, const core::LineParamsTable& params);

/// The absolute cost range a factory's metrics promise for one link. When a
/// factory declares bounds, the invariant layer (sim::Network per report,
/// analysis::audit_network at end of run) enforces them on every cost the
/// metric reports — the same validation the built-in metrics get, without
/// the layer having to recognize the factory type.
struct CostBounds {
  double min_cost = 0.0;
  double max_cost = 0.0;
};

/// Abstract constructor of per-link metrics. Implementations must be
/// stateless or internally synchronized: one factory instance may be shared
/// by many networks, including networks running concurrently on different
/// sweep worker threads.
class MetricFactory {
 public:
  virtual ~MetricFactory() = default;

  /// Creates the metric for one simplex link.
  [[nodiscard]] virtual std::unique_ptr<LinkMetric> create(
      const net::Link& link, const core::LineParamsTable& params) const = 0;

  /// Human-readable name, used as the default result label.
  [[nodiscard]] virtual std::string name() const = 0;

  /// The cost range metrics created for `link` are promised to stay inside,
  /// or nullopt when the factory makes no such promise (costs are then only
  /// checked to be positive and finite). Overriding this opts a custom
  /// factory into the full bounds validation.
  [[nodiscard]] virtual std::optional<CostBounds> bounds(
      const net::Link& link, const core::LineParamsTable& params) const {
    (void)link;
    (void)params;
    return std::nullopt;
  }
};

/// The closed-set factory: wraps make_metric over a MetricKind.
class KindMetricFactory final : public MetricFactory {
 public:
  explicit KindMetricFactory(MetricKind kind) : kind_{kind} {}

  [[nodiscard]] std::unique_ptr<LinkMetric> create(
      const net::Link& link,
      const core::LineParamsTable& params) const override {
    return make_metric(kind_, link, params);
  }
  [[nodiscard]] std::string name() const override { return to_string(kind_); }
  /// The built-in metrics' documented ranges: HN-SPF's propagation-adjusted
  /// [min_cost, max_cost], D-SPF's [bias, 254 units], min-hop's constant.
  [[nodiscard]] std::optional<CostBounds> bounds(
      const net::Link& link,
      const core::LineParamsTable& params) const override;
  [[nodiscard]] MetricKind kind() const { return kind_; }

 private:
  MetricKind kind_;
};

/// Adapter for ad-hoc metrics (ablation benches, tests): wraps a callable
/// `(const net::Link&, const core::LineParamsTable&) -> unique_ptr<LinkMetric>`.
/// Both callables must be safe to invoke from multiple threads.
class FunctionMetricFactory final : public MetricFactory {
 public:
  using Fn = std::function<std::unique_ptr<LinkMetric>(
      const net::Link&, const core::LineParamsTable&)>;
  using BoundsFn = std::function<std::optional<CostBounds>(
      const net::Link&, const core::LineParamsTable&)>;

  /// `bounds_fn` may be null: the factory then declares no bounds.
  FunctionMetricFactory(std::string name, Fn fn, BoundsFn bounds_fn = nullptr);

  [[nodiscard]] std::unique_ptr<LinkMetric> create(
      const net::Link& link, const core::LineParamsTable& params) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::optional<CostBounds> bounds(
      const net::Link& link,
      const core::LineParamsTable& params) const override;

 private:
  std::string name_;
  Fn fn_;
  BoundsFn bounds_fn_;
};

}  // namespace arpanet::metrics
