// Construction of per-link metric instances.

#pragma once

#include <memory>

#include "src/core/line_params.h"
#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

/// Creates the metric instance for one simplex link.
[[nodiscard]] std::unique_ptr<LinkMetric> make_metric(
    MetricKind kind, const net::Link& link, const core::LineParamsTable& params);

}  // namespace arpanet::metrics
