// Construction of per-link metric instances.
//
// Two forms:
//   * make_metric(kind, link, params) — the closed-set constructor for the
//     three metrics the paper compares;
//   * MetricFactory — an open injection point. sim::NetworkConfig carries a
//     factory so experiments (ablations, tunings, hybrid metrics) can plug
//     in custom LinkMetric implementations without every call site
//     switching on MetricKind. When no factory is set the network falls
//     back to KindMetricFactory over NetworkConfig::metric.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/core/line_params.h"
#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

/// Creates the metric instance for one simplex link.
[[nodiscard]] std::unique_ptr<LinkMetric> make_metric(
    MetricKind kind, const net::Link& link, const core::LineParamsTable& params);

/// Abstract constructor of per-link metrics. Implementations must be
/// stateless or internally synchronized: one factory instance may be shared
/// by many networks, including networks running concurrently on different
/// sweep worker threads.
class MetricFactory {
 public:
  virtual ~MetricFactory() = default;

  /// Creates the metric for one simplex link.
  [[nodiscard]] virtual std::unique_ptr<LinkMetric> create(
      const net::Link& link, const core::LineParamsTable& params) const = 0;

  /// Human-readable name, used as the default result label.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The closed-set factory: wraps make_metric over a MetricKind.
class KindMetricFactory final : public MetricFactory {
 public:
  explicit KindMetricFactory(MetricKind kind) : kind_{kind} {}

  [[nodiscard]] std::unique_ptr<LinkMetric> create(
      const net::Link& link,
      const core::LineParamsTable& params) const override {
    return make_metric(kind_, link, params);
  }
  [[nodiscard]] std::string name() const override { return to_string(kind_); }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 private:
  MetricKind kind_;
};

/// Adapter for ad-hoc metrics (ablation benches, tests): wraps a callable
/// `(const net::Link&, const core::LineParamsTable&) -> unique_ptr<LinkMetric>`.
/// The callable must be safe to invoke from multiple threads.
class FunctionMetricFactory final : public MetricFactory {
 public:
  using Fn = std::function<std::unique_ptr<LinkMetric>(
      const net::Link&, const core::LineParamsTable&)>;

  FunctionMetricFactory(std::string name, Fn fn);

  [[nodiscard]] std::unique_ptr<LinkMetric> create(
      const net::Link& link, const core::LineParamsTable& params) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace arpanet::metrics
