// D-SPF: the 1979 "measured delay" link metric.
//
// The cost is the packet delay averaged over the ten-second measurement
// period, quantized into routing units of 6.4 ms, with a lower bound (the
// *bias*, a function of line speed, which "effectively serves to prevent an
// idle line from reporting a zero delay value") and an upper clip of 254
// units. These constants reproduce the ranges the paper complains about in
// section 3.2: a loaded 9.6 kb/s line can report 254 units ~ 127x the idle
// 56 kb/s bias of 2, and in an all-56 kb/s network a loaded line looks ~20x
// worse than an idle one.

#pragma once

#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

class DspfMetric final : public LinkMetric {
 public:
  /// One D-SPF routing unit of measured delay.
  static constexpr double kUnitMs = 6.4;
  /// Upper clip, in units.
  static constexpr double kMaxUnits = 254.0;

  DspfMetric(util::DataRate rate, util::SimTime prop_delay);

  double on_period(const PeriodMeasurement& m) override;
  [[nodiscard]] double initial_cost() const override { return bias_; }
  [[nodiscard]] double change_threshold() const override { return 64.0; }
  [[nodiscard]] bool threshold_decays() const override { return true; }
  void on_link_up() override {}

  [[nodiscard]] double bias() const { return bias_; }

  /// Static map from delay to cost (units), used by the analysis layer.
  [[nodiscard]] double cost_for_delay(util::SimTime delay) const;

 private:
  double bias_;
};

}  // namespace arpanet::metrics
