// Link-metric interface.
//
// The routing revision this library reproduces changed *only* the function
// from per-period link measurements to the reported cost; everything else
// (SPF, flooding, forwarding) is shared. This interface is that seam: the
// simulator owns one LinkMetric per simplex link and calls on_period() every
// measurement period (10 s in the ARPANET) with that period's measurements.
//
// Implementations: MinHopMetric (static baseline), DspfMetric (the 1979
// delay metric), HnSpfMetric (the July 1987 revision, wrapping core::HnMetric).

#pragma once

#include <memory>

#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::metrics {

/// What the PSN measured on one outgoing link over one measurement period.
struct PeriodMeasurement {
  /// Average per-packet delay: measured queueing+processing plus tabled
  /// transmission and propagation (paper section 2.2). For an idle period
  /// this is the idle floor (transmission of an average packet + propagation).
  util::SimTime avg_delay;
  /// Fraction of the period the transmitter was busy. Kept for ablation
  /// studies; the ARPANET metrics derive utilization from delay instead.
  double busy_fraction = 0.0;
  /// Packets forwarded during the period.
  long packets = 0;
};

class LinkMetric {
 public:
  virtual ~LinkMetric() = default;

  LinkMetric(const LinkMetric&) = delete;
  LinkMetric& operator=(const LinkMetric&) = delete;

  /// Per-period transform; returns the candidate cost to report.
  virtual double on_period(const PeriodMeasurement& m) = 0;

  /// Cost to advertise before any measurement exists (link just came up).
  [[nodiscard]] virtual double initial_cost() const = 0;

  /// Significance threshold for generating an update (routing units);
  /// the filter may additionally decay it (D-SPF style).
  [[nodiscard]] virtual double change_threshold() const = 0;

  /// Whether the significance threshold decays when unmet (true for D-SPF).
  [[nodiscard]] virtual bool threshold_decays() const = 0;

  /// Link went down and came back up; reset history accordingly.
  virtual void on_link_up() = 0;

 protected:
  LinkMetric() = default;
};

/// Which metric family a simulation runs. Order matches the paper's
/// narrative: the min-hop strawman, the 1979 delay metric, the revision.
enum class MetricKind { kMinHop, kDspf, kHnSpf };

[[nodiscard]] constexpr const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kMinHop: return "min-hop";
    case MetricKind::kDspf: return "D-SPF";
    case MetricKind::kHnSpf: return "HN-SPF";
  }
  return "?";
}

}  // namespace arpanet::metrics
