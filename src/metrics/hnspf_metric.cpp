// HnSpfMetric is header-only; see hnspf_metric.h.
#include "src/metrics/hnspf_metric.h"
