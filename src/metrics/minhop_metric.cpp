// MinHopMetric is header-only; see minhop_metric.h.
#include "src/metrics/minhop_metric.h"
