#include "src/metrics/dspf_metric.h"

#include <algorithm>
#include <cmath>

#include "src/core/mm1.h"

namespace arpanet::metrics {

DspfMetric::DspfMetric(util::DataRate rate, util::SimTime /*prop_delay*/) {
  // The bias is "a function of line speed" only: one average transmission
  // time plus nominal PSN processing (~2 ms), in units, at least 1. For a
  // 56 kb/s trunk: (10.7 ms + 2 ms) / 6.4 ms -> 2 units, the value the
  // paper quotes; for 9.6 kb/s: (62.5 + 2) / 6.4 -> 10 units, making a
  // saturated 9.6 line (254) ~127x an idle 56 line — the section 3.2 range.
  const util::SimTime idle =
      core::mean_service_time(rate) + util::SimTime::from_ms(2.0);
  bias_ = std::clamp(std::round(idle.ms() / kUnitMs), 1.0, kMaxUnits);
}

double DspfMetric::on_period(const PeriodMeasurement& m) {
  return cost_for_delay(m.avg_delay);
}

double DspfMetric::cost_for_delay(util::SimTime delay) const {
  const double units = std::round(delay.ms() / kUnitMs);
  return std::clamp(units, bias_, kMaxUnits);
}

}  // namespace arpanet::metrics
