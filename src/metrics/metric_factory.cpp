#include "src/metrics/metric_factory.h"

#include <stdexcept>
#include <utility>

#include "src/metrics/dspf_metric.h"
#include "src/metrics/hnspf_metric.h"
#include "src/metrics/minhop_metric.h"

namespace arpanet::metrics {

std::unique_ptr<LinkMetric> make_metric(MetricKind kind, const net::Link& link,
                                        const core::LineParamsTable& params) {
  switch (kind) {
    case MetricKind::kMinHop:
      return std::make_unique<MinHopMetric>();
    case MetricKind::kDspf:
      return std::make_unique<DspfMetric>(link.rate, link.prop_delay);
    case MetricKind::kHnSpf:
      return std::make_unique<HnSpfMetric>(params.for_type(link.type), link.rate,
                                           link.prop_delay);
  }
  throw std::invalid_argument("unknown MetricKind");
}

std::optional<CostBounds> KindMetricFactory::bounds(
    const net::Link& link, const core::LineParamsTable& params) const {
  switch (kind_) {
    case MetricKind::kMinHop: {
      const double hop = MinHopMetric{}.initial_cost();
      return CostBounds{hop, hop};
    }
    case MetricKind::kDspf:
      return CostBounds{DspfMetric{link.rate, link.prop_delay}.bias(),
                        DspfMetric::kMaxUnits};
    case MetricKind::kHnSpf: {
      const core::LineTypeParams& p = params.for_type(link.type);
      return CostBounds{p.min_cost(link.prop_delay), p.max_cost};
    }
  }
  return std::nullopt;
}

FunctionMetricFactory::FunctionMetricFactory(std::string name, Fn fn,
                                             BoundsFn bounds_fn)
    : name_{std::move(name)},
      fn_{std::move(fn)},
      bounds_fn_{std::move(bounds_fn)} {
  if (!fn_) {
    throw std::invalid_argument("FunctionMetricFactory: null callable");
  }
}

std::optional<CostBounds> FunctionMetricFactory::bounds(
    const net::Link& link, const core::LineParamsTable& params) const {
  return bounds_fn_ ? bounds_fn_(link, params) : std::nullopt;
}

std::unique_ptr<LinkMetric> FunctionMetricFactory::create(
    const net::Link& link, const core::LineParamsTable& params) const {
  auto metric = fn_(link, params);
  if (!metric) {
    throw std::logic_error("FunctionMetricFactory '" + name_ +
                           "' returned a null metric");
  }
  return metric;
}

}  // namespace arpanet::metrics
