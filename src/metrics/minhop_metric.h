// Min-hop: the static, traffic-insensitive baseline of section 5.
//
// Every link always costs one hop-unit regardless of load. The paper uses it
// as one end of the spectrum HN-SPF sits inside ("HN-SPF lies between the
// extremes of min-hop routing and D-SPF"): it never sheds traffic, so a link
// becomes oversubscribed as soon as offered load reaches capacity (fig. 10).

#pragma once

#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

class MinHopMetric final : public LinkMetric {
 public:
  explicit MinHopMetric(double hop_cost = 1.0) : hop_cost_{hop_cost} {}

  double on_period(const PeriodMeasurement&) override { return hop_cost_; }
  [[nodiscard]] double initial_cost() const override { return hop_cost_; }
  /// Effectively infinite: the cost never changes, so no update is ever
  /// significant (the 50 s reliability updates still flow).
  [[nodiscard]] double change_threshold() const override { return 1e30; }
  [[nodiscard]] bool threshold_decays() const override { return false; }
  void on_link_up() override {}

 private:
  double hop_cost_;
};

}  // namespace arpanet::metrics
