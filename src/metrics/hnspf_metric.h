// HN-SPF link metric: the LinkMetric adapter over the HNM (core::HnMetric).
//
// The HNM "takes the value of the measured delay and transforms its value"
// before it reaches the flooding subsystem (paper figure 2); this adapter is
// exactly that insertion point in the simulator's update path.

#pragma once

#include "src/core/hn_metric.h"
#include "src/metrics/link_metric.h"

namespace arpanet::metrics {

class HnSpfMetric final : public LinkMetric {
 public:
  HnSpfMetric(core::LineTypeParams params, util::DataRate rate,
              util::SimTime prop_delay)
      : hnm_{params, rate, prop_delay} {}

  double on_period(const PeriodMeasurement& m) override {
    return hnm_.update_from_delay(m.avg_delay);
  }

  /// New links advertise their maximum cost and ease in (section 5.4).
  [[nodiscard]] double initial_cost() const override { return hnm_.max_cost(); }
  [[nodiscard]] double change_threshold() const override {
    return hnm_.change_threshold();
  }
  [[nodiscard]] bool threshold_decays() const override { return false; }
  void on_link_up() override { hnm_.on_link_up(); }

  [[nodiscard]] const core::HnMetric& hnm() const { return hnm_; }

 private:
  core::HnMetric hnm_;
};

}  // namespace arpanet::metrics
