#include "src/exp/sweep_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/stopwatch.h"

namespace arpanet::exp {

namespace {

SweepRun execute_cell(const SweepSpec& spec, const SweepCell& cell,
                      int worker) {
  SweepRun run;
  run.cell = cell;
  run.worker = worker;
  // run_scenario stamps wall_seconds / events_processed itself.
  run.result = sim::run_scenario(*cell.topo, cell.to_config(spec.base),
                                 /*label=*/"");
  return run;
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_{std::move(opts)} {}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const NamedTopology& default_topo) const {
  obs::Stopwatch stopwatch;

  // Declarative topology-axis specs are materialized here, single-threaded
  // and in list order, into an owned copy of the spec — the generators are
  // seed-deterministic, so the cell list (and therefore every output byte)
  // is identical at any thread count.
  std::optional<SweepSpec> owned;
  const SweepSpec* effective = &spec;
  if (!spec.topology_specs.empty()) {
    owned.emplace(spec);
    for (NamedTopology& nt : owned->materialize_topologies()) {
      owned->topologies.push_back(std::move(nt));
    }
    owned->topology_specs.clear();
    effective = &*owned;
  }

  const std::vector<SweepCell> cells = expand_cells(*effective, default_topo);

  SweepResult result;
  result.runs.resize(cells.size());

  int threads = opts_.threads > 0
                    ? opts_.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (static_cast<std::size_t>(threads) > cells.size() && !cells.empty()) {
    threads = static_cast<int>(cells.size());
  }
  result.threads_used = threads;

  std::atomic<std::size_t> next{0};
  std::mutex mu;  // guards first_error and the progress callback
  std::exception_ptr first_error;

  const auto worker_loop = [&](int worker) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      try {
        SweepRun run = execute_cell(spec, cells[i], worker);
        if (opts_.on_run_done) {
          const std::lock_guard<std::mutex> lock{mu};
          result.runs[i] = std::move(run);
          opts_.on_run_done(result.runs[i]);
        } else {
          result.runs[i] = std::move(run);  // slot i is this worker's alone
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock{mu};
        if (!first_error) first_error = std::current_exception();
        return;  // stop this worker; others drain their current cells
      }
    }
  };

  if (threads == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (std::thread& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  result.elapsed_seconds = stopwatch.seconds();
  return result;
}

}  // namespace arpanet::exp
