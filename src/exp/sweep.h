// Scenario sweeps: the experiment shape behind every figure and table in
// the paper — the same scenario re-run across offered loads, metric kinds,
// traffic shapes, seeds, and topologies.
//
// SweepSpec declares the axes; the cross product is expanded into an
// ordered list of SweepCells; SweepRunner (sweep_runner.h) executes the
// cells on a thread pool. Results are bit-identical at any thread count:
// each cell derives its own RNG stream from `seed ^ hash(axes)`, runs an
// isolated sim::Network, and lands in its fixed slot of the SweepResult.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/net/builders/registry.h"
#include "src/net/topology.h"
#include "src/sim/scenario.h"

namespace arpanet::exp {

/// A topology axis value: the graph plus the name it reports under.
struct NamedTopology {
  std::string name;
  net::Topology topo;
};

/// The declarative description of a sweep: a base ScenarioConfig (warm-up,
/// window, network tuning) plus one value list per axis. Empty axis lists
/// fall back to the base config's value, so a spec only names the axes it
/// actually sweeps.
struct SweepSpec {
  sim::ScenarioConfig base;
  std::vector<metrics::MetricKind> metrics;
  std::vector<double> loads_bps;
  std::vector<sim::TrafficShape> shapes;
  std::vector<std::uint64_t> seeds;
  /// Topology axis. Usually empty: the Experiment's own topology is the
  /// single value. Non-empty lists run every cell on every named topology.
  std::vector<NamedTopology> topologies;
  /// Declarative topology axis: GraphSpecs built through the TopologyBuilder
  /// registry. The runner materializes these (single-threaded, in list
  /// order) and appends them after `topologies`, so a sweep can range over
  /// family x size without pre-building graphs. Each spec reports under its
  /// label().
  std::vector<net::GraphSpec> topology_specs;

  // ---- fluent construction ----
  SweepSpec& with_base(sim::ScenarioConfig cfg);
  SweepSpec& over_metrics(std::vector<metrics::MetricKind> kinds);
  SweepSpec& over_loads_bps(std::vector<double> loads);
  /// Inclusive arithmetic progression; throws on step <= 0 or to < from.
  SweepSpec& over_load_range_bps(double from, double to, double step);
  SweepSpec& over_shapes(std::vector<sim::TrafficShape> s);
  SweepSpec& over_seeds(std::vector<std::uint64_t> s);
  /// n replica seeds base.seed, base.seed+1, ... (throws on n <= 0).
  SweepSpec& over_replicas(int n);
  SweepSpec& over_topologies(std::vector<NamedTopology> topos);
  /// Validates every spec against the registry now (bad family/params throw
  /// std::invalid_argument at spec time, not mid-sweep).
  SweepSpec& over_topology_specs(std::vector<net::GraphSpec> specs);

  /// Builds topology_specs through the registry, in list order, each named
  /// by its label(). Deterministic regardless of runner thread count.
  [[nodiscard]] std::vector<NamedTopology> materialize_topologies() const;

  /// Cells this spec expands to, given a default topology for the empty
  /// topology axis.
  [[nodiscard]] std::size_t cell_count() const;
};

/// One point of the cross product, in deterministic enumeration order
/// (topology-major, then metric, load, shape, seed).
struct SweepCell {
  std::size_t index = 0;
  std::string topology;
  const net::Topology* topo = nullptr;  ///< borrowed from spec / experiment
  metrics::MetricKind metric = metrics::MetricKind::kHnSpf;
  double offered_load_bps = 0.0;
  sim::TrafficShape shape = sim::TrafficShape::kPeakHour;
  std::uint64_t seed = 0;          ///< the axis value (replica id)
  std::uint64_t derived_seed = 0;  ///< seed ^ hash(other axes): the RNG stream

  /// The scenario config this cell runs (base + axis values + derived seed).
  [[nodiscard]] sim::ScenarioConfig to_config(
      const sim::ScenarioConfig& base) const;
};

/// Expands the cross product against `default_topo` (used when
/// spec.topologies is empty). Pointers into `spec` and `default_topo` are
/// borrowed: both must outlive the returned cells.
[[nodiscard]] std::vector<SweepCell> expand_cells(
    const SweepSpec& spec, const NamedTopology& default_topo);

/// The deterministic per-cell stream id: axis seed XOR a stable 64-bit hash
/// of the remaining axes (FNV-1a based, identical across platforms and
/// thread counts).
[[nodiscard]] std::uint64_t derive_cell_seed(const std::string& topology,
                                             metrics::MetricKind metric,
                                             double offered_load_bps,
                                             sim::TrafficShape shape,
                                             std::uint64_t seed);

/// One executed cell.
struct SweepRun {
  SweepCell cell;
  sim::ScenarioResult result;
  int worker = -1;  ///< thread that executed the cell (telemetry only)
};

/// All runs of a sweep, in cell order regardless of execution order.
class SweepResult {
 public:
  std::vector<SweepRun> runs;
  int threads_used = 1;
  double elapsed_seconds = 0.0;  ///< wall clock of the whole sweep

  [[nodiscard]] std::size_t size() const { return runs.size(); }
  [[nodiscard]] const SweepRun& at(std::size_t i) const { return runs.at(i); }

  /// Sum of per-run wall times (the serial-equivalent cost).
  [[nodiscard]] double total_run_seconds() const;
  [[nodiscard]] std::uint64_t total_events() const;
  /// Aggregated self-audit coverage across all cells (every cell ran the
  /// end-of-run invariant audit unless the base config disabled it).
  [[nodiscard]] analysis::AuditStats total_audit() const;
  /// Observability counters merged across all cells (sums, except peak
  /// depths which take the max — see obs::Counters::catalog()).
  [[nodiscard]] obs::Counters total_counters() const;
  /// total_run_seconds / elapsed_seconds: the achieved parallelism.
  [[nodiscard]] double speedup() const;

  /// Deterministic CSV: axes + indicators + drop/update counters. Identical
  /// bytes for identical specs at any thread count. Set include_telemetry
  /// to append wall-time/events columns (those vary run to run).
  void write_csv(std::ostream& os, bool include_telemetry = false) const;
  [[nodiscard]] std::string csv(bool include_telemetry = false) const;

  /// JSON array of runs, telemetry included.
  void write_json(std::ostream& os) const;

  /// Human summary of the sweep's own performance (threads, events/sec,
  /// achieved speedup).
  void write_summary(std::ostream& os) const;
};

}  // namespace arpanet::exp
