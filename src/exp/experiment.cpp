#include "src/exp/experiment.h"

#include <utility>

#include "src/net/builders/builders.h"

namespace arpanet::exp {

Experiment::Experiment(net::Topology topo, std::string name)
    : topo_{std::move(name), std::move(topo)} {}

Experiment Experiment::arpanet87() {
  return Experiment{net::builders::arpanet87().topo, "arpanet87"};
}

Experiment Experiment::two_region(int per_region) {
  return Experiment{net::builders::two_region(per_region).topo, "two-region"};
}

Experiment Experiment::from_spec(const net::GraphSpec& spec) {
  return Experiment{net::TopologyBuilder::registry().build(spec), spec.label()};
}

sim::ScenarioResult Experiment::run(const sim::ScenarioConfig& cfg) const {
  return sim::run_scenario(topo_.topo, cfg, /*label=*/"");
}

SweepResult Experiment::sweep(const SweepSpec& spec,
                              const SweepOptions& opts) const {
  return SweepRunner{opts}.run(spec, topo_);
}

traffic::TrafficMatrix Experiment::matrix(const sim::ScenarioConfig& cfg) const {
  return sim::scenario_matrix(topo_.topo, cfg);
}

}  // namespace arpanet::exp
