#include "src/exp/sweep.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace arpanet::exp {

namespace {

/// FNV-1a over raw bytes: stable across platforms and standard libraries
/// (unlike std::hash), which keeps derived seeds — and therefore results —
/// reproducible everywhere.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

/// Shortest round-trippable decimal for a double, fixed format rules so CSV
/// bytes do not depend on locale or stream state.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

SweepSpec& SweepSpec::with_base(sim::ScenarioConfig cfg) {
  base = std::move(cfg);
  return *this;
}

SweepSpec& SweepSpec::over_metrics(std::vector<metrics::MetricKind> kinds) {
  metrics = std::move(kinds);
  return *this;
}

SweepSpec& SweepSpec::over_loads_bps(std::vector<double> loads) {
  for (const double l : loads) {
    if (l < 0.0) {
      throw std::invalid_argument("SweepSpec: offered load must be >= 0");
    }
  }
  loads_bps = std::move(loads);
  return *this;
}

SweepSpec& SweepSpec::over_load_range_bps(double from, double to, double step) {
  if (from < 0.0 || to < from || step <= 0.0) {
    throw std::invalid_argument(
        "SweepSpec: load range needs 0 <= from <= to and step > 0");
  }
  loads_bps.clear();
  // Half-a-step slack so `to` itself is included despite rounding.
  for (double l = from; l <= to + step / 2; l += step) loads_bps.push_back(l);
  return *this;
}

SweepSpec& SweepSpec::over_shapes(std::vector<sim::TrafficShape> s) {
  shapes = std::move(s);
  return *this;
}

SweepSpec& SweepSpec::over_seeds(std::vector<std::uint64_t> s) {
  seeds = std::move(s);
  return *this;
}

SweepSpec& SweepSpec::over_replicas(int n) {
  if (n <= 0) throw std::invalid_argument("SweepSpec: replicas must be > 0");
  seeds.clear();
  for (int i = 0; i < n; ++i) {
    seeds.push_back(base.seed + static_cast<std::uint64_t>(i));
  }
  return *this;
}

SweepSpec& SweepSpec::over_topologies(std::vector<NamedTopology> topos) {
  topologies = std::move(topos);
  return *this;
}

SweepSpec& SweepSpec::over_topology_specs(std::vector<net::GraphSpec> specs) {
  const net::TopologyBuilder& reg = net::TopologyBuilder::registry();
  for (const net::GraphSpec& s : specs) reg.validate(s);
  topology_specs = std::move(specs);
  return *this;
}

std::vector<NamedTopology> SweepSpec::materialize_topologies() const {
  const net::TopologyBuilder& reg = net::TopologyBuilder::registry();
  std::vector<NamedTopology> out;
  out.reserve(topology_specs.size());
  for (const net::GraphSpec& s : topology_specs) {
    out.push_back(NamedTopology{s.label(), reg.build(s)});
  }
  return out;
}

std::size_t SweepSpec::cell_count() const {
  const auto dim = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  return dim(topologies.size() + topology_specs.size()) * dim(metrics.size()) *
         dim(loads_bps.size()) * dim(shapes.size()) * dim(seeds.size());
}

std::uint64_t derive_cell_seed(const std::string& topology,
                               metrics::MetricKind metric,
                               double offered_load_bps,
                               sim::TrafficShape shape, std::uint64_t seed) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, topology.data(), topology.size());
  h = fnv1a_u64(h, static_cast<std::uint64_t>(metric));
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(offered_load_bps));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(shape));
  return seed ^ h;
}

sim::ScenarioConfig SweepCell::to_config(const sim::ScenarioConfig& base) const {
  sim::ScenarioConfig cfg = base;
  cfg.metric = metric;
  cfg.offered_load_bps = offered_load_bps;
  cfg.shape = shape;
  cfg.seed = derived_seed;
  return cfg;
}

std::vector<SweepCell> expand_cells(const SweepSpec& spec,
                                    const NamedTopology& default_topo) {
  std::vector<const NamedTopology*> topo_axis;
  if (spec.topologies.empty()) {
    topo_axis.push_back(&default_topo);
  } else {
    for (const NamedTopology& t : spec.topologies) topo_axis.push_back(&t);
  }
  const std::vector<metrics::MetricKind> metric_axis =
      spec.metrics.empty() ? std::vector{spec.base.metric} : spec.metrics;
  const std::vector<double> load_axis =
      spec.loads_bps.empty() ? std::vector{spec.base.offered_load_bps}
                             : spec.loads_bps;
  const std::vector<sim::TrafficShape> shape_axis =
      spec.shapes.empty() ? std::vector{spec.base.shape} : spec.shapes;
  const std::vector<std::uint64_t> seed_axis =
      spec.seeds.empty() ? std::vector{spec.base.seed} : spec.seeds;

  std::vector<SweepCell> cells;
  cells.reserve(topo_axis.size() * metric_axis.size() * load_axis.size() *
                shape_axis.size() * seed_axis.size());
  for (const NamedTopology* t : topo_axis) {
    for (const metrics::MetricKind m : metric_axis) {
      for (const double load : load_axis) {
        for (const sim::TrafficShape s : shape_axis) {
          for (const std::uint64_t seed : seed_axis) {
            SweepCell cell;
            cell.index = cells.size();
            cell.topology = t->name;
            cell.topo = &t->topo;
            cell.metric = m;
            cell.offered_load_bps = load;
            cell.shape = s;
            cell.seed = seed;
            cell.derived_seed = derive_cell_seed(t->name, m, load, s, seed);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

double SweepResult::total_run_seconds() const {
  double total = 0.0;
  for (const SweepRun& r : runs) total += r.result.wall_seconds;
  return total;
}

std::uint64_t SweepResult::total_events() const {
  std::uint64_t total = 0;
  for (const SweepRun& r : runs) total += r.result.events_processed;
  return total;
}

analysis::AuditStats SweepResult::total_audit() const {
  analysis::AuditStats total;
  for (const SweepRun& r : runs) total += r.result.audit;
  return total;
}

obs::Counters SweepResult::total_counters() const {
  obs::Counters total;
  for (const SweepRun& r : runs) total += r.result.counters;
  return total;
}

double SweepResult::speedup() const {
  return elapsed_seconds > 0 ? total_run_seconds() / elapsed_seconds : 0.0;
}

void SweepResult::write_csv(std::ostream& os, bool include_telemetry) const {
  os << "index,topology,metric,shape,seed,offered_kbps,delivered_kbps,"
        "rtt_ms,delay_p50_ms,delay_p95_ms,delay_p99_ms,drops_per_sec,"
        "delivered_pps,actual_hops,min_hops,path_ratio,updates_per_trunk_sec,"
        "generated,delivered,drops_queue,drops_unreachable,drops_loop";
  if (include_telemetry) os << ",wall_sec,events,events_per_sec,worker";
  os << "\n";
  for (const SweepRun& r : runs) {
    const auto& ind = r.result.indicators;
    const auto& st = r.result.stats;
    os << r.cell.index << ',' << r.cell.topology << ','
       << to_string(r.cell.metric) << ',' << to_string(r.cell.shape) << ','
       << r.cell.seed << ',' << fmt(r.cell.offered_load_bps / 1e3) << ','
       << fmt(ind.internode_traffic_kbps) << ',' << fmt(ind.round_trip_delay_ms)
       << ',' << fmt(ind.delay_p50_ms) << ',' << fmt(ind.delay_p95_ms) << ','
       << fmt(ind.delay_p99_ms) << ',' << fmt(ind.packets_dropped_per_sec)
       << ',' << fmt(ind.delivered_packets_per_sec) << ','
       << fmt(ind.actual_path_hops) << ',' << fmt(ind.minimum_path_hops) << ','
       << fmt(ind.path_ratio()) << ',' << fmt(ind.updates_per_trunk_sec) << ','
       << st.packets_generated << ',' << st.packets_delivered << ','
       << st.packets_dropped_queue << ',' << st.packets_dropped_unreachable
       << ',' << st.packets_dropped_loop;
    if (include_telemetry) {
      os << ',' << fmt(r.result.wall_seconds) << ',' << r.result.events_processed
         << ',' << fmt(r.result.events_per_sec()) << ',' << r.worker;
    }
    os << "\n";
  }
}

std::string SweepResult::csv(bool include_telemetry) const {
  std::ostringstream os;
  write_csv(os, include_telemetry);
  return os.str();
}

void SweepResult::write_json(std::ostream& os) const {
  os << "{\n  \"threads\": " << threads_used
     << ",\n  \"elapsed_sec\": " << fmt(elapsed_seconds)
     << ",\n  \"total_run_sec\": " << fmt(total_run_seconds())
     << ",\n  \"total_events\": " << total_events() << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& r = runs[i];
    const auto& ind = r.result.indicators;
    os << "    {\"index\": " << r.cell.index << ", \"topology\": \""
       << json_escape(r.cell.topology) << "\", \"metric\": \""
       << to_string(r.cell.metric) << "\", \"shape\": \""
       << to_string(r.cell.shape) << "\", \"seed\": " << r.cell.seed
       << ", \"derived_seed\": " << r.cell.derived_seed
       << ", \"offered_kbps\": " << fmt(r.cell.offered_load_bps / 1e3)
       << ", \"delivered_kbps\": " << fmt(ind.internode_traffic_kbps)
       << ", \"rtt_ms\": " << fmt(ind.round_trip_delay_ms)
       << ", \"drops_per_sec\": " << fmt(ind.packets_dropped_per_sec)
       << ", \"actual_hops\": " << fmt(ind.actual_path_hops)
       << ", \"path_ratio\": " << fmt(ind.path_ratio())
       << ", \"updates_per_trunk_sec\": " << fmt(ind.updates_per_trunk_sec)
       << ", \"wall_sec\": " << fmt(r.result.wall_seconds)
       << ", \"events\": " << r.result.events_processed
       << ", \"events_per_sec\": " << fmt(r.result.events_per_sec())
       << ", \"worker\": " << r.worker << "}";
    os << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

void SweepResult::write_summary(std::ostream& os) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# sweep: %zu runs on %d thread%s, %.2fs elapsed "
                "(%.2fs of simulation, %.2fx speedup), %" PRIu64
                " events, %.0f events/sec\n",
                runs.size(), threads_used, threads_used == 1 ? "" : "s",
                elapsed_seconds, total_run_seconds(), speedup(), total_events(),
                elapsed_seconds > 0
                    ? static_cast<double>(total_events()) / elapsed_seconds
                    : 0.0);
  os << buf;
}

}  // namespace arpanet::exp
