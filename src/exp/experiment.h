// Experiment: the single front door for whole-network experiments.
//
// Wraps one (named) topology and runs ScenarioConfigs against it — one at a
// time or as a parallel sweep:
//
//   exp::Experiment e = exp::Experiment::arpanet87();
//
//   // single run
//   const auto r = e.run(sim::ScenarioConfig{}
//                            .with_metric(metrics::MetricKind::kDspf)
//                            .with_load_bps(366e3));
//
//   // parallel sweep: metric x offered load, every core busy
//   const auto sweep = e.sweep(exp::SweepSpec{}
//                                  .over_metrics({MetricKind::kDspf,
//                                                 MetricKind::kHnSpf})
//                                  .over_load_range_bps(250e3, 550e3, 75e3));
//   sweep.write_csv(std::cout);
//
// Both paths run the same scenario primitive, so a sweep's cell (i) and a
// single run with the cell's config produce identical results.

#pragma once

#include <string>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"

namespace arpanet::exp {

class Experiment {
 public:
  /// Takes ownership of the topology; `name` labels it in sweep output.
  explicit Experiment(net::Topology topo, std::string name = "net");

  /// Conveniences for the two reference networks.
  [[nodiscard]] static Experiment arpanet87();
  [[nodiscard]] static Experiment two_region(int per_region = 6);

  /// Builds the topology through the TopologyBuilder registry; the
  /// experiment is named by the spec's label(). Throws
  /// std::invalid_argument on an invalid spec.
  [[nodiscard]] static Experiment from_spec(const net::GraphSpec& spec);

  [[nodiscard]] const net::Topology& topology() const { return topo_.topo; }
  [[nodiscard]] const std::string& name() const { return topo_.name; }

  /// Runs one scenario (validates the config, labels the result with
  /// cfg.effective_label()).
  [[nodiscard]] sim::ScenarioResult run(const sim::ScenarioConfig& cfg) const;

  /// Expands the spec's axes and executes every cell, in parallel per
  /// `opts.threads`. The spec's empty topology axis means "this
  /// experiment's topology".
  [[nodiscard]] SweepResult sweep(const SweepSpec& spec,
                                  const SweepOptions& opts = {}) const;

  /// The traffic matrix a config would run (for analysis-layer studies
  /// that need the matrix without a simulation).
  [[nodiscard]] traffic::TrafficMatrix matrix(
      const sim::ScenarioConfig& cfg) const;

 private:
  NamedTopology topo_;
};

}  // namespace arpanet::exp
