// Parallel execution of sweep cells.
//
// Every cell is an independent discrete-event run (its own Network, RNG
// streams derived from the cell's axes), so the runner is a plain
// work-stealing thread pool: workers pull the next unclaimed cell index and
// write the finished run into its fixed slot. Determinism therefore costs
// nothing — results are byte-identical at any thread count, only the
// telemetry (wall times, worker ids) differs.

#pragma once

#include <functional>

#include "src/exp/sweep.h"

namespace arpanet::exp {

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (capped at
  /// the cell count — threads beyond that would sit idle).
  int threads = 0;
  /// Optional progress callback, invoked after each cell completes, from
  /// the worker that ran it (serialized internally — the callback itself
  /// need not lock).
  std::function<void(const SweepRun&)> on_run_done;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Expands `spec` against `default_topo` and executes every cell.
  /// Exceptions thrown by a cell (e.g. an invalid config) are rethrown on
  /// the calling thread after all workers drain.
  [[nodiscard]] SweepResult run(const SweepSpec& spec,
                                const NamedTopology& default_topo) const;

 private:
  SweepOptions opts_;
};

}  // namespace arpanet::exp
