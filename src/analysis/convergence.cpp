#include "src/analysis/convergence.h"

namespace arpanet::analysis {

bool costs_converged(const sim::Network& net) {
  const auto& topo = net.topology();
  const std::span<const double> reference = net.psn(0).spf().costs();
  for (net::NodeId n = 1; n < topo.node_count(); ++n) {
    const std::span<const double> costs = net.psn(n).spf().costs();
    for (std::size_t l = 0; l < costs.size(); ++l) {
      if (costs[l] != reference[l]) return false;
    }
  }
  return true;
}

ConvergenceReport measure_convergence(sim::Network& net,
                                      const std::function<void()>& disturb,
                                      util::SimTime poll,
                                      util::SimTime max_wait) {
  const sim::NetworkStats before = net.stats();
  const util::SimTime start = net.now();
  disturb();

  ConvergenceReport report;
  while (net.now() - start < max_wait) {
    net.run_for(poll);
    if (costs_converged(net)) {
      report.converged = true;
      break;
    }
  }
  report.settle_time = net.now() - start;

  const sim::NetworkStats& after = net.stats();
  report.updates_originated = after.updates_originated - before.updates_originated;
  report.update_packets = after.update_packets_sent - before.update_packets_sent;
  report.packets_dropped =
      (after.packets_dropped_queue + after.packets_dropped_unreachable +
       after.packets_dropped_loop) -
      (before.packets_dropped_queue + before.packets_dropped_unreachable +
       before.packets_dropped_loop);
  return report;
}

}  // namespace arpanet::analysis
