// Dynamic behaviour of the SPF feedback loop (paper figures 11 and 12).
//
// "The dynamic behavior of the system can be traced by starting at a
// certain traffic level and finding the corresponding reported cost on the
// Metric map. This reported metric will result in a new traffic level which
// can be found from the Network Response map. The dynamic behavior can be
// found by repeating this process."
//
// D-SPF iterates the bare metric map (no memory, no limits): under heavy
// load the trajectory diverges from the meta-stable equilibrium and
// oscillates between its extremes (fig. 11). HN-SPF iterates the full HNM —
// averaging filter, movement limits, clip — so oscillation amplitude stays
// bounded near the equilibrium, and a new link started at Max cost eases in
// (fig. 12).

#pragma once

#include <vector>

#include "src/analysis/equilibrium.h"

namespace arpanet::analysis {

struct TraceStep {
  double cost_hops = 0.0;     ///< cost reported at the start of the period
  double utilization = 0.0;   ///< utilization that cost produced
};

/// D-SPF iteration from a starting cost. Returns `steps` entries.
[[nodiscard]] std::vector<TraceStep> trace_dspf(const NetworkResponseMap& response,
                                                const MetricMap& dspf_map,
                                                double offered_load,
                                                double start_cost_hops, int steps);

/// HN-SPF iteration using the full HNM dynamics. If start_at_max is true
/// the trace begins from link-up state (ease-in); otherwise from the
/// equilibrium-free idle state (min cost, zero average).
[[nodiscard]] std::vector<TraceStep> trace_hnspf(const NetworkResponseMap& response,
                                                 const core::LineTypeParams& params,
                                                 net::LineType type,
                                                 double offered_load, int steps,
                                                 bool start_at_max);

/// Peak-to-peak cost amplitude over the tail (last half) of a trace — the
/// quantity the paper bounds for HN-SPF and shows unbounded for D-SPF.
[[nodiscard]] double tail_amplitude(const std::vector<TraceStep>& trace);

}  // namespace arpanet::analysis
