// The Network Response Map (paper figure 8).
//
// "Each link is taken one at a time ... We assume that all links except the
// one under consideration report the same ambient value; this ambient value
// can be considered a hop." For a reported cost c (in hops) the map gives
// the traffic remaining on the average link, normalized so that base traffic
// (cost = one hop, ties in favor) is 1.
//
// Sampling detail: the paper plots half-integer x to encode tie-breaking
// ("the point at x=1.5 represents ... cost 1 with ties against / cost 2 with
// ties in favor"). At non-integer costs no ties exist, and any c in (n, n+1)
// yields the routes of "cost n+1, ties in favor" = "cost n, ties against".
// We therefore sample non-integer grid points exactly, and evaluate integer
// grid points at cost n - step/4 — i.e. "cost n, ties broken in favor of the
// link", the paper's convention ("Ties are always broken in favor of using
// the given link"). In particular traffic_fraction(1.0) == 1 by definition
// of base traffic.

#pragma once

#include <span>
#include <vector>

#include "src/net/topology.h"
#include "src/stats/summary.h"
#include "src/traffic/traffic_matrix.h"

namespace arpanet::analysis {

class NetworkResponseMap {
 public:
  struct Config {
    double min_cost = 0.75;  ///< first sample (hops)
    double max_cost = 9.0;   ///< last sample (hops)
    double step = 0.25;      ///< grid step
    /// Links whose base traffic is below this fraction of the busiest
    /// link's base are excluded from the average (stub links carry no
    /// reroutable traffic and only add noise).
    double min_base_fraction = 0.0;
  };

  /// Builds the map by exhaustive per-link SPF resampling. Cost grows with
  /// links x grid x nodes Dijkstra runs; fine for ARPANET-sized inputs.
  [[nodiscard]] static NetworkResponseMap build(const net::Topology& topo,
                                                const traffic::TrafficMatrix& matrix,
                                                const Config& cfg);
  [[nodiscard]] static NetworkResponseMap build(const net::Topology& topo,
                                                const traffic::TrafficMatrix& matrix) {
    return build(topo, matrix, Config{});
  }

  /// Remaining traffic fraction at reported cost `cost_hops` (linear
  /// interpolation between samples; clamped at the ends).
  [[nodiscard]] double traffic_fraction(double cost_hops) const;

  [[nodiscard]] std::span<const double> sample_costs() const { return costs_; }
  [[nodiscard]] std::span<const double> sample_fractions() const { return mean_; }
  /// Across-links spread at each sample (the response differs per link).
  [[nodiscard]] std::span<const double> sample_stddev() const { return stddev_; }

  /// Traffic on one specific link at one cost, absolute bits/second —
  /// building block shared with the shed-cost study.
  [[nodiscard]] static double link_traffic_at_cost(const net::Topology& topo,
                                                   const traffic::TrafficMatrix& matrix,
                                                   net::LinkId link, double cost_hops);

 private:
  std::vector<double> costs_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace arpanet::analysis
