// Convergence measurement: how fast the routing system absorbs a change.
//
// The paper's conclusions keep two SPF virtues: "dynamically routing around
// down lines" and low routing overhead. This module quantifies both in the
// simulator: after a disturbance (trunk failure/recovery, metric shift), how
// long until every PSN holds the same cost map again, how many updates that
// cost, and what happened to traffic meanwhile.

#pragma once

#include "src/sim/network.h"

namespace arpanet::analysis {

/// True iff every PSN's cost vector is identical (the network-wide
/// consistency that makes destination-only forwarding loop-free).
[[nodiscard]] bool costs_converged(const sim::Network& net);

struct ConvergenceReport {
  /// Time from the disturbance until costs_converged() first held.
  util::SimTime settle_time = util::SimTime::zero();
  bool converged = false;  ///< false if max_wait elapsed first
  long updates_originated = 0;   ///< during the transient
  long update_packets = 0;       ///< flooded transmissions during transient
  long packets_dropped = 0;      ///< queue + unreachable + loop drops
};

/// Applies `disturb` to the network and runs until the cost maps converge
/// (polling every `poll`) or `max_wait` passes. The network keeps running
/// normally (traffic, measurement periods) throughout.
[[nodiscard]] ConvergenceReport measure_convergence(
    sim::Network& net, const std::function<void()>& disturb,
    util::SimTime poll = util::SimTime::from_ms(100),
    util::SimTime max_wait = util::SimTime::from_sec(120));

}  // namespace arpanet::analysis
