// Equilibrium calculation (paper figures 9 and 10).
//
// "Equilibrium is achieved when the reported cost from one period results in
// a traffic level on the link that in turn results in the same cost for the
// next period." The model composes the Network Response map (cost -> traffic
// on the average link) with a Metric map (utilization -> cost) and solves
// Cost(t_i) = Cost(t_i+1); like the paper we solve numerically (both maps
// are far too nonlinear for closed form). The offered load L is "the
// percentage the average link would be utilized if min-hop routing were in
// effect".

#pragma once

#include "src/analysis/metric_map.h"
#include "src/analysis/response_map.h"

namespace arpanet::analysis {

struct EquilibriumPoint {
  double cost_hops = 0.0;     ///< equilibrium reported cost, hops
  double utilization = 0.0;   ///< equilibrium link utilization
  bool oversubscribed = false;  ///< utilization pinned at 1.0 (queues grow)
};

class EquilibriumModel {
 public:
  EquilibriumModel(const NetworkResponseMap& response, const MetricMap& metric)
      : response_{&response}, metric_{&metric} {}

  /// Link utilization produced by a reported cost under offered load L:
  /// u(c) = min(1, L * R(c)), with R normalized to 1 at one hop.
  [[nodiscard]] double utilization_at(double cost_hops, double offered_load) const;

  /// Cost the metric reports back for that utilization, in hops.
  [[nodiscard]] double cost_at(double utilization) const {
    return metric_->normalized_cost(utilization);
  }

  /// Solves the fixed point by bisection (the composed map is monotone
  /// non-increasing in cost, so the crossing is unique).
  [[nodiscard]] EquilibriumPoint equilibrium(double offered_load) const;

 private:
  const NetworkResponseMap* response_;
  const MetricMap* metric_;
};

}  // namespace arpanet::analysis
