#include "src/analysis/invariants.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/metrics/metric_factory.h"
#include "src/sim/network.h"
#include "src/sim/psn.h"
#include "src/util/check.h"

namespace arpanet::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True for the sentinel a PSN advertises for an unusable link; such values
/// deliberately sit outside the metric's bounds and are exempt from the
/// cost invariants.
bool is_down_cost(double cost) { return cost == sim::Psn::kDownLinkCost; }

}  // namespace

void check_cost_in_bounds(Cost cost, Cost min_cost, Cost max_cost,
                          const char* what) {
  const double c = cost.value();
  const double lo = min_cost.value();
  const double hi = max_cost.value();
  ARPA_CHECK(std::isfinite(c)) << what << " is not finite: " << c;
  ARPA_CHECK(c >= lo - kCostSlack)
      << what << " " << c << " below line-type minimum " << lo;
  ARPA_CHECK(c <= hi + kCostSlack)
      << what << " " << c << " above line-type maximum " << hi;
}

void check_movement_limited(Cost previous, Cost next,
                            const core::LineTypeParams& params,
                            double extra_slack) {
  const double from = previous.value();
  const double to = next.value();
  const double up = to - from;
  ARPA_CHECK(up <= params.up_limit() + extra_slack + kCostSlack)
      << "cost rose " << from << " -> " << to << " (+" << up
      << "), above the per-update up limit " << params.up_limit()
      << " (+ slack " << extra_slack << ")";
  ARPA_CHECK(-up <= params.down_limit() + extra_slack + kCostSlack)
      << "cost fell " << from << " -> " << to << " (" << up
      << "), below the per-update down limit " << params.down_limit()
      << " (+ slack " << extra_slack << ")";
}

void check_utilization_in_range(Utilization u, const char* what) {
  ARPA_CHECK(std::isfinite(u.value()) && u.value() >= 0.0)
      << what << " is not a finite non-negative fraction: " << u.value();
}

void check_flat_region(const core::HnMetric& metric, int samples) {
  ARPA_CHECK(samples >= 2) << "flat-region check needs at least 2 samples";
  const double threshold = metric.params().flat_threshold;
  double last = -kInf;
  for (int i = 0; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    const double cost = metric.equilibrium_cost(u);
    check_cost_in_bounds(Cost{cost}, Cost{metric.min_cost()},
                         Cost{metric.max_cost()}, "equilibrium cost");
    if (u <= threshold) {
      ARPA_CHECK(cost <= metric.min_cost() + kCostSlack)
          << "equilibrium cost " << cost << " at utilization " << u
          << " is above the minimum " << metric.min_cost()
          << " inside the flat region (threshold " << threshold << ")";
    }
    ARPA_CHECK(cost >= last - kCostSlack)
        << "equilibrium map decreases at utilization " << u << ": " << last
        << " -> " << cost;
    last = cost;
  }
  ARPA_CHECK(std::abs(metric.equilibrium_cost(1.0) - metric.max_cost()) <=
             kCostSlack)
      << "equilibrium cost at 100% utilization is "
      << metric.equilibrium_cost(1.0) << ", expected the maximum "
      << metric.max_cost();
}

void MonotonicTimeChecker::observe(util::SimTime t) {
  if (count_ > 0) {
    ARPA_CHECK(t >= last_) << what_ << " went backwards: " << last_.us()
                           << "us -> " << t.us() << "us";
  }
  last_ = t;
  ++count_;
}

void check_spf_tree(const net::Topology& topo, const routing::SpfTree& tree,
                    std::span<const double> costs) {
  const std::size_t n = topo.node_count();
  ARPA_CHECK(tree.root < n) << "SPF tree root " << tree.root
                            << " out of range for " << n << " nodes";
  ARPA_CHECK(tree.dist.size() == n && tree.parent_link.size() == n &&
             tree.first_hop.size() == n && tree.hops.size() == n)
      << "SPF tree arrays not sized to the node count " << n;
  ARPA_CHECK(costs.size() == topo.link_count())
      << "cost vector size " << costs.size() << " != link count "
      << topo.link_count();

  ARPA_CHECK(tree.dist[tree.root] == 0.0)
      << "root distance is " << tree.dist[tree.root];
  ARPA_CHECK(tree.parent_link[tree.root] == net::kInvalidLink &&
             tree.first_hop[tree.root] == net::kInvalidLink &&
             tree.hops[tree.root] == 0)
      << "root has a parent, first hop, or nonzero hop count";

  for (net::NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    if (tree.dist[v] == kInf) {
      ARPA_CHECK(!topo.is_connected())
          << "node " << v << " unreachable in a connected topology";
      ARPA_CHECK(tree.parent_link[v] == net::kInvalidLink &&
                 tree.first_hop[v] == net::kInvalidLink && tree.hops[v] == -1)
          << "unreachable node " << v << " has tree structure";
      continue;
    }
    const net::LinkId pl = tree.parent_link[v];
    ARPA_CHECK(pl != net::kInvalidLink)
        << "reached node " << v << " has no parent link";
    const net::Link& link = topo.link(pl);
    ARPA_CHECK(link.to == v) << "parent link " << pl << " of node " << v
                             << " ends at node " << link.to;
    ARPA_CHECK(std::abs(tree.dist[link.from] + costs[pl] - tree.dist[v]) <=
               kCostSlack)
        << "node " << v << ": dist " << tree.dist[v]
        << " != parent dist " << tree.dist[link.from] << " + link cost "
        << costs[pl];
    ARPA_CHECK(tree.dist[v] > tree.dist[link.from])
        << "node " << v << ": distance did not increase along tree edge "
        << pl << " (positive costs require it)";
    ARPA_CHECK(tree.hops[v] == tree.hops[link.from] + 1)
        << "node " << v << ": hop count " << tree.hops[v]
        << " != parent's " << tree.hops[link.from] << " + 1";
    const net::LinkId expected_first =
        link.from == tree.root ? pl : tree.first_hop[link.from];
    ARPA_CHECK(tree.first_hop[v] == expected_first)
        << "node " << v << ": first hop " << tree.first_hop[v]
        << " disagrees with its parent chain (" << expected_first << ")";
  }

  // Acyclicity: every parent chain must reach the root within n steps.
  // (Strictly increasing distance along edges already forbids cycles; this
  // catches a corrupted parent array whose distances lie.)
  for (net::NodeId v = 0; v < n; ++v) {
    if (tree.dist[v] == kInf) continue;
    net::NodeId at = v;
    std::size_t steps = 0;
    while (at != tree.root) {
      ARPA_CHECK(++steps <= n)
          << "parent chain from node " << v << " does not reach the root";
      at = topo.link(tree.parent_link[at]).from;
    }
  }
}

AuditStats check_reachable_within_component(const sim::Network& net) {
  AuditStats stats;
  if (net.config().algorithm != routing::RoutingAlgorithm::kSpf) return stats;
  const net::Topology& topo = net.topology();
  const std::size_t n = topo.node_count();

  // Connected components over administratively-up trunks only.
  std::vector<int> comp(n, -1);
  std::vector<net::NodeId> frontier;
  int component_count = 0;
  for (net::NodeId s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = component_count;
    frontier.assign(1, s);
    while (!frontier.empty()) {
      const net::NodeId at = frontier.back();
      frontier.pop_back();
      const auto out = topo.out_links(at);
      const auto targets = topo.out_targets(at);
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (!net.link_admin_up(out[i])) continue;
        if (comp[targets[i]] != -1) continue;
        comp[targets[i]] = component_count;
        frontier.push_back(targets[i]);
      }
    }
    ++component_count;
  }

  // Walk each pair's forwarding chain hop by hop through the PSNs' own
  // trees. With flooding quiesced every PSN holds the same cost map, so a
  // chain follows one consistent SPF tree: either it reaches `dst` within
  // n hops or some node has no first hop at all.
  for (net::NodeId src = 0; src < n; ++src) {
    for (net::NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      net::NodeId at = src;
      bool reached = false;
      bool saw_down = false;
      bool dead_end = false;
      for (std::size_t steps = 0; steps <= n; ++steps) {
        if (at == dst) {
          reached = true;
          break;
        }
        const net::LinkId hop = net.psn(at).tree().first_hop[dst];
        if (hop == net::kInvalidLink) {
          dead_end = true;
          break;
        }
        if (!net.link_admin_up(hop)) saw_down = true;
        at = topo.link(hop).to;
      }
      ARPA_CHECK(reached || dead_end)
          << "forwarding chain " << src << " -> " << dst
          << " loops: " << topo.node_count() << " hops without arriving";
      if (comp[src] == comp[dst]) {
        ARPA_CHECK(reached) << "same-component pair " << src << " -> " << dst
                            << " has no forwarding chain";
        ARPA_CHECK(!saw_down)
            << "route " << src << " -> " << dst
            << " crosses an administratively down link although both nodes "
               "share a component of the up subgraph";
      } else {
        ARPA_CHECK(saw_down || dead_end)
            << "cross-partition pair " << src << " -> " << dst
            << " has an all-up forwarding chain; component labeling is wrong";
      }
      ++stats.routes_checked;
    }
  }
  return stats;
}

AuditStats audit_network(const sim::Network& net) {
  const net::Topology& topo = net.topology();
  const sim::NetworkConfig& cfg = net.config();
  AuditStats stats;

  // Absolute bounds come from whatever range the factory promises per link
  // (built-in kinds and custom factories alike, via MetricFactory::bounds);
  // flat regions and movement limits additionally need HN-SPF semantics.
  const auto* kind_factory =
      dynamic_cast<const metrics::KindMetricFactory*>(&net.metric_factory());
  const bool hnspf =
      kind_factory && kind_factory->kind() == metrics::MetricKind::kHnSpf;

  for (const net::Link& link : topo.links()) {
    // Mid-run line-type upgrades swap a link's type and rate; bounds, flat
    // regions and the live cost are judged against the record in effect
    // now, while trace steps are judged against the era they happened in.
    const net::Link& live = net.effective_link(link.id);

    const double reported = net.psn(link.from).reported_cost(link.id);
    if (!is_down_cost(reported)) {
      if (const auto bounds =
              net.metric_factory().bounds(live, cfg.line_params)) {
        check_cost_in_bounds(Cost{reported}, Cost{bounds->min_cost},
                             Cost{bounds->max_cost});
      } else {
        ARPA_CHECK(std::isfinite(reported) && reported > 0.0)
            << "link " << link.id << " reported non-positive cost "
            << reported;
      }
      ++stats.costs_checked;
    }

    if (hnspf) {
      check_flat_region(core::HnMetric{cfg.line_params.for_type(live.type),
                                       live.rate, live.prop_delay});
      ++stats.maps_checked;
    }

    if (cfg.track_reported_costs) {
      // This link's applied upgrades, in sim-time order (the network
      // appends them as they fire).
      std::vector<std::pair<util::SimTime, net::LineType>> eras;
      for (const sim::Network::AppliedUpgrade& u : net.upgrades_applied()) {
        if (u.link == link.id) eras.emplace_back(u.at, u.type);
      }
      const auto type_at = [&](util::SimTime t) {
        net::LineType type = link.type;
        for (const auto& [at, next] : eras) {
          if (at <= t) type = next;
        }
        return type;
      };
      const auto upgraded_between = [&](util::SimTime a, util::SimTime b) {
        for (const auto& [at, next] : eras) {
          if (at > a && at <= b) return true;
        }
        return false;
      };
      MonotonicTimeChecker times{"reported-cost trace"};
      util::SimTime previous_at = util::SimTime::zero();
      double previous = kInf;
      for (const auto& [at, cost] : net.reported_cost_trace(link.id)) {
        times.observe(at);
        if (hnspf && previous != kInf && !is_down_cost(previous) &&
            !is_down_cost(cost) && !upgraded_between(previous_at, at)) {
          // Report-to-report movement may accumulate sub-threshold drift
          // on top of one period's limited move before an update carries
          // it; limits come from the line type in effect at the step.
          const core::LineTypeParams& params =
              cfg.line_params.for_type(type_at(at));
          const double threshold = cfg.significance_threshold_override >= 0.0
                                       ? cfg.significance_threshold_override
                                       : params.change_threshold();
          check_movement_limited(Cost{previous}, Cost{cost}, params,
                                 threshold);
          ++stats.trace_steps_checked;
        }
        previous = cost;
        previous_at = at;
      }
    }
  }

  if (cfg.algorithm == routing::RoutingAlgorithm::kSpf) {
    for (net::NodeId node = 0; node < topo.node_count(); ++node) {
      const routing::IncrementalSpf& spf = net.psn(node).spf();
      check_spf_tree(topo, spf.tree(), spf.costs());
      ++stats.trees_checked;
    }
    if (net.updates_in_flight() == 0) {
      // Maps agree network-wide only once flooding has quiesced; mid-flood
      // the per-PSN trees legitimately disagree and pair routes may
      // transiently loop, so the route audit would false-positive.
      stats += check_reachable_within_component(net);
    }
  }

  return stats;
}

}  // namespace arpanet::analysis
