#include "src/analysis/equilibrium.h"

#include <algorithm>

namespace arpanet::analysis {

double EquilibriumModel::utilization_at(double cost_hops,
                                        double offered_load) const {
  return std::min(1.0, offered_load * response_->traffic_fraction(cost_hops));
}

EquilibriumPoint EquilibriumModel::equilibrium(double offered_load) const {
  double lo = metric_->normalized_cost(0.0);
  double hi = metric_->normalized_cost(1.0);

  EquilibriumPoint p;
  if (hi - lo < 1e-12) {
    // Static metric (min-hop): the cost is the answer.
    p.cost_hops = lo;
  } else {
    // g(c) = M(u(c)) - c is monotone non-increasing; bisect its sign change.
    for (int i = 0; i < 100; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double g =
          metric_->normalized_cost(utilization_at(mid, offered_load)) - mid;
      if (g > 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    p.cost_hops = 0.5 * (lo + hi);
  }
  p.utilization = utilization_at(p.cost_hops, offered_load);
  p.oversubscribed = p.utilization >= 1.0 - 1e-9;
  return p;
}

}  // namespace arpanet::analysis
