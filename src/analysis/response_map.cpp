#include "src/analysis/response_map.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/routing/spf.h"

namespace arpanet::analysis {

namespace {

/// Traffic (bits/s of `matrix`) whose SPF route crosses `link` when `link`
/// costs `cost_hops` and every other link costs exactly 1.
double traffic_on_link(const net::Topology& topo,
                       const traffic::TrafficMatrix& matrix, net::LinkId link,
                       double cost_hops) {
  routing::LinkCosts costs(topo.link_count(), 1.0);
  costs[link] = cost_hops;
  double total = 0.0;
  for (net::NodeId src = 0; src < topo.node_count(); ++src) {
    const routing::SpfTree tree = routing::Spf::compute(topo, src, costs);
    // A destination's route uses `link` iff `link` lies on its tree path;
    // walk up parents once per destination (cheap: tree depth).
    for (net::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (dst == src || matrix.at(src, dst) <= 0.0) continue;
      for (net::NodeId at = dst; at != src;) {
        const net::LinkId pl = tree.parent_link[at];
        if (pl == net::kInvalidLink) break;  // unreachable
        if (pl == link) {
          total += matrix.at(src, dst);
          break;
        }
        at = topo.link(pl).from;
      }
    }
  }
  return total;
}

}  // namespace

double NetworkResponseMap::link_traffic_at_cost(
    const net::Topology& topo, const traffic::TrafficMatrix& matrix,
    net::LinkId link, double cost_hops) {
  return traffic_on_link(topo, matrix, link, cost_hops);
}

NetworkResponseMap NetworkResponseMap::build(const net::Topology& topo,
                                             const traffic::TrafficMatrix& matrix,
                                             const Config& cfg) {
  if (cfg.step <= 0 || cfg.max_cost <= cfg.min_cost) {
    throw std::invalid_argument("bad response map grid");
  }
  NetworkResponseMap map;
  // Grid keys; integer keys are *evaluated* at key - step/4 so they carry
  // "ties in favor" semantics (see header comment).
  std::vector<double> eval_costs;
  for (double c = cfg.min_cost; c <= cfg.max_cost + 1e-9; c += cfg.step) {
    map.costs_.push_back(c);
    const bool integral = std::abs(c - std::round(c)) < 1e-9;
    eval_costs.push_back(integral ? c - cfg.step / 4.0 : c);
  }

  // Base traffic per link: reported cost of one hop, ties in favor.
  const double base_cost = 1.0 - cfg.step / 4.0;
  std::vector<double> base(topo.link_count(), 0.0);
  double max_base = 0.0;
  for (const net::Link& l : topo.links()) {
    base[l.id] = traffic_on_link(topo, matrix, l.id, base_cost);
    max_base = std::max(max_base, base[l.id]);
  }

  std::vector<stats::Summary> per_cost(map.costs_.size());
  for (const net::Link& l : topo.links()) {
    if (base[l.id] <= 0.0 || base[l.id] < cfg.min_base_fraction * max_base) {
      continue;
    }
    for (std::size_t i = 0; i < map.costs_.size(); ++i) {
      const double t = traffic_on_link(topo, matrix, l.id, eval_costs[i]);
      per_cost[i].add(t / base[l.id]);
    }
  }

  map.mean_.resize(map.costs_.size());
  map.stddev_.resize(map.costs_.size());
  for (std::size_t i = 0; i < map.costs_.size(); ++i) {
    map.mean_[i] = per_cost[i].mean();
    map.stddev_[i] = per_cost[i].stddev();
  }
  return map;
}

double NetworkResponseMap::traffic_fraction(double cost_hops) const {
  if (costs_.empty()) throw std::logic_error("empty response map");
  if (cost_hops <= costs_.front()) return mean_.front();
  if (cost_hops >= costs_.back()) return mean_.back();
  const auto it = std::ranges::upper_bound(costs_, cost_hops);
  const std::size_t hi = static_cast<std::size_t>(it - costs_.begin());
  const std::size_t lo = hi - 1;
  const double w = (cost_hops - costs_[lo]) / (costs_[hi] - costs_[lo]);
  return mean_[lo] * (1.0 - w) + mean_[hi] * w;
}

}  // namespace arpanet::analysis
