#include "src/analysis/shed_cost.h"

#include <algorithm>

#include "src/routing/spf.h"

namespace arpanet::analysis {

namespace {

/// True iff `link` lies on the tree path root -> dst.
bool route_uses_link(const net::Topology& topo, const routing::SpfTree& tree,
                     net::NodeId dst, net::LinkId link) {
  for (net::NodeId at = dst; at != tree.root;) {
    const net::LinkId pl = tree.parent_link[at];
    if (pl == net::kInvalidLink) return false;
    if (pl == link) return true;
    at = topo.link(pl).from;
  }
  return false;
}

struct PendingRoute {
  net::NodeId src;
  net::NodeId dst;
  int base_length;  // hops at base cost
};

}  // namespace

ShedCostResult shed_cost_study(const net::Topology& topo,
                               const traffic::TrafficMatrix& matrix,
                               const ShedCostConfig& cfg) {
  ShedCostResult result;
  result.by_route_length.resize(2 * topo.node_count() + 2);

  const double base_cost = 0.875;  // "one hop, ties in favor"
  routing::LinkCosts costs(topo.link_count(), 1.0);

  for (const net::Link& link : topo.links()) {
    // Routes crossing this link at base cost.
    costs[link.id] = base_cost;
    std::vector<PendingRoute> pending;
    for (net::NodeId src = 0; src < topo.node_count(); ++src) {
      const routing::SpfTree tree = routing::Spf::compute(topo, src, costs);
      for (net::NodeId dst = 0; dst < topo.node_count(); ++dst) {
        if (dst == src || matrix.at(src, dst) <= 0.0) continue;
        if (route_uses_link(topo, tree, dst, link.id)) {
          pending.push_back({src, dst, tree.hops[dst]});
        }
      }
    }

    double shed_all_cost = 0.0;
    for (double c = 1.125; c <= cfg.max_cost + 1e-9 && !pending.empty();
         c += cfg.step) {
      costs[link.id] = c;
      // Group remaining routes by source so each tree is computed once.
      std::ranges::sort(pending, {}, &PendingRoute::src);
      std::vector<PendingRoute> still;
      std::size_t i = 0;
      while (i < pending.size()) {
        const net::NodeId src = pending[i].src;
        const routing::SpfTree tree = routing::Spf::compute(topo, src, costs);
        for (; i < pending.size() && pending[i].src == src; ++i) {
          if (route_uses_link(topo, tree, pending[i].dst, link.id)) {
            still.push_back(pending[i]);
          } else {
            // Shed at this cost: record at the enclosing integer-ish value
            // (c = n + 0.125 encodes "cost n, ties against").
            const double shed_at = c - 0.125;
            const auto idx = static_cast<std::size_t>(
                std::min<int>(pending[i].base_length,
                              static_cast<int>(result.by_route_length.size()) - 1));
            result.by_route_length[idx].add(shed_at);
            shed_all_cost = std::max(shed_all_cost, shed_at);
          }
        }
      }
      pending = std::move(still);
    }
    result.unshed_routes += static_cast<long>(pending.size());
    if (shed_all_cost > 0.0 && pending.empty()) {
      result.shed_all.add(shed_all_cost);
    }
    costs[link.id] = 1.0;
  }
  return result;
}

}  // namespace arpanet::analysis
