// Shed-cost study (paper figure 7).
//
// "Each link is taken one at a time and statistics are collected relating
// the reported cost needed (in hops) to shed each route ... The statistics
// are aggregated over the whole network to get the characteristics of the
// 'average link'." For every route crossing a link at base cost, we find
// the smallest reported cost at which the route leaves the link, and bucket
// the results by the route's base path length — reproducing figure 7's
// mean / standard deviation / min / max-per-length curves, plus the two
// headline numbers the paper reads off it: the average link sheds *all* its
// routes at about four hops, the worst link needs about eight.

#pragma once

#include <vector>

#include "src/net/topology.h"
#include "src/stats/summary.h"
#include "src/traffic/traffic_matrix.h"

namespace arpanet::analysis {

struct ShedCostResult {
  /// Index = route length in hops (0 unused). Each Summary aggregates the
  /// shed cost of all (link, route) pairs with that base length.
  std::vector<stats::Summary> by_route_length;
  /// Per-link cost needed to shed ALL routes, aggregated over links.
  stats::Summary shed_all;
  /// Routes that never shed within the scanned cost range.
  long unshed_routes = 0;
};

struct ShedCostConfig {
  /// Scanned reported costs (hops): base + these offsets above 1 hop.
  double max_cost = 12.875;
  double step = 0.25;
  /// Routes are enumerated from the traffic matrix's nonzero pairs.
};

[[nodiscard]] ShedCostResult shed_cost_study(const net::Topology& topo,
                                             const traffic::TrafficMatrix& matrix,
                                             const ShedCostConfig& cfg = {});

}  // namespace arpanet::analysis
