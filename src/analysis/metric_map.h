// Metric maps: reported cost as a function of link utilization (figure 4/5/9).
//
// A MetricMap is the static (equilibrium) view of one metric on one line:
// the cost the metric settles on if the link's utilization is held constant
// — movement limits and averaging are dynamics, not part of this map. Costs
// are exposed both in raw routing units and normalized to hops, "divided by
// the value reported by an idle line" of a reference type (30 units for
// HN-SPF and 2 units for D-SPF on a 56 kb/s line, exactly as in figure 4).

#pragma once

#include <memory>

#include "src/core/hn_metric.h"
#include "src/core/line_params.h"
#include "src/metrics/dspf_metric.h"
#include "src/metrics/link_metric.h"
#include "src/net/line_type.h"

namespace arpanet::analysis {

class MetricMap {
 public:
  /// Map for `kind` on a line of the given type. `prop_delay` defaults to
  /// the line type's default; pass SimTime::zero() for the idealized
  /// zero-propagation curves of figure 4.
  MetricMap(metrics::MetricKind kind, net::LineType type,
            const core::LineParamsTable& params, util::SimTime prop_delay);

  /// Cost in routing units at the given utilization.
  [[nodiscard]] double cost(double utilization) const;

  /// Cost divided by the hop unit (idle reference-line cost), i.e. in hops.
  [[nodiscard]] double normalized_cost(double utilization) const {
    return cost(utilization) / hop_unit_;
  }

  /// The "one hop" denominator: what an idle zero-propagation 56 kb/s
  /// terrestrial line reports under this metric.
  [[nodiscard]] double hop_unit() const { return hop_unit_; }

  /// This line's own idle (minimum) cost in units.
  [[nodiscard]] double idle_cost() const { return cost(0.0); }
  /// This line's saturated cost in units.
  [[nodiscard]] double max_cost() const { return cost(1.0); }

  [[nodiscard]] metrics::MetricKind kind() const { return kind_; }

 private:
  metrics::MetricKind kind_;
  net::LineType type_;
  util::SimTime prop_delay_;
  util::DataRate rate_;
  double hop_unit_ = 1.0;
  // Engines for the two measured metrics (unused slots left null).
  std::unique_ptr<core::HnMetric> hn_;
  std::unique_ptr<metrics::DspfMetric> dspf_;
};

}  // namespace arpanet::analysis
