#include "src/analysis/metric_map.h"

#include "src/core/mm1.h"

namespace arpanet::analysis {

MetricMap::MetricMap(metrics::MetricKind kind, net::LineType type,
                     const core::LineParamsTable& params,
                     util::SimTime prop_delay)
    : kind_{kind}, type_{type}, prop_delay_{prop_delay},
      rate_{net::info(type).rate} {
  const net::LineType ref = net::LineType::kTerrestrial56;
  switch (kind) {
    case metrics::MetricKind::kHnSpf:
      hn_ = std::make_unique<core::HnMetric>(params.for_type(type), rate_,
                                             prop_delay);
      hop_unit_ = params.for_type(ref).base_min;
      break;
    case metrics::MetricKind::kDspf: {
      dspf_ = std::make_unique<metrics::DspfMetric>(rate_, prop_delay);
      const metrics::DspfMetric ref_metric{net::info(ref).rate,
                                           util::SimTime::zero()};
      hop_unit_ = ref_metric.bias();
      break;
    }
    case metrics::MetricKind::kMinHop:
      hop_unit_ = 1.0;
      break;
  }
}

double MetricMap::cost(double utilization) const {
  switch (kind_) {
    case metrics::MetricKind::kHnSpf:
      return hn_->equilibrium_cost(utilization);
    case metrics::MetricKind::kDspf:
      return dspf_->cost_for_delay(
          core::delay_from_utilization(utilization, rate_, prop_delay_));
    case metrics::MetricKind::kMinHop:
      return 1.0;
  }
  return 1.0;
}

}  // namespace arpanet::analysis
