// Runtime enforcement of the paper's metric and routing invariants.
//
// ARPALINT-LAYER(sim): the PSN asserts these checks inline during runs, so
// this header sits below sim in the include DAG (the .cpp stays analysis)
//
// The revised metric is specified as a handful of hard properties (sections
// 4.2-4.4): the reported cost of a line always lies between its
// propagation-adjusted minimum and the line-type maximum; consecutive
// reports move at most "a little more than a half-hop" up and one unit less
// than that down; below the utilization threshold the equilibrium cost is
// flat at the minimum; and the SPF machinery everything rides on assumes
// monotone event time and structurally consistent shortest-path trees.
// Related delay-metric work (Jonglez et al., Van Bemten et al.'s Mn
// taxonomy) shows that violations of exactly these properties are what
// silently corrupt routing results — so this module makes every violation
// fatal via ARPA_CHECK instead of a skewed CSV column.
//
// Two usage layers:
//   * free check_* functions / MonotonicTimeChecker — direct enforcement,
//     used by tests and by hot-path ARPA_DCHECKs in core/sim/routing;
//   * audit_network — the end-of-run self-audit sim::run_scenario performs
//     on every scenario (ScenarioConfig::self_audit), walking all PSNs'
//     reported costs, cost traces and SPF trees.

#pragma once

#include <span>

#include "src/core/hn_metric.h"
#include "src/core/line_params.h"
#include "src/net/topology.h"
#include "src/routing/spf.h"
#include "src/util/units.h"

namespace arpanet::sim {
class Network;
}  // namespace arpanet::sim

namespace arpanet::analysis {

/// Absolute slack for floating-point cost comparisons. Costs are O(10-300)
/// routing units computed with a handful of multiply-adds, so anything
/// beyond this is a real violation, not roundoff.
inline constexpr double kCostSlack = 1e-6;

/// A routing cost in the metric's units. The check API below used to take
/// rows of raw doubles — exactly the adjacent-parameter shape
/// bugprone-easily-swappable-parameters flags, because a caller can pass
/// (min, cost, max) in the wrong order without any diagnostic. Construction
/// is explicit; .value() unwraps at the arithmetic boundary.
class Cost {
 public:
  explicit constexpr Cost(double value) : value_{value} {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_;
};

/// A transmitter utilization: the busy fraction of a measurement period.
/// Distinct from Cost so a busy fraction can never slide into a cost slot
/// of the check API (or vice versa) without an explicit construction.
class Utilization {
 public:
  explicit constexpr Utilization(double value) : value_{value} {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_;
};

/// Fatal unless `cost` lies in [min_cost - slack, max_cost + slack] —
/// the absolute-bound invariant of paper section 4.4. `what` names the
/// checked quantity in the failure message.
void check_cost_in_bounds(Cost cost, Cost min_cost, Cost max_cost,
                          const char* what = "reported cost");

/// Fatal unless the step from `previous` to `next` obeys the per-update
/// movement limits of section 4.3: at most up_limit() up and down_limit()
/// down. `extra_slack` widens both bounds; network-level report-to-report
/// checks pass the significance threshold here, because a cost may drift
/// sub-threshold for several periods before an update carries it.
void check_movement_limited(Cost previous, Cost next,
                            const core::LineTypeParams& params,
                            double extra_slack = 0.0);

/// Fatal unless `u` is finite and non-negative. There is deliberately no
/// upper bound: a transmission that straddles a period boundary is
/// attributed wholly to the period it completes in, so a congested line can
/// legitimately report a busy fraction slightly above 1.
void check_utilization_in_range(Utilization u,
                                const char* what = "utilization");

/// Fatal unless the metric's equilibrium map has the section 4.2 shape:
/// flat at min_cost() for utilizations below flat_threshold, non-decreasing
/// above it, and exactly max_cost() at 100%. Samples the map at `samples`
/// evenly spaced utilizations.
void check_flat_region(const core::HnMetric& metric, int samples = 101);

/// Streaming check that a sequence of timestamps never goes backwards
/// (event-queue pops, per-link cost traces, packet traces).
class MonotonicTimeChecker {
 public:
  explicit MonotonicTimeChecker(const char* what = "timestamp")
      : what_{what} {}

  /// Fatal if `t` precedes the previously observed timestamp.
  void observe(util::SimTime t);

  [[nodiscard]] long observed() const { return count_; }

 private:
  const char* what_;
  util::SimTime last_ = util::SimTime::zero();
  long count_ = 0;
};

/// Fatal unless `tree` is structurally valid for `topo` and `costs`:
/// root at distance 0 with no parent; every reached node's parent edge
/// consistent (dist[to] == dist[from] + cost within slack); parent chains
/// acyclic and terminating at the root; first hops matching the parent
/// chain; and every node reachable (all costs here are finite and the
/// topologies are connected by construction).
void check_spf_tree(const net::Topology& topo, const routing::SpfTree& tree,
                    std::span<const double> costs);

/// What audit_network covered, so callers can assert the audit actually
/// inspected something (a zero count in a test means the hook is dead).
struct AuditStats {
  long costs_checked = 0;        ///< live reported costs, bounds-checked
  long trace_steps_checked = 0;  ///< cost-trace transitions, movement-checked
  long trees_checked = 0;        ///< per-PSN SPF trees validated
  long maps_checked = 0;         ///< per-link equilibrium maps validated
  long routes_checked = 0;       ///< node pairs route-audited (both kinds)

  AuditStats& operator+=(const AuditStats& o) {
    costs_checked += o.costs_checked;
    trace_steps_checked += o.trace_steps_checked;
    trees_checked += o.trees_checked;
    maps_checked += o.maps_checked;
    routes_checked += o.routes_checked;
    return *this;
  }
};

/// Partition-aware forwarding audit (SPF mode). Computes the connected
/// components of the *administratively up* trunks, then checks every
/// ordered node pair: same-component pairs must have a working forwarding
/// chain (each hop's link admin-up, no loop, terminating at the
/// destination); cross-component pairs must not — their chains are allowed
/// only if they traverse a down link (a down link advertises the finite
/// Psn::kDownLinkCost, so SPF trees stay total and "routes" through the
/// cut exist structurally but would black-hole).
///
/// Replaces the old audit assumption that every pair is mutually reachable,
/// which false-positived the moment a fault plan legitimately partitioned
/// the network. Only meaningful once flooding has quiesced
/// (Network::updates_in_flight() == 0) — callers must gate on that, as the
/// per-PSN maps may legitimately disagree mid-flood. Returns counts of the
/// pairs checked; violations abort via ARPA_CHECK.
AuditStats check_reachable_within_component(const sim::Network& net);

/// Full-network self-audit; any violated invariant aborts via ARPA_CHECK.
/// Always checks that reported costs are positive and finite and (in SPF
/// mode) that every PSN's tree is valid against its own cost map. When the
/// network runs the HN-SPF metric with known line parameters, additionally
/// enforces cost bounds, flat regions, and — if reported-cost traces were
/// recorded — timestamp monotonicity and movement limits per trace.
AuditStats audit_network(const sim::Network& net);

}  // namespace arpanet::analysis
