#include "src/analysis/dynamic_trace.h"

#include <algorithm>

namespace arpanet::analysis {

std::vector<TraceStep> trace_dspf(const NetworkResponseMap& response,
                                  const MetricMap& dspf_map, double offered_load,
                                  double start_cost_hops, int steps) {
  std::vector<TraceStep> trace;
  trace.reserve(static_cast<std::size_t>(steps));
  double cost = start_cost_hops;
  for (int i = 0; i < steps; ++i) {
    const double u =
        std::min(1.0, offered_load * response.traffic_fraction(cost));
    trace.push_back({cost, u});
    cost = dspf_map.normalized_cost(u);
  }
  return trace;
}

std::vector<TraceStep> trace_hnspf(const NetworkResponseMap& response,
                                   const core::LineTypeParams& params,
                                   net::LineType type, double offered_load,
                                   int steps, bool start_at_max) {
  const net::LineTypeInfo& ti = net::info(type);
  core::HnMetric hnm{params, ti.rate, ti.default_prop_delay};
  if (start_at_max) {
    hnm.on_link_up();
  } else {
    hnm.reset_state(hnm.min_cost(), 0.0);
  }
  // Normalize by the same hop unit the response map uses: one ambient hop.
  const double hop = params.base_min;

  std::vector<TraceStep> trace;
  trace.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double cost_hops = hnm.last_reported() / hop;
    const double u =
        std::min(1.0, offered_load * response.traffic_fraction(cost_hops));
    trace.push_back({cost_hops, u});
    hnm.update_from_utilization(u);
  }
  return trace;
}

double tail_amplitude(const std::vector<TraceStep>& trace) {
  if (trace.empty()) return 0.0;
  const std::size_t start = trace.size() / 2;
  double lo = trace[start].cost_hops;
  double hi = lo;
  for (std::size_t i = start; i < trace.size(); ++i) {
    lo = std::min(lo, trace[i].cost_hops);
    hi = std::max(hi, trace[i].cost_hops);
  }
  return hi - lo;
}

}  // namespace arpanet::analysis
