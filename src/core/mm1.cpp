#include "src/core/mm1.h"

#include <algorithm>

namespace arpanet::core {

util::SimTime mean_service_time(util::DataRate rate) {
  return rate.transmission_time(util::kAveragePacketBits);
}

double utilization_from_delay(util::SimTime measured_delay, util::DataRate rate,
                              util::SimTime prop_delay) {
  const double s = mean_service_time(rate).sec();
  const double system_time = (measured_delay - prop_delay).sec();
  if (system_time <= s) return 0.0;
  const double rho = 1.0 - s / system_time;
  return std::min(rho, kMaxUtilization);
}

util::SimTime delay_from_utilization(double rho, util::DataRate rate,
                                     util::SimTime prop_delay) {
  const double clamped = std::clamp(rho, 0.0, kMaxUtilization);
  const double s = mean_service_time(rate).sec();
  return prop_delay + util::SimTime::from_sec(s / (1.0 - clamped));
}

}  // namespace arpanet::core
