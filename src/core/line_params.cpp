#include "src/core/line_params.h"

namespace arpanet::core {

LineParamsTable LineParamsTable::arpanet_defaults() {
  LineParamsTable t;
  // 9.6 kb/s: idle cost ~2.3 hops relative to a 56 kb/s hop (its service
  // time is ~6x longer), max 210 = 3x its own zero-prop min, and 210/30 = 7x
  // an idle 56 kb/s line — the paper's stated bound. Slow lines begin
  // shedding earlier (lower flat threshold) because their queues hurt more.
  t.set(net::LineType::kTerrestrial9_6, {.base_min = 70.0, .max_cost = 210.0, .flat_threshold = 0.40});
  t.set(net::LineType::kSatellite9_6, {.base_min = 70.0, .max_cost = 210.0, .flat_threshold = 0.40});
  // 19.2 kb/s: between the 9.6 tails and the 56k backbone.
  t.set(net::LineType::kTerrestrial19_2, {.base_min = 50.0, .max_cost = 150.0, .flat_threshold = 0.45});
  // 56 kb/s: the paper's running example — min 30, max 90, flat to 50%.
  t.set(net::LineType::kTerrestrial56, {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.50});
  t.set(net::LineType::kSatellite56, {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.50});
  // Faster multi-trunk/high-speed types: slightly cheaper hops, later
  // shedding (they tolerate higher utilization before queueing bites).
  t.set(net::LineType::kMultiTrunk112, {.base_min = 28.0, .max_cost = 84.0, .flat_threshold = 0.55});
  t.set(net::LineType::kMultiTrunk224, {.base_min = 27.0, .max_cost = 81.0, .flat_threshold = 0.58});
  t.set(net::LineType::kTerrestrial230, {.base_min = 26.0, .max_cost = 78.0, .flat_threshold = 0.60});
  return t;
}

}  // namespace arpanet::core
