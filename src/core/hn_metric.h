// The HN-SPF Module (HNM) — the paper's contribution.
//
// One HnMetric instance holds the per-link state the pseudocode of figure 3
// stores ("Last'Average" and "Last'Reported") and applies the full revised
// transform each measurement period:
//
//   Sample_Utilization  = delay_to_utilization[Measured_Delay]     (M/M/1)
//   Average_Utilization = .5*Sample_Utilization + .5*Last_Average
//   Raw_Cost     = Slope[Line_Type]*Average_Utilization + Offset[Line_Type]
//   Limited_Cost = Limit_Movement(Raw_Cost, Last_Reported, Line_Type)
//   Revised_Cost = Clip(Limited_Cost, Max[Line_Type], Min[Line_Type])
//
// Movement limiting is asymmetric (down limit one unit below the up limit)
// so that a cost oscillating around equilibrium "marches up one unit" per
// cycle, spreading the reported costs of equally-utilized lines and
// defeating the epsilon problem (section 5.4). A link that comes up starts
// at its maximum cost and is eased in by the down limit (section 5.4).

#pragma once

#include "src/core/line_params.h"
#include "src/core/mm1.h"
#include "src/util/units.h"

namespace arpanet::core {

class HnMetric {
 public:
  /// `params` are the line-type normalization constants; `rate` and
  /// `prop_delay` are the link's configured values (used for the M/M/1
  /// inversion and the propagation-sensitive minimum).
  HnMetric(LineTypeParams params, util::DataRate rate, util::SimTime prop_delay);

  /// Full per-period transform from a measured average packet delay.
  /// Returns the revised cost to report.
  double update_from_delay(util::SimTime measured_delay);

  /// Same transform entered after the M/M/1 step — used by the analysis
  /// layer, which works directly in utilization space (section 5).
  double update_from_utilization(double sample_utilization);

  /// Link-up behaviour: the next reports start from Max and are pulled in
  /// gradually by the down-movement limit ("it gently eases in new lines").
  void on_link_up();

  /// Analysis/test hook: places the stored state at a chosen point (e.g. to
  /// start a dynamic trace from a given reported cost). Values are clipped
  /// to the legal ranges.
  void reset_state(double reported_cost, double average_utilization);

  [[nodiscard]] double last_reported() const { return last_reported_; }
  [[nodiscard]] double last_average_utilization() const { return last_average_; }

  /// Bounds actually in force for this link (min is propagation-adjusted).
  [[nodiscard]] double min_cost() const { return min_cost_; }
  [[nodiscard]] double max_cost() const { return params_.max_cost; }
  /// Update-generation threshold ("a little less than a half-hop").
  [[nodiscard]] double change_threshold() const { return params_.change_threshold(); }

  [[nodiscard]] const LineTypeParams& params() const { return params_; }

  /// The equilibrium metric map: the cost the transform settles on if the
  /// averaged utilization is held at `utilization` — i.e. raw cost clipped
  /// to [min, max] with no movement history. Static view used for figures
  /// 4, 5 and 9.
  [[nodiscard]] double equilibrium_cost(double utilization) const;

 private:
  [[nodiscard]] double limit_movement(double raw) const;
  [[nodiscard]] double clip(double cost) const;

  LineTypeParams params_;
  util::DataRate rate_;
  util::SimTime prop_delay_;
  double min_cost_;
  double last_average_ = 0.0;
  double last_reported_;
};

}  // namespace arpanet::core
