#include "src/core/hn_metric.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/check.h"

namespace arpanet::core {

HnMetric::HnMetric(LineTypeParams params, util::DataRate rate,
                   util::SimTime prop_delay)
    : params_{params},
      rate_{rate},
      prop_delay_{prop_delay},
      min_cost_{params.min_cost(prop_delay)} {
  if (!(params.base_min > 0) || !(params.max_cost > params.base_min) ||
      !(params.flat_threshold > 0) || !(params.flat_threshold < 1)) {
    throw std::invalid_argument("invalid LineTypeParams");
  }
  // The propagation-adjusted minimum can reach 2*base_min (geostationary
  // cap); the cost range [min, max] must stay non-empty or the clip is
  // ill-defined.
  if (!(min_cost_ < params.max_cost)) {
    throw std::invalid_argument(
        "LineTypeParams: propagation-adjusted minimum exceeds max_cost");
  }
  on_link_up();
}

void HnMetric::on_link_up() {
  // "When a link comes up it starts with its highest cost. Routing will
  // converge to its equilibrium slowly by pulling in a little more traffic
  // with each routing period."
  last_reported_ = params_.max_cost;
  last_average_ = 1.0;
}

void HnMetric::reset_state(double reported_cost, double average_utilization) {
  last_reported_ = std::clamp(reported_cost, min_cost_, params_.max_cost);
  last_average_ = std::clamp(average_utilization, 0.0, 1.0);
}

double HnMetric::update_from_delay(util::SimTime measured_delay) {
  return update_from_utilization(
      utilization_from_delay(measured_delay, rate_, prop_delay_));
}

double HnMetric::update_from_utilization(double sample_utilization) {
  const double sample = std::clamp(sample_utilization, 0.0, 1.0);
  last_average_ = 0.5 * sample + 0.5 * last_average_;
  const double raw = params_.raw_cost(last_average_);
  const double limited = limit_movement(raw);
  const double revised = clip(limited);
  // Paper invariants (sections 4.3/4.4), enforced in debug builds on every
  // period: the revised cost stays inside the line's absolute bounds and
  // moves at most one up/down limit from the previous report.
  ARPA_DCHECK(revised >= min_cost_ && revised <= params_.max_cost)
      << "revised cost " << revised << " outside [" << min_cost_ << ", "
      << params_.max_cost << "]";
  // Compare against the same clamp bounds limit_movement computed: the
  // subtracted form `revised - last_reported_ <= up_limit()` can fail
  // spuriously when `(last + up) - last` rounds above `up`.
  ARPA_DCHECK(revised <= last_reported_ + params_.up_limit())
      << "revised cost rose " << last_reported_ << " -> " << revised
      << ", past the up limit " << params_.up_limit();
  ARPA_DCHECK(revised >= last_reported_ - params_.down_limit())
      << "revised cost fell " << last_reported_ << " -> " << revised
      << ", past the down limit " << params_.down_limit();
  last_reported_ = revised;
  return revised;
}

double HnMetric::limit_movement(double raw) const {
  const double hi = last_reported_ + params_.up_limit();
  const double lo = last_reported_ - params_.down_limit();
  return std::clamp(raw, lo, hi);
}

double HnMetric::clip(double cost) const {
  return std::clamp(cost, min_cost_, params_.max_cost);
}

double HnMetric::equilibrium_cost(double utilization) const {
  return std::clamp(params_.raw_cost(std::clamp(utilization, 0.0, 1.0)),
                    min_cost_, params_.max_cost);
}

}  // namespace arpanet::core
