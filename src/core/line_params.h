// Per-line-type normalization parameters of the revised (HN-SPF) metric.
//
// The HNM's transformations "are parameterized based on the link's
// line-type" (paper section 4.1). For each type the table holds the anchors
// the paper states for the ARPANET/MILNET tuning:
//
//   * base_min  — the reported cost of an idle zero-propagation-delay line
//                 of this type (the "hop" value; 30 for 56 kb/s).
//   * max_cost  — absolute upper bound, "approximately three times the
//                 minimum value for a zero-propagation-delay line of the
//                 same type" (section 4.4), so a link can look at most two
//                 additional hops worse than idle.
//   * flat_threshold — utilization below which the cost stays at the
//                 minimum ("it is 50% for a 56 kb/s terrestrial link",
//                 section 4.2); above it the cost rises linearly, reaching
//                 max_cost at 100% utilization.
//
// From these, the linear normalization Raw = Slope * Utilization + Offset of
// the pseudocode (figure 3) is derived, along with the movement limits of
// section 4.3:
//
//   * up_limit    = base_min/2 + 1   ("a little more than a half-hop")
//   * down_limit  = up_limit - 1     ("the maximum down value is one unit
//                                     less than the maximum up value", the
//                                     march-up that defeats the epsilon
//                                     problem)
//   * change_threshold = base_min/2 - 1  ("a little less than a half-hop")
//
// The per-link minimum is "a slowly increasing function of the configured
// propagation delay" (section 4.2) — min_cost(prop) below — which is what
// prices an idle satellite line above its terrestrial twin while capping the
// penalty at 2x so "a 56 kb/s satellite trunk can appear no more than twice
// as expensive as its terrestrial counterpart" (section 4.4).
//
// The paper stresses that these values were tuned for the ARPANET/MILNET and
// "are not necessarily appropriate for all network topologies"; the table is
// therefore a mutable value type with arpanet_defaults() as the published
// tuning.

#pragma once

#include <algorithm>
#include <array>

#include "src/net/line_type.h"
#include "src/util/units.h"

namespace arpanet::core {

struct LineTypeParams {
  double base_min = 30.0;
  double max_cost = 90.0;
  double flat_threshold = 0.5;

  /// Slope/Offset of the pseudocode's linear transform, chosen so the raw
  /// cost equals base_min at flat_threshold and max_cost at utilization 1.
  /// (Below the threshold the clip against the minimum produces the flat
  /// region.)
  [[nodiscard]] double slope() const {
    return (max_cost - base_min) / (1.0 - flat_threshold);
  }
  [[nodiscard]] double offset() const { return max_cost - slope(); }

  /// Raw (unclipped, unlimited) cost for an averaged utilization.
  [[nodiscard]] double raw_cost(double utilization) const {
    return slope() * utilization + offset();
  }

  /// Per-link lower bound: grows linearly with configured propagation delay
  /// from base_min at 0 ms to 2*base_min at a geostationary one-way hop
  /// (130 ms), capped there so an idle satellite line costs at most twice
  /// its terrestrial twin and the rising portion of the curve always reaches
  /// the same max_cost.
  [[nodiscard]] double min_cost(util::SimTime prop_delay) const {
    const double factor = 1.0 + std::min(prop_delay.ms(), 130.0) / 130.0;
    return base_min * factor;
  }

  [[nodiscard]] double up_limit() const { return base_min / 2.0 + 1.0; }
  [[nodiscard]] double down_limit() const { return up_limit() - 1.0; }
  [[nodiscard]] double change_threshold() const { return base_min / 2.0 - 1.0; }
};

/// The full 8-slot parameter table (6 populated line types in this build).
class LineParamsTable {
 public:
  /// The tuning documented in DESIGN.md section 5, reproducing the paper's
  /// stated anchors (fig. 5): e.g. a saturated 9.6 kb/s line reports ~7x an
  /// idle 56 kb/s line (210/30) instead of D-SPF's ~127x.
  [[nodiscard]] static LineParamsTable arpanet_defaults();

  [[nodiscard]] const LineTypeParams& for_type(net::LineType t) const {
    return params_[static_cast<std::size_t>(t)];
  }
  void set(net::LineType t, LineTypeParams p) {
    params_[static_cast<std::size_t>(t)] = p;
  }

 private:
  std::array<LineTypeParams, net::kLineTypeCount> params_{};
};

}  // namespace arpanet::core
