// M/M/1 delay <-> utilization conversions.
//
// The HNM's first step converts the measured average packet delay on a link
// into a utilization estimate using "a simple M/M/1 queueing model ... with
// the service time being the network-wide average packet size (600
// bits/packet) divided by the trunk's bandwidth" (paper section 4.1). The
// same model, run the other way, produces the delay a utilization level
// implies — used by the D-SPF metric map and throughout section 5's
// equilibrium analysis ("all utilization-to-delay and delay-to-utilization
// transformations are based on an M/M/1 queueing model").
//
// Model: measured delay D = P + S / (1 - rho), where P is propagation delay,
// S = 600 bits / bandwidth is the mean service (transmission) time, and rho
// is utilization. S/(1-rho) is the M/M/1 mean system time (queueing +
// service).

#pragma once

#include "src/util/units.h"

namespace arpanet::core {

/// Utilization is clamped to this ceiling when inverting the model, since a
/// measured delay can exceed anything a stable M/M/1 queue produces.
inline constexpr double kMaxUtilization = 0.999;

/// Mean service time of an average (600-bit) packet on a line of the given
/// rate.
[[nodiscard]] util::SimTime mean_service_time(util::DataRate rate);

/// rho from measured delay. Returns 0 when the delay is at or below the
/// idle floor (propagation + one service time); clamps to kMaxUtilization.
[[nodiscard]] double utilization_from_delay(util::SimTime measured_delay,
                                            util::DataRate rate,
                                            util::SimTime prop_delay);

/// Mean measured delay implied by a utilization level (inverse of the
/// above). rho is clamped to [0, kMaxUtilization].
[[nodiscard]] util::SimTime delay_from_utilization(double rho, util::DataRate rate,
                                                   util::SimTime prop_delay);

}  // namespace arpanet::core
