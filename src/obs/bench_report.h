// The benchmark battery behind tools/bench_report and the bench-smoke CI
// job: a fixed set of scenarios (reference topologies under HN-SPF and
// D-SPF) run through the sweep engine, with every cell's observability
// counters, delay percentiles and event-rate telemetry exported as one
// schema-versioned JSON document (BENCH_metrics.json).
//
// Everything except the wall-time fields is deterministic: cells are
// emitted in sweep enumeration order and carry no worker/thread
// information, so the same battery produces byte-identical JSON at any
// thread count once mask_wall_time_fields() blanks the timings. That is
// the property the golden-file test (tests/bench_report_test.cpp) pins.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/net/graph_spec.h"
#include "src/net/topology.h"
#include "src/obs/counters.h"
#include "src/util/units.h"

namespace arpanet::obs {

/// JSON document identity; consumers reject documents whose schema pair
/// they do not understand. Bump the version on any field change.
/// v2: nested per-cell "event_queue" object (peak_depth, slab_slots,
/// resizes, overflow_scheduled) replacing the flat event_queue_peak_depth,
/// plus the top-level "micro" array of event-queue microbenchmark cells.
/// v3: top-level "topo" array of large-topology cells (generated-family
/// graph build + SPF-at-scale throughput; see TopoCell).
/// v4: per-cell "alloc_guard" object (scopes, bytes_peak) from the
/// measurement-window allocation guard (util/alloc_guard.h); bytes_peak is
/// masked like the wall-time fields since sanitizer/debug builds allocate.
/// v5: per-cell "fault_spec" string and "stability" object (route_changes,
/// flat_oscillations, max_movement, faults_applied, reconverge_sec) from
/// the scenario fault engine (sim/fault_plan.h). All deterministic —
/// reconverge_sec is sim time, not wall time, so it is golden-pinned.
/// v6: top-level "build_flavor" string ("plain" or "lto", from the
/// ARPANET_LTO CMake option) so rolling baselines never mix optimization
/// flavors, plus the top-level "shards" array of sharded-engine scaling
/// cells (see ShardCell): one scenario run at shard counts 1 and 4, with
/// the event totals golden-pinned (identical at every K — the sharded
/// engine's equivalence contract) and the rates/speedup masked wall time.
inline constexpr const char* kBenchSchemaName = "arpanet-bench-metrics";
inline constexpr int kBenchSchemaVersion = 6;

/// The optimization flavor this library was compiled with. Reports record
/// it so bench_compare can refuse to trend LTO numbers against plain ones.
[[nodiscard]] const char* bench_build_flavor();

/// One benchmark scenario: a topology driven at a fixed offered load. Each
/// scenario runs once per metric in the battery's metric axis.
struct BenchScenario {
  std::string name;  ///< topology label in the report
  net::Topology topo;
  double offered_load_bps = 0.0;
  util::SimTime warmup = util::SimTime::zero();
  util::SimTime window = util::SimTime::zero();
  /// FaultPlan::parse spec injected into every cell of this scenario
  /// (empty = fault-free).
  std::string fault_spec;
};

/// One executed (scenario, metric) cell with its full telemetry.
struct BenchCell {
  std::string topology;
  std::string metric;
  std::size_t nodes = 0;
  std::size_t links = 0;
  double offered_load_bps = 0.0;
  double warmup_sec = 0.0;
  double window_sec = 0.0;

  Counters counters;
  long packets_generated = 0;  ///< measurement window only (NetworkStats)
  long packets_delivered = 0;
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
  long audit_costs_checked = 0;
  long audit_trees_checked = 0;

  // Routing-stability telemetry (sim::StabilityStats); all sim-time
  // deterministic, including reconverge_sec.
  std::string fault_spec;  ///< the scenario's fault plan ("" = fault-free)
  long stability_route_changes = 0;
  long stability_flat_oscillations = 0;
  double stability_max_movement = 0.0;
  long stability_faults_applied = 0;
  double stability_reconverge_sec = 0.0;

  std::uint64_t events = 0;   ///< simulator events across warm-up + window
  double wall_sec = 0.0;      ///< host time (masked in golden comparisons)
  [[nodiscard]] double events_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
};

/// One event-queue microbenchmark cell: a synthetic schedule/pop workload
/// (hold model) driven directly against sim::EventQueue, isolating queue
/// throughput from the rest of the simulator. `ops` and `checksum` are
/// deterministic (the golden test pins them); only the rate is wall time.
struct MicroCell {
  std::string name;
  std::uint64_t ops = 0;       ///< schedule + pop operations executed
  std::uint64_t checksum = 0;  ///< order-sensitive digest of the pop sequence
  double wall_sec = 0.0;       ///< host time (masked in golden comparisons)
  [[nodiscard]] double ops_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(ops) / wall_sec : 0.0;
  }
};

/// One large-topology cell: a TopologyBuilder registry family built from
/// its GraphSpec, then pushed through full SPF from sampled roots and an
/// incremental-SPF perturbation stream. Everything except build_sec /
/// spf_sec is deterministic — the graph checksum and SPF checksum pin the
/// generated bytes and the routing result, the counters pin the
/// incremental algorithm's work profile — so these cells join the golden
/// byte-identity comparison with only the wall fields masked.
struct TopoCell {
  std::string name;    ///< GraphSpec::label(), e.g. "ba-n10000-s1987-m2"
  std::string family;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::uint64_t graph_checksum = 0;  ///< FNV over (from, to, prop_us) per link
  std::uint64_t spf_roots = 0;           ///< full Dijkstra roots sampled
  std::uint64_t spf_nodes_settled = 0;   ///< reachable nodes summed over roots
  std::uint64_t spf_checksum = 0;  ///< FNV over (dist bits, first_hop) per node
  long incremental_updates = 0;  ///< IncrementalSpf localized passes
  long skipped_updates = 0;      ///< no-work updates (paper's example)
  long nodes_touched = 0;        ///< distance recomputations, summed
  double build_sec = 0.0;  ///< host time (masked in golden comparisons)
  double spf_sec = 0.0;    ///< host time for the full-SPF root loop (masked)
  [[nodiscard]] double spf_nodes_per_sec() const {
    return spf_sec > 0.0 ? static_cast<double>(spf_nodes_settled) / spf_sec
                         : 0.0;
  }
};

/// One sharded-engine scaling cell: the same network scenario run to the
/// same sim-time horizon at a given shard count (sim::NetworkConfig::
/// shards). `events` is the engine's lifetime event total — identical at
/// every shard count by the equivalence contract, so it is golden-pinned;
/// wall_sec and the derived rate/speedup are host time and masked.
struct ShardCell {
  std::string name;     ///< scenario label, e.g. "leo-grid64"
  int shards = 1;
  std::uint64_t events = 0;
  double wall_sec = 0.0;  ///< host time (masked in golden comparisons)
  /// wall_sec(shards=1) / wall_sec for the same scenario (1.0 for the
  /// single-shard row itself); masked with the other wall-time fields.
  double speedup = 1.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
};

/// The whole battery's results, in deterministic cell order.
struct BenchReport {
  std::string battery;
  std::string build_flavor;  ///< bench_build_flavor() at run time
  std::vector<BenchCell> cells;
  std::vector<MicroCell> micro;  ///< event-queue microbenchmarks
  std::vector<TopoCell> topo;    ///< large-topology build + SPF cells
  std::vector<ShardCell> shards; ///< sharded-engine scaling cells
  double elapsed_sec = 0.0;  ///< wall clock of the whole battery

  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Schema self-check: every cell must show real simulation work (nonzero
  /// full/incremental/skipped SPF counts, events, delivered packets).
  /// Returns human-readable violations; empty means the report is valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The named battery's scenario list. "smoke" is the small deterministic
/// set the golden test pins (ring + grid, short windows); "battery" is the
/// full set (arpanet87, a larger grid, the MILNET-like network). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::vector<BenchScenario> bench_battery(
    const std::string& name);

/// Runs every scenario of `battery` under HN-SPF and D-SPF on `threads`
/// sweep workers (0 = hardware concurrency) and collects the report.
[[nodiscard]] BenchReport run_bench_battery(const std::string& battery,
                                            int threads = 0);

/// Runs the fixed event-queue microbenchmark cells (a near-future hold
/// model matching the simulator's distribution, and a wide-span variant
/// that exercises the far-future overflow path). Deterministic except for
/// the wall-time fields.
[[nodiscard]] std::vector<MicroCell> run_micro_cells();

/// The named battery's large-topology specs. "smoke" builds one small cell
/// per generated family (fast; the golden test pins the checksums);
/// "battery" scales up — including the 10k-node Barabási–Albert cell — so
/// graph build and SPF-at-scale throughput join the rolling trend check.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::vector<net::GraphSpec> topo_battery(
    const std::string& name);

/// Builds one spec's topology (timed), checksums the generated graph, runs
/// full SPF from deterministically sampled roots (timed, checksummed), and
/// drives an IncrementalSpf through a seeded perturbation stream to record
/// its work profile. Always serial — cell order and content never depend on
/// the sweep thread count.
[[nodiscard]] TopoCell run_topo_cell(const net::GraphSpec& spec);

/// The named battery's sharded-engine scaling cells: one LEO-grid scenario
/// ("smoke" small, "battery" larger) run at shard counts 1 and 4, in that
/// order. Always serial — each run owns all its worker threads. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::vector<ShardCell> run_shard_cells(
    const std::string& battery);

/// Replaces the values of wall-time-derived fields (wall_sec,
/// events_per_sec, ops_per_sec, elapsed_sec, build_sec, spf_sec,
/// spf_nodes_per_sec, speedup) with 0 so two reports of the same battery
/// can be compared byte-for-byte. build_flavor masks too: the golden file
/// must match from both the plain and the LTO build.
[[nodiscard]] std::string mask_wall_time_fields(const std::string& json);

}  // namespace arpanet::obs
