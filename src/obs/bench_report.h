// The benchmark battery behind tools/bench_report and the bench-smoke CI
// job: a fixed set of scenarios (reference topologies under HN-SPF and
// D-SPF) run through the sweep engine, with every cell's observability
// counters, delay percentiles and event-rate telemetry exported as one
// schema-versioned JSON document (BENCH_metrics.json).
//
// Everything except the wall-time fields is deterministic: cells are
// emitted in sweep enumeration order and carry no worker/thread
// information, so the same battery produces byte-identical JSON at any
// thread count once mask_wall_time_fields() blanks the timings. That is
// the property the golden-file test (tests/bench_report_test.cpp) pins.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/net/topology.h"
#include "src/obs/counters.h"
#include "src/util/units.h"

namespace arpanet::obs {

/// JSON document identity; consumers reject documents whose schema pair
/// they do not understand. Bump the version on any field change.
/// v2: nested per-cell "event_queue" object (peak_depth, slab_slots,
/// resizes, overflow_scheduled) replacing the flat event_queue_peak_depth,
/// plus the top-level "micro" array of event-queue microbenchmark cells.
inline constexpr const char* kBenchSchemaName = "arpanet-bench-metrics";
inline constexpr int kBenchSchemaVersion = 2;

/// One benchmark scenario: a topology driven at a fixed offered load. Each
/// scenario runs once per metric in the battery's metric axis.
struct BenchScenario {
  std::string name;  ///< topology label in the report
  net::Topology topo;
  double offered_load_bps = 0.0;
  util::SimTime warmup = util::SimTime::zero();
  util::SimTime window = util::SimTime::zero();
};

/// One executed (scenario, metric) cell with its full telemetry.
struct BenchCell {
  std::string topology;
  std::string metric;
  std::size_t nodes = 0;
  std::size_t links = 0;
  double offered_load_bps = 0.0;
  double warmup_sec = 0.0;
  double window_sec = 0.0;

  Counters counters;
  long packets_generated = 0;  ///< measurement window only (NetworkStats)
  long packets_delivered = 0;
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
  long audit_costs_checked = 0;
  long audit_trees_checked = 0;

  std::uint64_t events = 0;   ///< simulator events across warm-up + window
  double wall_sec = 0.0;      ///< host time (masked in golden comparisons)
  [[nodiscard]] double events_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
};

/// One event-queue microbenchmark cell: a synthetic schedule/pop workload
/// (hold model) driven directly against sim::EventQueue, isolating queue
/// throughput from the rest of the simulator. `ops` and `checksum` are
/// deterministic (the golden test pins them); only the rate is wall time.
struct MicroCell {
  std::string name;
  std::uint64_t ops = 0;       ///< schedule + pop operations executed
  std::uint64_t checksum = 0;  ///< order-sensitive digest of the pop sequence
  double wall_sec = 0.0;       ///< host time (masked in golden comparisons)
  [[nodiscard]] double ops_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(ops) / wall_sec : 0.0;
  }
};

/// The whole battery's results, in deterministic cell order.
struct BenchReport {
  std::string battery;
  std::vector<BenchCell> cells;
  std::vector<MicroCell> micro;  ///< event-queue microbenchmarks
  double elapsed_sec = 0.0;  ///< wall clock of the whole battery

  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Schema self-check: every cell must show real simulation work (nonzero
  /// full/incremental/skipped SPF counts, events, delivered packets).
  /// Returns human-readable violations; empty means the report is valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The named battery's scenario list. "smoke" is the small deterministic
/// set the golden test pins (ring + grid, short windows); "battery" is the
/// full set (arpanet87, a larger grid, the MILNET-like network). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::vector<BenchScenario> bench_battery(
    const std::string& name);

/// Runs every scenario of `battery` under HN-SPF and D-SPF on `threads`
/// sweep workers (0 = hardware concurrency) and collects the report.
[[nodiscard]] BenchReport run_bench_battery(const std::string& battery,
                                            int threads = 0);

/// Runs the fixed event-queue microbenchmark cells (a near-future hold
/// model matching the simulator's distribution, and a wide-span variant
/// that exercises the far-future overflow path). Deterministic except for
/// the wall-time fields.
[[nodiscard]] std::vector<MicroCell> run_micro_cells();

/// Replaces the values of wall-time-derived fields (wall_sec,
/// events_per_sec, ops_per_sec, elapsed_sec) with 0 so two reports of the
/// same battery can be compared byte-for-byte.
[[nodiscard]] std::string mask_wall_time_fields(const std::string& json);

}  // namespace arpanet::obs
