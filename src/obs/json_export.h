// Deterministic JSON emission, no external dependencies.
//
// JsonWriter is a streaming writer with explicit object/array scopes and
// automatic comma/indent handling. Output is byte-deterministic for the
// same call sequence: doubles use the fixed "%.10g" format (locale- and
// stream-state-independent, same rule as the sweep CSV), integers print
// exactly, and strings are escaped per RFC 8259. That determinism is what
// lets tests/golden/bench_smoke.json be compared byte-for-byte.
//
// Usage:
//   JsonWriter w{os};
//   w.begin_object();
//   w.member("schema", "arpanet-bench-metrics");
//   w.key("scenarios").begin_array();
//   ...
//   w.end_array();
//   w.end_object();   // writer checks scopes balance via ARPA_CHECK

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace arpanet::obs {

/// Fixed-format decimal for a double ("%.10g"); non-finite values render as
/// JSON null so the document always parses.
[[nodiscard]] std::string json_double(double v);

/// RFC 8259 string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(bool v);

  /// key(k).value(v) in one call.
  template <typename T>
  JsonWriter& member(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  struct Scope {
    bool array = false;
    bool empty = true;
  };

  /// Comma/newline/indent bookkeeping before a value or key is emitted.
  void lead_in();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
};

}  // namespace arpanet::obs
