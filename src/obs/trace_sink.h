// Per-link trace hooks: reported-cost and utilization time series.
//
// ARPALINT-LAYER(net): needs only topology identifiers; sim hands it
// samples through the abstract TraceSink interface
//
// Jonglez et al. (PAPERS.md) make the case that smoothing/hysteresis
// metrics are only debuggable when their per-link dynamics are recorded as
// time series, and Fukś et al. that distributions beat point averages. A
// TraceSink attached to a sim::Network receives
//   * every reported cost the moment an update is originated, and
//   * every link's measured busy fraction once per measurement period,
// without the network pre-committing to a storage format. Detached costs
// one branch per event (same contract as sim::PacketTracer).
//
// RecordingTraceSink is the standard in-memory implementation used by
// tools/bench_report and the tests. StreamingTraceSink writes the same
// samples to a stream as they happen (JSONL or CSV, buffered), for runs too
// long to hold every sample in memory.

#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A PSN originated an update advertising `cost` for its link `link`.
  virtual void on_cost_reported(net::LinkId link, util::SimTime at,
                                double cost) = 0;

  /// One measurement period closed on `link` with this busy fraction.
  virtual void on_utilization(net::LinkId link, util::SimTime at,
                              double busy_fraction) = 0;
};

/// Stores both series per link in memory.
class RecordingTraceSink final : public TraceSink {
 public:
  using Sample = std::pair<util::SimTime, double>;

  explicit RecordingTraceSink(std::size_t link_count)
      : costs_(link_count), utilizations_(link_count) {}

  void on_cost_reported(net::LinkId link, util::SimTime at,
                        double cost) override;
  void on_utilization(net::LinkId link, util::SimTime at,
                      double busy_fraction) override;

  [[nodiscard]] const std::vector<Sample>& costs(net::LinkId link) const {
    return costs_.at(link);
  }
  [[nodiscard]] const std::vector<Sample>& utilizations(
      net::LinkId link) const {
    return utilizations_.at(link);
  }
  [[nodiscard]] std::size_t link_count() const { return costs_.size(); }

  /// Total samples recorded across all links (both series).
  [[nodiscard]] std::size_t total_samples() const;

 private:
  std::vector<std::vector<Sample>> costs_;
  std::vector<std::vector<Sample>> utilizations_;
};

/// Streams each sample to an output stream as one record, accumulating
/// records in an internal buffer and writing it out in kFlushBytes chunks
/// so a multi-hour run does not pay a stream write per sample.
///
/// Formats (one record per line, in arrival order):
///   * kJsonl: {"series":"cost","link":3,"t_us":12500000,"value":42.5}
///   * kCsv:   a `series,link,t_us,value` header, then cost,3,12500000,42.5
///
/// Timestamps are integer microseconds (exact); values use the repo-wide
/// %.10g convention. The destructor flushes; flush() forces a mid-run write.
class StreamingTraceSink final : public TraceSink {
 public:
  enum class Format : std::uint8_t { kJsonl, kCsv };

  /// Streams to `os`, which must outlive the sink.
  StreamingTraceSink(std::ostream& os, Format format);
  /// Streams to a file at `path` (truncates; throws std::runtime_error if
  /// the file cannot be opened).
  StreamingTraceSink(const std::string& path, Format format);

  ~StreamingTraceSink() override;

  StreamingTraceSink(const StreamingTraceSink&) = delete;
  StreamingTraceSink& operator=(const StreamingTraceSink&) = delete;

  void on_cost_reported(net::LinkId link, util::SimTime at,
                        double cost) override;
  void on_utilization(net::LinkId link, util::SimTime at,
                      double busy_fraction) override;

  /// Writes any buffered records to the stream and flushes it.
  void flush();

  [[nodiscard]] std::size_t records_written() const { return records_; }

  /// Buffered bytes before the sink writes to the underlying stream.
  static constexpr std::size_t kFlushBytes = 64 * 1024;

 private:
  void append(const char* series, net::LinkId link, util::SimTime at,
              double value);

  std::unique_ptr<std::ofstream> owned_;  ///< set by the path constructor
  std::ostream* os_;
  Format format_;
  std::string buffer_;
  std::size_t records_ = 0;
};

}  // namespace arpanet::obs
