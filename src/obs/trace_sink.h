// Per-link trace hooks: reported-cost and utilization time series.
//
// Jonglez et al. (PAPERS.md) make the case that smoothing/hysteresis
// metrics are only debuggable when their per-link dynamics are recorded as
// time series, and Fukś et al. that distributions beat point averages. A
// TraceSink attached to a sim::Network receives
//   * every reported cost the moment an update is originated, and
//   * every link's measured busy fraction once per measurement period,
// without the network pre-committing to a storage format. Detached costs
// one branch per event (same contract as sim::PacketTracer).
//
// RecordingTraceSink is the standard in-memory implementation used by
// tools/bench_report and the tests; custom sinks can stream to disk or
// compute online statistics instead.

#pragma once

#include <utility>
#include <vector>

#include "src/net/topology.h"
#include "src/util/units.h"

namespace arpanet::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A PSN originated an update advertising `cost` for its link `link`.
  virtual void on_cost_reported(net::LinkId link, util::SimTime at,
                                double cost) = 0;

  /// One measurement period closed on `link` with this busy fraction.
  virtual void on_utilization(net::LinkId link, util::SimTime at,
                              double busy_fraction) = 0;
};

/// Stores both series per link in memory.
class RecordingTraceSink final : public TraceSink {
 public:
  using Sample = std::pair<util::SimTime, double>;

  explicit RecordingTraceSink(std::size_t link_count)
      : costs_(link_count), utilizations_(link_count) {}

  void on_cost_reported(net::LinkId link, util::SimTime at,
                        double cost) override;
  void on_utilization(net::LinkId link, util::SimTime at,
                      double busy_fraction) override;

  [[nodiscard]] const std::vector<Sample>& costs(net::LinkId link) const {
    return costs_.at(link);
  }
  [[nodiscard]] const std::vector<Sample>& utilizations(
      net::LinkId link) const {
    return utilizations_.at(link);
  }
  [[nodiscard]] std::size_t link_count() const { return costs_.size(); }

  /// Total samples recorded across all links (both series).
  [[nodiscard]] std::size_t total_samples() const;

 private:
  std::vector<std::vector<Sample>> costs_;
  std::vector<std::vector<Sample>> utilizations_;
};

}  // namespace arpanet::obs
