#include "src/obs/trace_sink.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace arpanet::obs {

void RecordingTraceSink::on_cost_reported(net::LinkId link, util::SimTime at,
                                          double cost) {
  costs_.at(link).emplace_back(at, cost);
}

void RecordingTraceSink::on_utilization(net::LinkId link, util::SimTime at,
                                        double busy_fraction) {
  utilizations_.at(link).emplace_back(at, busy_fraction);
}

std::size_t RecordingTraceSink::total_samples() const {
  std::size_t total = 0;
  for (const auto& s : costs_) total += s.size();
  for (const auto& s : utilizations_) total += s.size();
  return total;
}

StreamingTraceSink::StreamingTraceSink(std::ostream& os, Format format)
    : os_{&os}, format_{format} {
  buffer_.reserve(kFlushBytes + 128);
  if (format_ == Format::kCsv) buffer_ += "series,link,t_us,value\n";
}

StreamingTraceSink::StreamingTraceSink(const std::string& path, Format format)
    : owned_{std::make_unique<std::ofstream>(path, std::ios::trunc)},
      os_{owned_.get()},
      format_{format} {
  if (!*owned_) throw std::runtime_error("cannot open trace file " + path);
  buffer_.reserve(kFlushBytes + 128);
  if (format_ == Format::kCsv) buffer_ += "series,link,t_us,value\n";
}

StreamingTraceSink::~StreamingTraceSink() { flush(); }

void StreamingTraceSink::on_cost_reported(net::LinkId link, util::SimTime at,
                                          double cost) {
  append("cost", link, at, cost);
}

void StreamingTraceSink::on_utilization(net::LinkId link, util::SimTime at,
                                        double busy_fraction) {
  append("utilization", link, at, busy_fraction);
}

void StreamingTraceSink::append(const char* series, net::LinkId link,
                                util::SimTime at, double value) {
  char record[160];
  const char* pattern = format_ == Format::kJsonl
                            ? "{\"series\":\"%s\",\"link\":%u,\"t_us\":%lld,"
                              "\"value\":%.10g}\n"
                            : "%s,%u,%lld,%.10g\n";
  const int len =
      std::snprintf(record, sizeof(record), pattern, series, link,
                    static_cast<long long>(at.us()), value);
  buffer_.append(record, static_cast<std::size_t>(len));
  ++records_;
  if (buffer_.size() >= kFlushBytes) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void StreamingTraceSink::flush() {
  if (!buffer_.empty()) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  os_->flush();
}

}  // namespace arpanet::obs
