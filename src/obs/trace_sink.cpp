#include "src/obs/trace_sink.h"

namespace arpanet::obs {

void RecordingTraceSink::on_cost_reported(net::LinkId link, util::SimTime at,
                                          double cost) {
  costs_.at(link).emplace_back(at, cost);
}

void RecordingTraceSink::on_utilization(net::LinkId link, util::SimTime at,
                                        double busy_fraction) {
  utilizations_.at(link).emplace_back(at, busy_fraction);
}

std::size_t RecordingTraceSink::total_samples() const {
  std::size_t total = 0;
  for (const auto& s : costs_) total += s.size();
  for (const auto& s : utilizations_) total += s.size();
  return total;
}

}  // namespace arpanet::obs
