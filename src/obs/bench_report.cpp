#include "src/obs/bench_report.h"

#include <ostream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/builders/builders.h"
#include "src/obs/json_export.h"
#include "src/obs/stopwatch.h"

namespace arpanet::obs {

namespace {

BenchScenario make_scenario(std::string name, net::Topology topo,
                            double load_bps, double warmup_sec,
                            double window_sec) {
  return BenchScenario{
      .name = std::move(name),
      .topo = std::move(topo),
      .offered_load_bps = load_bps,
      .warmup = util::SimTime::from_sec(warmup_sec),
      .window = util::SimTime::from_sec(window_sec)};
}

BenchCell make_cell(const BenchScenario& scenario, const exp::SweepRun& run) {
  BenchCell cell;
  cell.topology = scenario.name;
  cell.metric = to_string(run.cell.metric);
  cell.nodes = scenario.topo.node_count();
  cell.links = scenario.topo.link_count();
  cell.offered_load_bps = scenario.offered_load_bps;
  cell.warmup_sec = scenario.warmup.sec();
  cell.window_sec = scenario.window.sec();
  cell.counters = run.result.counters;
  cell.packets_generated = run.result.stats.packets_generated;
  cell.packets_delivered = run.result.stats.packets_delivered;
  cell.delay_p50_ms = run.result.indicators.delay_p50_ms;
  cell.delay_p95_ms = run.result.indicators.delay_p95_ms;
  cell.delay_p99_ms = run.result.indicators.delay_p99_ms;
  cell.audit_costs_checked = run.result.audit.costs_checked;
  cell.audit_trees_checked = run.result.audit.trees_checked;
  cell.events = run.result.events_processed;
  cell.wall_sec = run.result.wall_seconds;
  return cell;
}

}  // namespace

std::vector<BenchScenario> bench_battery(const std::string& name) {
  std::vector<BenchScenario> scenarios;
  if (name == "smoke") {
    // Small and fast, but loaded well past the 56 kb/s flat threshold so
    // HN-SPF actually floods updates and the SPF counters move.
    scenarios.push_back(
        make_scenario("ring6", net::builders::ring(6), 260e3, 20.0, 40.0));
    scenarios.push_back(
        make_scenario("grid3x3", net::builders::grid(3, 3), 550e3, 20.0, 40.0));
    return scenarios;
  }
  if (name == "battery") {
    scenarios.push_back(make_scenario("arpanet87",
                                      net::builders::arpanet87().topo, 600e3,
                                      60.0, 120.0));
    scenarios.push_back(
        make_scenario("grid5x5", net::builders::grid(5, 5), 900e3, 60.0, 120.0));
    scenarios.push_back(make_scenario("milnet_like",
                                      net::builders::milnet_like(), 700e3,
                                      60.0, 120.0));
    return scenarios;
  }
  throw std::invalid_argument("unknown bench battery: " + name);
}

BenchReport run_bench_battery(const std::string& battery, int threads) {
  const std::vector<BenchScenario> scenarios = bench_battery(battery);
  BenchReport report;
  report.battery = battery;
  const Stopwatch stopwatch;
  for (const BenchScenario& scenario : scenarios) {
    sim::ScenarioConfig base;
    base.offered_load_bps = scenario.offered_load_bps;
    base.warmup = scenario.warmup;
    base.window = scenario.window;
    exp::SweepSpec spec;
    spec.base = base;
    spec.metrics = {metrics::MetricKind::kHnSpf, metrics::MetricKind::kDspf};
    const exp::NamedTopology named{scenario.name, scenario.topo};
    exp::SweepOptions opts;
    opts.threads = threads;
    const exp::SweepRunner runner{std::move(opts)};
    const exp::SweepResult sweep = runner.run(spec, named);
    for (const exp::SweepRun& run : sweep.runs) {
      report.cells.push_back(make_cell(scenario, run));
    }
  }
  report.elapsed_sec = stopwatch.seconds();
  return report;
}

void BenchReport::write_json(std::ostream& os) const {
  JsonWriter w{os};
  w.begin_object();
  w.member("schema", kBenchSchemaName);
  w.member("schema_version", static_cast<std::int64_t>(kBenchSchemaVersion));
  w.member("battery", battery);
  w.member("elapsed_sec", elapsed_sec);
  w.key("scenarios").begin_array();
  for (const BenchCell& c : cells) {
    w.begin_object();
    w.member("topology", c.topology);
    w.member("metric", c.metric);
    w.member("nodes", static_cast<std::uint64_t>(c.nodes));
    w.member("links", static_cast<std::uint64_t>(c.links));
    w.member("offered_kbps", c.offered_load_bps / 1e3);
    w.member("warmup_sec", c.warmup_sec);
    w.member("window_sec", c.window_sec);
    w.key("spf").begin_object();
    w.member("full", c.counters.spf_full);
    w.member("incremental", c.counters.spf_incremental);
    w.member("skipped", c.counters.spf_skipped);
    w.member("nodes_touched", c.counters.spf_nodes_touched);
    w.end_object();
    w.key("routing").begin_object();
    w.member("updates_originated", c.counters.updates_originated);
    w.member("update_packets_sent", c.counters.update_packets_sent);
    w.end_object();
    w.key("packets").begin_object();
    w.member("generated", static_cast<std::int64_t>(c.packets_generated));
    w.member("delivered", static_cast<std::int64_t>(c.packets_delivered));
    w.member("forwarded", c.counters.packets_forwarded);
    w.member("dropped", c.counters.packets_dropped);
    w.end_object();
    w.member("event_queue_peak_depth", c.counters.event_queue_peak_depth);
    w.key("invariants").begin_object();
    w.member("period_checks", c.counters.invariant_period_checks);
    w.member("audit_costs_checked",
             static_cast<std::int64_t>(c.audit_costs_checked));
    w.member("audit_trees_checked",
             static_cast<std::int64_t>(c.audit_trees_checked));
    w.end_object();
    w.key("delay_ms").begin_object();
    w.member("p50", c.delay_p50_ms);
    w.member("p95", c.delay_p95_ms);
    w.member("p99", c.delay_p99_ms);
    w.end_object();
    w.member("events", c.events);
    w.member("wall_sec", c.wall_sec);
    w.member("events_per_sec", c.events_per_sec());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string BenchReport::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::vector<std::string> BenchReport::validate() const {
  std::vector<std::string> errors;
  if (cells.empty()) {
    errors.push_back("report has no cells");
    return errors;
  }
  for (const BenchCell& c : cells) {
    const std::string where = c.topology + "/" + c.metric + ": ";
    const auto require = [&](bool ok, const std::string& what) {
      if (!ok) errors.push_back(where + what);
    };
    require(c.counters.spf_full > 0, "spf.full is zero");
    require(c.counters.spf_incremental > 0, "spf.incremental is zero");
    require(c.counters.spf_skipped > 0, "spf.skipped is zero");
    require(c.counters.updates_originated > 0, "no updates originated");
    require(c.packets_delivered > 0, "no packets delivered");
    require(c.events > 0, "no events processed");
    require(c.events_per_sec() > 0.0, "events_per_sec is zero");
  }
  return errors;
}

std::string mask_wall_time_fields(const std::string& json) {
  // The writer's formatting is fixed ("key": value, one member per line),
  // so the value extent is everything up to the next comma or newline.
  static const std::regex kWallTime{
      R"re(("(?:wall_sec|events_per_sec|elapsed_sec)": )[^,\n]*)re"};
  return std::regex_replace(json, kWallTime, "$010");
}

}  // namespace arpanet::obs
