// ARPALINT-LAYER(exp): the battery drives the sweep runner, so this
// translation unit sits at the top of the include DAG (the header stays obs)

#include "src/obs/bench_report.h"

#include <bit>
#include <cmath>
#include <ostream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/builders/builders.h"
#include "src/net/builders/registry.h"
#include "src/obs/json_export.h"
#include "src/obs/stopwatch.h"
#include "src/routing/spf.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"
#include "src/traffic/traffic_matrix.h"
#include "src/util/rng.h"

namespace arpanet::obs {

namespace {

BenchScenario make_scenario(std::string name, net::Topology topo,
                            double load_bps, double warmup_sec,
                            double window_sec, std::string fault_spec = "") {
  return BenchScenario{
      .name = std::move(name),
      .topo = std::move(topo),
      .offered_load_bps = load_bps,
      .warmup = util::SimTime::from_sec(warmup_sec),
      .window = util::SimTime::from_sec(window_sec),
      .fault_spec = std::move(fault_spec)};
}

BenchCell make_cell(const BenchScenario& scenario, const exp::SweepRun& run) {
  BenchCell cell;
  cell.topology = scenario.name;
  cell.metric = to_string(run.cell.metric);
  cell.nodes = scenario.topo.node_count();
  cell.links = scenario.topo.link_count();
  cell.offered_load_bps = scenario.offered_load_bps;
  cell.warmup_sec = scenario.warmup.sec();
  cell.window_sec = scenario.window.sec();
  cell.counters = run.result.counters;
  cell.packets_generated = run.result.stats.packets_generated;
  cell.packets_delivered = run.result.stats.packets_delivered;
  cell.delay_p50_ms = run.result.indicators.delay_p50_ms;
  cell.delay_p95_ms = run.result.indicators.delay_p95_ms;
  cell.delay_p99_ms = run.result.indicators.delay_p99_ms;
  cell.audit_costs_checked = run.result.audit.costs_checked;
  cell.audit_trees_checked = run.result.audit.trees_checked;
  cell.fault_spec = scenario.fault_spec;
  cell.stability_route_changes = run.result.stability.route_changes;
  cell.stability_flat_oscillations = run.result.stability.flat_oscillations;
  cell.stability_max_movement = run.result.stability.max_movement;
  cell.stability_faults_applied = run.result.stability.faults_applied;
  cell.stability_reconverge_sec = run.result.stability.reconverge_sec;
  cell.events = run.result.events_processed;
  cell.wall_sec = run.result.wall_seconds;
  return cell;
}

/// Discards every event; the microbenchmark never fires what it pops.
class NullSink final : public sim::EventSink {
 public:
  void handle_event(sim::SimEvent& ev) override { (void)ev; }
};

/// Hold-model workload against a bare sim::EventQueue: prefill, then pop
/// one / push one at the popped time plus a pseudo-random gap. `wide_every`
/// > 0 makes every wide_every-th gap land `wide_gap_us` out, driving the
/// far-future overflow path; 0 keeps every gap inside `gap_us` (the
/// near-future clustering a real run produces).
MicroCell run_micro_cell(std::string name, std::uint64_t gap_us,
                         std::uint64_t wide_every,
                         std::uint64_t wide_gap_us) {
  constexpr std::size_t kPrefill = 4096;
  constexpr std::uint64_t kIterations = 200'000;

  MicroCell cell;
  cell.name = std::move(name);

  sim::EventQueue q;
  NullSink sink;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const auto gap = [&](std::uint64_t i) {
    if (wide_every > 0 && i % wide_every == 0) return next() % wide_gap_us;
    return next() % gap_us;
  };

  const Stopwatch stopwatch;
  for (std::size_t i = 0; i < kPrefill; ++i) {
    q.schedule(util::SimTime::from_us(static_cast<std::int64_t>(gap(i))),
               sim::SimEvent::source_tick(sink, static_cast<std::uint32_t>(i)));
  }
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    util::SimTime at;
    const sim::SimEvent ev = q.pop(at);
    checksum = checksum * 1099511628211ULL ^
               static_cast<std::uint64_t>(at.us()) ^ ev.index();
    q.schedule(at + util::SimTime::from_us(static_cast<std::int64_t>(gap(i))),
               sim::SimEvent::source_tick(
                   sink, static_cast<std::uint32_t>(i & 0xffff)));
  }
  cell.wall_sec = stopwatch.seconds();
  cell.ops = kPrefill + 2 * kIterations;
  cell.checksum = checksum;
  return cell;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Runs one scenario to a fixed sim-time horizon at the given shard count.
/// The event total is shard-count invariant (the sharded engine replays
/// the same event set); only the wall clock differs.
ShardCell run_shard_cell(const std::string& name, const net::Topology& topo,
                         double load_bps, double horizon_sec, int shards) {
  ShardCell cell;
  cell.name = name;
  cell.shards = shards;
  sim::NetworkConfig ncfg;
  ncfg.shards = shards;
  sim::Network net{topo, ncfg};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(topo.node_count(), load_bps));
  const Stopwatch watch;
  net.run_for(util::SimTime::from_sec(horizon_sec));
  cell.wall_sec = watch.seconds();
  cell.events = net.events_processed();
  return cell;
}

}  // namespace

const char* bench_build_flavor() {
#ifdef ARPANET_LTO_BUILD
  return "lto";
#else
  return "plain";
#endif
}

std::vector<ShardCell> run_shard_cells(const std::string& battery) {
  std::size_t nodes = 0;
  double load_bps = 0.0;
  double horizon_sec = 0.0;
  if (battery == "smoke") {
    nodes = 64;
    load_bps = 400e3;
    horizon_sec = 60.0;
  } else if (battery == "battery") {
    nodes = 256;
    load_bps = 900e3;
    horizon_sec = 180.0;
  } else {
    throw std::invalid_argument("unknown bench battery: " + battery);
  }
  const net::Topology topo = net::TopologyBuilder::registry().build(
      net::GraphSpec{}.with_family("leo-grid").with_nodes(nodes).with_seed(
          1987));
  const std::string name = "leo-grid" + std::to_string(nodes);
  std::vector<ShardCell> cells;
  cells.push_back(run_shard_cell(name, topo, load_bps, horizon_sec, 1));
  cells.push_back(run_shard_cell(name, topo, load_bps, horizon_sec, 4));
  const double base_wall = cells.front().wall_sec;
  for (ShardCell& c : cells) {
    c.speedup = c.wall_sec > 0.0 ? base_wall / c.wall_sec : 0.0;
  }
  return cells;
}

std::vector<MicroCell> run_micro_cells() {
  std::vector<MicroCell> cells;
  // Near-future clustering: gaps within 2 ms of the pop frontier, the
  // distribution transmit completions and propagation arrivals produce.
  cells.push_back(run_micro_cell("hold_near_future", /*gap_us=*/2000,
                                 /*wide_every=*/0, /*wide_gap_us=*/0));
  // Wide span: every 16th gap lands up to 30 s out (measurement-period
  // territory), exercising the overflow list and window resizes.
  cells.push_back(run_micro_cell("hold_wide_span", /*gap_us=*/1000,
                                 /*wide_every=*/16,
                                 /*wide_gap_us=*/30'000'000));
  return cells;
}

std::vector<BenchScenario> bench_battery(const std::string& name) {
  std::vector<BenchScenario> scenarios;
  if (name == "smoke") {
    // Small and fast, but loaded well past the 56 kb/s flat threshold so
    // HN-SPF actually floods updates and the SPF counters move.
    scenarios.push_back(
        make_scenario("ring6", net::builders::ring(6), 260e3, 20.0, 40.0));
    scenarios.push_back(
        make_scenario("grid3x3", net::builders::grid(3, 3), 550e3, 20.0, 40.0));
    // One fault cell: a single flap 4 s into the window, healed 6 s later,
    // so the stability section shows nonzero faults_applied and a
    // deterministic reconverge_sec for the golden test to pin.
    scenarios.push_back(make_scenario("ring6_flap", net::builders::ring(6),
                                      260e3, 20.0, 40.0,
                                      "flap:link=2,at_s=24,dwell_s=6"));
    return scenarios;
  }
  if (name == "battery") {
    scenarios.push_back(make_scenario("arpanet87",
                                      net::builders::arpanet87().topo, 600e3,
                                      60.0, 120.0));
    scenarios.push_back(
        make_scenario("grid5x5", net::builders::grid(5, 5), 900e3, 60.0, 120.0));
    scenarios.push_back(make_scenario("milnet_like",
                                      net::builders::milnet_like(), 700e3,
                                      60.0, 120.0));
    scenarios.push_back(make_scenario("arpanet87_flap",
                                      net::builders::arpanet87().topo, 600e3,
                                      60.0, 120.0,
                                      "flap:link=10,at_s=150,dwell_s=15"));
    return scenarios;
  }
  throw std::invalid_argument("unknown bench battery: " + name);
}

std::vector<net::GraphSpec> topo_battery(const std::string& name) {
  using net::GraphSpec;
  std::vector<GraphSpec> specs;
  if (name == "smoke") {
    // One small cell per generated family. The golden test pins the graph
    // and SPF checksums, so these double as end-to-end determinism checks
    // for the whole builder registry.
    specs.push_back(
        GraphSpec{}.with_family("hier-as").with_nodes(512).with_seed(1987));
    specs.push_back(
        GraphSpec{}.with_family("waxman").with_nodes(256).with_seed(1987));
    specs.push_back(GraphSpec{}.with_family("ba").with_nodes(1000).with_seed(
        1987).with_param("m", 2));
    specs.push_back(
        GraphSpec{}.with_family("fat-tree").with_nodes(80).with_seed(1987));
    specs.push_back(
        GraphSpec{}.with_family("leo-grid").with_nodes(64).with_seed(1987));
    return specs;
  }
  if (name == "battery") {
    specs.push_back(
        GraphSpec{}.with_family("hier-as").with_nodes(8000).with_seed(1987));
    specs.push_back(
        GraphSpec{}.with_family("waxman").with_nodes(4000).with_seed(1987));
    // The 10k-node scale cell: graph build plus SPF throughput at a size
    // no hand-written topology reaches.
    specs.push_back(GraphSpec{}.with_family("ba").with_nodes(10000).with_seed(
        1987).with_param("m", 2));
    specs.push_back(
        GraphSpec{}.with_family("fat-tree").with_nodes(2000).with_seed(1987));
    specs.push_back(
        GraphSpec{}.with_family("leo-grid").with_nodes(2500).with_seed(1987));
    return specs;
  }
  throw std::invalid_argument("unknown bench battery: " + name);
}

TopoCell run_topo_cell(const net::GraphSpec& spec) {
  TopoCell cell;
  cell.name = spec.label();
  cell.family = spec.family();

  const Stopwatch build_watch;
  const net::Topology topo = net::TopologyBuilder::registry().build(spec);
  cell.build_sec = build_watch.seconds();
  cell.nodes = topo.node_count();
  cell.links = topo.link_count();

  std::uint64_t graph_hash = kFnvOffset;
  routing::LinkCosts costs(topo.link_count());
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const net::Link& link = topo.link(static_cast<net::LinkId>(l));
    graph_hash = fnv_mix(graph_hash, link.from);
    graph_hash = fnv_mix(graph_hash, link.to);
    graph_hash =
        fnv_mix(graph_hash, static_cast<std::uint64_t>(link.prop_delay.us()));
    costs[l] = 1.0 + link.prop_delay.ms();
  }
  cell.graph_checksum = graph_hash;

  // Full SPF from evenly spaced roots; the checksum covers every node's
  // distance bits and first hop, so any drift in generator or SPF order
  // shows up as a byte difference in the report.
  constexpr std::size_t kRoots = 4;
  std::uint64_t spf_hash = kFnvOffset;
  std::uint64_t settled = 0;
  const Stopwatch spf_watch;
  for (std::size_t r = 0; r < kRoots; ++r) {
    const auto root = static_cast<net::NodeId>(r * topo.node_count() / kRoots);
    const routing::SpfTree tree = routing::Spf::compute(topo, root, costs);
    for (net::NodeId v = 0; v < topo.node_count(); ++v) {
      if (std::isfinite(tree.dist[v])) ++settled;
      spf_hash = fnv_mix(spf_hash, std::bit_cast<std::uint64_t>(tree.dist[v]));
      spf_hash = fnv_mix(spf_hash, tree.first_hop[v]);
    }
  }
  cell.spf_sec = spf_watch.seconds();
  cell.spf_roots = kRoots;
  cell.spf_nodes_settled = settled;
  cell.spf_checksum = spf_hash;

  // Incremental perturbation stream, seeded from the spec so the resident
  // algorithm's work profile (localized vs skipped updates, nodes touched)
  // is reproducible and trend-checkable.
  routing::IncrementalSpf inc{topo, 0, costs};
  util::Rng rng{spec.seed() ^ 0x746f706f62656e63ULL};
  constexpr int kPerturbations = 64;
  for (int i = 0; i < kPerturbations; ++i) {
    const auto link =
        static_cast<net::LinkId>(rng.uniform_index(topo.link_count()));
    inc.set_cost(link, costs[link] * rng.uniform(0.5, 1.5));
  }
  cell.incremental_updates = inc.incremental_updates();
  cell.skipped_updates = inc.skipped_updates();
  cell.nodes_touched = inc.nodes_touched();
  return cell;
}

BenchReport run_bench_battery(const std::string& battery, int threads) {
  const std::vector<BenchScenario> scenarios = bench_battery(battery);
  BenchReport report;
  report.battery = battery;
  const Stopwatch stopwatch;
  for (const BenchScenario& scenario : scenarios) {
    sim::ScenarioConfig base;
    base.offered_load_bps = scenario.offered_load_bps;
    base.warmup = scenario.warmup;
    base.window = scenario.window;
    if (!scenario.fault_spec.empty()) {
      base.with_faults(std::string_view{scenario.fault_spec});
    }
    exp::SweepSpec spec;
    spec.base = base;
    spec.metrics = {metrics::MetricKind::kHnSpf, metrics::MetricKind::kDspf};
    const exp::NamedTopology named{scenario.name, scenario.topo};
    exp::SweepOptions opts;
    opts.threads = threads;
    const exp::SweepRunner runner{std::move(opts)};
    const exp::SweepResult sweep = runner.run(spec, named);
    for (const exp::SweepRun& run : sweep.runs) {
      report.cells.push_back(make_cell(scenario, run));
    }
  }
  report.micro = run_micro_cells();
  // Topology cells run serially after the sweep — their order and content
  // never depend on the sweep thread count.
  for (const net::GraphSpec& spec : topo_battery(battery)) {
    report.topo.push_back(run_topo_cell(spec));
  }
  // Shard-scaling cells run last and serially: each run owns every worker
  // thread, so a concurrent sweep would corrupt its wall clock.
  report.shards = run_shard_cells(battery);
  report.build_flavor = bench_build_flavor();
  report.elapsed_sec = stopwatch.seconds();
  return report;
}

void BenchReport::write_json(std::ostream& os) const {
  JsonWriter w{os};
  w.begin_object();
  w.member("schema", kBenchSchemaName);
  w.member("schema_version", static_cast<std::int64_t>(kBenchSchemaVersion));
  w.member("battery", battery);
  w.member("build_flavor", build_flavor);
  w.member("elapsed_sec", elapsed_sec);
  w.key("scenarios").begin_array();
  for (const BenchCell& c : cells) {
    w.begin_object();
    w.member("topology", c.topology);
    w.member("metric", c.metric);
    w.member("nodes", static_cast<std::uint64_t>(c.nodes));
    w.member("links", static_cast<std::uint64_t>(c.links));
    w.member("offered_kbps", c.offered_load_bps / 1e3);
    w.member("warmup_sec", c.warmup_sec);
    w.member("window_sec", c.window_sec);
    w.key("spf").begin_object();
    w.member("full", c.counters.spf_full);
    w.member("incremental", c.counters.spf_incremental);
    w.member("skipped", c.counters.spf_skipped);
    w.member("nodes_touched", c.counters.spf_nodes_touched);
    w.end_object();
    w.key("routing").begin_object();
    w.member("updates_originated", c.counters.updates_originated);
    w.member("update_packets_sent", c.counters.update_packets_sent);
    w.end_object();
    w.key("packets").begin_object();
    w.member("generated", static_cast<std::int64_t>(c.packets_generated));
    w.member("delivered", static_cast<std::int64_t>(c.packets_delivered));
    w.member("forwarded", c.counters.packets_forwarded);
    w.member("dropped", c.counters.packets_dropped);
    w.end_object();
    w.key("event_queue").begin_object();
    w.member("peak_depth", c.counters.event_queue_peak_depth);
    w.member("slab_slots", c.counters.event_queue_slab_slots);
    w.member("resizes", c.counters.event_queue_resizes);
    w.member("overflow_scheduled",
             c.counters.event_queue_overflow_scheduled);
    w.end_object();
    w.key("invariants").begin_object();
    w.member("period_checks", c.counters.invariant_period_checks);
    w.member("audit_costs_checked",
             static_cast<std::int64_t>(c.audit_costs_checked));
    w.member("audit_trees_checked",
             static_cast<std::int64_t>(c.audit_trees_checked));
    w.end_object();
    w.key("delay_ms").begin_object();
    w.member("p50", c.delay_p50_ms);
    w.member("p95", c.delay_p95_ms);
    w.member("p99", c.delay_p99_ms);
    w.end_object();
    w.key("alloc_guard").begin_object();
    w.member("scopes", c.counters.alloc_guard_scopes);
    w.member("bytes_peak", c.counters.alloc_guard_bytes_peak);
    w.end_object();
    w.member("fault_spec", c.fault_spec);
    w.key("stability").begin_object();
    w.member("route_changes",
             static_cast<std::int64_t>(c.stability_route_changes));
    w.member("flat_oscillations",
             static_cast<std::int64_t>(c.stability_flat_oscillations));
    w.member("max_movement", c.stability_max_movement);
    w.member("faults_applied",
             static_cast<std::int64_t>(c.stability_faults_applied));
    w.member("reconverge_sec", c.stability_reconverge_sec);
    w.end_object();
    w.member("events", c.events);
    w.member("wall_sec", c.wall_sec);
    w.member("events_per_sec", c.events_per_sec());
    w.end_object();
  }
  w.end_array();
  w.key("micro").begin_array();
  for (const MicroCell& m : micro) {
    w.begin_object();
    w.member("name", m.name);
    w.member("ops", m.ops);
    w.member("checksum", m.checksum);
    w.member("wall_sec", m.wall_sec);
    w.member("ops_per_sec", m.ops_per_sec());
    w.end_object();
  }
  w.end_array();
  w.key("topo").begin_array();
  for (const TopoCell& t : topo) {
    w.begin_object();
    w.member("name", t.name);
    w.member("family", t.family);
    w.member("nodes", static_cast<std::uint64_t>(t.nodes));
    w.member("links", static_cast<std::uint64_t>(t.links));
    w.member("graph_checksum", t.graph_checksum);
    w.member("spf_roots", t.spf_roots);
    w.member("spf_nodes_settled", t.spf_nodes_settled);
    w.member("spf_checksum", t.spf_checksum);
    w.member("incremental_updates",
             static_cast<std::int64_t>(t.incremental_updates));
    w.member("skipped_updates", static_cast<std::int64_t>(t.skipped_updates));
    w.member("nodes_touched", static_cast<std::int64_t>(t.nodes_touched));
    w.member("build_sec", t.build_sec);
    w.member("spf_sec", t.spf_sec);
    w.member("spf_nodes_per_sec", t.spf_nodes_per_sec());
    w.end_object();
  }
  w.end_array();
  w.key("shards").begin_array();
  for (const ShardCell& s : shards) {
    w.begin_object();
    w.member("name", s.name);
    w.member("shards", static_cast<std::int64_t>(s.shards));
    w.member("events", s.events);
    w.member("wall_sec", s.wall_sec);
    w.member("events_per_sec", s.events_per_sec());
    w.member("speedup", s.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string BenchReport::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::vector<std::string> BenchReport::validate() const {
  std::vector<std::string> errors;
  if (cells.empty()) {
    errors.push_back("report has no cells");
    return errors;
  }
  for (const BenchCell& c : cells) {
    const std::string where = c.topology + "/" + c.metric + ": ";
    const auto require = [&](bool ok, const std::string& what) {
      if (!ok) errors.push_back(where + what);
    };
    require(c.counters.spf_full > 0, "spf.full is zero");
    require(c.counters.spf_incremental > 0, "spf.incremental is zero");
    require(c.counters.spf_skipped > 0, "spf.skipped is zero");
    require(c.counters.updates_originated > 0, "no updates originated");
    require(c.packets_delivered > 0, "no packets delivered");
    require(c.events > 0, "no events processed");
    require(c.events_per_sec() > 0.0, "events_per_sec is zero");
    if (!c.fault_spec.empty()) {
      require(c.stability_faults_applied > 0,
              "fault spec present but no fault action fired in the window");
    }
  }
  for (const MicroCell& m : micro) {
    const std::string where = "micro " + m.name + ": ";
    if (m.ops == 0) errors.push_back(where + "no operations executed");
    if (m.ops_per_sec() <= 0.0) errors.push_back(where + "ops_per_sec is zero");
  }
  for (const TopoCell& t : topo) {
    const std::string where = "topo " + t.name + ": ";
    const auto require = [&](bool ok, const std::string& what) {
      if (!ok) errors.push_back(where + what);
    };
    require(t.nodes > 0, "topology has no nodes");
    require(t.links > 0, "topology has no links");
    require(t.spf_nodes_settled >= t.spf_roots * t.nodes,
            "SPF left nodes unreachable (generated graph not connected)");
    require(t.incremental_updates + t.skipped_updates > 0,
            "perturbation stream did no work");
    require(t.spf_nodes_per_sec() > 0.0, "spf_nodes_per_sec is zero");
  }
  if (build_flavor != "plain" && build_flavor != "lto") {
    errors.push_back("unknown build_flavor: " + build_flavor);
  }
  for (const ShardCell& s : shards) {
    const std::string where =
        "shards " + s.name + "/K=" + std::to_string(s.shards) + ": ";
    if (s.shards < 1) errors.push_back(where + "shard count below 1");
    if (s.events == 0) errors.push_back(where + "no events processed");
    if (s.events_per_sec() <= 0.0) {
      errors.push_back(where + "events_per_sec is zero");
    }
    // The equivalence contract: the same scenario processes the same event
    // set at every shard count. A mismatch means the engines diverged.
    for (const ShardCell& other : shards) {
      if (other.name == s.name && other.events != s.events) {
        errors.push_back(where + "event total differs from K=" +
                         std::to_string(other.shards) +
                         " (sharded engine diverged)");
      }
    }
  }
  return errors;
}

std::string mask_wall_time_fields(const std::string& json) {
  // The writer's formatting is fixed ("key": value, one member per line),
  // so the value extent is everything up to the next comma or newline.
  // bytes_peak is build-dependent (sanitizer runtimes and debug containers
  // allocate inside the window), so it masks with the timings; speedup is
  // a wall-time ratio and build_flavor varies with the compile flags (the
  // golden file must match from both the plain and the LTO build).
  static const std::regex kWallTime{
      R"re(("(?:wall_sec|events_per_sec|ops_per_sec|elapsed_sec|build_sec|spf_sec|spf_nodes_per_sec|bytes_peak|speedup|build_flavor)": )[^,\n]*)re"};
  return std::regex_replace(json, kWallTime, "$010");
}

}  // namespace arpanet::obs
