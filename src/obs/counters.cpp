#include "src/obs/counters.h"

#include <algorithm>
#include <array>

namespace arpanet::obs {

namespace {

constexpr std::array<Counters::Entry, 19> kCatalog{{
    {"spf_full", &Counters::spf_full, Counters::Merge::kSum},
    {"spf_incremental", &Counters::spf_incremental, Counters::Merge::kSum},
    {"spf_skipped", &Counters::spf_skipped, Counters::Merge::kSum},
    {"spf_nodes_touched", &Counters::spf_nodes_touched, Counters::Merge::kSum},
    {"updates_originated", &Counters::updates_originated,
     Counters::Merge::kSum},
    {"update_packets_sent", &Counters::update_packets_sent,
     Counters::Merge::kSum},
    {"packets_forwarded", &Counters::packets_forwarded, Counters::Merge::kSum},
    {"packets_dropped", &Counters::packets_dropped, Counters::Merge::kSum},
    {"events_processed", &Counters::events_processed, Counters::Merge::kSum},
    {"event_queue_peak_depth", &Counters::event_queue_peak_depth,
     Counters::Merge::kMax},
    {"event_queue_slab_slots", &Counters::event_queue_slab_slots,
     Counters::Merge::kMax},
    {"event_queue_resizes", &Counters::event_queue_resizes,
     Counters::Merge::kSum},
    {"event_queue_overflow_scheduled",
     &Counters::event_queue_overflow_scheduled, Counters::Merge::kSum},
    {"packet_pool_slots", &Counters::packet_pool_slots, Counters::Merge::kMax},
    {"packet_pool_acquired", &Counters::packet_pool_acquired,
     Counters::Merge::kSum},
    {"packet_pool_recycled", &Counters::packet_pool_recycled,
     Counters::Merge::kSum},
    {"invariant_period_checks", &Counters::invariant_period_checks,
     Counters::Merge::kSum},
    {"alloc_guard_scopes", &Counters::alloc_guard_scopes,
     Counters::Merge::kSum},
    {"alloc_guard_bytes_peak", &Counters::alloc_guard_bytes_peak,
     Counters::Merge::kMax},
}};

}  // namespace

std::span<const Counters::Entry> Counters::catalog() { return kCatalog; }

Counters& Counters::operator+=(const Counters& other) {
  for (const Entry& e : kCatalog) {
    if (e.merge == Merge::kMax) {
      this->*e.member = std::max(this->*e.member, other.*e.member);
    } else {
      this->*e.member += other.*e.member;
    }
  }
  return *this;
}

}  // namespace arpanet::obs
