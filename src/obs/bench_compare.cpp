#include "src/obs/bench_compare.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/obs/bench_report.h"

namespace arpanet::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The repo deliberately has no external dependencies,
// and the bench documents are machine-written by obs::BenchReport, so a
// small recursive-descent parser over the full JSON grammar (minus \u
// escapes, which the writer never emits) is all that is needed.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; bench documents never repeat keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't': {
        literal("true");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }
      case 'n':
        literal("null");
        return {};
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: fail("unsupported escape");  // \uXXXX never written here
      }
    }
  }

  JsonValue number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Fields derived from host wall time: excluded from the deterministic-work
/// diff and handled by the noise-band rate check instead. alloc_guard
/// bytes_peak rides along — it is zero in Release but tracks the build's
/// allocator/instrumentation, not the simulation's work. Stability's
/// reconverge_sec is sim time (deterministic per config) but shifts with
/// any change to fault/flood phasing, so the trend gate grants it the same
/// band instead of exact equality (the golden smoke test still pins it
/// byte-exactly for a fixed build).
bool is_wall_time_field(const std::string& path) {
  return path == "wall_sec" || path == "events_per_sec" ||
         path == "ops_per_sec" || path == "build_sec" || path == "spf_sec" ||
         path == "spf_nodes_per_sec" || path == "alloc_guard.bytes_peak" ||
         path == "stability.reconverge_sec" || path == "speedup";
}

/// Flattens every numeric leaf of a cell into ("spf.full", value) pairs, in
/// document order. Comparing the flattened forms keeps the checker correct
/// as the report schema grows fields.
void flatten_numbers(const JsonValue& v, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out) {
  if (v.type == JsonValue::Type::kNumber) {
    if (!is_wall_time_field(prefix)) out.emplace_back(prefix, v.number);
    return;
  }
  if (v.type == JsonValue::Type::kObject) {
    for (const auto& [k, child] : v.object) {
      flatten_numbers(child, prefix.empty() ? k : prefix + "." + k, out);
    }
  }
}

double number_field(const JsonValue& cell, const std::string& key) {
  const JsonValue* f = cell.find(key);
  return (f != nullptr && f->type == JsonValue::Type::kNumber) ? f->number : 0.0;
}

std::string string_field(const JsonValue& cell, const std::string& key) {
  const JsonValue* f = cell.find(key);
  return (f != nullptr && f->type == JsonValue::Type::kString) ? f->string : "";
}

JsonValue parse_report(const std::string& json, const char* which) {
  JsonValue doc;
  try {
    doc = JsonParser{json}.parse();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string{which} + " document: " + e.what());
  }
  if (doc.type != JsonValue::Type::kObject) {
    throw std::invalid_argument(std::string{which} + " document: not an object");
  }
  if (string_field(doc, "schema") != kBenchSchemaName ||
      static_cast<int>(number_field(doc, "schema_version")) !=
          kBenchSchemaVersion) {
    throw std::invalid_argument(std::string{which} +
                                " document: not an arpanet-bench-metrics v" +
                                std::to_string(kBenchSchemaVersion) +
                                " document");
  }
  return doc;
}

std::string cell_name(const JsonValue& cell) {
  return string_field(cell, "topology") + "/" + string_field(cell, "metric");
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// Finds a scenario cell by (topology, metric) in a bench document; used to
/// look up rolling rates, where cell order is not guaranteed to match.
const JsonValue* find_scenario(const JsonValue& doc,
                               const std::string& topology,
                               const std::string& metric) {
  const JsonValue* arr = doc.find("scenarios");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) return nullptr;
  for (const JsonValue& c : arr->array) {
    if (string_field(c, "topology") == topology &&
        string_field(c, "metric") == metric) {
      return &c;
    }
  }
  return nullptr;
}

/// Finds a microbenchmark cell by name in a bench document.
const JsonValue* find_micro(const JsonValue& doc, const std::string& name) {
  const JsonValue* arr = doc.find("micro");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) return nullptr;
  for (const JsonValue& c : arr->array) {
    if (string_field(c, "name") == name) return &c;
  }
  return nullptr;
}

/// Finds a large-topology cell by name in a bench document.
const JsonValue* find_topo(const JsonValue& doc, const std::string& name) {
  const JsonValue* arr = doc.find("topo");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) return nullptr;
  for (const JsonValue& c : arr->array) {
    if (string_field(c, "name") == name) return &c;
  }
  return nullptr;
}

/// Finds a sharded-engine cell by (name, shard count) in a bench document.
const JsonValue* find_shard(const JsonValue& doc, const std::string& name,
                            int shards) {
  const JsonValue* arr = doc.find("shards");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) return nullptr;
  for (const JsonValue& c : arr->array) {
    if (string_field(c, "name") == name &&
        static_cast<int>(number_field(c, "shards")) == shards) {
      return &c;
    }
  }
  return nullptr;
}

CompareReport compare_parsed(const JsonValue& base, const JsonValue& cur,
                             const JsonValue* rates,
                             const CompareOptions& options) {
  CompareReport report;
  auto violate = [&report](const std::string& v) {
    report.violations.push_back(v);
  };

  if (string_field(base, "battery") != string_field(cur, "battery")) {
    violate("battery mismatch: baseline '" + string_field(base, "battery") +
            "' vs current '" + string_field(cur, "battery") + "'");
    return report;
  }

  // Rolling mode trends wall times against a previous run's artifact, so
  // that artifact must come from the same optimization flavor — an LTO run
  // compared against plain rates (or vice versa) would alias the flavor
  // switch as a perf change. The committed baseline is exempt: it is
  // masked, and its deterministic fields are flavor-independent.
  if (rates != nullptr) {
    const std::string cur_flavor = string_field(cur, "build_flavor");
    const std::string rates_flavor = string_field(*rates, "build_flavor");
    if (!cur_flavor.empty() && !rates_flavor.empty() &&
        cur_flavor != rates_flavor) {
      violate("build flavor mismatch: rates artifact is '" + rates_flavor +
              "' but current is '" + cur_flavor +
              "' — rolling rate baselines must not mix flavors");
      return report;
    }
  }

  const JsonValue* base_cells = base.find("scenarios");
  const JsonValue* cur_cells = cur.find("scenarios");
  if (base_cells == nullptr || cur_cells == nullptr ||
      base_cells->array.size() != cur_cells->array.size()) {
    violate("cell count mismatch: baseline " +
            std::to_string(base_cells != nullptr ? base_cells->array.size() : 0) +
            " vs current " +
            std::to_string(cur_cells != nullptr ? cur_cells->array.size() : 0));
    return report;
  }

  for (std::size_t i = 0; i < base_cells->array.size(); ++i) {
    const JsonValue& b = base_cells->array[i];
    const JsonValue& c = cur_cells->array[i];
    const std::string name = cell_name(b);
    if (name != cell_name(c)) {
      violate("cell " + std::to_string(i) + ": baseline is " + name +
              " but current is " + cell_name(c));
      continue;
    }

    // Deterministic work: identical field sets, values within work_noise
    // (exactly equal by default).
    std::vector<std::pair<std::string, double>> bw;
    std::vector<std::pair<std::string, double>> cw;
    flatten_numbers(b, "", bw);
    flatten_numbers(c, "", cw);
    if (bw.size() != cw.size()) {
      violate(name + ": field set changed (" + std::to_string(bw.size()) +
              " vs " + std::to_string(cw.size()) +
              " numeric fields); regenerate the baseline");
      continue;
    }
    for (std::size_t f = 0; f < bw.size(); ++f) {
      if (bw[f].first != cw[f].first) {
        violate(name + ": field '" + bw[f].first + "' became '" +
                cw[f].first + "'; regenerate the baseline");
        break;
      }
      const double bv = bw[f].second;
      const double cv = cw[f].second;
      const double tol = options.work_noise * std::max(std::abs(bv), 1.0);
      if (std::abs(cv - bv) > tol) {
        violate(name + ": " + bw[f].first + " " + fmt(bv) + " -> " + fmt(cv) +
                " (deterministic work drifted; the simulation changed)");
      }
    }

    // Stability counts were diffed exactly above with the other numeric
    // leaves; the reconvergence time gets the noise band (it is sim time,
    // but any legitimate re-phasing of floods shifts it slightly).
    const JsonValue* base_stab = b.find("stability");
    const JsonValue* cur_stab = c.find("stability");
    if (base_stab != nullptr && cur_stab != nullptr) {
      const double br = number_field(*base_stab, "reconverge_sec");
      const double cr = number_field(*cur_stab, "reconverge_sec");
      const double tol = options.rate_noise * std::max(std::abs(br), 1.0);
      if (std::abs(cr - br) > tol) {
        violate(name + ": stability.reconverge_sec " + fmt(br) + " -> " +
                fmt(cr) + " (outside the " + fmt(options.rate_noise) +
                " noise band)");
      }
    }

    // Throughput: machine-dependent, checked against the noise band. In
    // rolling mode the band anchors to the rates artifact when it carries
    // this cell.
    CellDelta delta;
    delta.topology = string_field(b, "topology");
    delta.metric = string_field(b, "metric");
    delta.baseline_events_per_sec = number_field(b, "events_per_sec");
    delta.current_events_per_sec = number_field(c, "events_per_sec");
    if (rates != nullptr) {
      const JsonValue* r = find_scenario(*rates, delta.topology, delta.metric);
      if (r != nullptr && number_field(*r, "events_per_sec") > 0.0) {
        delta.baseline_events_per_sec = number_field(*r, "events_per_sec");
        delta.rate_from_artifact = true;
      }
    }
    if (delta.baseline_events_per_sec > 0.0) {
      delta.ratio = delta.current_events_per_sec / delta.baseline_events_per_sec;
      if (delta.ratio < 1.0 - options.rate_noise) {
        violate(name + ": events_per_sec " +
                fmt(delta.baseline_events_per_sec) + " -> " +
                fmt(delta.current_events_per_sec) + " (" + fmt(delta.ratio) +
                "x, below the " + fmt(1.0 - options.rate_noise) + " floor)");
      }
    }
    report.cells.push_back(std::move(delta));
  }

  // Microbenchmark cells: same split — deterministic fields (ops, checksum)
  // diff exactly, ops_per_sec goes through the noise band.
  const JsonValue* base_micro = base.find("micro");
  const JsonValue* cur_micro = cur.find("micro");
  const std::size_t bn = base_micro != nullptr ? base_micro->array.size() : 0;
  const std::size_t cn = cur_micro != nullptr ? cur_micro->array.size() : 0;
  if (bn != cn) {
    violate("micro cell count mismatch: baseline " + std::to_string(bn) +
            " vs current " + std::to_string(cn));
    return report;
  }
  for (std::size_t i = 0; i < bn; ++i) {
    const JsonValue& b = base_micro->array[i];
    const JsonValue& c = cur_micro->array[i];
    const std::string name = "micro " + string_field(b, "name");
    if (string_field(b, "name") != string_field(c, "name")) {
      violate("micro cell " + std::to_string(i) + ": baseline is " + name +
              " but current is micro " + string_field(c, "name"));
      continue;
    }
    std::vector<std::pair<std::string, double>> bw;
    std::vector<std::pair<std::string, double>> cw;
    flatten_numbers(b, "", bw);
    flatten_numbers(c, "", cw);
    if (bw != cw) {
      violate(name + ": deterministic fields drifted (ops/checksum); the "
              "workload or pop order changed — regenerate the baseline if "
              "intentional");
    }
    CellDelta delta;
    delta.topology = string_field(b, "name");
    delta.metric = "micro";
    delta.baseline_events_per_sec = number_field(b, "ops_per_sec");
    delta.current_events_per_sec = number_field(c, "ops_per_sec");
    if (rates != nullptr) {
      const JsonValue* r = find_micro(*rates, delta.topology);
      if (r != nullptr && number_field(*r, "ops_per_sec") > 0.0) {
        delta.baseline_events_per_sec = number_field(*r, "ops_per_sec");
        delta.rate_from_artifact = true;
      }
    }
    if (delta.baseline_events_per_sec > 0.0) {
      delta.ratio = delta.current_events_per_sec / delta.baseline_events_per_sec;
      if (delta.ratio < 1.0 - options.rate_noise) {
        violate(name + ": ops_per_sec " + fmt(delta.baseline_events_per_sec) +
                " -> " + fmt(delta.current_events_per_sec) + " (" +
                fmt(delta.ratio) + "x, below the " +
                fmt(1.0 - options.rate_noise) + " floor)");
      }
    }
    report.micro.push_back(std::move(delta));
  }

  // Large-topology cells: graph/SPF checksums and the incremental work
  // profile diff exactly; spf_nodes_per_sec goes through the noise band.
  const JsonValue* base_topo = base.find("topo");
  const JsonValue* cur_topo = cur.find("topo");
  const std::size_t btn = base_topo != nullptr ? base_topo->array.size() : 0;
  const std::size_t ctn = cur_topo != nullptr ? cur_topo->array.size() : 0;
  if (btn != ctn) {
    violate("topo cell count mismatch: baseline " + std::to_string(btn) +
            " vs current " + std::to_string(ctn));
    return report;
  }
  for (std::size_t i = 0; i < btn; ++i) {
    const JsonValue& b = base_topo->array[i];
    const JsonValue& c = cur_topo->array[i];
    const std::string name = "topo " + string_field(b, "name");
    if (string_field(b, "name") != string_field(c, "name")) {
      violate("topo cell " + std::to_string(i) + ": baseline is " + name +
              " but current is topo " + string_field(c, "name"));
      continue;
    }
    std::vector<std::pair<std::string, double>> bw;
    std::vector<std::pair<std::string, double>> cw;
    flatten_numbers(b, "", bw);
    flatten_numbers(c, "", cw);
    if (bw != cw) {
      violate(name + ": deterministic fields drifted (graph/SPF checksums or "
              "incremental counters); the generator or SPF changed — "
              "regenerate the baseline if intentional");
    }
    CellDelta delta;
    delta.topology = string_field(b, "name");
    delta.metric = "topo";
    delta.baseline_events_per_sec = number_field(b, "spf_nodes_per_sec");
    delta.current_events_per_sec = number_field(c, "spf_nodes_per_sec");
    if (rates != nullptr) {
      const JsonValue* r = find_topo(*rates, delta.topology);
      if (r != nullptr && number_field(*r, "spf_nodes_per_sec") > 0.0) {
        delta.baseline_events_per_sec = number_field(*r, "spf_nodes_per_sec");
        delta.rate_from_artifact = true;
      }
    }
    if (delta.baseline_events_per_sec > 0.0) {
      delta.ratio = delta.current_events_per_sec / delta.baseline_events_per_sec;
      if (delta.ratio < 1.0 - options.rate_noise) {
        violate(name + ": spf_nodes_per_sec " +
                fmt(delta.baseline_events_per_sec) + " -> " +
                fmt(delta.current_events_per_sec) + " (" + fmt(delta.ratio) +
                "x, below the " + fmt(1.0 - options.rate_noise) + " floor)");
      }
    }
    report.topo.push_back(std::move(delta));
  }

  // Sharded-engine cells: event totals diff exactly (the same scenario
  // replays the same event set at every shard count — and at every commit,
  // unless the simulation changed); the rate goes through the noise band
  // and the multi-shard speedup through the opt-in floor.
  const JsonValue* base_shards = base.find("shards");
  const JsonValue* cur_shards = cur.find("shards");
  const std::size_t bsn = base_shards != nullptr ? base_shards->array.size() : 0;
  const std::size_t csn = cur_shards != nullptr ? cur_shards->array.size() : 0;
  if (bsn != csn) {
    violate("shards cell count mismatch: baseline " + std::to_string(bsn) +
            " vs current " + std::to_string(csn));
    return report;
  }
  for (std::size_t i = 0; i < bsn; ++i) {
    const JsonValue& b = base_shards->array[i];
    const JsonValue& c = cur_shards->array[i];
    const int k = static_cast<int>(number_field(b, "shards"));
    const std::string name =
        "shards " + string_field(b, "name") + "/K=" + std::to_string(k);
    if (string_field(b, "name") != string_field(c, "name") ||
        k != static_cast<int>(number_field(c, "shards"))) {
      violate("shards cell " + std::to_string(i) + ": baseline is " + name +
              " but current is shards " + string_field(c, "name") + "/K=" +
              std::to_string(static_cast<int>(number_field(c, "shards"))));
      continue;
    }
    std::vector<std::pair<std::string, double>> bw;
    std::vector<std::pair<std::string, double>> cw;
    flatten_numbers(b, "", bw);
    flatten_numbers(c, "", cw);
    if (bw != cw) {
      violate(name + ": deterministic fields drifted (event totals); the "
              "simulation changed — regenerate the baseline if intentional");
    }
    CellDelta delta;
    delta.topology = string_field(b, "name");
    delta.metric = "K=" + std::to_string(k);
    delta.baseline_events_per_sec = number_field(b, "events_per_sec");
    delta.current_events_per_sec = number_field(c, "events_per_sec");
    if (rates != nullptr) {
      const JsonValue* r = find_shard(*rates, delta.topology, k);
      if (r != nullptr && number_field(*r, "events_per_sec") > 0.0) {
        delta.baseline_events_per_sec = number_field(*r, "events_per_sec");
        delta.rate_from_artifact = true;
      }
    }
    if (delta.baseline_events_per_sec > 0.0) {
      delta.ratio = delta.current_events_per_sec / delta.baseline_events_per_sec;
      if (delta.ratio < 1.0 - options.rate_noise) {
        violate(name + ": events_per_sec " +
                fmt(delta.baseline_events_per_sec) + " -> " +
                fmt(delta.current_events_per_sec) + " (" + fmt(delta.ratio) +
                "x, below the " + fmt(1.0 - options.rate_noise) + " floor)");
      }
    }
    if (options.min_shard_speedup > 0.0 && k > 1) {
      const double speedup = number_field(c, "speedup");
      if (speedup < options.min_shard_speedup) {
        violate(name + ": speedup " + fmt(speedup) + " below the required " +
                fmt(options.min_shard_speedup) + "x floor");
      }
    }
    report.shards.push_back(std::move(delta));
  }
  return report;
}

}  // namespace

CompareReport compare_bench_reports(const std::string& baseline_json,
                                    const std::string& current_json,
                                    const CompareOptions& options) {
  const JsonValue base = parse_report(baseline_json, "baseline");
  const JsonValue cur = parse_report(current_json, "current");
  return compare_parsed(base, cur, nullptr, options);
}

CompareReport compare_bench_reports(const std::string& baseline_json,
                                    const std::string& current_json,
                                    const std::string& rates_json,
                                    const CompareOptions& options) {
  const JsonValue base = parse_report(baseline_json, "baseline");
  const JsonValue cur = parse_report(current_json, "current");
  const JsonValue rates = parse_report(rates_json, "rates");
  return compare_parsed(base, cur, &rates, options);
}

void CompareReport::write_text(std::ostream& os) const {
  for (const CellDelta& d : cells) {
    os << d.topology << "/" << d.metric << ": " << fmt(d.baseline_events_per_sec)
       << " -> " << fmt(d.current_events_per_sec) << " ev/s";
    if (d.ratio > 0.0) os << " (" << fmt(d.ratio) << "x)";
    if (d.rate_from_artifact) os << " [rolling]";
    os << "\n";
  }
  for (const CellDelta& d : micro) {
    os << "micro " << d.topology << ": " << fmt(d.baseline_events_per_sec)
       << " -> " << fmt(d.current_events_per_sec) << " ops/s";
    if (d.ratio > 0.0) os << " (" << fmt(d.ratio) << "x)";
    if (d.rate_from_artifact) os << " [rolling]";
    os << "\n";
  }
  for (const CellDelta& d : topo) {
    os << "topo " << d.topology << ": " << fmt(d.baseline_events_per_sec)
       << " -> " << fmt(d.current_events_per_sec) << " spf-nodes/s";
    if (d.ratio > 0.0) os << " (" << fmt(d.ratio) << "x)";
    if (d.rate_from_artifact) os << " [rolling]";
    os << "\n";
  }
  for (const CellDelta& d : shards) {
    os << "shards " << d.topology << "/" << d.metric << ": "
       << fmt(d.baseline_events_per_sec) << " -> "
       << fmt(d.current_events_per_sec) << " ev/s";
    if (d.ratio > 0.0) os << " (" << fmt(d.ratio) << "x)";
    if (d.rate_from_artifact) os << " [rolling]";
    os << "\n";
  }
  if (violations.empty()) {
    os << "bench_compare: OK ("
       << cells.size() + micro.size() + topo.size() + shards.size()
       << " cells)\n";
  } else {
    for (const std::string& v : violations) os << "VIOLATION: " << v << "\n";
  }
}

}  // namespace arpanet::obs
