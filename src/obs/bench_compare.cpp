#include "src/obs/bench_compare.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/obs/bench_report.h"

namespace arpanet::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The repo deliberately has no external dependencies,
// and the bench documents are machine-written by obs::BenchReport, so a
// small recursive-descent parser over the full JSON grammar (minus \u
// escapes, which the writer never emits) is all that is needed.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; bench documents never repeat keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't': {
        literal("true");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }
      case 'n':
        literal("null");
        return {};
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: fail("unsupported escape");  // \uXXXX never written here
      }
    }
  }

  JsonValue number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Fields derived from host wall time: excluded from the deterministic-work
/// diff and handled by the noise-band rate check instead.
bool is_wall_time_field(const std::string& path) {
  return path == "wall_sec" || path == "events_per_sec";
}

/// Flattens every numeric leaf of a cell into ("spf.full", value) pairs, in
/// document order. Comparing the flattened forms keeps the checker correct
/// as the report schema grows fields.
void flatten_numbers(const JsonValue& v, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out) {
  if (v.type == JsonValue::Type::kNumber) {
    if (!is_wall_time_field(prefix)) out.emplace_back(prefix, v.number);
    return;
  }
  if (v.type == JsonValue::Type::kObject) {
    for (const auto& [k, child] : v.object) {
      flatten_numbers(child, prefix.empty() ? k : prefix + "." + k, out);
    }
  }
}

double number_field(const JsonValue& cell, const std::string& key) {
  const JsonValue* f = cell.find(key);
  return (f != nullptr && f->type == JsonValue::Type::kNumber) ? f->number : 0.0;
}

std::string string_field(const JsonValue& cell, const std::string& key) {
  const JsonValue* f = cell.find(key);
  return (f != nullptr && f->type == JsonValue::Type::kString) ? f->string : "";
}

JsonValue parse_report(const std::string& json, const char* which) {
  JsonValue doc;
  try {
    doc = JsonParser{json}.parse();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string{which} + " document: " + e.what());
  }
  if (doc.type != JsonValue::Type::kObject) {
    throw std::invalid_argument(std::string{which} + " document: not an object");
  }
  if (string_field(doc, "schema") != kBenchSchemaName ||
      static_cast<int>(number_field(doc, "schema_version")) !=
          kBenchSchemaVersion) {
    throw std::invalid_argument(std::string{which} +
                                " document: not an arpanet-bench-metrics v" +
                                std::to_string(kBenchSchemaVersion) +
                                " document");
  }
  return doc;
}

std::string cell_name(const JsonValue& cell) {
  return string_field(cell, "topology") + "/" + string_field(cell, "metric");
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

CompareReport compare_bench_reports(const std::string& baseline_json,
                                    const std::string& current_json,
                                    const CompareOptions& options) {
  const JsonValue base = parse_report(baseline_json, "baseline");
  const JsonValue cur = parse_report(current_json, "current");

  CompareReport report;
  auto violate = [&report](const std::string& v) {
    report.violations.push_back(v);
  };

  if (string_field(base, "battery") != string_field(cur, "battery")) {
    violate("battery mismatch: baseline '" + string_field(base, "battery") +
            "' vs current '" + string_field(cur, "battery") + "'");
    return report;
  }

  const JsonValue* base_cells = base.find("scenarios");
  const JsonValue* cur_cells = cur.find("scenarios");
  if (base_cells == nullptr || cur_cells == nullptr ||
      base_cells->array.size() != cur_cells->array.size()) {
    violate("cell count mismatch: baseline " +
            std::to_string(base_cells != nullptr ? base_cells->array.size() : 0) +
            " vs current " +
            std::to_string(cur_cells != nullptr ? cur_cells->array.size() : 0));
    return report;
  }

  for (std::size_t i = 0; i < base_cells->array.size(); ++i) {
    const JsonValue& b = base_cells->array[i];
    const JsonValue& c = cur_cells->array[i];
    const std::string name = cell_name(b);
    if (name != cell_name(c)) {
      violate("cell " + std::to_string(i) + ": baseline is " + name +
              " but current is " + cell_name(c));
      continue;
    }

    // Deterministic work: identical field sets, values within work_noise
    // (exactly equal by default).
    std::vector<std::pair<std::string, double>> bw;
    std::vector<std::pair<std::string, double>> cw;
    flatten_numbers(b, "", bw);
    flatten_numbers(c, "", cw);
    if (bw.size() != cw.size()) {
      violate(name + ": field set changed (" + std::to_string(bw.size()) +
              " vs " + std::to_string(cw.size()) +
              " numeric fields); regenerate the baseline");
      continue;
    }
    for (std::size_t f = 0; f < bw.size(); ++f) {
      if (bw[f].first != cw[f].first) {
        violate(name + ": field '" + bw[f].first + "' became '" +
                cw[f].first + "'; regenerate the baseline");
        break;
      }
      const double bv = bw[f].second;
      const double cv = cw[f].second;
      const double tol = options.work_noise * std::max(std::abs(bv), 1.0);
      if (std::abs(cv - bv) > tol) {
        violate(name + ": " + bw[f].first + " " + fmt(bv) + " -> " + fmt(cv) +
                " (deterministic work drifted; the simulation changed)");
      }
    }

    // Throughput: machine-dependent, checked against the noise band.
    CellDelta delta;
    delta.topology = string_field(b, "topology");
    delta.metric = string_field(b, "metric");
    delta.baseline_events_per_sec = number_field(b, "events_per_sec");
    delta.current_events_per_sec = number_field(c, "events_per_sec");
    if (delta.baseline_events_per_sec > 0.0) {
      delta.ratio = delta.current_events_per_sec / delta.baseline_events_per_sec;
      if (delta.ratio < 1.0 - options.rate_noise) {
        violate(name + ": events_per_sec " +
                fmt(delta.baseline_events_per_sec) + " -> " +
                fmt(delta.current_events_per_sec) + " (" + fmt(delta.ratio) +
                "x, below the " + fmt(1.0 - options.rate_noise) + " floor)");
      }
    }
    report.cells.push_back(std::move(delta));
  }
  return report;
}

void CompareReport::write_text(std::ostream& os) const {
  for (const CellDelta& d : cells) {
    os << d.topology << "/" << d.metric << ": " << fmt(d.baseline_events_per_sec)
       << " -> " << fmt(d.current_events_per_sec) << " ev/s";
    if (d.ratio > 0.0) os << " (" << fmt(d.ratio) << "x)";
    os << "\n";
  }
  if (violations.empty()) {
    os << "bench_compare: OK (" << cells.size() << " cells)\n";
  } else {
    for (const std::string& v : violations) os << "VIOLATION: " << v << "\n";
  }
}

}  // namespace arpanet::obs
