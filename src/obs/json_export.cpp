#include "src/obs/json_export.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/util/check.h"

namespace arpanet::obs {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_{os}, indent_{indent} {}

JsonWriter::~JsonWriter() {
  // A mismatched begin/end is a programming error in the exporter, caught
  // where the document would otherwise be silently truncated.
  ARPA_CHECK(stack_.empty()) << "JsonWriter destroyed with " << stack_.size()
                             << " unclosed scope(s)";
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::lead_in() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already wrote the separator
  }
  if (stack_.empty()) return;  // the document's root value
  Scope& s = stack_.back();
  ARPA_CHECK(s.array) << "JsonWriter: value inside an object requires key()";
  if (!s.empty) os_ << ',';
  s.empty = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ARPA_CHECK(!stack_.empty() && !stack_.back().array)
      << "JsonWriter: key() outside an object";
  ARPA_CHECK(!key_pending_) << "JsonWriter: key() twice without a value";
  Scope& s = stack_.back();
  if (!s.empty) os_ << ',';
  s.empty = false;
  newline_indent();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  lead_in();
  os_ << '{';
  stack_.push_back(Scope{.array = false, .empty = true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ARPA_CHECK(!stack_.empty() && !stack_.back().array && !key_pending_)
      << "JsonWriter: unbalanced end_object()";
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  lead_in();
  os_ << '[';
  stack_.push_back(Scope{.array = true, .empty = true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ARPA_CHECK(!stack_.empty() && stack_.back().array)
      << "JsonWriter: unbalanced end_array()";
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  lead_in();
  os_ << json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  lead_in();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  lead_in();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  lead_in();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  lead_in();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace arpanet::obs
