// Observability counters: the machine-readable telemetry registry.
//
// ARPALINT-LAYER(util): plain value struct every layer may fill or merge
//
// The paper's central claims are dynamic — how much SPF work a metric
// causes, how many updates it floods, how deep the event queue gets — so
// every run exposes them as one plain-struct registry instead of ad-hoc
// accessors scattered over the subsystems. Counters is allocation-free (a
// fixed set of std::uint64_t fields) and cheap to copy; sim::Network fills
// one per run (src/sim/network.h), sim::ScenarioResult carries the
// snapshot, and exp::SweepResult aggregates across sweep cells.
//
// The static catalog() maps stable names to members so exporters and tests
// enumerate the registry without hand-maintained switch statements; adding a
// counter means adding a field plus one catalog row.
//
// Semantics: values cover the whole lifetime of a Network (warm-up
// included), unlike sim::NetworkStats which is reset at the measurement
// window — telemetry wants total work done, not windowed rates.

#pragma once

#include <cstdint>
#include <span>

namespace arpanet::obs {

struct Counters {
  // ---- SPF work (summed over every PSN's resident IncrementalSpf) ----
  std::uint64_t spf_full = 0;         ///< full Dijkstra recomputations
  std::uint64_t spf_incremental = 0;  ///< localized incremental passes
  std::uint64_t spf_skipped = 0;      ///< updates requiring no distance work
  std::uint64_t spf_nodes_touched = 0;  ///< nodes re-distanced incrementally

  // ---- routing-update traffic ----
  std::uint64_t updates_originated = 0;    ///< updates generated network-wide
  std::uint64_t update_packets_sent = 0;   ///< flooded transmissions

  // ---- data plane ----
  std::uint64_t packets_forwarded = 0;  ///< data-packet transmissions (per hop)
  std::uint64_t packets_dropped = 0;    ///< queue + unreachable + loop drops

  // ---- event engine ----
  std::uint64_t events_processed = 0;
  std::uint64_t event_queue_peak_depth = 0;  ///< high-water mark (merged by max)
  std::uint64_t event_queue_slab_slots = 0;  ///< slab slots allocated (max)
  std::uint64_t event_queue_resizes = 0;     ///< calendar bucket rebuilds
  /// Events scheduled beyond the calendar window (sorted-overflow inserts).
  std::uint64_t event_queue_overflow_scheduled = 0;

  // ---- packet pool (sim/packet_pool.h) ----
  std::uint64_t packet_pool_slots = 0;     ///< distinct slots allocated (max)
  std::uint64_t packet_pool_acquired = 0;  ///< total packet acquisitions
  std::uint64_t packet_pool_recycled = 0;  ///< acquisitions served by freelist

  // ---- runtime invariant layer ----
  /// Exact per-update-period movement-bound checks executed (section 4.3).
  std::uint64_t invariant_period_checks = 0;

  // ---- allocation guard (util/alloc_guard.h) ----
  /// AllocGuard scopes run (one per measurement window).
  std::uint64_t alloc_guard_scopes = 0;
  /// Heap bytes allocated inside a guard scope — the worst cell's value
  /// after a merge (zero is the expected Release steady state).
  std::uint64_t alloc_guard_bytes_peak = 0;

  /// How a counter combines across runs: totals add, watermarks take the max.
  enum class Merge : std::uint8_t { kSum, kMax };

  struct Entry {
    const char* name;
    std::uint64_t Counters::* member;
    Merge merge;
  };

  /// The full registry, one entry per field above, in declaration order.
  [[nodiscard]] static std::span<const Entry> catalog();

  /// Merges another snapshot into this one per each entry's Merge rule.
  Counters& operator+=(const Counters& other);
};

}  // namespace arpanet::obs
