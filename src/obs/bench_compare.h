// Benchmark trend checking: compares two arpanet-bench-metrics documents.
//
// The CI bench-smoke job runs the battery on every push; without a checker
// the events_per_sec telemetry is write-only and a performance regression
// only surfaces when someone reads the artifacts by hand. compare_bench_reports
// diffs a freshly produced report against a committed baseline
// (bench/baseline/) and flags:
//
//   * schema / battery / cell-set mismatches — the reports are not comparable;
//   * drift in the deterministic work fields (events, SPF counters, packet
//     counts, delay percentiles). The simulation is bit-reproducible for a
//     given seed on any machine, so these compare exactly by default — a
//     change means the simulation itself changed, not the hardware;
//   * events_per_sec regressions beyond a configurable noise band. Wall
//     time is machine-dependent, so CI runs with a generous band while a
//     developer comparing two runs of one machine can tighten it.
//
// tools/bench_compare is the CLI wrapper; it exits nonzero on any violation
// so the CI job fails loudly.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace arpanet::obs {

struct CompareOptions {
  /// Allowed fractional drop in events_per_sec before a cell is flagged
  /// (0.10 = current may be up to 10% slower than baseline). Cells whose
  /// baseline rate is zero (a masked document) skip the rate check.
  double rate_noise = 0.10;
  /// Allowed fractional drift in the deterministic work fields. The default
  /// demands exact equality; raise it only when comparing across code
  /// changes that intentionally alter the workload.
  double work_noise = 0.0;
  /// Minimum required wall-time speedup for every multi-shard cell of the
  /// current document's "shards" section (0 = gate off). Wall time is
  /// machine-dependent — a single-core runner can never demonstrate a
  /// speedup — so the gate is opt-in and CI sets a floor suited to its
  /// runner class rather than the paper target.
  double min_shard_speedup = 0.0;
};

/// One cell's throughput comparison.
struct CellDelta {
  std::string topology;
  std::string metric;
  double baseline_events_per_sec = 0.0;
  double current_events_per_sec = 0.0;
  /// current / baseline; 0 when the baseline rate is masked.
  double ratio = 0.0;
  /// True when the baseline rate came from a rolling rates artifact
  /// (compare_bench_reports' rates_json) instead of the committed baseline.
  bool rate_from_artifact = false;
};

struct CompareReport {
  std::vector<CellDelta> cells;
  std::vector<CellDelta> micro;  ///< microbenchmark cells (ops/sec rates)
  std::vector<CellDelta> topo;   ///< large-topology cells (SPF nodes/sec)
  std::vector<CellDelta> shards; ///< sharded-engine cells (event rates)
  std::vector<std::string> violations;  ///< empty means the check passed

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Human-readable per-cell table plus any violations.
  void write_text(std::ostream& os) const;
};

/// Parses and diffs two bench documents (see file comment for the checks).
/// Throws std::invalid_argument when either document cannot be parsed or
/// does not carry the expected schema.
[[nodiscard]] CompareReport compare_bench_reports(
    const std::string& baseline_json, const std::string& current_json,
    const CompareOptions& options = {});

/// Rolling comparison: deterministic work fields still diff exactly against
/// `baseline_json` (the committed baseline), but the throughput noise band
/// is checked against the rates of `rates_json` — a previous run's artifact
/// from the same machine class (e.g. the last green CI run), which permits
/// a much tighter band than the cross-machine committed baseline. Cells
/// absent from the rates document fall back to the committed baseline's
/// rate. The rates document must also carry the current document's
/// build_flavor — trending LTO wall times against plain ones (or vice
/// versa) would alias an optimization-flavor switch as a regression.
/// Throws std::invalid_argument on any unparsable document.
[[nodiscard]] CompareReport compare_bench_reports(
    const std::string& baseline_json, const std::string& current_json,
    const std::string& rates_json, const CompareOptions& options = {});

}  // namespace arpanet::obs
