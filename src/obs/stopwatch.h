// Wall-clock attribution for hot paths.
//
// ARPALINT-LAYER(util): self-contained chrono wrapper usable from any layer
//
// Stopwatch is a thin steady_clock wrapper; ScopedTimer adds its scope's
// elapsed wall time into a caller-owned double on destruction, so timing a
// block is one declaration instead of the start/duration_cast boilerplate
// previously repeated in sim::run_scenario and exp::SweepRunner.

#pragma once

#include <chrono>

namespace arpanet::obs {

class Stopwatch {
 public:
  Stopwatch() : start_{std::chrono::steady_clock::now()} {}

  /// Seconds since construction (or the last restart()).
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Adds the scope's wall time to `sink` when the scope exits.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_{sink} {}
  ~ScopedTimer() { sink_ += watch_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& sink_;
  Stopwatch watch_;
};

}  // namespace arpanet::obs
