// Text format for topologies.
//
// Lets users run the simulator on their own networks without writing C++.
// The format is line-oriented:
//
//   # comment (blank lines ignored)
//   node MIT
//   node BBN
//   trunk MIT BBN 56kb-terrestrial
//   trunk MIT LINCOLN 56kb-terrestrial prop_ms=2.5
//   trunk BBN LINCOLN 56kb-terrestrial prop_us=2500
//
// Line types are the names from net::to_string (e.g. "9.6kb-satellite").
// `prop_ms=` / `prop_us=` override the line type's default propagation
// delay. The writer always emits `prop_us=` (SimTime's native integer
// microseconds), so write -> parse round-trips every topology bit-exactly,
// including the generated families' computed delays.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/net/topology.h"

namespace arpanet::net {

/// Parses the textual format. Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error.
[[nodiscard]] Topology parse_topology(std::istream& in);
[[nodiscard]] Topology parse_topology(std::string_view text);

/// Writes a topology in the same format (one `trunk` line per duplex pair,
/// propagation always explicit so the round trip is exact).
void write_topology(std::ostream& out, const Topology& topo);
[[nodiscard]] std::string topology_to_string(const Topology& topo);

/// Parses a line-type name as produced by net::to_string. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] LineType line_type_from_string(std::string_view name);

}  // namespace arpanet::net
