#include "src/net/topology.h"

#include <algorithm>
#include <queue>

namespace arpanet::net {

NodeId Topology::add_node(std::string name) {
  if (std::ranges::find(node_names_, name) != node_names_.end()) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  const auto id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(std::move(name));
  out_links_.emplace_back();
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, LineType type) {
  return add_duplex(a, b, type, info(type).default_prop_delay);
}

LinkId Topology::add_duplex(NodeId a, NodeId b, LineType type,
                            util::SimTime prop_delay) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("add_duplex: node id out of range");
  }
  if (a == b) throw std::invalid_argument("add_duplex: self-loop");

  const auto fwd = static_cast<LinkId>(links_.size());
  const auto rev = static_cast<LinkId>(links_.size() + 1);
  const auto& ti = info(type);
  links_.push_back(Link{fwd, a, b, type, ti.rate, prop_delay, rev});
  links_.push_back(Link{rev, b, a, type, ti.rate, prop_delay, fwd});
  out_links_[a].push_back(fwd);
  out_links_[b].push_back(rev);
  return fwd;
}

NodeId Topology::node_by_name(std::string_view name) const {
  const auto it = std::ranges::find(node_names_, name);
  if (it == node_names_.end()) {
    throw std::out_of_range("no node named " + std::string(name));
  }
  return static_cast<NodeId>(it - node_names_.begin());
}

bool Topology::is_connected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (const LinkId l : out_links_[n]) {
      const NodeId m = links_[l].to;
      if (!seen[m]) {
        seen[m] = true;
        ++reached;
        frontier.push(m);
      }
    }
  }
  return reached == node_count();
}

}  // namespace arpanet::net
