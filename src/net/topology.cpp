#include "src/net/topology.h"

#include <utility>

namespace arpanet::net {

Topology::Topology(const Topology& other)
    : node_names_{other.node_names_},
      links_{other.links_},
      name_index_{other.name_index_} {
  // The CSR cache is not copied: the copy rebuilds it on first access, which
  // avoids synchronizing with readers of `other`.
}

Topology& Topology::operator=(const Topology& other) {
  if (this == &other) return *this;
  node_names_ = other.node_names_;
  links_ = other.links_;
  name_index_ = other.name_index_;
  csr_valid_.store(false, std::memory_order_release);
  return *this;
}

Topology::Topology(Topology&& other) noexcept
    : node_names_{std::move(other.node_names_)},
      links_{std::move(other.links_)},
      name_index_{std::move(other.name_index_)},
      csr_start_{std::move(other.csr_start_)},
      csr_links_{std::move(other.csr_links_)},
      csr_to_{std::move(other.csr_to_)},
      csr_pos_{std::move(other.csr_pos_)},
      csr_valid_{other.csr_valid_.load(std::memory_order_relaxed)} {
  other.csr_valid_.store(false, std::memory_order_relaxed);
}

Topology& Topology::operator=(Topology&& other) noexcept {
  if (this == &other) return *this;
  node_names_ = std::move(other.node_names_);
  links_ = std::move(other.links_);
  name_index_ = std::move(other.name_index_);
  csr_start_ = std::move(other.csr_start_);
  csr_links_ = std::move(other.csr_links_);
  csr_to_ = std::move(other.csr_to_);
  csr_pos_ = std::move(other.csr_pos_);
  csr_valid_.store(other.csr_valid_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  other.csr_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

void Topology::reserve(std::size_t nodes, std::size_t trunks) {
  node_names_.reserve(nodes);
  links_.reserve(2 * trunks);
  name_index_.reserve(nodes);
}

NodeId Topology::add_node(std::string name) {
  if (name_index_.contains(name)) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  const auto id = static_cast<NodeId>(node_names_.size());
  name_index_.emplace(name, id);
  node_names_.push_back(std::move(name));
  csr_valid_.store(false, std::memory_order_release);
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, LineType type) {
  return add_duplex(a, b, type, info(type).default_prop_delay);
}

LinkId Topology::add_duplex(NodeId a, NodeId b, LineType type,
                            util::SimTime prop_delay) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("add_duplex: node id out of range");
  }
  if (a == b) throw std::invalid_argument("add_duplex: self-loop");

  const auto fwd = static_cast<LinkId>(links_.size());
  const auto rev = static_cast<LinkId>(links_.size() + 1);
  const auto& ti = info(type);
  links_.push_back(Link{fwd, a, b, type, ti.rate, prop_delay, rev});
  links_.push_back(Link{rev, b, a, type, ti.rate, prop_delay, fwd});
  csr_valid_.store(false, std::memory_order_release);
  return fwd;
}

void Topology::rebuild_csr() const {
  const std::lock_guard<std::mutex> lock{csr_mu_};
  if (csr_valid_.load(std::memory_order_relaxed)) return;  // raced; done

  const std::size_t n = node_names_.size();
  const std::size_t m = links_.size();
  csr_start_.assign(n + 1, 0);
  for (const Link& l : links_) ++csr_start_[l.from + 1];
  for (std::size_t i = 0; i < n; ++i) csr_start_[i + 1] += csr_start_[i];

  csr_links_.resize(m);
  csr_to_.resize(m);
  csr_pos_.resize(m);
  // Stable counting fill: links are appended in id order, so walking them in
  // id order reproduces each node's add_duplex insertion order — the same
  // per-node order the old vector-of-vectors kept, which keeps simulation
  // event order (and golden outputs) unchanged.
  std::vector<std::uint32_t> fill(csr_start_.begin(), csr_start_.end() - 1);
  for (const Link& l : links_) {
    const std::uint32_t slot = fill[l.from]++;
    csr_links_[slot] = l.id;
    csr_to_[slot] = l.to;
    csr_pos_[l.id] = slot - csr_start_[l.from];
  }

  csr_valid_.store(true, std::memory_order_release);
}

NodeId Topology::node_by_name(std::string_view name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    throw std::out_of_range("no node named " + std::string(name));
  }
  return it->second;
}

bool Topology::is_connected() const {
  if (node_count() == 0) return true;
  ensure_csr();
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId m : out_targets(n)) {
      if (!seen[m]) {
        seen[m] = true;
        ++reached;
        stack.push_back(m);
      }
    }
  }
  return reached == node_count();
}

}  // namespace arpanet::net
