// Network topology: PSNs (nodes) and simplex links.
//
// Following the paper's terminology, a *link* is the simplex communication
// medium between two PSNs; a physical trunk is therefore modeled as a pair of
// simplex links, one per direction, each with its own queue, measured delay
// and reported cost. Topology is immutable structure; mutable routing state
// (costs, queue depths) is held outside it, indexed by LinkId.
//
// Storage is CSR (compressed sparse row): every node's out-links live in one
// contiguous slice of two parallel flat arrays — link ids and target nodes —
// so SPF, flooding and forwarding walk cache-linear memory instead of chasing
// per-node vectors. The CSR index is a cache over the link list, rebuilt
// lazily (and thread-safely) after mutations; per-node out-link order is the
// insertion order of add_duplex, exactly as the old per-node vectors kept it.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/net/line_type.h"
#include "src/util/units.h"

namespace arpanet::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One simplex link.
struct Link {
  LinkId id = kInvalidLink;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  LineType type = LineType::kTerrestrial56;
  util::DataRate rate;
  util::SimTime prop_delay;
  /// The simplex link carrying the opposite direction of the same trunk.
  LinkId reverse = kInvalidLink;
};

/// Immutable graph of PSNs and simplex links.
///
/// Built incrementally with add_node / add_duplex, then used read-only by the
/// routing, simulation and analysis layers. Node and link ids are dense
/// indices, so per-node/per-link state elsewhere is a plain vector.
class Topology {
 public:
  Topology() = default;
  Topology(const Topology& other);
  Topology& operator=(const Topology& other);
  Topology(Topology&& other) noexcept;
  Topology& operator=(Topology&& other) noexcept;
  ~Topology() = default;

  /// Pre-sizes the node and link storage (generators know both counts up
  /// front; 100k-node builds should not pay re-allocation churn).
  void reserve(std::size_t nodes, std::size_t trunks);

  /// Adds a PSN. Names must be unique; used in reports and for lookups.
  NodeId add_node(std::string name);

  /// Adds a full-duplex trunk as two simplex links with identical
  /// parameters. Rate and propagation delay default from the line type;
  /// prop_delay may be overridden (e.g. long terrestrial trunks).
  /// Returns the id of the a->b simplex link (its reverse is retrievable
  /// via Link::reverse).
  LinkId add_duplex(NodeId a, NodeId b, LineType type);
  LinkId add_duplex(NodeId a, NodeId b, LineType type, util::SimTime prop_delay);

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  /// Number of full-duplex trunks (= link_count()/2).
  [[nodiscard]] std::size_t trunk_count() const { return links_.size() / 2; }

  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  [[nodiscard]] std::string_view node_name(NodeId id) const { return node_names_.at(id); }
  /// Throws std::out_of_range if no node has this name.
  [[nodiscard]] NodeId node_by_name(std::string_view name) const;

  // ARPALINT-HOTPATH-BEGIN
  /// Outgoing simplex links of a node: one contiguous CSR slice, in
  /// add_duplex insertion order.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId node) const {
    ensure_csr();
    check_node(node);
    return {csr_links_.data() + csr_start_[node],
            csr_links_.data() + csr_start_[node + 1]};
  }

  /// Target nodes of the same slice, parallel to out_links(node): the SPF
  /// inner loop reads the neighbor id without touching the 48-byte Link.
  [[nodiscard]] std::span<const NodeId> out_targets(NodeId node) const {
    ensure_csr();
    check_node(node);
    return {csr_to_.data() + csr_start_[node],
            csr_to_.data() + csr_start_[node + 1]};
  }

  /// Position of `link` inside its from-node's out_links slice. Per-out-link
  /// state held in out_links order (e.g. a PSN's output queues) is then an
  /// O(1) lookup instead of a linear scan.
  [[nodiscard]] std::uint32_t out_pos(LinkId link) const {
    ensure_csr();
    if (link >= csr_pos_.size()) {
      throw std::out_of_range("out_pos: link id out of range");
    }
    return csr_pos_[link];
  }
  // ARPALINT-HOTPATH-END

  /// Builds the CSR index now (it is otherwise built on first access).
  /// Generators call this before handing a topology to concurrent readers.
  void finalize() const { ensure_csr(); }

  /// True iff every node can reach every other node over the links.
  [[nodiscard]] bool is_connected() const;

 private:
  void check_node(NodeId node) const {
    if (node >= node_names_.size()) {
      throw std::out_of_range("node id out of range");
    }
  }

  /// Acquire-load fast path; rebuilds under csr_mu_ when the cache is stale.
  void ensure_csr() const {
    if (!csr_valid_.load(std::memory_order_acquire)) rebuild_csr();
  }
  void rebuild_csr() const;

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::unordered_map<std::string, NodeId, StringHash, std::equal_to<>>
      name_index_;

  // CSR cache over links_: node n's out-links are csr_links_[csr_start_[n]
  // .. csr_start_[n+1]), csr_to_ holds the matching targets, csr_pos_[l] the
  // slot of link l within its from-node's slice. Mutable because it is a
  // lazily-(re)built view of the link list; guarded for concurrent first
  // access from sweep workers sharing one const Topology.
  mutable std::vector<std::uint32_t> csr_start_;
  mutable std::vector<LinkId> csr_links_;
  mutable std::vector<NodeId> csr_to_;
  mutable std::vector<std::uint32_t> csr_pos_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::mutex csr_mu_;
};

}  // namespace arpanet::net
