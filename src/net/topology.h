// Network topology: PSNs (nodes) and simplex links.
//
// Following the paper's terminology, a *link* is the simplex communication
// medium between two PSNs; a physical trunk is therefore modeled as a pair of
// simplex links, one per direction, each with its own queue, measured delay
// and reported cost. Topology is immutable structure; mutable routing state
// (costs, queue depths) is held outside it, indexed by LinkId.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/line_type.h"
#include "src/util/units.h"

namespace arpanet::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One simplex link.
struct Link {
  LinkId id = kInvalidLink;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  LineType type = LineType::kTerrestrial56;
  util::DataRate rate;
  util::SimTime prop_delay;
  /// The simplex link carrying the opposite direction of the same trunk.
  LinkId reverse = kInvalidLink;
};

/// Immutable graph of PSNs and simplex links.
///
/// Built incrementally with add_node / add_duplex, then used read-only by the
/// routing, simulation and analysis layers. Node and link ids are dense
/// indices, so per-node/per-link state elsewhere is a plain vector.
class Topology {
 public:
  /// Adds a PSN. Names must be unique; used in reports and for lookups.
  NodeId add_node(std::string name);

  /// Adds a full-duplex trunk as two simplex links with identical
  /// parameters. Rate and propagation delay default from the line type;
  /// prop_delay may be overridden (e.g. long terrestrial trunks).
  /// Returns the id of the a->b simplex link (its reverse is retrievable
  /// via Link::reverse).
  LinkId add_duplex(NodeId a, NodeId b, LineType type);
  LinkId add_duplex(NodeId a, NodeId b, LineType type, util::SimTime prop_delay);

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  /// Number of full-duplex trunks (= link_count()/2).
  [[nodiscard]] std::size_t trunk_count() const { return links_.size() / 2; }

  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  [[nodiscard]] std::string_view node_name(NodeId id) const { return node_names_.at(id); }
  /// Throws std::out_of_range if no node has this name.
  [[nodiscard]] NodeId node_by_name(std::string_view name) const;

  /// Outgoing simplex links of a node.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId node) const {
    return out_links_.at(node);
  }

  /// True iff every node can reach every other node over the links.
  [[nodiscard]] bool is_connected() const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

}  // namespace arpanet::net
