#include "src/net/dot_export.h"

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace arpanet::net {

void write_dot(std::ostream& out, const Topology& topo,
               const TrunkLabeler& labeler) {
  if (topo.node_count() > kDotExportMaxNodes) {
    throw std::invalid_argument(
        "dot export refused: topology has " +
        std::to_string(topo.node_count()) + " nodes, cap is " +
        std::to_string(kDotExportMaxNodes) +
        " (graphviz output is unusable at this scale; use topology_io "
        "instead)");
  }
  out << "graph arpanet {\n"
      << "  layout=neato;\n  overlap=false;\n  splines=true;\n"
      << "  node [shape=box, fontsize=9, height=0.2, width=0.4];\n"
      << "  edge [fontsize=8];\n";
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    out << "  \"" << topo.node_name(n) << "\";\n";
  }
  for (std::size_t l = 0; l < topo.link_count(); l += 2) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    const LineTypeInfo& ti = info(link.type);
    out << "  \"" << topo.node_name(link.from) << "\" -- \""
        << topo.node_name(link.to) << "\" [";
    if (ti.satellite) out << "style=dashed, ";
    if (ti.rate.kilobits_per_sec() < 56.0) {
      out << "penwidth=0.5, ";
    } else if (ti.rate.kilobits_per_sec() > 56.0) {
      out << "penwidth=2.0, ";
    } else {
      out << "penwidth=1.0, ";
    }
    if (labeler) {
      const std::string label = labeler(link);
      if (!label.empty()) out << "label=\"" << label << "\", ";
    }
    out << "tooltip=\"" << to_string(link.type) << "\"];\n";
  }
  out << "}\n";
}

std::string to_dot(const Topology& topo, const TrunkLabeler& labeler) {
  std::ostringstream os;
  write_dot(os, topo, labeler);
  return os.str();
}

}  // namespace arpanet::net
