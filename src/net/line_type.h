// Line types.
//
// The ARPANET assigned each logical link one of up to eight "line types"
// according to the combined bandwidth of the trunks making it up and whether
// the medium was terrestrial or satellite (paper section 4.1). The HNM's
// normalization tables (src/core/line_params.h) are keyed by this type.
//
// ARPALINT-LAYER(core): enum + units only; core's parameter tables key on it

#pragma once

#include <cstdint>
#include <string_view>

#include "src/util/units.h"

namespace arpanet::net {

/// The eight line-type slots the PSN allowed (paper section 4.1): the four
/// the paper's figures use (9.6/56 kb/s, terrestrial/satellite), a 19.2 kb/s
/// grade, and three faster types exercising the "combined bandwidth of the
/// trunks making up the link" rule (2x56 and 4x56 multi-trunk lines and a
/// 230.4 kb/s line).
enum class LineType : std::uint8_t {
  kTerrestrial9_6,
  kSatellite9_6,
  kTerrestrial19_2,
  kTerrestrial56,
  kSatellite56,
  kMultiTrunk112,
  kMultiTrunk224,
  kTerrestrial230,
};

inline constexpr int kLineTypeCount = 8;

/// Static, configuration-time properties of a line type (as opposed to the
/// HNM routing parameters, which live in core::LineTypeParams).
struct LineTypeInfo {
  LineType type;
  std::string_view name;
  util::DataRate rate;
  bool satellite;
  /// Default one-way propagation delay for a link of this type; individual
  /// links may override (terrestrial delay depends on trunk mileage).
  util::SimTime default_prop_delay;
};

/// Lookup of the static properties above. Never fails: every enumerator has
/// an entry.
[[nodiscard]] const LineTypeInfo& info(LineType type);

[[nodiscard]] std::string_view to_string(LineType type);

/// All line types, for parameterized tests and sweeps.
[[nodiscard]] const LineTypeInfo* all_line_types();  // kLineTypeCount entries

}  // namespace arpanet::net
