// GraphSpec: the validated, declarative description of a generated topology.
//
// A spec names a topology family (a key in the TopologyBuilder registry,
// src/net/builders/registry.h), a target node count, a seed, and a sorted
// list of named numeric parameters:
//
//   auto spec = net::GraphSpec{"ba"}
//                   .with_nodes(10'000)
//                   .with_seed(42)
//                   .with_param("m", 2);
//   net::Topology topo = net::TopologyBuilder::registry().build(spec);
//
// The same spec + seed always produces a byte-identical graph — node names,
// node ids, link ids and propagation delays — regardless of where or on how
// many sweep threads it is built; that determinism contract is what lets the
// sweep engine treat a GraphSpec as a plain axis value.
//
// Validation: the fluent setters enforce their own argument invariants with
// ARPA_CHECK (a malformed spec is a programming error and aborts, which the
// death tests pin); family existence and per-family parameter ranges are
// checked by the registry at build time with std::invalid_argument (a bad
// *combination* can come from user input, e.g. an arpanet_sim --topology
// string, and must be catchable).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arpanet::net {

class GraphSpec {
 public:
  GraphSpec() = default;
  explicit GraphSpec(std::string family);

  // ---- fluent, validated setters ----
  GraphSpec& with_family(std::string family);  ///< rejects empty names
  GraphSpec& with_nodes(std::size_t n);        ///< rejects 0
  GraphSpec& with_seed(std::uint64_t seed);
  /// Sets (or replaces) a named numeric parameter. Rejects empty keys and
  /// non-finite values. Parameters are kept sorted by key, so two specs with
  /// the same parameters compare and hash identically whatever the call
  /// order.
  GraphSpec& with_param(std::string key, double value);
  /// Overrides the derived label (the name used in sweep CSV/JSON output).
  GraphSpec& with_label(std::string label);

  [[nodiscard]] const std::string& family() const { return family_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool has_param(std::string_view key) const;
  /// The parameter's value, or `fallback` when the spec does not set it.
  [[nodiscard]] double param(std::string_view key, double fallback) const;
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& params()
      const {
    return params_;
  }

  /// The spec's report label: the explicit label if set, otherwise derived
  /// deterministically from the axes, e.g. "ba-n10000-s42-m2".
  [[nodiscard]] std::string label() const;

  /// Parses the arpanet_sim-style spec string
  /// "family[:key=value[,key=value...]]" where the keys `nodes` and `seed`
  /// set those fields and every other key becomes a parameter. Throws
  /// std::invalid_argument on malformed input (user-facing).
  [[nodiscard]] static GraphSpec parse(std::string_view text);

 private:
  std::string family_;
  std::size_t nodes_ = 0;  ///< 0 = family default
  std::uint64_t seed_ = 0x19870726ULL;
  std::vector<std::pair<std::string, double>> params_;  ///< sorted by key
  std::string label_;
};

}  // namespace arpanet::net
