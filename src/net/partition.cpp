#include "src/net/partition.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>

#include "src/util/check.h"

namespace arpanet::net {
namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

/// BFS from `start`, lowering `min_dist` to the distance from the nearest
/// selected seed. Distances are hop counts; the topology is connected.
void relax_distances(const Topology& topo, NodeId start,
                     std::vector<std::uint32_t>& min_dist) {
  std::deque<NodeId> frontier;
  std::vector<std::uint32_t> dist(topo.node_count(), kUnassigned);
  dist[start] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : topo.out_targets(u)) {
      if (dist[v] != kUnassigned) continue;
      dist[v] = dist[u] + 1;
      frontier.push_back(v);
    }
  }
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    min_dist[n] = std::min(min_dist[n], dist[n]);
  }
}

/// Farthest-point seed selection: the first seed comes from the RNG seed,
/// each subsequent seed maximizes the hop distance to all seeds chosen so
/// far (lowest node id on ties). Spreading seeds apart keeps the grown
/// regions from colliding early, which is what keeps the edge cut low.
std::vector<NodeId> select_seeds(const Topology& topo, int shards,
                                 std::uint64_t seed) {
  const std::size_t n = topo.node_count();
  std::vector<NodeId> seeds;
  seeds.reserve(static_cast<std::size_t>(shards));
  seeds.push_back(static_cast<NodeId>(seed % n));
  std::vector<std::uint32_t> min_dist(n, kUnassigned);
  relax_distances(topo, seeds.back(), min_dist);
  while (seeds.size() < static_cast<std::size_t>(shards)) {
    NodeId best = kInvalidNode;
    std::uint32_t best_dist = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (min_dist[u] > best_dist && min_dist[u] != kUnassigned) {
        best = u;
        best_dist = min_dist[u];
      }
    }
    ARPA_CHECK(best != kInvalidNode)
        << "farthest-point selection ran out of reachable nodes";
    seeds.push_back(best);
    relax_distances(topo, best, min_dist);
  }
  return seeds;
}

}  // namespace

std::size_t Partition::edge_cut(const Topology& topo) const {
  std::size_t cut = 0;
  for (const Link& l : topo.links()) {
    // Count each full-duplex trunk once via its lower-id simplex half.
    if (l.id < l.reverse && shard_of[l.from] != shard_of[l.to]) ++cut;
  }
  return cut;
}

Partition partition_topology(const Topology& topo, int shards,
                             std::uint64_t seed) {
  const std::size_t n = topo.node_count();
  ARPA_CHECK(shards >= 1) << "partition_topology: shards must be >= 1, got "
                          << shards;
  ARPA_CHECK(static_cast<std::size_t>(shards) <= n)
      << "partition_topology: " << shards << " shards exceed " << n
      << " nodes";

  Partition part;
  part.shards = shards;
  part.shard_of.assign(n, 0);
  if (shards == 1) return part;

  part.shard_of.assign(n, kUnassigned);
  const std::vector<NodeId> seeds = select_seeds(topo, shards, seed);
  const std::size_t cap = (n + static_cast<std::size_t>(shards) - 1) /
                          static_cast<std::size_t>(shards);
  std::vector<std::deque<NodeId>> frontier(seeds.size());
  std::vector<std::size_t> count(seeds.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    part.shard_of[seeds[k]] = static_cast<std::uint32_t>(k);
    count[k] = 1;
    ++assigned;
    frontier[k].push_back(seeds[k]);
  }

  // Round-robin growth: each shard claims at most one node per round, so
  // regions expand at the same rate and the cap keeps them balanced. A
  // shard whose frontier dries up (or that hit the cap) simply passes.
  while (assigned < n) {
    bool progressed = false;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      if (count[k] >= cap) continue;
      NodeId claimed = kInvalidNode;
      while (!frontier[k].empty() && claimed == kInvalidNode) {
        const NodeId u = frontier[k].front();
        frontier[k].pop_front();
        for (const NodeId v : topo.out_targets(u)) {
          if (part.shard_of[v] != kUnassigned) continue;
          claimed = v;
          break;
        }
        if (claimed != kInvalidNode) frontier[k].push_front(u);
      }
      if (claimed == kInvalidNode) continue;
      part.shard_of[claimed] = static_cast<std::uint32_t>(k);
      ++count[k];
      ++assigned;
      frontier[k].push_back(claimed);
      progressed = true;
    }
    if (progressed) continue;
    // Every frontier is exhausted or capped: sweep the stragglers onto the
    // least-loaded shard (lowest index on ties) so no node stays orphaned.
    for (NodeId u = 0; u < n && assigned < n; ++u) {
      if (part.shard_of[u] != kUnassigned) continue;
      std::size_t best = 0;
      for (std::size_t k = 1; k < count.size(); ++k) {
        if (count[k] < count[best]) best = k;
      }
      part.shard_of[u] = static_cast<std::uint32_t>(best);
      ++count[best];
      ++assigned;
    }
  }
  return part;
}

}  // namespace arpanet::net
