// Topology partitioning for the sharded simulation engine.
//
// partition_topology splits a Topology's nodes into K shards with a
// METIS-lite heuristic: seeded farthest-point seed selection followed by
// round-robin BFS region growing over the CSR adjacency, capped so no shard
// exceeds ceil(n/K) nodes. The result is fully deterministic for a fixed
// (topology, shards, seed) triple — the growth order walks out_targets in
// CSR order and every tie-break is lowest-id — so a sharded run is as
// reproducible as a single-threaded one.
//
// The objective is the edge cut: every trunk whose endpoints land in
// different shards becomes cross-shard traffic that must ride the mailbox
// path and, worse, bounds the conservative lookahead (the sync window is
// the minimum propagation delay over cut trunks). BFS growth keeps regions
// contiguous, which on the generator families (hier-as, fat-tree, meshes)
// cuts far fewer trunks than any round-robin or hash assignment.

#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"

namespace arpanet::net {

/// A node-to-shard assignment. shard_of is indexed by NodeId; every shard
/// in [0, shards) owns at least one node.
struct Partition {
  int shards = 1;
  std::vector<std::uint32_t> shard_of;

  /// Full-duplex trunks whose two endpoints sit in different shards.
  [[nodiscard]] std::size_t edge_cut(const Topology& topo) const;
};

/// Splits `topo` into `shards` BFS-grown regions (see file comment).
/// Deterministic for fixed inputs. Aborts via ARPA_CHECK when shards < 1 or
/// shards exceeds the node count.
[[nodiscard]] Partition partition_topology(const Topology& topo, int shards,
                                           std::uint64_t seed);

}  // namespace arpanet::net
