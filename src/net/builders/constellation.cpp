// Structured fabrics: fat-tree datacenter networks and LEO constellation
// grids with orbit-dependent propagation delay.
//
// Both families are fully structural — no randomness at all — so the same
// GraphSpec is byte-identical by construction. The LEO grid generalizes the
// paper's satellite Min/Max trunking: instead of one fixed satellite delay,
// every inter-plane trunk's propagation delay depends on where along the
// orbit it sits (cross-plane distances shrink toward the seam of the
// inclined orbits).

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "src/net/builders/registry.h"

namespace arpanet::net::builders::families {

namespace {

/// Mean Earth radius (km) and the speed of light in vacuum (km per ms) —
/// inter-satellite laser links propagate at c, not fiber speed.
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kVacuumKmPerMs = 299.792458;

}  // namespace

Topology fat_tree(const GraphSpec& spec) {
  // A k-ary fat-tree (Al-Fares et al.): (k/2)^2 core switches and k pods of
  // k/2 aggregation + k/2 edge switches — 5k^2/4 nodes, k^3/2 trunks. Each
  // pod is a complete agg<->edge bipartite graph on multi-trunk lines;
  // aggregation switch j reaches core switches [j*k/2, (j+1)*k/2) on
  // 230.4 kb/s lines. When k is not given it is derived as the largest even
  // k whose fabric fits in the requested node count.
  auto k = static_cast<std::size_t>(spec.param("k", 0));
  if (k == 0) {
    k = 2;
    while (5 * (k + 2) * (k + 2) / 4 <= spec.nodes()) k += 2;
  }
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree: k must be even and >= 2");
  }
  const std::size_t half = k / 2;

  Topology topo;
  topo.reserve(5 * k * k / 4, k * k * k / 2);
  for (std::size_t i = 0; i < half * half; ++i) {
    topo.add_node("ft-core" + std::to_string(i));
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t a = 0; a < half; ++a) {
      topo.add_node("ft-p" + std::to_string(p) + "-a" + std::to_string(a));
    }
    for (std::size_t e = 0; e < half; ++e) {
      topo.add_node("ft-p" + std::to_string(p) + "-e" + std::to_string(e));
    }
  }
  const auto agg_id = [&](std::size_t pod, std::size_t a) {
    return static_cast<NodeId>(half * half + pod * k + a);
  };
  const auto edge_id = [&](std::size_t pod, std::size_t e) {
    return static_cast<NodeId>(half * half + pod * k + half + e);
  };
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t e = 0; e < half; ++e) {
        topo.add_duplex(agg_id(p, a), edge_id(p, e), LineType::kMultiTrunk112);
      }
      for (std::size_t c = 0; c < half; ++c) {
        topo.add_duplex(agg_id(p, a), static_cast<NodeId>(a * half + c),
                        LineType::kTerrestrial230);
      }
    }
  }
  return topo;
}

Topology leo_grid(const GraphSpec& spec) {
  // A Walker-style constellation: `planes` orbital planes of `per_plane`
  // satellites, linked as a torus (ring within each plane, ring across
  // planes at each slot). Intra-plane distance is constant — satellites in
  // one plane keep their spacing — while inter-plane distance contracts by
  // cos(latitude) as the inclined orbits converge, with a floor so seam
  // trunks never reach zero: that is the orbit-dependent delay.
  const std::size_t n = spec.nodes();
  auto planes = static_cast<std::size_t>(spec.param("planes", 0));
  auto per_plane = static_cast<std::size_t>(spec.param("per_plane", 0));
  if (planes == 0 && per_plane == 0) {
    planes = std::max<std::size_t>(
        3, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
    per_plane = std::max<std::size_t>(3, n / planes);
  } else if (planes == 0) {
    planes = std::max<std::size_t>(3, n / per_plane);
  } else if (per_plane == 0) {
    per_plane = std::max<std::size_t>(3, n / planes);
  }
  if (planes < 3 || per_plane < 3) {
    throw std::invalid_argument(
        "leo-grid: need >= 3 planes and >= 3 satellites per plane");
  }
  const double altitude_km = spec.param("altitude_km", 550.0);
  const double inclination_rad =
      spec.param("inclination_deg", 53.0) * std::numbers::pi / 180.0;
  const double orbit_km =
      2.0 * std::numbers::pi * (kEarthRadiusKm + altitude_km);
  const util::SimTime intra_delay = util::SimTime::from_ms(
      orbit_km / static_cast<double>(per_plane) / kVacuumKmPerMs);

  Topology topo;
  topo.reserve(planes * per_plane, 2 * planes * per_plane);
  for (std::size_t p = 0; p < planes; ++p) {
    for (std::size_t s = 0; s < per_plane; ++s) {
      topo.add_node("leo-p" + std::to_string(p) + "-s" + std::to_string(s));
    }
  }
  const auto sat = [&](std::size_t p, std::size_t s) {
    return static_cast<NodeId>(p * per_plane + s);
  };
  for (std::size_t p = 0; p < planes; ++p) {
    for (std::size_t s = 0; s < per_plane; ++s) {
      topo.add_duplex(sat(p, s), sat(p, (s + 1) % per_plane),
                      LineType::kSatellite56, intra_delay);
      // Latitude of slot s along the inclined orbit; cross-plane spacing
      // contracts toward the orbit's extremes, floored at 10%.
      const double lat =
          inclination_rad *
          std::sin(2.0 * std::numbers::pi * static_cast<double>(s) /
                   static_cast<double>(per_plane));
      const double factor = std::max(0.1, std::cos(lat));
      const double inter_km =
          orbit_km / static_cast<double>(planes) * factor;
      topo.add_duplex(sat(p, s), sat((p + 1) % planes, s),
                      LineType::kSatellite56,
                      util::SimTime::from_ms(inter_km / kVacuumKmPerMs));
    }
  }
  return topo;
}

}  // namespace arpanet::net::builders::families
