// Synthetic topology generators: rings, grids, random connected graphs,
// clustered networks, and the MILNET-like deployment target.

#include "src/net/builders/builders.h"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace arpanet::net::builders {

namespace {

std::string num_name(const std::string& prefix, int i) {
  std::string name = prefix;
  name += std::to_string(i);
  return name;
}

/// "<p1><a>_<b>"-style two-index names, built with += so no
/// `const char* + std::string&&` concatenation is emitted (GCC 12's
/// -Wrestrict misfires on that pattern under heavy inlining).
std::string pair_name(const char* p1, int a, const char* p2, int b) {
  std::string name = p1;
  name += std::to_string(a);
  name += p2;
  name += std::to_string(b);
  return name;
}

}  // namespace

Topology ring(int n, LineType type) {
  if (n < 3) throw std::invalid_argument("ring: need at least 3 nodes");
  Topology topo;
  for (int i = 0; i < n; ++i) topo.add_node(num_name("r", i));
  for (int i = 0; i < n; ++i) {
    topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                    type);
  }
  return topo;
}

Topology grid(int width, int height, LineType type) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("grid: need at least 2x2");
  }
  Topology topo;
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      topo.add_node(pair_name("g", r, "_", c));
    }
  }
  const auto at = [width](int r, int c) {
    return static_cast<NodeId>(r * width + c);
  };
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      if (c + 1 < width) topo.add_duplex(at(r, c), at(r, c + 1), type);
      if (r + 1 < height) topo.add_duplex(at(r, c), at(r + 1, c), type);
    }
  }
  return topo;
}

Topology random_connected(int nodes, int extra_trunks, util::Rng& rng,
                          LineType type) {
  if (nodes < 2) throw std::invalid_argument("random_connected: need >= 2 nodes");
  Topology topo;
  for (int i = 0; i < nodes; ++i) topo.add_node(num_name("x", i));

  std::set<std::pair<NodeId, NodeId>> trunks;
  const auto add = [&](NodeId a, NodeId b) {
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (a == b || !trunks.insert(key).second) return false;
    topo.add_duplex(a, b, type);
    return true;
  };

  // Random spanning tree: each node joins an already-connected predecessor.
  for (int i = 1; i < nodes; ++i) {
    add(static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(i))),
        static_cast<NodeId>(i));
  }
  // Chords. Attempts are bounded so a dense request cannot spin forever.
  int added = 0;
  for (int attempt = 0; added < extra_trunks && attempt < 100 * extra_trunks + 100;
       ++attempt) {
    const auto a = static_cast<NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(nodes)));
    const auto b = static_cast<NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(nodes)));
    if (add(a, b)) ++added;
  }
  return topo;
}

Topology clustered(const ClusterSpec& spec, util::Rng& rng) {
  if (spec.clusters < 3) {
    throw std::invalid_argument("clustered: need >= 3 clusters");
  }
  if (spec.nodes_per_cluster < 3) {
    throw std::invalid_argument("clustered: need >= 3 nodes per cluster");
  }
  if (spec.inter_trunks < 1 || spec.intra_extra < 0) {
    throw std::invalid_argument("clustered: bad trunk counts");
  }
  Topology topo;
  std::vector<std::vector<NodeId>> members(
      static_cast<std::size_t>(spec.clusters));
  for (int c = 0; c < spec.clusters; ++c) {
    auto& m = members[static_cast<std::size_t>(c)];
    for (int i = 0; i < spec.nodes_per_cluster; ++i) {
      m.push_back(topo.add_node(pair_name("c", c, "n", i)));
    }
    // Intra-cluster ring (every node gets >= 2 trunks) plus random chords.
    for (int i = 0; i < spec.nodes_per_cluster; ++i) {
      topo.add_duplex(m[static_cast<std::size_t>(i)],
                      m[static_cast<std::size_t>((i + 1) % spec.nodes_per_cluster)],
                      spec.intra_type);
    }
    for (int k = 0; k < spec.intra_extra; ++k) {
      const auto n = static_cast<std::uint64_t>(spec.nodes_per_cluster);
      const NodeId a = m[rng.uniform_index(n)];
      const NodeId b = m[rng.uniform_index(n)];
      if (a != b) topo.add_duplex(a, b, spec.intra_type);
    }
  }
  // Cluster ring: adjacent clusters joined by inter_trunks trunks through
  // random gateways. With >= 3 clusters the ring keeps the network
  // 2-edge-connected at the cluster level.
  for (int c = 0; c < spec.clusters; ++c) {
    const auto& from = members[static_cast<std::size_t>(c)];
    const auto& to = members[static_cast<std::size_t>((c + 1) % spec.clusters)];
    for (int k = 0; k < spec.inter_trunks; ++k) {
      topo.add_duplex(
          from[rng.uniform_index(static_cast<std::uint64_t>(from.size()))],
          to[rng.uniform_index(static_cast<std::uint64_t>(to.size()))],
          spec.inter_type);
    }
  }
  return topo;
}

Topology milnet_like() {
  // 7 regional clusters of 16 PSNs = 112 nodes. Clusters 5 and 6 are the
  // overseas regions: every trunk reaching them is a satellite link. A
  // quarter of each cluster's ring runs at 9.6 kb/s (the MILNET's slow-tail
  // character). Deterministic: fixed structure, fixed gateways.
  constexpr int kClusters = 7;
  constexpr int kPerCluster = 16;
  Topology topo;
  std::vector<std::vector<NodeId>> members(kClusters);
  for (int c = 0; c < kClusters; ++c) {
    auto& m = members[static_cast<std::size_t>(c)];
    for (int i = 0; i < kPerCluster; ++i) {
      m.push_back(topo.add_node(pair_name("m", c, "n", i)));
    }
    for (int i = 0; i < kPerCluster; ++i) {
      // Every fourth ring section is a 9.6 kb/s tail trunk.
      const LineType type = (i % 4 == 3) ? LineType::kTerrestrial9_6
                                         : LineType::kTerrestrial56;
      topo.add_duplex(m[static_cast<std::size_t>(i)],
                      m[static_cast<std::size_t>((i + 1) % kPerCluster)], type);
    }
    // Two cross-chords keep intra-cluster paths short.
    topo.add_duplex(m[0], m[8], LineType::kTerrestrial56);
    topo.add_duplex(m[4], m[12], LineType::kTerrestrial56);
  }
  const auto overseas = [](int c) { return c == 5 || c == 6; };
  for (int c = 0; c < kClusters; ++c) {
    const int d = (c + 1) % kClusters;
    const LineType type = (overseas(c) || overseas(d))
                              ? LineType::kSatellite56
                              : LineType::kMultiTrunk112;
    const auto& from = members[static_cast<std::size_t>(c)];
    const auto& to = members[static_cast<std::size_t>(d)];
    // Two gateway trunks per adjacent cluster pair, distinct endpoints.
    topo.add_duplex(from[2], to[10], type);
    topo.add_duplex(from[6], to[14], type);
  }
  // One transcontinental shortcut between the two largest domestic hubs.
  topo.add_duplex(members[0][0], members[3][0], LineType::kMultiTrunk112);
  return topo;
}

}  // namespace arpanet::net::builders
