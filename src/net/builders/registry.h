// TopologyBuilder: the string-keyed registry of topology families.
//
// Every generator — the classic paper networks (arpanet87, two-region,
// milnet), the small synthetic shapes (ring, grid, random, clustered) and the
// internet-scale families this registry introduced (hier-as, waxman, ba,
// fat-tree, leo-grid) — is reachable through one front door:
//
//   net::Topology topo = net::TopologyBuilder::registry().build(
//       net::GraphSpec{"ba"}.with_nodes(10'000).with_seed(7).with_param("m", 2));
//
// build() validates the spec against the family's declared parameter table
// (unknown family, unknown parameter, out-of-range value, unsupported node
// count) and throws std::invalid_argument with an actionable message — specs
// often come straight from CLI strings or sweep axes, so a bad one must be
// reportable, not fatal. The returned topology is finalized (CSR index
// built), connected, and byte-identical for the same spec on every run.
//
// The per-family free functions in builders.h remain as thin deprecated
// shims over this registry for existing call sites.

#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "src/net/graph_spec.h"
#include "src/net/topology.h"

namespace arpanet::net {

class TopologyBuilder {
 public:
  using BuildFn = Topology (*)(const GraphSpec&);

  /// One declared numeric parameter of a family: its accepted closed range
  /// and the value used when the spec does not set it.
  struct ParamInfo {
    std::string_view key;
    double min_value;
    double max_value;
    double fallback;
    std::string_view help;
  };

  struct FamilyInfo {
    std::string_view name;
    std::string_view description;
    BuildFn build;
    std::span<const ParamInfo> params;
    std::size_t default_nodes;  ///< used when the spec leaves nodes unset
    std::size_t min_nodes;
    std::size_t max_nodes;  ///< 0 = unbounded above min_nodes
  };

  /// The process-wide registry (a static table: no registration order, no
  /// initialization races, identical contents in every binary).
  [[nodiscard]] static const TopologyBuilder& registry();

  [[nodiscard]] bool has_family(std::string_view name) const;
  /// Throws std::invalid_argument for unknown families.
  [[nodiscard]] const FamilyInfo& family(std::string_view name) const;
  [[nodiscard]] std::span<const FamilyInfo> families() const;

  /// Checks the spec against its family's declared parameters and node
  /// range without building; throws std::invalid_argument on any problem
  /// and returns the effective node count (the family default when the spec
  /// leaves nodes unset).
  std::size_t validate(const GraphSpec& spec) const;

  /// Validates `spec` and builds the graph; see the header comment.
  [[nodiscard]] Topology build(const GraphSpec& spec) const;

 private:
  TopologyBuilder() = default;
};

namespace builders::families {

// The per-family build entry points behind the registry. Each consumes a
// spec whose nodes/params the registry has already validated and defaulted.
// Direct use is for tests; everyone else goes through build().
[[nodiscard]] Topology hier_as(const GraphSpec& spec);
[[nodiscard]] Topology waxman(const GraphSpec& spec);
[[nodiscard]] Topology barabasi_albert(const GraphSpec& spec);
[[nodiscard]] Topology fat_tree(const GraphSpec& spec);
[[nodiscard]] Topology leo_grid(const GraphSpec& spec);

}  // namespace builders::families

}  // namespace arpanet::net
