// Internet-like topology families: hierarchical AS graphs, Waxman random
// graphs, and Barabási–Albert preferential-attachment graphs.
//
// All three draw randomness only from a util::Rng seeded with the spec's
// seed, and add nodes and trunks in a fixed sequential order, so the same
// GraphSpec produces a byte-identical topology (names, node ids, link ids,
// delays) on every run and at any sweep thread count.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/net/builders/registry.h"
#include "src/util/rng.h"

namespace arpanet::net::builders::families {

namespace {

/// Speed of light in terrestrial fiber, used to turn generated distances
/// into propagation delays: roughly 200 km per millisecond.
constexpr double kFiberKmPerMs = 200.0;

std::string num_name(const char* prefix, std::size_t i) {
  return prefix + std::to_string(i);
}

/// Picks `count` distinct values in [0, n) from `rng`. Redraws on
/// duplicates, falling back to the smallest unused value so the loop is
/// bounded even for count close to n.
std::vector<NodeId> distinct_picks(util::Rng& rng, std::size_t n,
                                   std::size_t count) {
  std::vector<NodeId> picks;
  picks.reserve(count);
  while (picks.size() < count) {
    NodeId candidate = kInvalidNode;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto c = static_cast<NodeId>(rng.uniform_index(n));
      if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
        candidate = c;
        break;
      }
    }
    if (candidate == kInvalidNode) {
      for (NodeId c = 0; c < n; ++c) {
        if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
          candidate = c;
          break;
        }
      }
    }
    picks.push_back(candidate);
  }
  return picks;
}

}  // namespace

Topology hier_as(const GraphSpec& spec) {
  // Three tiers mirroring the AS hierarchy: a 2-edge-connected core of
  // multi-trunk lines (ring plus chords), transit nodes dual-homed into the
  // core over 56 kb/s trunks, and stub nodes dual-homed into the transits
  // over 9.6 kb/s tails — the MILNET's slow-tail character at scale.
  const std::size_t n = spec.nodes();
  if (n < 8) throw std::invalid_argument("hier-as: need at least 8 nodes");

  auto core = static_cast<std::size_t>(spec.param("core", 0));
  if (core == 0) core = std::clamp<std::size_t>(n / 100, 4, 64);
  core = std::min(core, n - 4);  // leave room for transits and stubs
  if (core < 3) throw std::invalid_argument("hier-as: need a core of >= 3");

  const std::size_t remaining = n - core;
  const std::size_t transits = std::max<std::size_t>(2, remaining / 7);
  const std::size_t stubs = remaining - transits;

  util::Rng rng{spec.seed()};
  Topology topo;
  topo.reserve(n, core + core / 2 + 2 * transits + 2 * stubs);

  for (std::size_t i = 0; i < core; ++i) topo.add_node(num_name("as-c", i));
  for (std::size_t i = 0; i < transits; ++i) topo.add_node(num_name("as-t", i));
  for (std::size_t i = 0; i < stubs; ++i) topo.add_node(num_name("as-s", i));

  // Core ring plus core/2 random chords, deduplicated against the ring.
  std::vector<std::pair<NodeId, NodeId>> used;
  const auto try_trunk = [&](NodeId a, NodeId b, LineType type) {
    if (a == b) return false;
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (std::find(used.begin(), used.end(), key) != used.end()) return false;
    used.push_back(key);
    topo.add_duplex(a, b, type);
    return true;
  };
  for (std::size_t i = 0; i < core; ++i) {
    try_trunk(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % core),
              LineType::kMultiTrunk112);
  }
  const std::size_t chords = core / 2;
  for (std::size_t added = 0, attempt = 0;
       added < chords && attempt < 100 * chords + 100; ++attempt) {
    if (try_trunk(static_cast<NodeId>(rng.uniform_index(core)),
                  static_cast<NodeId>(rng.uniform_index(core)),
                  LineType::kMultiTrunk112)) {
      ++added;
    }
  }

  for (std::size_t t = 0; t < transits; ++t) {
    const auto id = static_cast<NodeId>(core + t);
    for (const NodeId gw : distinct_picks(rng, core, 2)) {
      topo.add_duplex(id, gw, LineType::kTerrestrial56);
    }
  }
  for (std::size_t s = 0; s < stubs; ++s) {
    const auto id = static_cast<NodeId>(core + transits + s);
    for (const NodeId gw : distinct_picks(rng, transits, 2)) {
      topo.add_duplex(id, static_cast<NodeId>(core + gw),
                      LineType::kTerrestrial9_6);
    }
  }
  return topo;
}

Topology waxman(const GraphSpec& spec) {
  // BRITE-style incremental Waxman: nodes are placed uniformly in the unit
  // square, then each new node i attaches m edges to earlier nodes chosen
  // with probability proportional to alpha * exp(-d / (beta * L)) — nearby
  // nodes are strongly preferred, giving the geographic flavor of the
  // original model while guaranteeing connectivity. Incremental attachment
  // is O(n^2); the registry caps the family's node count accordingly.
  const std::size_t n = spec.nodes();
  if (n < 2) throw std::invalid_argument("waxman: need at least 2 nodes");
  const double alpha = spec.param("alpha", 0.4);
  const double beta = spec.param("beta", 0.14);
  const auto m = static_cast<std::size_t>(spec.param("m", 2));
  const double scale_km = spec.param("scale_km", 4000.0);

  util::Rng rng{spec.seed()};
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist = [&](std::size_t a, std::size_t b) {
    return std::hypot(x[a] - x[b], y[a] - y[b]);
  };
  const double scale = 1.0 / (beta * std::sqrt(2.0));  // L = unit-square diameter

  Topology topo;
  topo.reserve(n, n * m);
  for (std::size_t i = 0; i < n; ++i) topo.add_node(num_name("w", i));

  std::vector<double> cum;
  for (std::size_t i = 1; i < n; ++i) {
    cum.resize(i);
    double total = 0.0;
    for (std::size_t j = 0; j < i; ++j) {
      total += alpha * std::exp(-dist(i, j) * scale);
      cum[j] = total;
    }
    const std::size_t edges = std::min(m, i);
    std::vector<std::size_t> picks;
    picks.reserve(edges);
    while (picks.size() < edges) {
      std::size_t j = i;  // sentinel: not yet chosen
      for (int attempt = 0; attempt < 32; ++attempt) {
        const double r = rng.uniform() * total;
        const auto it = std::upper_bound(cum.begin(), cum.end(), r);
        const auto c = static_cast<std::size_t>(it - cum.begin());
        if (c < i && std::find(picks.begin(), picks.end(), c) == picks.end()) {
          j = c;
          break;
        }
      }
      if (j == i) {
        for (std::size_t c = 0; c < i; ++c) {
          if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
            j = c;
            break;
          }
        }
      }
      picks.push_back(j);
    }
    for (const std::size_t j : picks) {
      const double km = dist(i, j) * scale_km;
      topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j),
                      LineType::kTerrestrial56,
                      util::SimTime::from_ms(km / kFiberKmPerMs));
    }
  }
  return topo;
}

Topology barabasi_albert(const GraphSpec& spec) {
  // Classic preferential attachment: each new node brings m trunks whose far
  // endpoints are drawn degree-proportionally (uniformly from the repeated-
  // endpoint list), seeded from a ring of m+1 nodes. Produces the heavy-
  // tailed degree distribution of AS-level internet maps.
  const std::size_t n = spec.nodes();
  const auto m = static_cast<std::size_t>(spec.param("m", 2));
  if (n < m + 1) {
    throw std::invalid_argument("ba: need nodes >= m + 1");
  }

  util::Rng rng{spec.seed()};
  Topology topo;
  topo.reserve(n, (n - m - 1) * m + m + 1);
  for (std::size_t i = 0; i < n; ++i) topo.add_node(num_name("b", i));

  // Each trunk endpoint is appended to `endpoints`, so a uniform draw from
  // it is a degree-proportional draw over nodes.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * ((n - m - 1) * m + m + 1));
  const std::size_t seed_ring = m + 1;
  if (seed_ring == 2) {
    topo.add_duplex(0, 1, LineType::kTerrestrial56);
    endpoints.insert(endpoints.end(), {0, 1});
  } else {
    for (std::size_t i = 0; i < seed_ring; ++i) {
      const auto a = static_cast<NodeId>(i);
      const auto b = static_cast<NodeId>((i + 1) % seed_ring);
      topo.add_duplex(a, b, LineType::kTerrestrial56);
      endpoints.insert(endpoints.end(), {a, b});
    }
  }

  std::vector<NodeId> picks;
  for (std::size_t v = seed_ring; v < n; ++v) {
    picks.clear();
    while (picks.size() < m) {
      NodeId u = kInvalidNode;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId c = endpoints[rng.uniform_index(endpoints.size())];
        if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
          u = c;
          break;
        }
      }
      if (u == kInvalidNode) {
        for (NodeId c = 0; c < v; ++c) {
          if (std::find(picks.begin(), picks.end(), c) == picks.end()) {
            u = c;
            break;
          }
        }
      }
      picks.push_back(u);
    }
    const auto id = static_cast<NodeId>(v);
    for (const NodeId u : picks) {
      topo.add_duplex(id, u, LineType::kTerrestrial56);
      endpoints.push_back(u);
    }
    endpoints.insert(endpoints.end(), m, id);
  }
  return topo;
}

}  // namespace arpanet::net::builders::families
