#include "src/net/builders/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/net/builders/builders.h"
#include "src/util/rng.h"

namespace arpanet::net {

namespace {

using builders::families::barabasi_albert;
using builders::families::fat_tree;
using builders::families::hier_as;
using builders::families::leo_grid;
using builders::families::waxman;

// ---- adapters wrapping the classic builders behind GraphSpec ----

Topology build_arpanet87(const GraphSpec& /*spec*/) {
  return builders::arpanet87().topo;
}

Topology build_two_region(const GraphSpec& spec) {
  auto per = static_cast<std::size_t>(spec.param("per_region", 0));
  if (per == 0) {
    if (spec.nodes() % 2 != 0) {
      throw std::invalid_argument("two-region: nodes must be even");
    }
    per = spec.nodes() / 2;
  }
  return builders::two_region(static_cast<int>(per)).topo;
}

Topology build_ring(const GraphSpec& spec) {
  return builders::ring(static_cast<int>(spec.nodes()));
}

Topology build_grid(const GraphSpec& spec) {
  auto w = static_cast<std::size_t>(spec.param("width", 0));
  auto h = static_cast<std::size_t>(spec.param("height", 0));
  const std::size_t n = spec.nodes();
  if (w == 0 && h == 0) {
    w = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(std::sqrt(
               static_cast<double>(n)))));
    h = std::max<std::size_t>(2, (n + w - 1) / w);
  } else if (w == 0) {
    w = std::max<std::size_t>(2, (n + h - 1) / h);
  } else if (h == 0) {
    h = std::max<std::size_t>(2, (n + w - 1) / w);
  }
  return builders::grid(static_cast<int>(w), static_cast<int>(h));
}

Topology build_random(const GraphSpec& spec) {
  util::Rng rng{spec.seed()};
  const int extra = spec.has_param("extra")
                        ? static_cast<int>(spec.param("extra", 0))
                        : static_cast<int>(spec.nodes() / 4);
  return builders::random_connected(static_cast<int>(spec.nodes()), extra, rng);
}

Topology build_clustered(const GraphSpec& spec) {
  builders::ClusterSpec cs;
  cs.clusters = static_cast<int>(spec.param("clusters", 4));
  cs.nodes_per_cluster =
      spec.has_param("per_cluster")
          ? static_cast<int>(spec.param("per_cluster", 0))
          : static_cast<int>(std::max<std::size_t>(
                3, spec.nodes() / static_cast<std::size_t>(cs.clusters)));
  cs.intra_extra = static_cast<int>(spec.param("intra_extra", 2));
  cs.inter_trunks = static_cast<int>(spec.param("inter_trunks", 2));
  util::Rng rng{spec.seed()};
  return builders::clustered(cs, rng);
}

Topology build_milnet(const GraphSpec& /*spec*/) {
  return builders::milnet_like();
}

// ---- the family table ----

using ParamInfo = TopologyBuilder::ParamInfo;
using FamilyInfo = TopologyBuilder::FamilyInfo;

constexpr ParamInfo kTwoRegionParams[] = {
    {"per_region", 0, 4096, 0, "nodes per region (0 = nodes/2)"},
};
constexpr ParamInfo kGridParams[] = {
    {"width", 0, 4096, 0, "grid width (0 = derive near-square from nodes)"},
    {"height", 0, 4096, 0, "grid height (0 = derive from nodes and width)"},
};
constexpr ParamInfo kRandomParams[] = {
    {"extra", 0, 1e6, 0, "chords beyond the spanning tree (default nodes/4)"},
};
constexpr ParamInfo kClusteredParams[] = {
    {"clusters", 3, 1024, 4, "number of clusters"},
    {"per_cluster", 0, 4096, 0, "nodes per cluster (0 = nodes/clusters)"},
    {"intra_extra", 0, 64, 2, "random chords inside each cluster"},
    {"inter_trunks", 1, 16, 2, "trunks between adjacent clusters"},
};
constexpr ParamInfo kHierAsParams[] = {
    {"core", 0, 1024, 0, "core nodes (0 = clamp(nodes/100, 4, 64))"},
};
constexpr ParamInfo kWaxmanParams[] = {
    {"alpha", 1e-6, 1.0, 0.4, "Waxman edge-probability scale"},
    {"beta", 1e-6, 1.0, 0.14, "Waxman distance decay"},
    {"m", 1, 16, 2, "edges added per node"},
    {"scale_km", 1, 20000, 4000, "unit-square edge length in km (sets delay)"},
};
constexpr ParamInfo kBaParams[] = {
    {"m", 1, 16, 2, "edges added per node"},
};
constexpr ParamInfo kFatTreeParams[] = {
    {"k", 0, 128, 0, "fat-tree arity, even (0 = largest fitting nodes)"},
};
constexpr ParamInfo kLeoGridParams[] = {
    {"planes", 0, 1024, 0, "orbital planes (0 = ~sqrt(nodes))"},
    {"per_plane", 0, 1024, 0, "satellites per plane (0 = nodes/planes)"},
    {"altitude_km", 200, 2000, 550, "orbit altitude"},
    {"inclination_deg", 0, 90, 53, "orbit inclination"},
};

const FamilyInfo kFamilies[] = {
    {"arpanet87", "the 47-PSN / 75-trunk July 1987 ARPANET", build_arpanet87,
     {}, 47, 47, 47},
    {"two-region", "figure 1's two regions joined by two parallel trunks",
     build_two_region, kTwoRegionParams, 12, 6, 8192},
    {"ring", "cycle of 56 kb/s terrestrial trunks", build_ring, {}, 8, 3, 0},
    {"grid", "width x height mesh", build_grid, kGridParams, 16, 4, 0},
    {"random", "random spanning tree plus chords", build_random, kRandomParams,
     16, 2, 100000},
    {"clustered", "rings of clusters joined by gateway trunks",
     build_clustered, kClusteredParams, 24, 9, 100000},
    {"milnet", "the MILNET-like 112-PSN deployment", build_milnet, {}, 112,
     112, 112},
    {"hier-as", "three-tier AS hierarchy: core / transit / stub", hier_as,
     kHierAsParams, 512, 8, 0},
    {"waxman", "geometric Waxman random graph (O(n^2) build)", waxman,
     kWaxmanParams, 256, 2, 20000},
    {"ba", "Barabasi-Albert preferential attachment", barabasi_albert,
     kBaParams, 1024, 2, 0},
    {"fat-tree", "k-ary fat-tree datacenter fabric", fat_tree, kFatTreeParams,
     80, 5, 0},
    {"leo-grid", "LEO constellation torus, orbit-dependent delay", leo_grid,
     kLeoGridParams, 64, 9, 0},
};

std::string known_family_names() {
  std::ostringstream out;
  for (std::size_t i = 0; i < std::size(kFamilies); ++i) {
    if (i != 0) out << ", ";
    out << kFamilies[i].name;
  }
  return out.str();
}

}  // namespace

const TopologyBuilder& TopologyBuilder::registry() {
  static const TopologyBuilder instance;
  return instance;
}

bool TopologyBuilder::has_family(std::string_view name) const {
  return std::any_of(std::begin(kFamilies), std::end(kFamilies),
                     [name](const FamilyInfo& f) { return f.name == name; });
}

const TopologyBuilder::FamilyInfo& TopologyBuilder::family(
    std::string_view name) const {
  for (const FamilyInfo& f : kFamilies) {
    if (f.name == name) return f;
  }
  throw std::invalid_argument("unknown topology family '" + std::string(name) +
                              "' (known: " + known_family_names() + ")");
}

std::span<const TopologyBuilder::FamilyInfo> TopologyBuilder::families() const {
  return kFamilies;
}

std::size_t TopologyBuilder::validate(const GraphSpec& spec) const {
  const FamilyInfo& fam = family(spec.family());
  for (const auto& [key, value] : spec.params()) {
    const auto it =
        std::find_if(fam.params.begin(), fam.params.end(),
                     [&key](const ParamInfo& p) { return p.key == key; });
    if (it == fam.params.end()) {
      std::ostringstream msg;
      msg << "topology family '" << fam.name << "' has no parameter '" << key
          << "'";
      if (!fam.params.empty()) {
        msg << " (known:";
        for (const ParamInfo& p : fam.params) msg << " " << p.key;
        msg << ")";
      }
      throw std::invalid_argument(msg.str());
    }
    if (value < it->min_value || value > it->max_value) {
      std::ostringstream msg;
      msg << "topology family '" << fam.name << "': parameter '" << key
          << "' = " << value << " outside [" << it->min_value << ", "
          << it->max_value << "]";
      throw std::invalid_argument(msg.str());
    }
  }

  const std::size_t nodes = spec.nodes() != 0 ? spec.nodes() : fam.default_nodes;
  if (nodes < fam.min_nodes || (fam.max_nodes != 0 && nodes > fam.max_nodes)) {
    std::ostringstream msg;
    msg << "topology family '" << fam.name << "': node count " << nodes
        << " outside [" << fam.min_nodes << ", ";
    if (fam.max_nodes != 0) {
      msg << fam.max_nodes;
    } else {
      msg << "unbounded";
    }
    msg << "]";
    throw std::invalid_argument(msg.str());
  }
  return nodes;
}

Topology TopologyBuilder::build(const GraphSpec& spec) const {
  GraphSpec effective = spec;
  effective.with_nodes(validate(spec));
  Topology topo = family(spec.family()).build(effective);
  topo.finalize();
  return topo;
}

}  // namespace arpanet::net
