// Figure 1's two-region network.
//
// "Consider a network that consists of two regions connected by two links,
// A and B" — the smallest shape on which the 1979 metric oscillates: all
// inter-region traffic must choose between A and B each shortest-path
// computation, and with D-SPF the whole load swings between them every
// measurement period (fig. 1's square wave).

#include "src/net/builders/builders.h"

#include <stdexcept>
#include <string>

namespace arpanet::net::builders {

namespace {

/// One region: a ring (2-edge-connected) plus a diameter chord so
/// intra-region paths stay short relative to the inter-region hop.
std::vector<NodeId> add_region(Topology& topo, const std::string& prefix,
                               int n) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes.push_back(topo.add_node(prefix + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    topo.add_duplex(nodes[static_cast<std::size_t>(i)],
                    nodes[static_cast<std::size_t>((i + 1) % n)],
                    LineType::kTerrestrial56);
  }
  if (n >= 5) {
    topo.add_duplex(nodes[1], nodes[static_cast<std::size_t>(1 + n / 2)],
                    LineType::kTerrestrial56);
  }
  return nodes;
}

}  // namespace

TwoRegionNet two_region(int per_region) {
  if (per_region < 3) {
    throw std::invalid_argument("two_region: need at least 3 nodes per region");
  }
  TwoRegionNet net;
  net.region1 = add_region(net.topo, "A", per_region);
  net.region2 = add_region(net.topo, "B", per_region);

  // The two parallel inter-region trunks. Identical line type (hence rate
  // and propagation delay), different endpoints: figure 1 requires the
  // choice between them to be driven by reported cost alone.
  const std::size_t half = static_cast<std::size_t>(per_region) / 2;
  net.link_a =
      net.topo.add_duplex(net.region1[0], net.region2[0], LineType::kTerrestrial56);
  net.link_b =
      net.topo.add_duplex(net.region1[half], net.region2[half],
                          LineType::kTerrestrial56);
  return net;
}

}  // namespace arpanet::net::builders
