// Legacy topology builders: the networks the paper's figures run on.
//
// DEPRECATED as an API surface: new code should go through the string-keyed
// TopologyBuilder registry (src/net/builders/registry.h) with a validated
// GraphSpec — every function below is reachable there as a family
// ("arpanet87", "two-region", "ring", "grid", "random", "clustered",
// "milnet"), alongside the internet-scale families (hier-as, waxman, ba,
// fat-tree, leo-grid). These free functions remain as thin shims so
// existing call sites keep compiling; they will not grow new parameters.
//
//   * arpanet87()  — a 47-PSN / 75-trunk network resembling the July 1987
//     ARPANET (section 5's "the ARPANET topology is rich with alternate
//     paths"): heterogeneous trunking (9.6 kb/s tails, 56 kb/s core,
//     multi-trunk lines, satellite links to HAWAII/NORSAR), no bridge
//     trunks, mean minimum path around 3.5 hops.
//   * two_region() — figure 1's shape: two equal regions joined by exactly
//     two parallel trunks A and B, the smallest network that oscillates.
//   * synthetic generators (ring, grid, random_connected, clustered,
//     milnet_like) for property sweeps and scale studies.
//
// All builders are deterministic: the same call produces the same graph,
// node ids and link ids (random_connected / clustered draw only from the
// caller's Rng).

#pragma once

#include <vector>

#include "src/net/topology.h"
#include "src/util/rng.h"

namespace arpanet::net::builders {

/// The ARPANET-like reference network plus the node handles experiments
/// address by name.
struct Arpanet87 {
  Topology topo;
  NodeId mit = kInvalidNode;   ///< east-coast anchor
  NodeId ucla = kInvalidNode;  ///< west-coast anchor
};

[[nodiscard]] Arpanet87 arpanet87();

/// Figure 1's two-region network: 2*per_region PSNs, each region internally
/// well connected, the regions joined by exactly two parallel trunks with
/// identical rate and propagation delay (links A and B).
struct TwoRegionNet {
  Topology topo;
  std::vector<NodeId> region1;
  std::vector<NodeId> region2;
  LinkId link_a = kInvalidLink;  ///< inter-region trunk A (region1 -> region2)
  LinkId link_b = kInvalidLink;  ///< inter-region trunk B (region1 -> region2)
};

[[nodiscard]] TwoRegionNet two_region(int per_region = 6);

/// Cycle of n >= 3 nodes, 56 kb/s terrestrial trunks.
[[nodiscard]] Topology ring(int n, LineType type = LineType::kTerrestrial56);

/// width x height mesh, 56 kb/s terrestrial trunks.
[[nodiscard]] Topology grid(int width, int height,
                            LineType type = LineType::kTerrestrial56);

/// Connected random graph: a random spanning tree (guaranteeing
/// connectivity) plus `extra_trunks` distinct chords. Deterministic for a
/// given Rng state.
[[nodiscard]] Topology random_connected(int nodes, int extra_trunks,
                                        util::Rng& rng,
                                        LineType type = LineType::kTerrestrial56);

/// Parameters for clustered(): `clusters` rings of `nodes_per_cluster`
/// PSNs, adjacent clusters joined by `inter_trunks` trunks so no single
/// trunk (or cluster gateway) partitions the network.
struct ClusterSpec {
  int clusters = 0;            ///< must be >= 3 (the cluster ring needs it)
  int nodes_per_cluster = 0;   ///< must be >= 3
  int intra_extra = 2;         ///< random chords inside each cluster
  int inter_trunks = 2;        ///< trunks between adjacent clusters
  LineType intra_type = LineType::kTerrestrial56;
  LineType inter_type = LineType::kMultiTrunk112;
};

/// Builds the clustered network described by `spec`; throws
/// std::invalid_argument if the spec cannot produce a 2-edge-connected graph.
[[nodiscard]] Topology clustered(const ClusterSpec& spec, util::Rng& rng);

/// A MILNET-like network: ~112 PSNs in 7 regional clusters, a large share
/// of 9.6 kb/s tail trunks, satellite trunks to two overseas clusters
/// (the paper's reference [2] deployment). Deterministic.
[[nodiscard]] Topology milnet_like();

}  // namespace arpanet::net::builders
