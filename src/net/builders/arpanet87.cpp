// The ARPANET-like reference network (July 1987 flavor).
//
// Not a survey-accurate map — the paper does not publish one — but a graph
// with the properties section 5 relies on: 47 PSNs, 75 trunks (average
// degree ~3.2), no bridge trunks ("rich with alternate paths"), a ~3.5-hop
// mean minimum path (Table 1's "Internode Minimum Path"), and the real
// network's heterogeneous trunking: a 56 kb/s terrestrial core, 9.6 kb/s
// tail sections, multi-trunk lines on the heaviest corridors, and satellite
// links to HAWAII.
//
// Construction: a 47-node "geographic" ring (guaranteeing 2-edge-
// connectivity, so no trunk is a bridge) plus 28 chords that shorten
// cross-country paths and thicken the core.

#include "src/net/builders/builders.h"

#include <array>
#include <string>

namespace arpanet::net::builders {

namespace {

// Ring order is roughly geographic: New England down the east coast,
// across the south, up the west coast, back through the mountain states
// and the midwest.
constexpr std::array<const char*, 47> kSites = {
    "MIT",      "LINCOLN",  "HARVARD",  "BBN",      "CCA",      "DEC",
    "YALE",     "NYU",      "COLUMBIA", "RUTGERS",  "PRINCETON", "UPENN",
    "ABERDEEN", "MITRE",    "PENTAGON", "ARPA",     "NBS",      "SDAC",
    "NRL",      "DUKE",     "GATECH",   "EGLIN",    "TEXAS",    "RICE",
    "TUCSON",   "SANDIA",   "WSMR",     "UCLA",     "USC",      "ISI",
    "RAND",     "SDC",      "XEROX",    "STANFORD", "SRI",      "AMES",
    "LBL",      "HAWAII",   "SEATTLE",  "UTAH",     "DENVER",   "NCAR",
    "ILLINOIS", "WISCONSIN", "CMU",     "CORNELL",  "RADC",
};

struct Chord {
  const char* a;
  const char* b;
  LineType type;
};

// 28 chords. The +16 "long-haul" family keeps the diameter small; the rest
// are regional alternates. The heaviest corridors run multi-trunk lines.
constexpr std::array<Chord, 28> kChords = {{
    // long-haul family (every third ring position, offset 16)
    {"MIT", "NBS", LineType::kMultiTrunk112},
    {"BBN", "DUKE", LineType::kTerrestrial56},
    {"YALE", "TEXAS", LineType::kTerrestrial56},
    {"RUTGERS", "TUCSON", LineType::kTerrestrial56},
    {"ABERDEEN", "UCLA", LineType::kMultiTrunk112},
    {"ARPA", "SDC", LineType::kTerrestrial56},
    {"NRL", "AMES", LineType::kTerrestrial56},
    {"EGLIN", "HAWAII", LineType::kSatellite56},
    {"TUCSON", "DENVER", LineType::kTerrestrial56},
    {"UCLA", "WISCONSIN", LineType::kMultiTrunk112},
    {"SDC", "RADC", LineType::kTerrestrial56},
    {"STANFORD", "HARVARD", LineType::kTerrestrial56},
    {"LBL", "DEC", LineType::kTerrestrial56},
    {"UTAH", "COLUMBIA", LineType::kTerrestrial56},
    {"ILLINOIS", "MITRE", LineType::kMultiTrunk112},
    {"CORNELL", "PENTAGON", LineType::kTerrestrial56},
    // shorter regional alternates (offset ~7)
    {"LINCOLN", "COLUMBIA", LineType::kTerrestrial56},
    {"COLUMBIA", "PENTAGON", LineType::kTerrestrial56},
    {"TEXAS", "ISI", LineType::kTerrestrial56},
    {"ISI", "LBL", LineType::kTerrestrial56},
    {"LBL", "NCAR", LineType::kTerrestrial56},
    {"WISCONSIN", "CCA", LineType::kTerrestrial56},
    // named corridors the experiments exercise
    {"DENVER", "ILLINOIS", LineType::kTerrestrial56},
    {"HAWAII", "AMES", LineType::kSatellite56},
    {"BBN", "RADC", LineType::kTerrestrial56},
    {"PENTAGON", "SDAC", LineType::kTerrestrial56},
    {"UCLA", "SDC", LineType::kTerrestrial56},
    {"STANFORD", "AMES", LineType::kMultiTrunk112},
}};

/// Ring sections running 9.6 kb/s tail trunks (the network's slow edges:
/// the southern tier and a New England tail).
constexpr std::array<std::pair<const char*, const char*>, 5> kSlowRingEdges = {{
    {"DUKE", "GATECH"},
    {"GATECH", "EGLIN"},
    {"RICE", "TUCSON"},
    {"SANDIA", "WSMR"},
    {"DEC", "YALE"},
}};

/// Ring sections reaching HAWAII are satellite links.
constexpr std::array<std::pair<const char*, const char*>, 2> kSatelliteRingEdges =
    {{{"LBL", "HAWAII"}, {"HAWAII", "SEATTLE"}}};

LineType ring_edge_type(const std::string& a, const std::string& b) {
  for (const auto& [x, y] : kSlowRingEdges) {
    if (a == x && b == y) return LineType::kTerrestrial9_6;
  }
  for (const auto& [x, y] : kSatelliteRingEdges) {
    if (a == x && b == y) return LineType::kSatellite56;
  }
  return LineType::kTerrestrial56;
}

}  // namespace

Arpanet87 arpanet87() {
  Arpanet87 net;
  for (const char* site : kSites) net.topo.add_node(site);

  // The geographic ring: 47 trunks.
  for (std::size_t i = 0; i < kSites.size(); ++i) {
    const std::size_t j = (i + 1) % kSites.size();
    net.topo.add_duplex(static_cast<NodeId>(i), static_cast<NodeId>(j),
                        ring_edge_type(kSites[i], kSites[j]));
  }
  // The 28 chords.
  for (const Chord& c : kChords) {
    net.topo.add_duplex(net.topo.node_by_name(c.a), net.topo.node_by_name(c.b),
                        c.type);
  }

  net.mit = net.topo.node_by_name("MIT");
  net.ucla = net.topo.node_by_name("UCLA");
  return net;
}

}  // namespace arpanet::net::builders
