#include "src/net/topology_io.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace arpanet::net {

namespace {

[[noreturn]] void fail(int line_no, const std::string& message) {
  throw std::invalid_argument("topology line " + std::to_string(line_no) +
                              ": " + message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is{line};
  std::string token;
  while (is >> token) {
    if (token.starts_with('#')) break;  // trailing comment
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Accepts both delay forms: the exact integer `prop_us=<microseconds>` the
/// writer emits (SimTime is integer microseconds, so this round-trips
/// losslessly) and the legacy `prop_ms=<value>` for hand-written files.
util::SimTime parse_prop_delay(const std::string& token, int line_no) {
  constexpr std::string_view kUsPrefix = "prop_us=";
  constexpr std::string_view kMsPrefix = "prop_ms=";
  if (token.starts_with(kUsPrefix)) {
    const std::string_view value{token.data() + kUsPrefix.size(),
                                 token.size() - kUsPrefix.size()};
    std::int64_t us = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), us);
    if (ec != std::errc{} || ptr != value.data() + value.size() || us < 0) {
      fail(line_no, "bad propagation delay '" + std::string(value) + "'");
    }
    return util::SimTime::from_us(us);
  }
  if (!token.starts_with(kMsPrefix)) {
    fail(line_no,
         "expected prop_ms=<value> or prop_us=<value>, got '" + token + "'");
  }
  const std::string_view value{token.data() + kMsPrefix.size(),
                               token.size() - kMsPrefix.size()};
  double ms = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), ms);
  if (ec != std::errc{} || ptr != value.data() + value.size() || ms < 0.0) {
    fail(line_no, "bad propagation delay '" + std::string(value) + "'");
  }
  return util::SimTime::from_ms(ms);
}

}  // namespace

LineType line_type_from_string(std::string_view name) {
  for (int i = 0; i < kLineTypeCount; ++i) {
    const LineTypeInfo& info = all_line_types()[i];
    if (info.name == name) return info.type;
  }
  throw std::invalid_argument("unknown line type '" + std::string(name) + "'");
}

Topology parse_topology(std::istream& in) {
  Topology topo;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "node") {
      if (tokens.size() != 2) fail(line_no, "usage: node <name>");
      try {
        topo.add_node(tokens[1]);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (tokens[0] == "trunk") {
      if (tokens.size() != 4 && tokens.size() != 5) {
        fail(line_no, "usage: trunk <a> <b> <line-type> [prop_ms=<v>|prop_us=<v>]");
      }
      NodeId a = kInvalidNode;
      NodeId b = kInvalidNode;
      LineType type{};
      try {
        a = topo.node_by_name(tokens[1]);
        b = topo.node_by_name(tokens[2]);
        type = line_type_from_string(tokens[3]);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
      try {
        if (tokens.size() == 5) {
          topo.add_duplex(a, b, type, parse_prop_delay(tokens[4], line_no));
        } else {
          topo.add_duplex(a, b, type);
        }
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  return topo;
}

Topology parse_topology(std::string_view text) {
  std::istringstream is{std::string(text)};
  return parse_topology(is);
}

void write_topology(std::ostream& out, const Topology& topo) {
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    out << "node " << topo.node_name(n) << '\n';
  }
  for (std::size_t l = 0; l < topo.link_count(); l += 2) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    // Written as integer microseconds so the generated families' computed
    // delays (LEO slant ranges, Waxman distances) round-trip bit-exactly;
    // the parser still accepts prop_ms= for hand-written files.
    out << "trunk " << topo.node_name(link.from) << ' '
        << topo.node_name(link.to) << ' ' << to_string(link.type)
        << " prop_us=" << link.prop_delay.us() << '\n';
  }
}

std::string topology_to_string(const Topology& topo) {
  std::ostringstream os;
  write_topology(os, topo);
  return os.str();
}

}  // namespace arpanet::net
