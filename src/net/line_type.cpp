#include "src/net/line_type.h"

#include <array>

namespace arpanet::net {

namespace {

using util::DataRate;
using util::SimTime;

// Geostationary one-way hop (ground-satellite-ground): ~130 ms. Terrestrial
// default: a medium-length ARPANET trunk (~1000 km of cable plus microwave
// repeaters), ~10 ms.
constexpr std::int64_t kSatelliteUs = 130'000;
constexpr std::int64_t kTerrestrialUs = 10'000;

constexpr std::array<LineTypeInfo, kLineTypeCount> kTable{{
    {LineType::kTerrestrial9_6, "9.6kb-terrestrial", DataRate::kbps(9.6), false,
     SimTime::from_us(kTerrestrialUs)},
    {LineType::kSatellite9_6, "9.6kb-satellite", DataRate::kbps(9.6), true,
     SimTime::from_us(kSatelliteUs)},
    {LineType::kTerrestrial19_2, "19.2kb-terrestrial", DataRate::kbps(19.2), false,
     SimTime::from_us(kTerrestrialUs)},
    {LineType::kTerrestrial56, "56kb-terrestrial", DataRate::kbps(56.0), false,
     SimTime::from_us(kTerrestrialUs)},
    {LineType::kSatellite56, "56kb-satellite", DataRate::kbps(56.0), true,
     SimTime::from_us(kSatelliteUs)},
    {LineType::kMultiTrunk112, "112kb-multitrunk", DataRate::kbps(112.0), false,
     SimTime::from_us(kTerrestrialUs)},
    {LineType::kMultiTrunk224, "224kb-multitrunk", DataRate::kbps(224.0), false,
     SimTime::from_us(kTerrestrialUs)},
    {LineType::kTerrestrial230, "230.4kb-terrestrial", DataRate::kbps(230.4), false,
     SimTime::from_us(kTerrestrialUs)},
}};

}  // namespace

const LineTypeInfo& info(LineType type) {
  return kTable[static_cast<std::size_t>(type)];
}

std::string_view to_string(LineType type) { return info(type).name; }

const LineTypeInfo* all_line_types() { return kTable.data(); }

}  // namespace arpanet::net
