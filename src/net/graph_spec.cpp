#include "src/net/graph_spec.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/util/check.h"

namespace arpanet::net {
namespace {

/// Formats a parameter value the way label() and parse() agree on: integers
/// without a decimal point, everything else with enough digits to round-trip.
std::string format_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

double parse_value(std::string_view text, std::string_view key) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      !std::isfinite(value)) {
    throw std::invalid_argument("graph spec: bad value for '" +
                                std::string(key) + "': " + std::string(text));
  }
  return value;
}

}  // namespace

GraphSpec::GraphSpec(std::string family) { with_family(std::move(family)); }

GraphSpec& GraphSpec::with_family(std::string family) {
  ARPA_CHECK(!family.empty()) << "GraphSpec family must be non-empty";
  family_ = std::move(family);
  return *this;
}

GraphSpec& GraphSpec::with_nodes(std::size_t n) {
  ARPA_CHECK(n > 0) << "GraphSpec nodes must be positive";
  nodes_ = n;
  return *this;
}

GraphSpec& GraphSpec::with_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

GraphSpec& GraphSpec::with_param(std::string key, double value) {
  ARPA_CHECK(!key.empty()) << "GraphSpec param key must be non-empty";
  ARPA_CHECK(std::isfinite(value))
      << "GraphSpec param '" << key << "' must be finite";
  const auto it = std::lower_bound(
      params_.begin(), params_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it != params_.end() && it->first == key) {
    it->second = value;
  } else {
    params_.insert(it, {std::move(key), value});
  }
  return *this;
}

GraphSpec& GraphSpec::with_label(std::string label) {
  ARPA_CHECK(!label.empty()) << "GraphSpec label must be non-empty";
  label_ = std::move(label);
  return *this;
}

bool GraphSpec::has_param(std::string_view key) const {
  return std::any_of(params_.begin(), params_.end(),
                     [key](const auto& kv) { return kv.first == key; });
}

double GraphSpec::param(std::string_view key, double fallback) const {
  for (const auto& [k, v] : params_) {
    if (k == key) return v;
  }
  return fallback;
}

std::string GraphSpec::label() const {
  if (!label_.empty()) return label_;
  std::ostringstream out;
  out << family_;
  if (nodes_ > 0) out << "-n" << nodes_;
  out << "-s" << seed_;
  for (const auto& [k, v] : params_) out << "-" << k << format_value(v);
  return out.str();
}

GraphSpec GraphSpec::parse(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string_view family =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  if (family.empty()) {
    throw std::invalid_argument("graph spec: empty family in '" +
                                std::string(text) + "'");
  }
  GraphSpec spec{std::string(family)};
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string_view::npos) {
      throw std::invalid_argument("graph spec: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    const double num = parse_value(value, key);
    if (key == "nodes") {
      if (num < 1 || num != std::floor(num)) {
        throw std::invalid_argument(
            "graph spec: nodes must be a positive integer");
      }
      spec.with_nodes(static_cast<std::size_t>(num));
    } else if (key == "seed") {
      if (num < 0 || num != std::floor(num)) {
        throw std::invalid_argument(
            "graph spec: seed must be a non-negative integer");
      }
      spec.with_seed(static_cast<std::uint64_t>(num));
    } else {
      spec.with_param(std::string(key), num);
    }
  }
  return spec;
}

}  // namespace arpanet::net
