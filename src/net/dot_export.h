// Graphviz export of a topology (and optionally live link state).
//
// `dot -Tsvg` of the output gives the paper-style network map: trunk style
// encodes line type (dashed = satellite, thin = 9.6 kb/s), and an optional
// per-link annotation callback adds costs or utilizations as edge labels.

#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "src/net/topology.h"

namespace arpanet::net {

/// Returns a label for a trunk (called with the forward simplex link), or
/// an empty string for no label.
using TrunkLabeler = std::function<std::string(const Link&)>;

/// Largest topology the DOT export accepts. Graphviz output (and graphviz
/// itself) is useless at generated-family scale — a 100k-node graph would
/// emit hundreds of megabytes — so write_dot/to_dot throw
/// std::invalid_argument above this cap instead of producing the file.
inline constexpr std::size_t kDotExportMaxNodes = 2048;

void write_dot(std::ostream& out, const Topology& topo,
               const TrunkLabeler& labeler = nullptr);

[[nodiscard]] std::string to_dot(const Topology& topo,
                                 const TrunkLabeler& labeler = nullptr);

}  // namespace arpanet::net
