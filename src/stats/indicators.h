// Network-wide performance indicators — the rows of the paper's Table 1.
//
// "Internode Traffic", "Round Trip Delay", "Rtng. Updates per Trunk/sec",
// "Update Period per Node", "Internode Actual Path", "Internode Minimum
// Path" and their ratio. The simulator fills a NetworkIndicators from a
// measurement window; table1 benches print May-87-style (D-SPF) vs
// Aug-87-style (HN-SPF) columns side by side.

#pragma once

#include <iosfwd>
#include <string>

namespace arpanet::stats {

struct NetworkIndicators {
  std::string label;            ///< e.g. "D-SPF" / "HN-SPF"
  double internode_traffic_kbps = 0.0;  ///< delivered payload rate
  double round_trip_delay_ms = 0.0;     ///< 2x mean one-way packet delay
  double updates_per_trunk_sec = 0.0;   ///< routing updates / trunk / second
  double update_period_per_node_sec = 0.0;  ///< mean s between a node's updates
  double actual_path_hops = 0.0;        ///< mean hops actually traversed
  double minimum_path_hops = 0.0;       ///< mean min-hop path length (weighted)
  double packets_dropped_per_sec = 0.0;
  double delivered_packets_per_sec = 0.0;
  /// Tail behaviour of one-way delay (congestion shows up here first).
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;

  [[nodiscard]] double path_ratio() const {
    return minimum_path_hops > 0 ? actual_path_hops / minimum_path_hops : 0.0;
  }
};

/// Prints the two-column Table-1 layout.
void print_table1(std::ostream& os, const NetworkIndicators& before,
                  const NetworkIndicators& after);

}  // namespace arpanet::stats
