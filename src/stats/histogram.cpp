#include "src/stats/histogram.h"

#include <algorithm>
#include <stdexcept>

namespace arpanet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)},
      bins_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double x) {
  const auto last = static_cast<long>(bins_.size()) - 1;
  const long idx =
      std::clamp(static_cast<long>((x - lo_) / width_), 0L, last);
  ++bins_[static_cast<std::size_t>(idx)];
  ++count_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.bins_.size() != bins_.size()) {
    throw std::invalid_argument("histogram merge shape mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += static_cast<double>(bins_[i]);
    if (seen >= target) return bin_lo(i) + width_ / 2.0;
  }
  return bin_lo(bins_.size() - 1) + width_ / 2.0;
}

}  // namespace arpanet::stats
