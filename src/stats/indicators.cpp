#include "src/stats/indicators.h"

#include <iomanip>
#include <ostream>

namespace arpanet::stats {

namespace {

void row(std::ostream& os, const char* name, double a, double b, int precision) {
  os << "  " << std::left << std::setw(34) << name << std::right << std::fixed
     << std::setprecision(precision) << std::setw(12) << a << std::setw(12) << b
     << '\n';
}

}  // namespace

void print_table1(std::ostream& os, const NetworkIndicators& before,
                  const NetworkIndicators& after) {
  os << "  " << std::left << std::setw(34) << "Indicator" << std::right
     << std::setw(12) << before.label << std::setw(12) << after.label << '\n';
  row(os, "Internode Traffic (kbps)", before.internode_traffic_kbps,
      after.internode_traffic_kbps, 2);
  row(os, "Round Trip Delay (ms)", before.round_trip_delay_ms,
      after.round_trip_delay_ms, 2);
  row(os, "Rtng. Updates per Trunk/sec", before.updates_per_trunk_sec,
      after.updates_per_trunk_sec, 3);
  row(os, "Update Period per Node (sec)", before.update_period_per_node_sec,
      after.update_period_per_node_sec, 2);
  row(os, "Internode Actual Path (hops/msg)", before.actual_path_hops,
      after.actual_path_hops, 2);
  row(os, "Internode Minimum Path", before.minimum_path_hops,
      after.minimum_path_hops, 2);
  row(os, "Path Ratio (Actual/Min.)", before.path_ratio(), after.path_ratio(), 3);
  row(os, "Packets dropped/sec", before.packets_dropped_per_sec,
      after.packets_dropped_per_sec, 3);
}

}  // namespace arpanet::stats
