// Fixed-bin histogram with quantile extraction.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace arpanet::stats {

/// Linear-bin histogram over [lo, hi); samples outside are clamped into the
/// end bins so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::span<const std::int64_t> bins() const { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// q in [0, 1]; returns the midpoint of the bin containing that quantile
  /// (0 if empty).
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's mass bin-wise. Both histograms must have been
  /// constructed with identical bounds and bin counts.
  void merge(const Histogram& other);

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> bins_;
  std::int64_t count_ = 0;
};

}  // namespace arpanet::stats
