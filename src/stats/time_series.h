// Time-bucketed accumulators.
//
// Used for utilization traces (fig. 1-style oscillation plots), dropped
// packets per day (fig. 13) and routing-update rates over time.

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace arpanet::stats {

/// Accumulates a quantity into fixed-width time buckets, growing as needed.
class TimeSeries {
 public:
  explicit TimeSeries(util::SimTime bucket_width);

  void add(util::SimTime when, double amount);

  /// Pre-extends the bucket array to cover times up to `when`, so add()
  /// calls at or before it never grow the vector — the piece that lets a
  /// measurement window run under an allocation guard (util/alloc_guard.h).
  void reserve_until(util::SimTime when);

  [[nodiscard]] util::SimTime bucket_width() const { return width_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0.0;
  }
  [[nodiscard]] util::SimTime bucket_start(std::size_t i) const {
    return width_ * static_cast<std::int64_t>(i);
  }
  [[nodiscard]] const std::vector<double>& values() const { return buckets_; }

  /// Adds another series' buckets element-wise, growing to cover the longer
  /// of the two. Bucket widths must match.
  void merge(const TimeSeries& other) {
    if (other.buckets_.size() > buckets_.size()) {
      buckets_.resize(other.buckets_.size(), 0.0);
    }
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

 private:
  util::SimTime width_;
  std::vector<double> buckets_;
};

}  // namespace arpanet::stats
