#include "src/stats/time_series.h"

#include <stdexcept>

namespace arpanet::stats {

TimeSeries::TimeSeries(util::SimTime bucket_width) : width_{bucket_width} {
  if (bucket_width <= util::SimTime::zero()) {
    throw std::invalid_argument("bucket width must be positive");
  }
}

void TimeSeries::add(util::SimTime when, double amount) {
  if (when < util::SimTime::zero()) throw std::invalid_argument("negative time");
  const auto idx = static_cast<std::size_t>(when.us() / width_.us());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += amount;
}

void TimeSeries::reserve_until(util::SimTime when) {
  if (when < util::SimTime::zero()) return;
  const auto idx = static_cast<std::size_t>(when.us() / width_.us());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
}

}  // namespace arpanet::stats
