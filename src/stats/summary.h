// Streaming summary statistics (Welford) — mean/variance/min/max without
// storing samples. Used all over the measurement and analysis layers.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace arpanet::stats {

class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void merge(const Summary& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace arpanet::stats
