// Figure 8: "Overall Network Response To Reported Cost" — the Network
// Response Map. Traffic on the "average link" (normalized to base = 1 at a
// reported cost of one hop) as the link's reported cost varies, with every
// other link at the ambient one-hop cost.
//
// Paper anchors: the curve collapses quickly — "If the link reports a cost
// of 4, then over 90% of its base traffic will be shed" — and tiny changes
// around tie points move large amounts of traffic (the epsilon problem).

#include <cstdio>

#include "src/analysis/response_map.h"
#include "src/exp/experiment.h"

int main() {
  using namespace arpanet;
  const exp::Experiment e = exp::Experiment::arpanet87();
  const auto matrix = e.matrix(sim::ScenarioConfig{}
                                   .with_shape(sim::TrafficShape::kPeakHour)
                                   .with_load_bps(400e3)
                                   .with_seed(1987));

  const auto map = analysis::NetworkResponseMap::build(e.topology(), matrix);

  std::printf("# Figure 8: network response map (ARPANET-like topology, peak-hour matrix)\n");
  std::printf("# cost(hops)  traffic-fraction  across-link-stddev\n");
  const auto costs = map.sample_costs();
  const auto fracs = map.sample_fractions();
  const auto devs = map.sample_stddev();
  for (std::size_t i = 0; i < costs.size(); ++i) {
    std::printf("%10.2f %17.3f %19.3f\n", costs[i], fracs[i], devs[i]);
  }

  std::printf("\n# anchors: fraction at 4 hops = %.3f (paper: < 0.10);"
              " epsilon jump 1.0->1.25: %.3f -> %.3f\n",
              map.traffic_fraction(4.0), map.traffic_fraction(1.0),
              map.traffic_fraction(1.25));
  return 0;
}
