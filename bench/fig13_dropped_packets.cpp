// Figure 13: "ARPANET: Dropped Packets (1987)" — packets dropped due to
// congestion per weekday, before and after the HNM installation, with
// traffic levels rising throughout.
//
// We compress each "day" into a fixed simulated peak-hour window. Days 1-7
// run D-SPF, the HNM is "installed" before day 8, and offered load climbs
// steadily across all 14 days — reproducing the paper's shape: a sharp drop
// in congestion losses at the install despite ever-increasing traffic.

#include <cstdio>

#include "src/exp/experiment.h"

int main() {
  using namespace arpanet;
  const exp::Experiment e = exp::Experiment::arpanet87();

  const int days = 14;
  const int install_day = 8;  // HNM installed before this day
  const double load0 = 380e3;
  const double load_growth = 6e3;  // per day: ever-increasing traffic

  std::printf("# Figure 13: dropped packets per simulated weekday\n");
  std::printf("# day  metric   offered(kbps)  dropped  delivered  drop-rate\n");
  long before_total = 0;
  long after_total = 0;
  for (int day = 1; day <= days; ++day) {
    sim::NetworkConfig ncfg;
    ncfg.queue_capacity = 30;
    const sim::ScenarioConfig cfg =
        sim::ScenarioConfig{}
            .with_metric(day < install_day ? metrics::MetricKind::kDspf
                                           : metrics::MetricKind::kHnSpf)
            .with_shape(sim::TrafficShape::kPeakHour)
            .with_load_bps(load0 + load_growth * (day - 1))
            .with_warmup(util::SimTime::from_sec(80))
            .with_window(util::SimTime::from_sec(200))
            .with_seed(0x1987'0500ULL + static_cast<std::uint64_t>(day))
            .with_network(ncfg)
            .with_label("day");

    const auto r = e.run(cfg);
    const long dropped = r.stats.packets_dropped_queue;
    (day < install_day ? before_total : after_total) += dropped;
    const double rate =
        static_cast<double>(dropped) /
        static_cast<double>(std::max<long>(r.stats.packets_generated, 1));
    std::printf("%5d  %-7s %14.0f %8ld %10ld %10.4f%s\n", day,
                to_string(cfg.metric), cfg.offered_load_bps / 1e3, dropped,
                r.stats.packets_delivered, rate,
                day == install_day ? "   <- HNM installed" : "");
  }
  std::printf("\n# total drops: before install %ld, after %ld (paper: sharp"
              " drop at install\n# despite rising traffic)\n",
              before_total, after_total);
  return 0;
}
