// Ablation: which HNM mechanism buys what (DESIGN.md design-choice index).
//
// The revised metric stacks four mechanisms on the raw utilization->cost
// transform: (1) the 0.5/0.5 averaging filter, (2) movement limits of about
// half a hop per update, (3) the one-unit up/down asymmetry (march-up, the
// epsilon-problem fix), and (4) the absolute cap at ~3 hops. This bench
// re-runs the section 5.4 dynamic iteration with each mechanism disabled
// and reports the oscillation amplitude and sustained utilization, showing
// each feature's contribution to the paper's stability claims.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/analysis/response_map.h"
#include "src/core/line_params.h"
#include "src/net/builders/builders.h"

using namespace arpanet;

namespace {

struct Variant {
  const char* name;
  bool averaging;
  bool movement_limits;
  bool march_up;       // meaningful only with movement_limits
  double max_cost;     // routing units (90 = the shipped 3-hop cap)
};

struct Outcome {
  double amplitude;  // tail peak-to-peak cost swing, hops
  double mean_util;  // tail mean utilization
};

/// The section 5.4 iteration with feature toggles. Mirrors core::HnMetric
/// (which the library ships and tests); reimplemented here so each internal
/// mechanism can be switched off — ablations are experiment code, not API.
Outcome iterate(const analysis::NetworkResponseMap& map, const Variant& v,
                double load, int steps = 120) {
  const core::LineTypeParams params =
      core::LineParamsTable::arpanet_defaults().for_type(
          net::LineType::kTerrestrial56);
  const double hop = params.base_min;
  const double up = params.up_limit();
  const double down = v.march_up ? params.down_limit() : up;

  double reported = params.base_min;  // start at the idle floor
  double avg = 0.0;
  std::vector<double> costs;
  std::vector<double> utils;
  for (int i = 0; i < steps; ++i) {
    const double u = std::min(1.0, load * map.traffic_fraction(reported / hop));
    costs.push_back(reported / hop);
    utils.push_back(u);
    avg = v.averaging ? 0.5 * u + 0.5 * avg : u;
    double raw = params.raw_cost(avg);
    if (v.movement_limits) {
      raw = std::clamp(raw, reported - down, reported + up);
    }
    reported = std::clamp(raw, params.base_min, v.max_cost);
  }

  Outcome out{0.0, 0.0};
  const std::size_t tail = costs.size() / 2;
  double lo = costs[tail];
  double hi = costs[tail];
  for (std::size_t i = tail; i < costs.size(); ++i) {
    lo = std::min(lo, costs[i]);
    hi = std::max(hi, costs[i]);
    out.mean_util += utils[i] / static_cast<double>(costs.size() - tail);
  }
  out.amplitude = hi - lo;
  return out;
}

}  // namespace

int main() {
  const auto net = net::builders::arpanet87();
  const auto matrix = traffic::TrafficMatrix::peak_hour(
      net.topo.node_count(), 400e3, util::Rng{1987});
  const auto map = analysis::NetworkResponseMap::build(net.topo, matrix);

  const Variant variants[] = {
      {"full HNM", true, true, true, 90.0},
      {"no averaging", false, true, true, 90.0},
      {"no movement limits", true, false, true, 90.0},
      {"symmetric limits (no march-up)", true, true, false, 90.0},
      {"no 3-hop cap (max=8 hops)", true, true, true, 240.0},
  };

  std::printf("# Ablation: HNM stability mechanisms "
              "(tail cost amplitude in hops / tail mean utilization)\n");
  std::printf("# %-32s", "variant");
  const double loads[] = {0.75, 1.0, 1.5, 2.0};
  for (const double l : loads) std::printf("  load=%4.2f      ", l);
  std::printf("\n");
  for (const Variant& v : variants) {
    std::printf("  %-32s", v.name);
    for (const double l : loads) {
      const Outcome o = iterate(map, v, l);
      std::printf("  %5.2f / %-5.3f ", o.amplitude, o.mean_util);
    }
    std::printf("\n");
  }
  std::printf("\n# reading: disabling limits or averaging inflates the"
              " amplitude under load;\n# the full HNM keeps it within ~half a"
              " hop while sustaining utilization.\n");
  return 0;
}
