// Three generations of ARPANET routing, end to end (paper section 2).
//
// The same two-region overload scenario run under:
//   1969: distributed Bellman-Ford, instantaneous queue-length metric
//         (RoutingAlgorithm::kDistanceVector) — transient loops, heavy
//         table-exchange overhead;
//   1979: SPF + the 10 s averaged delay metric (D-SPF) — loop-free but
//         oscillating under load;
//   1987: SPF + the revised hop-normalized metric (HN-SPF).
//
// Not a figure from the paper itself, but the quantitative version of its
// historical narrative ("the performance of D-SPF was far superior to that
// of the Bellman-Ford algorithm", section 3.3).

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/net/builders/builders.h"

namespace {

using namespace arpanet;

struct Row {
  const char* label;
  routing::RoutingAlgorithm algo;
  metrics::MetricKind metric;
};

void run(const Row& row, const exp::Experiment& e,
         const traffic::TrafficMatrix& m) {
  sim::NetworkConfig ncfg;
  ncfg.algorithm = row.algo;
  ncfg.hop_limit = 64;
  const auto r = e.run(sim::ScenarioConfig{}
                           .with_metric(row.metric)
                           .with_network(ncfg)
                           .with_matrix(m)
                           .with_warmup(util::SimTime::from_sec(150))
                           .with_window(util::SimTime::from_sec(300))
                           .with_label(row.label));
  std::printf("%-22s %10.1f %10.1f %8.2f %8ld %8ld %12ld\n", row.label,
              r.indicators.internode_traffic_kbps,
              r.indicators.round_trip_delay_ms, r.indicators.actual_path_hops,
              r.stats.packets_dropped_queue, r.stats.packets_dropped_loop,
              r.stats.update_packets_sent);
}

}  // namespace

int main() {
  const auto two = net::builders::two_region(6);
  const exp::Experiment e{two.topo, "two-region"};

  // All region1<->region2 pairs share 95 kb/s across the two 56 kb/s trunks.
  traffic::TrafficMatrix m{two.topo.node_count()};
  const double per_pair =
      95e3 / static_cast<double>(2 * two.region1.size() * two.region2.size());
  for (const net::NodeId a : two.region1) {
    for (const net::NodeId b : two.region2) {
      m.set(a, b, per_pair);
      m.set(b, a, per_pair);
    }
  }

  std::printf("# Three routing generations, two-region overload (95 kb/s over"
              " 2x56 kb/s trunks)\n");
  std::printf("%-22s %10s %10s %8s %8s %8s %12s\n", "# generation", "kbps",
              "RTT(ms)", "hops", "q-drops", "loops", "ctrl-pkts");
  const Row rows[] = {
      {"1969 Bellman-Ford", routing::RoutingAlgorithm::kDistanceVector,
       metrics::MetricKind::kDspf},
      {"1979 D-SPF", routing::RoutingAlgorithm::kSpf, metrics::MetricKind::kDspf},
      {"1987 HN-SPF", routing::RoutingAlgorithm::kSpf, metrics::MetricKind::kHnSpf},
  };
  for (const Row& r : rows) run(r, e, m);
  std::printf("\n# expected ordering: each generation delivers more at lower"
              " delay with less\n# control overhead pathology than the last.\n");
  return 0;
}
