// Three generations of ARPANET routing, end to end (paper section 2).
//
// The same two-region overload scenario run under:
//   1969: distributed Bellman-Ford, instantaneous queue-length metric
//         (RoutingAlgorithm::kDistanceVector) — transient loops, heavy
//         table-exchange overhead;
//   1979: SPF + the 10 s averaged delay metric (D-SPF) — loop-free but
//         oscillating under load;
//   1987: SPF + the revised hop-normalized metric (HN-SPF).
//
// Not a figure from the paper itself, but the quantitative version of its
// historical narrative ("the performance of D-SPF was far superior to that
// of the Bellman-Ford algorithm", section 3.3).

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

struct Row {
  const char* label;
  routing::RoutingAlgorithm algo;
  metrics::MetricKind metric;
};

void run(const Row& row, const net::builders::TwoRegionNet& two) {
  sim::NetworkConfig cfg;
  cfg.algorithm = row.algo;
  cfg.metric = row.metric;
  cfg.hop_limit = 64;
  sim::Network net{two.topo, cfg};
  traffic::TrafficMatrix m{two.topo.node_count()};
  const double per_pair =
      95e3 / static_cast<double>(2 * two.region1.size() * two.region2.size());
  for (const net::NodeId a : two.region1) {
    for (const net::NodeId b : two.region2) {
      m.set(a, b, per_pair);
      m.set(b, a, per_pair);
    }
  }
  net.add_traffic(m);
  net.run_for(util::SimTime::from_sec(150));
  net.reset_stats();
  net.run_for(util::SimTime::from_sec(300));

  const auto ind = net.indicators(row.label);
  const auto& s = net.stats();
  std::printf("%-22s %10.1f %10.1f %8.2f %8ld %8ld %12ld\n", row.label,
              ind.internode_traffic_kbps, ind.round_trip_delay_ms,
              ind.actual_path_hops, s.packets_dropped_queue,
              s.packets_dropped_loop, s.update_packets_sent);
}

}  // namespace

int main() {
  const auto two = net::builders::two_region(6);
  std::printf("# Three routing generations, two-region overload (95 kb/s over"
              " 2x56 kb/s trunks)\n");
  std::printf("%-22s %10s %10s %8s %8s %8s %12s\n", "# generation", "kbps",
              "RTT(ms)", "hops", "q-drops", "loops", "ctrl-pkts");
  const Row rows[] = {
      {"1969 Bellman-Ford", routing::RoutingAlgorithm::kDistanceVector,
       metrics::MetricKind::kDspf},
      {"1979 D-SPF", routing::RoutingAlgorithm::kSpf, metrics::MetricKind::kDspf},
      {"1987 HN-SPF", routing::RoutingAlgorithm::kSpf, metrics::MetricKind::kHnSpf},
  };
  for (const Row& r : rows) run(r, two);
  std::printf("\n# expected ordering: each generation delivers more at lower"
              " delay with less\n# control overhead pathology than the last.\n");
  return 0;
}
