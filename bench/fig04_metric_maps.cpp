// Figure 4: "Comparison of Metrics (Normalized) for a 56 Kb/s Line".
//
// Normalized link cost (hops: cost divided by the idle-line value — 30
// routing units for HN-SPF, 2 units for D-SPF) as a function of utilization,
// for D-SPF terrestrial, HN-SPF terrestrial and HN-SPF satellite. The
// paper's qualitative claims to check against the output: the D-SPF curve is
// far steeper at high utilization; HN-SPF is flat until 50% and never
// exceeds 3 hops; the satellite line starts at 2 hops and meets the
// terrestrial curve at saturation.

#include <cstdio>

#include "src/analysis/metric_map.h"

int main() {
  using namespace arpanet;
  const auto params = core::LineParamsTable::arpanet_defaults();
  const auto zero = util::SimTime::zero();
  const auto sat_prop = util::SimTime::from_ms(130);

  const analysis::MetricMap dspf_terr{metrics::MetricKind::kDspf,
                                      net::LineType::kTerrestrial56, params, zero};
  const analysis::MetricMap dspf_sat{metrics::MetricKind::kDspf,
                                     net::LineType::kSatellite56, params, sat_prop};
  const analysis::MetricMap hn_terr{metrics::MetricKind::kHnSpf,
                                    net::LineType::kTerrestrial56, params, zero};
  const analysis::MetricMap hn_sat{metrics::MetricKind::kHnSpf,
                                   net::LineType::kSatellite56, params, sat_prop};

  std::printf("# Figure 4: normalized metric maps, 56 kb/s line\n");
  std::printf("# util  D-SPF-terr  D-SPF-sat  HN-SPF-terr  HN-SPF-sat   (hops)\n");
  for (int i = 0; i <= 20; ++i) {
    const double u = static_cast<double>(i) / 20.0;
    std::printf("%5.2f  %10.2f %10.2f %12.2f %11.2f\n", u,
                dspf_terr.normalized_cost(u), dspf_sat.normalized_cost(u),
                hn_terr.normalized_cost(u), hn_sat.normalized_cost(u));
  }
  std::printf("\n# paper anchors: HN-SPF terr flat at 1.0 until u=0.5, max 3.0;\n");
  std::printf("# HN-SPF sat idle 2.0, max 3.0; D-SPF much steeper near u=1.\n");
  return 0;
}
