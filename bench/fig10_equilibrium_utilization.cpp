// Figure 10: "Equilibrium Traffic for a Heavily Utilized Line" —
// equilibrium link utilization as a function of min-hop offered load, for
// min-hop, D-SPF and HN-SPF.
//
// Paper shape: min-hop tracks the load until it pins (oversubscribed) at
// 100%; HN-SPF acts like min-hop up to ~50% then sheds, sustaining higher
// utilization than D-SPF across the overload range ("HN-SPF is between
// min-hop and D-SPF").

#include <cstdio>

#include "src/analysis/equilibrium.h"
#include "src/net/builders/builders.h"

int main() {
  using namespace arpanet;
  using metrics::MetricKind;
  const auto net = net::builders::arpanet87();
  const auto matrix = traffic::TrafficMatrix::peak_hour(
      net.topo.node_count(), 400e3, util::Rng{1987});
  const auto map = analysis::NetworkResponseMap::build(net.topo, matrix);
  const auto params = core::LineParamsTable::arpanet_defaults();
  const auto zero = util::SimTime::zero();

  const analysis::MetricMap maps[] = {
      {MetricKind::kMinHop, net::LineType::kTerrestrial56, params, zero},
      {MetricKind::kDspf, net::LineType::kTerrestrial56, params, zero},
      {MetricKind::kHnSpf, net::LineType::kTerrestrial56, params, zero},
  };

  std::printf("# Figure 10: equilibrium utilization vs min-hop offered load\n");
  std::printf("# load   min-hop    D-SPF   HN-SPF\n");
  for (double load = 0.25; load <= 4.0 + 1e-9; load += 0.25) {
    std::printf("%5.2f ", load);
    for (const analysis::MetricMap& m : maps) {
      const auto p = analysis::EquilibriumModel{map, m}.equilibrium(load);
      std::printf("  %7.3f", p.utilization);
    }
    std::printf("\n");
  }
  std::printf("\n# paper shape: HN-SPF ~= min-hop until ~50%%, then sheds but"
              " stays above D-SPF.\n");
  return 0;
}
