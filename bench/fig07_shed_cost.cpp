// Figure 7: "Reported Cost Needed to Shed Routes".
//
// X: route length (hops at ambient cost). Y: the reported cost (hops)
// needed to shed routes of that length from the average link — mean, with
// standard deviation and min/max, aggregated over every (link, route) pair
// of the ARPANET-like topology under the peak-hour matrix.
//
// Headline numbers from section 5.2 to compare: shedding *all* of a link's
// routes takes ~4 hops for the average link and ~8 for the worst; long
// routes have alternates only slightly longer, so they shed near 1-2 hops.

#include <cstdio>

#include "src/analysis/shed_cost.h"
#include "src/net/builders/builders.h"

int main() {
  using namespace arpanet;
  const auto net = net::builders::arpanet87();
  const auto matrix = traffic::TrafficMatrix::peak_hour(
      net.topo.node_count(), 400e3, util::Rng{1987});

  const analysis::ShedCostResult r = analysis::shed_cost_study(net.topo, matrix);

  std::printf("# Figure 7: reported cost (hops) needed to shed routes, by route length\n");
  std::printf("# len   routes     mean   stddev      min      max\n");
  for (std::size_t len = 1; len < r.by_route_length.size(); ++len) {
    const stats::Summary& s = r.by_route_length[len];
    if (s.count() == 0) continue;
    std::printf("%5zu %8lld %8.2f %8.2f %8.2f %8.2f\n", len,
                static_cast<long long>(s.count()), s.mean(), s.stddev(),
                s.min(), s.max());
  }
  std::printf("\n# cost to shed ALL routes from a link: mean %.2f hops (paper ~4),"
              " max %.2f (paper ~8)\n",
              r.shed_all.mean(), r.shed_all.max());
  std::printf("# routes that never shed within the scan: %ld (paper: none —"
              " rich alternate paths)\n",
              r.unshed_routes);
  return 0;
}
