// Appendix: offered-load sweep in the full simulator — the classic
// delay/throughput knee, per metric.
//
// Figure 10 derives equilibrium utilization from the analytical model; this
// bench is its discrete-event cross-check, and quantifies the paper's §7
// claim that the HNM "raised the effective capacity of the network by an
// estimated 25%": the offered load at which delay explodes or deliveries
// saturate moves right under HN-SPF.
//
// The 15 cells (3 metrics x 5 loads) run on a SweepRunner thread pool, one
// per core; results are bit-identical at any thread count.

#include <cstdio>
#include <iostream>

#include "src/exp/experiment.h"

int main() {
  using namespace arpanet;
  using metrics::MetricKind;

  const exp::Experiment e = exp::Experiment::arpanet87();

  exp::SweepSpec spec;
  spec.base = sim::ScenarioConfig{}
                  .with_shape(sim::TrafficShape::kPeakHour)
                  .with_warmup(util::SimTime::from_sec(120))
                  .with_window(util::SimTime::from_sec(240));
  spec.over_metrics({MetricKind::kMinHop, MetricKind::kDspf, MetricKind::kHnSpf})
      .over_load_range_bps(250e3, 550e3, 75e3);

  exp::SweepOptions opts;  // threads = 0: one worker per core
  opts.on_run_done = [](const exp::SweepRun& r) {
    std::fprintf(stderr, "done: %s @ %.0f kb/s (%.1fs, %.0f events/s)\n",
                 to_string(r.cell.metric), r.cell.offered_load_bps / 1e3,
                 r.result.wall_seconds, r.result.events_per_sec());
  };
  const exp::SweepResult result = e.sweep(spec, opts);

  std::printf("# Offered-load sweep, ARPANET-like topology, peak-hour"
              " matrix\n\n");
  // Cells enumerate metric-major, so each metric's loads are contiguous.
  MetricKind current{};
  bool first = true;
  for (const exp::SweepRun& run : result.runs) {
    if (first || run.cell.metric != current) {
      if (!first) std::printf("\n");
      current = run.cell.metric;
      first = false;
      std::printf("# %s\n", to_string(current));
      std::printf("# offered(kbps)  delivered  RTT(ms)  p95(ms)  drops/s"
                  "  hops\n");
    }
    const auto& ind = run.result.indicators;
    std::printf("  %12.0f %10.1f %8.0f %8.0f %8.2f %6.2f\n",
                run.cell.offered_load_bps / 1e3, ind.internode_traffic_kbps,
                ind.round_trip_delay_ms, ind.delay_p95_ms,
                ind.packets_dropped_per_sec, ind.actual_path_hops);
  }
  std::printf("\n# reading: find each metric's knee (delivered stops tracking"
              " offered / RTT\n# explodes); the HN-SPF knee sits well to the"
              " right of D-SPF's — the paper's\n# 'effective capacity'"
              " improvement, measured end to end.\n\n");
  result.write_summary(std::cout);
  return 0;
}
