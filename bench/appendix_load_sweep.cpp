// Appendix: offered-load sweep in the full simulator — the classic
// delay/throughput knee, per metric.
//
// Figure 10 derives equilibrium utilization from the analytical model; this
// bench is its discrete-event cross-check, and quantifies the paper's §7
// claim that the HNM "raised the effective capacity of the network by an
// estimated 25%": the offered load at which delay explodes or deliveries
// saturate moves right under HN-SPF.

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

namespace {

using namespace arpanet;

void sweep(metrics::MetricKind kind) {
  const auto net87 = net::builders::arpanet87();
  std::printf("# %s\n", to_string(kind));
  std::printf("# offered(kbps)  delivered  RTT(ms)  p95(ms)  drops/s  hops\n");
  for (double offered = 250e3; offered <= 550e3 + 1; offered += 75e3) {
    sim::ScenarioConfig cfg;
    cfg.metric = kind;
    cfg.offered_load_bps = offered;
    cfg.shape = sim::TrafficShape::kPeakHour;
    cfg.warmup = util::SimTime::from_sec(120);
    cfg.window = util::SimTime::from_sec(240);
    const auto r = sim::run_scenario(net87.topo, cfg, "x");
    std::printf("  %12.0f %10.1f %8.0f %8.0f %8.2f %6.2f\n", offered / 1e3,
                r.indicators.internode_traffic_kbps,
                r.indicators.round_trip_delay_ms, r.indicators.delay_p95_ms,
                r.indicators.packets_dropped_per_sec,
                r.indicators.actual_path_hops);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("# Offered-load sweep, ARPANET-like topology, peak-hour"
              " matrix\n\n");
  for (const metrics::MetricKind kind :
       {metrics::MetricKind::kMinHop, metrics::MetricKind::kDspf,
        metrics::MetricKind::kHnSpf}) {
    sweep(kind);
  }
  std::printf("# reading: find each metric's knee (delivered stops tracking"
              " offered / RTT\n# explodes); the HN-SPF knee sits well to the"
              " right of D-SPF's — the paper's\n# 'effective capacity'"
              " improvement, measured end to end.\n");
  return 0;
}
