// Figure 9: "Equilibrium Calculation" — the two families of curves whose
// intersections define equilibrium routing: Metric maps (utilization ->
// normalized cost, plotted inverse here: for each cost, the utilization the
// metric implies) and Network Response maps at several offered loads, plus
// the equilibrium points the numerical solver finds for each metric/load.

#include <cstdio>

#include "src/analysis/equilibrium.h"
#include "src/exp/experiment.h"

int main() {
  using namespace arpanet;
  using metrics::MetricKind;
  const exp::Experiment e = exp::Experiment::arpanet87();
  const auto matrix = e.matrix(sim::ScenarioConfig{}
                                   .with_shape(sim::TrafficShape::kPeakHour)
                                   .with_load_bps(400e3)
                                   .with_seed(1987));
  const auto map = analysis::NetworkResponseMap::build(e.topology(), matrix);
  const auto params = core::LineParamsTable::arpanet_defaults();

  const analysis::MetricMap hn{MetricKind::kHnSpf, net::LineType::kTerrestrial56,
                               params, util::SimTime::zero()};
  const analysis::MetricMap dspf{MetricKind::kDspf, net::LineType::kTerrestrial56,
                                 params, util::SimTime::zero()};

  std::printf("# Figure 9: metric maps (cost in hops vs utilization)\n");
  std::printf("# util   HN-SPF   D-SPF\n");
  for (int i = 0; i <= 20; ++i) {
    const double u = static_cast<double>(i) / 20.0;
    std::printf("%5.2f  %7.2f %7.2f\n", u, hn.normalized_cost(u),
                dspf.normalized_cost(u));
  }

  std::printf("\n# network response maps: utilization on the average link vs"
              " reported cost,\n# for offered loads (min-hop utilization)"
              " 50%% / 75%% / 100%% / 150%%\n");
  std::printf("# cost    u@50%%   u@75%%  u@100%%  u@150%%\n");
  const analysis::EquilibriumModel model_hn{map, hn};
  for (double c = 1.0; c <= 3.5 + 1e-9; c += 0.25) {
    std::printf("%5.2f  %7.3f %7.3f %7.3f %7.3f\n", c,
                model_hn.utilization_at(c, 0.5), model_hn.utilization_at(c, 0.75),
                model_hn.utilization_at(c, 1.0), model_hn.utilization_at(c, 1.5));
  }

  std::printf("\n# equilibrium points (cost, utilization):\n");
  std::printf("# load    HN-SPF              D-SPF\n");
  for (const double load : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    const auto ph = analysis::EquilibriumModel{map, hn}.equilibrium(load);
    const auto pd = analysis::EquilibriumModel{map, dspf}.equilibrium(load);
    std::printf("%5.2f   (%.2f, %.3f)      (%.2f, %.3f)\n", load, ph.cost_hops,
                ph.utilization, pd.cost_hops, pd.utilization);
  }
  std::printf("# paper shape: at a given overload the HN-SPF equilibrium sits"
              " at higher\n# utilization (and bounded cost <= 3) than D-SPF's.\n");
  return 0;
}
