// Extension bench: open-loop vs RFNM closed-loop load under overload.
//
// Section 3.3 blames D-SPF oscillation for "the spread of congestion within
// the network"; what actually bounded ARPANET congestion was the host
// layer's RFNM windowing, which throttles sources when the subnet slows
// down. This bench sweeps offered load across the two-region corridor and
// compares raw Poisson datagrams against RFNM messages (window 1 and 8):
// the closed loop converts queue drops into source-side waiting.

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/host_flow.h"

namespace {

using namespace arpanet;

traffic::TrafficMatrix corridor(const net::builders::TwoRegionNet& two,
                                double bps) {
  traffic::TrafficMatrix m{two.topo.node_count()};
  const double per_pair =
      bps / static_cast<double>(2 * two.region1.size() * two.region2.size());
  for (const net::NodeId a : two.region1) {
    for (const net::NodeId b : two.region2) {
      m.set(a, b, per_pair);
      m.set(b, a, per_pair);
    }
  }
  return m;
}

void run(double offered_bps) {
  const auto two = net::builders::two_region(6);

  // Open loop.
  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  sim::Network open_net{two.topo, cfg};
  open_net.add_traffic(corridor(two, offered_bps));
  open_net.run_for(util::SimTime::from_sec(300));
  const auto open_ind = open_net.indicators("open");

  // Closed loop, two window sizes.
  double goodput[2];
  double delay[2];
  long drops[2];
  const int windows[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    sim::Network closed_net{two.topo, cfg};
    sim::HostFlowConfig hcfg;
    hcfg.window = windows[i];
    sim::HostFlowLayer host{closed_net, hcfg};
    host.add_traffic(corridor(two, offered_bps));
    closed_net.run_for(util::SimTime::from_sec(300));
    goodput[i] = host.goodput_bps() / 1e3;
    delay[i] = host.message_delay_ms().mean();
    drops[i] = closed_net.stats().packets_dropped_queue;
  }

  std::printf("  %7.0f | %9.1f %8.2f | %8.1f %9.0f %7ld | %8.1f %9.0f %7ld\n",
              offered_bps / 1e3, open_ind.internode_traffic_kbps,
              open_ind.packets_dropped_per_sec, goodput[0], delay[0], drops[0],
              goodput[1], delay[1], drops[1]);
}

}  // namespace

int main() {
  std::printf("# Open-loop datagrams vs RFNM flow control, two-region corridor"
              " (2x56 kb/s)\n");
  std::printf("#         |     open loop      |        window 1          |"
              "        window 8\n");
  std::printf("# offered | del(kbps) drops/s  | good(kbps) msg-ms  drops |"
              " good(kbps) msg-ms  drops\n");
  for (const double offered : {60e3, 90e3, 120e3, 180e3}) {
    run(offered);
  }
  std::printf("\n# reading: past capacity the open loop sheds by dropping."
              " Window 1 throttles\n# hard: drops stay near zero and overload"
              " shows up as message latency at the\n# edge. Window 8 trades"
              " protection back for throughput — its 8-message bursts\n#"
              " overrun queues under deep overload, drifting toward open-loop"
              " behaviour.\n");
  return 0;
}
