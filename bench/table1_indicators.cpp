// Table 1: "ARPANET: Network-wide Performance Indicators".
//
// The paper compares May 1987 (D-SPF) to August 1987 (HN-SPF, after the
// HNM install) peak hours: despite 13% more traffic, round-trip delay fell
// 46%, routing updates fell 19%, and the actual/minimum path ratio dropped
// from 1.24 to 1.14. We reproduce the comparison as two simulations of the
// ARPANET-like network: D-SPF at the "May" load and HN-SPF at a 13% higher
// "August" load. Absolute numbers differ from the paper's testbed; the
// directions and rough ratios are the reproduction target.

#include <cstdio>
#include <iostream>

#include "src/exp/experiment.h"

int main() {
  using namespace arpanet;
  const exp::Experiment e = exp::Experiment::arpanet87();

  const sim::ScenarioConfig base = sim::ScenarioConfig{}
                                       .with_shape(sim::TrafficShape::kPeakHour)
                                       .with_warmup(util::SimTime::from_sec(150))
                                       .with_window(util::SimTime::from_sec(450))
                                       .with_seed(0x1987);

  const auto may = e.run(sim::ScenarioConfig{base}
                             .with_metric(metrics::MetricKind::kDspf)
                             .with_load_bps(366e3)  // May-87 internode traffic
                             .with_label("D-SPF(May)"));
  const auto aug = e.run(sim::ScenarioConfig{base}
                             .with_metric(metrics::MetricKind::kHnSpf)
                             .with_load_bps(414e3)  // +13%, the Aug-87 level
                             .with_label("HN-SPF(Aug)"));

  std::printf("# Table 1: network-wide performance indicators\n");
  stats::print_table1(std::cout, may.indicators, aug.indicators);

  const double delay_change = (aug.indicators.round_trip_delay_ms -
                               may.indicators.round_trip_delay_ms) /
                              may.indicators.round_trip_delay_ms;
  const double update_change = (aug.indicators.updates_per_trunk_sec -
                                may.indicators.updates_per_trunk_sec) /
                               may.indicators.updates_per_trunk_sec;
  std::printf("\n# round-trip delay change: %+.0f%% (paper: -46%% despite +13%%"
              " traffic)\n", 100 * delay_change);
  std::printf("# routing-update change:  %+.0f%% (paper: -19%%)\n",
              100 * update_change);
  std::printf("# path ratio: %.3f -> %.3f (paper: 1.24 -> 1.14)\n",
              may.indicators.path_ratio(), aug.indicators.path_ratio());
  return 0;
}
