// Table 1: "ARPANET: Network-wide Performance Indicators".
//
// The paper compares May 1987 (D-SPF) to August 1987 (HN-SPF, after the
// HNM install) peak hours: despite 13% more traffic, round-trip delay fell
// 46%, routing updates fell 19%, and the actual/minimum path ratio dropped
// from 1.24 to 1.14. We reproduce the comparison as two simulations of the
// ARPANET-like network: D-SPF at the "May" load and HN-SPF at a 13% higher
// "August" load. Absolute numbers differ from the paper's testbed; the
// directions and rough ratios are the reproduction target.

#include <cstdio>
#include <iostream>

#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

int main() {
  using namespace arpanet;
  const auto net = net::builders::arpanet87();

  sim::ScenarioConfig cfg;
  cfg.shape = sim::TrafficShape::kPeakHour;
  cfg.warmup = util::SimTime::from_sec(150);
  cfg.window = util::SimTime::from_sec(450);
  cfg.seed = 0x1987;

  cfg.metric = metrics::MetricKind::kDspf;
  cfg.offered_load_bps = 366e3;  // the paper's May-87 internode traffic
  const auto may = sim::run_scenario(net.topo, cfg, "D-SPF(May)");

  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.offered_load_bps = 414e3;  // +13%, the paper's Aug-87 level
  const auto aug = sim::run_scenario(net.topo, cfg, "HN-SPF(Aug)");

  std::printf("# Table 1: network-wide performance indicators\n");
  stats::print_table1(std::cout, may.indicators, aug.indicators);

  const double delay_change = (aug.indicators.round_trip_delay_ms -
                               may.indicators.round_trip_delay_ms) /
                              may.indicators.round_trip_delay_ms;
  const double update_change = (aug.indicators.updates_per_trunk_sec -
                                may.indicators.updates_per_trunk_sec) /
                               may.indicators.updates_per_trunk_sec;
  std::printf("\n# round-trip delay change: %+.0f%% (paper: -46%% despite +13%%"
              " traffic)\n", 100 * delay_change);
  std::printf("# routing-update change:  %+.0f%% (paper: -19%%)\n",
              100 * update_change);
  std::printf("# path ratio: %.3f -> %.3f (paper: 1.24 -> 1.14)\n",
              may.indicators.path_ratio(), aug.indicators.path_ratio());
  return 0;
}
