// Figure 11: "Dynamic Behavior of D-SPF" — unbounded oscillations.
//
// At 100% offered load the D-SPF iteration is meta-stable: started at the
// equilibrium it stays; started away from it, it diverges and then
// "oscillate[s] between its maximum and minimum values". The bench prints
// both trajectories and their tail amplitudes.

#include <cstdio>

#include "src/analysis/dynamic_trace.h"
#include "src/net/builders/builders.h"

int main() {
  using namespace arpanet;
  using metrics::MetricKind;
  const auto net = net::builders::arpanet87();
  const auto matrix = traffic::TrafficMatrix::peak_hour(
      net.topo.node_count(), 400e3, util::Rng{1987});
  const auto map = analysis::NetworkResponseMap::build(net.topo, matrix);
  const auto params = core::LineParamsTable::arpanet_defaults();
  const analysis::MetricMap dspf{MetricKind::kDspf, net::LineType::kTerrestrial56,
                                 params, util::SimTime::zero()};

  const double load = 1.0;
  const auto eq = analysis::EquilibriumModel{map, dspf}.equilibrium(load);
  std::printf("# Figure 11: D-SPF dynamics at 100%% offered load\n");
  std::printf("# equilibrium (meta-stable): cost %.3f hops, utilization %.3f\n\n",
              eq.cost_hops, eq.utilization);

  const auto near = analysis::trace_dspf(map, dspf, load, eq.cost_hops, 24);
  const auto far = analysis::trace_dspf(map, dspf, load, 1.0, 24);

  std::printf("# step   from-equilibrium        from-cost-1 (far start)\n");
  std::printf("#        cost     util           cost     util\n");
  for (std::size_t i = 0; i < near.size(); ++i) {
    std::printf("%5zu  %7.2f  %6.3f        %7.2f  %6.3f\n", i,
                near[i].cost_hops, near[i].utilization, far[i].cost_hops,
                far[i].utilization);
  }
  std::printf("\n# tail amplitude: near-start %.2f hops, far-start %.2f hops\n",
              analysis::tail_amplitude(near), analysis::tail_amplitude(far));
  std::printf("# paper shape: far start swings between the extremes (idle cost"
              " <-> max);\n# the equilibrium is meta-stable.\n");
  return 0;
}
