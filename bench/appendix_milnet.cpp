// Appendix: the MILNET deployment ("it has been successfully deployed in
// several major networks, including the MILNET" — abstract; the detailed
// MILNET study is the paper's reference [2]).
//
// The same before/after comparison as Table 1, on a MILNET-like network:
// ~112 nodes in 7 clusters, a larger share of 9.6 kb/s tails, satellite
// trunks to two overseas clusters. Demonstrates that the revised metric's
// gains are not an artifact of the ARPANET topology.

#include <cstdio>
#include <iostream>

#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

int main() {
  using namespace arpanet;
  const net::Topology topo = net::builders::milnet_like();
  std::printf("# MILNET-like network: %zu nodes, %zu trunks\n",
              topo.node_count(), topo.trunk_count());

  sim::ScenarioConfig cfg;
  cfg.shape = sim::TrafficShape::kPeakHour;
  cfg.warmup = util::SimTime::from_sec(150);
  cfg.window = util::SimTime::from_sec(300);
  cfg.seed = 0x83;

  cfg.metric = metrics::MetricKind::kDspf;
  cfg.offered_load_bps = 700e3;
  const auto before = sim::run_scenario(topo, cfg, "D-SPF");

  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.offered_load_bps = 790e3;  // +13%, mirroring the ARPANET study
  const auto after = sim::run_scenario(topo, cfg, "HN-SPF");

  stats::print_table1(std::cout, before.indicators, after.indicators);
  std::printf("\n# expected: the same directions as Table 1 on a network"
              " twice the ARPANET's size\n# with a slower, more heterogeneous"
              " trunk mix.\n");
  return 0;
}
