// Appendix: the MILNET deployment ("it has been successfully deployed in
// several major networks, including the MILNET" — abstract; the detailed
// MILNET study is the paper's reference [2]).
//
// The same before/after comparison as Table 1, on a MILNET-like network:
// ~112 nodes in 7 clusters, a larger share of 9.6 kb/s tails, satellite
// trunks to two overseas clusters. Demonstrates that the revised metric's
// gains are not an artifact of the ARPANET topology.

#include <cstdio>
#include <iostream>

#include "src/exp/experiment.h"
#include "src/net/builders/builders.h"

int main() {
  using namespace arpanet;
  const exp::Experiment e{net::builders::milnet_like(), "milnet"};
  std::printf("# MILNET-like network: %zu nodes, %zu trunks\n",
              e.topology().node_count(), e.topology().trunk_count());

  const sim::ScenarioConfig base = sim::ScenarioConfig{}
                                       .with_shape(sim::TrafficShape::kPeakHour)
                                       .with_warmup(util::SimTime::from_sec(150))
                                       .with_window(util::SimTime::from_sec(300))
                                       .with_seed(0x83);

  const auto before = e.run(sim::ScenarioConfig{base}
                                .with_metric(metrics::MetricKind::kDspf)
                                .with_load_bps(700e3));
  const auto after =
      e.run(sim::ScenarioConfig{base}
                .with_metric(metrics::MetricKind::kHnSpf)
                .with_load_bps(790e3));  // +13%, mirroring the ARPANET study

  stats::print_table1(std::cout, before.indicators, after.indicators);
  std::printf("\n# expected: the same directions as Table 1 on a network"
              " twice the ARPANET's size\n# with a slower, more heterogeneous"
              " trunk mix.\n");
  return 0;
}
