// Figure 1 / Section 3.3: "Routing Oscillations".
//
// Two regions joined by equal trunks A and B; inter-region traffic exceeds
// one trunk's capacity. Under D-SPF "links A and B alternating (instead of
// cooperating) as traffic carriers" shows up as anti-phase utilization
// swings; under HN-SPF the movement limits shed routes gradually and the
// trunks settle into sharing. The bench prints both runs' A/B utilization
// per 10 s measurement bucket, then summary statistics.

#include <algorithm>
#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

struct RunResult {
  std::vector<double> util_a;
  std::vector<double> util_b;
  std::vector<double> cost_a;  ///< reported costs of trunk A in the window
  double mean_imbalance = 0.0;  // mean |uA - uB| over the window
  double swing_a = 0.0;         // mean |uA(t+1) - uA(t)|: oscillation speed
  double drops_per_sec = 0.0;
  double delay_ms = 0.0;
};

RunResult run(metrics::MetricKind kind, const net::builders::TwoRegionNet& two,
              double inter_region_bps, int buckets) {
  sim::NetworkConfig cfg;
  cfg.metric = kind;
  cfg.track_reported_costs = true;
  sim::Network net{two.topo, cfg};

  // Inter-region pairs only: the intra-region mesh is irrelevant here.
  traffic::TrafficMatrix m{two.topo.node_count()};
  const double per_pair =
      inter_region_bps /
      static_cast<double>(2 * two.region1.size() * two.region2.size());
  for (const net::NodeId a : two.region1) {
    for (const net::NodeId b : two.region2) {
      m.set(a, b, per_pair);
      m.set(b, a, per_pair);
    }
  }
  net.add_traffic(m);

  const auto warmup = util::SimTime::from_sec(200);
  net.run_for(warmup);
  net.reset_stats();
  net.run_for(cfg.stats_bucket * buckets);

  RunResult r;
  const std::size_t first =
      static_cast<std::size_t>(warmup.us() / cfg.stats_bucket.us());
  for (int i = 0; i < buckets; ++i) {
    const double ua = net.link_utilization(two.link_a, first + i);
    const double ub = net.link_utilization(two.link_b, first + i);
    r.util_a.push_back(ua);
    r.util_b.push_back(ub);
    r.mean_imbalance += std::abs(ua - ub) / buckets;
  }
  for (std::size_t i = 1; i < r.util_a.size(); ++i) {
    r.swing_a += std::abs(r.util_a[i] - r.util_a[i - 1]) /
                 static_cast<double>(r.util_a.size() - 1);
  }
  const auto ind = net.indicators("x");
  r.drops_per_sec = ind.packets_dropped_per_sec;
  r.delay_ms = ind.round_trip_delay_ms;
  for (const auto& [when, cost] : net.reported_cost_trace(two.link_a)) {
    if (when >= warmup) r.cost_a.push_back(cost);
  }
  return r;
}

}  // namespace

int main() {
  const auto two = net::builders::two_region(6);
  const double offered = 95e3;  // ~1.7x one 56 kb/s trunk: one trunk alone cannot carry it
  const int buckets = 30;

  const RunResult dspf = run(metrics::MetricKind::kDspf, two, offered, buckets);
  const RunResult hn = run(metrics::MetricKind::kHnSpf, two, offered, buckets);

  std::printf("# Figure 1: two-region oscillation, %.0f kb/s inter-region\n",
              offered / 1e3);
  std::printf("# t(s)   D-SPF:A  D-SPF:B   HN-SPF:A HN-SPF:B   (utilization)\n");
  for (int i = 0; i < buckets; ++i) {
    std::printf("%5d     %6.2f   %6.2f     %6.2f   %6.2f\n", i * 10,
                dspf.util_a[i], dspf.util_b[i], hn.util_a[i], hn.util_b[i]);
  }
  std::printf("\n#            mean|uA-uB|  mean step|duA|  drops/s  RTT(ms)\n");
  std::printf("# D-SPF   %10.3f %14.3f %9.2f %8.1f\n", dspf.mean_imbalance,
              dspf.swing_a, dspf.drops_per_sec, dspf.delay_ms);
  std::printf("# HN-SPF  %10.3f %14.3f %9.2f %8.1f\n", hn.mean_imbalance,
              hn.swing_a, hn.drops_per_sec, hn.delay_ms);
  std::printf("# paper shape: D-SPF alternates A/B (high imbalance & swing);\n");
  std::printf("# HN-SPF shares the trunks (low imbalance, steady).\n");

  std::printf("\n# trunk A reported costs over the window (units):\n# D-SPF: ");
  for (std::size_t i = 0; i < dspf.cost_a.size() && i < 14; ++i) {
    std::printf(" %.0f", dspf.cost_a[i]);
  }
  std::printf("\n# HN-SPF:");
  for (std::size_t i = 0; i < hn.cost_a.size() && i < 14; ++i) {
    std::printf(" %.0f", hn.cost_a[i]);
  }
  std::printf("\n# (with the corridor shared, each trunk sits near 45%%"
              " utilization — below the\n# 50%% flat threshold — so HN-SPF"
              " holds a constant one-hop cost and the system\n# stays put;"
              " D-SPF keeps reporting its fluctuating delay, 2-4x swings"
              " between\n# updates, and the stampedes continue.)\n");
  return 0;
}
