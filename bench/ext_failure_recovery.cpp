// Extension bench: routing around a trunk failure (the SPF virtue the
// paper's conclusions keep: "dynamically routing around down lines").
//
// A busy cross-country trunk fails mid-run, later recovers. For each metric
// we measure: time for every PSN's cost map to re-converge, updates the
// event cost, packets lost in the transient, and — on recovery — how
// HN-SPF's ease-in admits the trunk back gradually.

#include <cstdio>

#include "src/analysis/convergence.h"
#include "src/net/builders/builders.h"

namespace {

using namespace arpanet;

void run(metrics::MetricKind kind) {
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.metric = kind;
  sim::Network net{net87.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::peak_hour(net87.topo.node_count(),
                                                    380e3, util::Rng{0xdead}));
  net.run_for(util::SimTime::from_sec(150));  // settle

  // Fail DENVER-ILLINOIS: a northern cross-country trunk carrying transit.
  net::LinkId trunk = net::kInvalidLink;
  const net::NodeId denver = net87.topo.node_by_name("DENVER");
  for (const net::LinkId lid : net87.topo.out_links(denver)) {
    if (net87.topo.link(lid).to == net87.topo.node_by_name("ILLINOIS")) {
      trunk = lid;
      break;
    }
  }

  const auto fail = analysis::measure_convergence(
      net, [&] { net.set_trunk_up(trunk, false); });
  net.run_for(util::SimTime::from_sec(100));
  const auto recover = analysis::measure_convergence(
      net, [&] { net.set_trunk_up(trunk, true); });

  std::printf("  %-7s | %9.2f %8ld %8ld | %9.2f %8ld %8ld\n", to_string(kind),
              fail.settle_time.sec(), fail.update_packets, fail.packets_dropped,
              recover.settle_time.sec(), recover.update_packets,
              recover.packets_dropped);
}

}  // namespace

int main() {
  std::printf("# Trunk failure/recovery: DENVER-ILLINOIS under 380 kb/s"
              " peak-hour load\n");
  std::printf("#         |        failure             |        recovery\n");
  std::printf("# metric  | settle(s) upd-pkts  drops  | settle(s) upd-pkts"
              "  drops\n");
  for (const metrics::MetricKind kind :
       {metrics::MetricKind::kMinHop, metrics::MetricKind::kDspf,
        metrics::MetricKind::kHnSpf}) {
    run(kind);
  }
  std::printf("\n# settle = all 47 PSNs hold identical cost maps again."
              " Every metric reroutes\n# in well under a second of flooding;"
              " the differences are in transient drops\n# and the update"
              " volume the event triggers.\n");
  return 0;
}
