// Ablation: the update-generation ("Minimum Change") threshold.
//
// Section 4.3: suppressing sub-half-hop changes "has the effect of reducing
// both routing related computation and routing-related link bandwidth
// consumption". We sweep the threshold on the busy ARPANET-like network and
// measure the trade: update traffic and SPF work against routing quality
// (delay, drops). The shipped value (14 units = a little under a half-hop)
// should sit at the flat part of the quality curve while cutting update
// volume severalfold versus an always-report network.

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

int main() {
  using namespace arpanet;
  const auto net87 = net::builders::arpanet87();

  std::printf("# Significance-threshold ablation, HN-SPF, 420 kb/s peak-hour\n");
  std::printf("# threshold  upd/trunk/s  upd-period(s)  RTT(ms)  drops/s\n");
  for (const double threshold : {0.0, 4.0, 14.0, 29.0, 60.0}) {
    sim::NetworkConfig cfg;
    cfg.metric = metrics::MetricKind::kHnSpf;
    cfg.significance_threshold_override = threshold;
    sim::Network net{net87.topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::peak_hour(
        net87.topo.node_count(), 420e3, util::Rng{0x51}));
    net.run_for(util::SimTime::from_sec(120));
    net.reset_stats();
    net.run_for(util::SimTime::from_sec(300));
    const auto ind = net.indicators("x");
    std::printf("  %9.0f %12.3f %14.1f %8.0f %8.2f%s\n", threshold,
                ind.updates_per_trunk_sec, ind.update_period_per_node_sec,
                ind.round_trip_delay_ms, ind.packets_dropped_per_sec,
                threshold == 14.0 ? "   <- shipped (half-hop - 1)" : "");
  }
  std::printf("\n# reading: 0 = report every period (max overhead); large"
              " thresholds starve the\n# network of information (delay/drops"
              " rise). The shipped value buys most of the\n# overhead"
              " reduction before quality degrades.\n");
  return 0;
}
