// Micro-benchmarks (google-benchmark): the hot paths of the library —
// full vs incremental SPF on the ARPANET-like topology, the event queue,
// the HNM transform, flooding decisions and the response-map building
// block. These back DESIGN.md's claim that the incremental algorithm saves
// the PSN CPU that section 3.3 point 5 worries about.

#include <benchmark/benchmark.h>

#include "src/analysis/response_map.h"
#include "src/core/hn_metric.h"
#include "src/net/builders/builders.h"
#include "src/routing/spf.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace {

using namespace arpanet;

const net::builders::Arpanet87& fixture() {
  static const net::builders::Arpanet87 net = net::builders::arpanet87();
  return net;
}

void BM_FullSpf(benchmark::State& state) {
  const auto& net = fixture();
  routing::LinkCosts costs(net.topo.link_count(), 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::Spf::compute(net.topo, 0, costs));
  }
}
BENCHMARK(BM_FullSpf);

void BM_IncrementalSpfSkippedUpdate(benchmark::State& state) {
  const auto& net = fixture();
  routing::IncrementalSpf inc{net.topo, 0,
                              routing::LinkCosts(net.topo.link_count(), 30.0)};
  // Find a non-tree link; raising its cost is the paper's no-work case.
  net::LinkId non_tree = net::kInvalidLink;
  for (const net::Link& l : net.topo.links()) {
    if (!inc.tree().uses_link(net.topo, l.id)) {
      non_tree = l.id;
      break;
    }
  }
  double cost = 31.0;
  for (auto _ : state) {
    inc.set_cost(non_tree, cost);
    cost += 1.0;  // always an increase: never triggers a recompute
  }
}
BENCHMARK(BM_IncrementalSpfSkippedUpdate);

void BM_IncrementalSpfCostChange(benchmark::State& state) {
  const auto& net = fixture();
  routing::IncrementalSpf inc{net.topo, 0,
                              routing::LinkCosts(net.topo.link_count(), 30.0)};
  util::Rng rng{42};
  for (auto _ : state) {
    const auto link = static_cast<net::LinkId>(
        rng.uniform_index(net.topo.link_count()));
    inc.set_cost(link, 30.0 + static_cast<double>(rng.uniform_index(60)));
  }
}
BENCHMARK(BM_IncrementalSpfCostChange);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(util::SimTime::from_us(i * 7 % 997), [&count] { ++count; });
    }
    sim.run_until(util::SimTime::from_sec(1));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_HnmTransform(benchmark::State& state) {
  const auto params = core::LineParamsTable::arpanet_defaults();
  core::HnMetric m{params.for_type(net::LineType::kTerrestrial56),
                   util::DataRate::kbps(56), util::SimTime::zero()};
  util::Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.update_from_delay(util::SimTime::from_ms(rng.uniform(10.0, 500.0))));
  }
}
BENCHMARK(BM_HnmTransform);

void BM_LinkTrafficAtCost(benchmark::State& state) {
  const auto& net = fixture();
  const auto matrix =
      traffic::TrafficMatrix::uniform(net.topo.node_count(), 1e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::NetworkResponseMap::link_traffic_at_cost(
        net.topo, matrix, 0, 2.5));
  }
}
BENCHMARK(BM_LinkTrafficAtCost);

}  // namespace

BENCHMARK_MAIN();
