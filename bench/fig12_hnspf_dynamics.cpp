// Figure 12: "Dynamic Behavior of HN-SPF" — bounded oscillation and the
// ease-in of a new link.
//
// Same 100% offered load as figure 11, but iterating the full HNM
// (averaging filter + movement limits + clip). Two trajectories:
//   * from the idle floor — converges toward equilibrium, any residual
//     oscillation bounded by the half-hop movement limits;
//   * from link-up (max cost) — "Easing in a new link": the cost is pulled
//     down at most half a hop per period, drawing in traffic gradually.

#include <cstdio>

#include "src/analysis/dynamic_trace.h"
#include "src/net/builders/builders.h"

int main() {
  using namespace arpanet;
  using metrics::MetricKind;
  const auto net = net::builders::arpanet87();
  const auto matrix = traffic::TrafficMatrix::peak_hour(
      net.topo.node_count(), 400e3, util::Rng{1987});
  const auto map = analysis::NetworkResponseMap::build(net.topo, matrix);
  const auto params = core::LineParamsTable::arpanet_defaults();
  const auto type = net::LineType::kTerrestrial56;
  const analysis::MetricMap hn{MetricKind::kHnSpf, type, params,
                               util::SimTime::zero()};

  const double load = 1.0;
  const auto eq = analysis::EquilibriumModel{map, hn}.equilibrium(load);
  std::printf("# Figure 12: HN-SPF dynamics at 100%% offered load\n");
  std::printf("# equilibrium: cost %.3f hops, utilization %.3f\n\n", eq.cost_hops,
              eq.utilization);

  const auto from_idle = analysis::trace_hnspf(map, params.for_type(type), type,
                                               load, 30, /*start_at_max=*/false);
  const auto ease_in = analysis::trace_hnspf(map, params.for_type(type), type,
                                             load, 30, /*start_at_max=*/true);

  std::printf("# step   from-idle-floor         easing-in-a-new-link\n");
  std::printf("#        cost     util           cost     util\n");
  for (std::size_t i = 0; i < from_idle.size(); ++i) {
    std::printf("%5zu  %7.2f  %6.3f        %7.2f  %6.3f\n", i,
                from_idle[i].cost_hops, from_idle[i].utilization,
                ease_in[i].cost_hops, ease_in[i].utilization);
  }
  std::printf("\n# tail amplitude: from-idle %.2f hops, ease-in %.2f hops"
              " (bounded ~ a half-hop\n# by the movement limits — compare"
              " figure 11's unbounded D-SPF swings)\n",
              analysis::tail_amplitude(from_idle),
              analysis::tail_amplitude(ease_in));
  return 0;
}
