// Extension bench (paper section 4.5): single-path HN-SPF vs equal-cost
// multipath when traffic is dominated by large flows.
//
// "HN-SPF ... will be most effective when network traffic consists of
// several small node-to-node flows. To accomplish load-sharing when network
// traffic is dominated by several large flows would require a multi-path
// routing algorithm." We sweep the share of traffic concentrated into a few
// elephant flows and compare delivered throughput and drops.

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

traffic::TrafficMatrix elephant_matrix(const net::Topology& topo, double total,
                                       double elephant_share) {
  // Background: uniform small flows. Elephants: three coast-to-coast pairs.
  auto m = traffic::TrafficMatrix::uniform(topo.node_count(),
                                           total * (1.0 - elephant_share));
  const std::pair<const char*, const char*> pairs[] = {
      {"MIT", "UCLA"}, {"BBN", "SRI"}, {"PENTAGON", "AMES"}};
  for (const auto& [a, b] : pairs) {
    m.add(topo.node_by_name(a), topo.node_by_name(b),
          total * elephant_share / 3.0);
  }
  return m;
}

void run(double elephant_share, bool multipath) {
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.multipath = multipath;
  sim::Network net{net87.topo, cfg};
  net.add_traffic(elephant_matrix(net87.topo, 420e3, elephant_share));
  net.run_for(util::SimTime::from_sec(120));
  net.reset_stats();
  net.run_for(util::SimTime::from_sec(240));
  const auto ind = net.indicators("x");
  std::printf("  %6.0f%%   %-10s %10.1f %10.1f %10.2f %8.2f\n",
              100 * elephant_share, multipath ? "multipath" : "single",
              ind.internode_traffic_kbps, ind.round_trip_delay_ms,
              ind.packets_dropped_per_sec, ind.actual_path_hops);
}

}  // namespace

int main() {
  std::printf("# Section 4.5 extension: elephant flows, single-path vs"
              " equal-cost multipath\n");
  std::printf("# elephant  routing    del(kbps)    RTT(ms)    drops/s    hops\n");
  for (const double share : {0.0, 0.3, 0.6}) {
    run(share, false);
    run(share, true);
  }
  std::printf("\n# expected: with elephants dominating, single-path HN-SPF"
              " pins whole flows to\n# one trunk (drops rise); multipath"
              " spreads them over equal-cost paths.\n");
  return 0;
}
