// Figure 5: "Absolute Bounds" — the revised metric (absolute routing units)
// as a function of utilization for the four heterogeneous line types the
// paper plots: 9.6 terrestrial, 9.6 satellite, 56 terrestrial, 56 satellite.
//
// Paper anchors visible in the output:
//   * a fully utilized 9.6 line reports ~210 = 7x an idle 56 line (30),
//     versus ~127x under the delay metric;
//   * an idle 56 satellite (60) undercuts an idle 9.6 terrestrial (~75);
//   * satellite and terrestrial twins meet at saturation.

#include <cstdio>
#include <vector>

#include "src/core/hn_metric.h"
#include "src/net/line_type.h"

int main() {
  using namespace arpanet;
  const auto table = core::LineParamsTable::arpanet_defaults();

  struct Line {
    const char* label;
    net::LineType type;
  };
  const Line lines[] = {
      {"9.6-terr", net::LineType::kTerrestrial9_6},
      {"9.6-sat", net::LineType::kSatellite9_6},
      {"56-terr", net::LineType::kTerrestrial56},
      {"56-sat", net::LineType::kSatellite56},
      {"112-mt", net::LineType::kMultiTrunk112},
      {"230-terr", net::LineType::kTerrestrial230},
  };

  std::printf("# Figure 5: HN-SPF absolute bounds per line type\n");
  std::printf("# util ");
  std::vector<core::HnMetric> metrics;
  for (const Line& l : lines) {
    const auto& info = net::info(l.type);
    metrics.emplace_back(table.for_type(l.type), info.rate,
                         info.default_prop_delay);
    std::printf(" %9s", l.label);
  }
  std::printf("   (routing units)\n");

  for (int i = 0; i <= 20; ++i) {
    const double u = static_cast<double>(i) / 20.0;
    std::printf("%5.2f ", u);
    for (const core::HnMetric& m : metrics) {
      std::printf(" %9.1f", m.equilibrium_cost(u));
    }
    std::printf("\n");
  }

  std::printf("\n# bounds: ");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::printf(" %s=[%.0f,%.0f]", lines[i].label, metrics[i].min_cost(),
                metrics[i].max_cost());
  }
  std::printf("\n# saturated 9.6 / idle 56-terr(zero-prop) = %.1f (paper: ~7)\n",
              metrics[0].max_cost() / 30.0);
  return 0;
}
