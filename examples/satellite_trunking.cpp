// satellite_trunking: heterogeneous lines under the revised metric
// (section 4.4).
//
// A mainland mesh with an island site reachable by two trunks: a fast 56
// kb/s satellite line (long propagation) and a slow 9.6 kb/s terrestrial
// cable. The paper's design goals, observable here:
//   * under light load the satellite is avoided (its idle cost is twice a
//     terrestrial 56k line) — delay-sensitive routing;
//   * under heavy load the satellite carries traffic (same max cost as a
//     terrestrial line) — "satellite bandwidth is utilized when the network
//     is heavily loaded";
//   * the 9.6 line is never priced out entirely (max 7x an idle 56k hop).

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

struct Island {
  net::Topology topo;
  net::NodeId island{};
  net::NodeId gate_a{};
  net::NodeId gate_b{};
  net::LinkId sat{};    // island <- gate_a satellite 56k
  net::LinkId cable{};  // island <- gate_b terrestrial 9.6k
};

Island build() {
  Island n;
  // Mainland: a 5-node mesh.
  const auto m0 = n.topo.add_node("m0");
  const auto m1 = n.topo.add_node("m1");
  const auto m2 = n.topo.add_node("m2");
  const auto m3 = n.topo.add_node("m3");
  const auto m4 = n.topo.add_node("m4");
  n.island = n.topo.add_node("island");
  for (const auto& [a, b] : {std::pair{m0, m1}, {m1, m2}, {m2, m3}, {m3, m4},
                            {m4, m0}, {m0, m2}, {m1, m3}}) {
    n.topo.add_duplex(a, b, net::LineType::kTerrestrial56,
                      util::SimTime::from_ms(5));
  }
  n.gate_a = m0;
  n.gate_b = m2;
  n.sat = n.topo.add_duplex(n.gate_a, n.island, net::LineType::kSatellite56);
  n.cable = n.topo.add_duplex(n.gate_b, n.island, net::LineType::kTerrestrial9_6,
                              util::SimTime::from_ms(8));
  return n;
}

void run(double island_load_bps) {
  const Island isl = build();
  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  sim::Network net{isl.topo, cfg};

  traffic::TrafficMatrix m{isl.topo.node_count()};
  // Traffic between every mainland node and the island, both ways.
  const double per_pair = island_load_bps / 10.0;
  for (net::NodeId node = 0; node < 5; ++node) {
    m.set(node, isl.island, per_pair);
    m.set(isl.island, node, per_pair);
  }
  net.add_traffic(m);
  net.run_for(util::SimTime::from_sec(400));

  const std::size_t bucket =
      static_cast<std::size_t>(net.now().us() / cfg.stats_bucket.us()) - 2;
  const net::Link& sat = isl.topo.link(isl.sat);
  const net::Link& cable = isl.topo.link(isl.cable);
  const double sat_util = net.link_utilization(sat.reverse, bucket);
  const double cable_util = net.link_utilization(cable.reverse, bucket);
  const auto ind = net.indicators("HN-SPF");
  std::printf("%10.0f | %8.2f %10.2f | %10.1f | sat cost %5.0f, cable cost %5.0f\n",
              island_load_bps / 1e3, sat_util, cable_util,
              ind.round_trip_delay_ms,
              net.psn(isl.island).reported_cost(sat.reverse),
              net.psn(isl.island).reported_cost(cable.reverse));
}

}  // namespace

int main() {
  std::printf("Island site with a 56 kb/s satellite trunk and a 9.6 kb/s"
              " cable, HN-SPF.\n\n");
  std::printf("load(kbps) | sat-util cable-util |    RTT(ms) | island's reported costs\n");
  for (const double load : {4e3, 10e3, 20e3, 35e3, 50e3}) {
    run(load);
  }
  std::printf("\nAt light load the cheap-delay path wins; as load grows the"
              " metric pulls the\nsatellite into service (its cost cap equals"
              " the terrestrial one) while the\n9.6 cable keeps a share"
              " instead of being priced out.\n");
  return 0;
}
