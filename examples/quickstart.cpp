// Quickstart: build a small network, run it under the revised metric, print
// what happened.
//
// This is the five-minute tour of the public API:
//   1. describe a topology (PSNs + trunks with line types),
//   2. wrap it in a sim::Network configured with a routing metric,
//   3. offer traffic from a matrix,
//   4. run, and read the Table-1-style indicators.
//
// This walks the low-level layers on purpose. For whole experiments —
// validated configs, parallel parameter sweeps, CSV/JSON output — start
// from exp::Experiment instead (see examples/arpanet_study.cpp and
// docs/experiments.md).

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

int main() {
  using namespace arpanet;

  // A two-region network: the paper's figure-1 shape. Two 56 kb/s trunks
  // (A and B) carry all inter-region traffic.
  net::builders::TwoRegionNet two = net::builders::two_region(6);

  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;  // the revised metric
  sim::Network network{two.topo, cfg};

  // Offer 60 kb/s of uniform traffic — more than one trunk's capacity, so
  // the A/B split matters.
  network.add_traffic(
      traffic::TrafficMatrix::uniform(two.topo.node_count(), 60e3));

  network.run_for(util::SimTime::from_sec(120));  // warm up
  network.reset_stats();
  network.run_for(util::SimTime::from_sec(300));  // measure

  const stats::NetworkIndicators ind = network.indicators("HN-SPF");
  std::printf("quickstart: two-region network under %s\n", ind.label.c_str());
  std::printf("  delivered traffic   %8.1f kb/s\n", ind.internode_traffic_kbps);
  std::printf("  round-trip delay    %8.1f ms\n", ind.round_trip_delay_ms);
  std::printf("  mean path length    %8.2f hops (min possible %.2f)\n",
              ind.actual_path_hops, ind.minimum_path_hops);
  std::printf("  routing updates     %8.3f per trunk per second\n",
              ind.updates_per_trunk_sec);
  std::printf("  drops               %8.3f per second\n",
              ind.packets_dropped_per_sec);

  // Look at how the two inter-region trunks shared the load.
  const double ua = network.link_utilization(
      two.link_a, network.now().us() / cfg.stats_bucket.us() - 2);
  const double ub = network.link_utilization(
      two.link_b, network.now().us() / cfg.stats_bucket.us() - 2);
  std::printf("  trunk A utilization %8.1f %%\n", 100.0 * ua);
  std::printf("  trunk B utilization %8.1f %%\n", 100.0 * ub);
  return 0;
}
