// arpanet_study: the before/after measurement study, as a program.
//
// Runs the ARPANET-like network at the same peak-hour offered load under
// all three metrics — as one parallel sweep over the metric axis — and
// prints the Table-1-style indicators side by side, plus a utilization
// histogram across trunks: the "some links over-utilized while others sit
// idle" signature of D-SPF (section 3.3 point 1) shows up as mass in both
// tails.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/exp/experiment.h"
#include "src/net/builders/builders.h"
#include "src/sim/network.h"
#include "src/stats/histogram.h"

namespace {

using namespace arpanet;

void utilization_histogram(metrics::MetricKind kind, double offered) {
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.metric = kind;
  sim::Network net{net87.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::peak_hour(net87.topo.node_count(),
                                                    offered, util::Rng{0xfeed}));
  net.run_for(util::SimTime::from_sec(300));

  // Utilization of every simplex link over the last bucket.
  stats::Histogram hist{0.0, 1.0, 10};
  const std::size_t bucket =
      static_cast<std::size_t>(net.now().us() / cfg.stats_bucket.us()) - 2;
  for (const net::Link& l : net87.topo.links()) {
    hist.add(net.link_utilization(l.id, bucket));
  }
  std::printf("  %-7s |", to_string(kind));
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf(" %4lld", static_cast<long long>(hist.bins()[i]));
  }
  std::printf("   (links per 10%% utilization bin)\n");
}

}  // namespace

int main() {
  const exp::Experiment e = exp::Experiment::arpanet87();
  const double offered = 400e3;

  std::printf("ARPANET-like network, %d PSNs / %d trunks, %.0f kb/s peak-hour"
              " offered load\n\n",
              static_cast<int>(e.topology().node_count()),
              static_cast<int>(e.topology().trunk_count()), offered / 1e3);

  // The three metrics are independent cells: sweep them in parallel.
  exp::SweepSpec spec;
  spec.base = sim::ScenarioConfig{}
                  .with_load_bps(offered)
                  .with_warmup(util::SimTime::from_sec(120))
                  .with_window(util::SimTime::from_sec(300));
  spec.over_metrics({metrics::MetricKind::kMinHop, metrics::MetricKind::kDspf,
                     metrics::MetricKind::kHnSpf});
  const exp::SweepResult sweep = e.sweep(spec);

  std::vector<stats::NetworkIndicators> results;
  for (const exp::SweepRun& run : sweep.runs) {
    results.push_back(run.result.indicators);
  }

  std::printf("%-28s %12s %12s %12s\n", "Indicator", "min-hop", "D-SPF",
              "HN-SPF");
  const auto row = [&](const char* name, auto getter) {
    std::printf("%-28s %12.2f %12.2f %12.2f\n", name, getter(results[0]),
                getter(results[1]), getter(results[2]));
  };
  row("delivered traffic (kbps)",
      [](const auto& r) { return r.internode_traffic_kbps; });
  row("round-trip delay (ms)",
      [](const auto& r) { return r.round_trip_delay_ms; });
  row("drops per second",
      [](const auto& r) { return r.packets_dropped_per_sec; });
  row("actual path (hops)", [](const auto& r) { return r.actual_path_hops; });
  row("path ratio", [](const auto& r) { return r.path_ratio(); });
  row("updates per trunk/sec",
      [](const auto& r) { return r.updates_per_trunk_sec; });

  std::printf("\nTrunk utilization spread (snapshot):\n");
  for (const metrics::MetricKind kind :
       {metrics::MetricKind::kMinHop, metrics::MetricKind::kDspf,
        metrics::MetricKind::kHnSpf}) {
    utilization_histogram(kind, offered);
  }
  std::printf("\nReading: HN-SPF delivers the most traffic at the lowest"
              " delay with the\nfewest drops; its utilization histogram has"
              " the least mass in the extremes.\n");
  return 0;
}
