// debugging_trace: following a single packet through the network.
//
// Demonstrates the observability surface: the PacketTracer (per-packet
// event log), the per-link utilization series, and Graphviz export with a
// live-cost labeler — the toolkit for answering "why did my packet take
// THAT path?".

#include <cstdio>
#include <string>

#include "src/net/builders/builders.h"
#include "src/net/dot_export.h"
#include "src/sim/network.h"

int main() {
  using namespace arpanet;
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  sim::Network net{net87.topo, cfg};

  sim::PacketTracer tracer{1 << 20};
  net.attach_tracer(&tracer);

  traffic::TrafficMatrix m{net87.topo.node_count()};
  m.set(net87.mit, net87.ucla, 8e3);  // coast to coast
  net.add_traffic(m);
  net.run_for(util::SimTime::from_sec(60));

  // Pick the last delivered packet and print its life.
  std::uint64_t packet = 0;
  for (const sim::TraceEvent& e : tracer.events()) {
    if (e.kind == sim::TraceEventKind::kDelivered && e.node == net87.ucla) {
      packet = e.packet_id;
    }
  }
  std::printf("life of packet %llu (MIT -> UCLA):\n",
              static_cast<unsigned long long>(packet));
  for (const sim::TraceEvent& e : tracer.events_for(packet)) {
    std::printf("  %10.3f ms  %-20s at %-12s", e.at.ms(),
                to_string(e.kind),
                std::string(net87.topo.node_name(e.node)).c_str());
    if (e.link != net::kInvalidLink) {
      const net::Link& l = net87.topo.link(e.link);
      std::printf(" link %s->%s",
                  std::string(net87.topo.node_name(l.from)).c_str(),
                  std::string(net87.topo.node_name(l.to)).c_str());
    }
    std::printf("\n");
  }

  // Emit a cost-annotated Graphviz map of the network as MIT sees it.
  const auto& mit_costs = net.psn(net87.mit).spf().costs();
  const std::string dot = net::to_dot(net87.topo, [&](const net::Link& l) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.0f", mit_costs[l.id]);
    return std::string(buf);
  });
  std::printf("\nGraphviz map (first lines; pipe the full output of"
              " `metric_explorer\n--dot-topology=arpanet87` through dot"
              " -Tsvg for the picture):\n");
  std::printf("%s...\n", dot.substr(0, 220).c_str());
  return 0;
}
