// oscillation_demo: watch the section 3.3 failure mode happen, then watch
// the revised metric fix it.
//
// Builds the paper's figure-1 network (two regions joined by equal trunks A
// and B), overloads the inter-region corridor, and narrates what each
// metric does with it: under D-SPF the whole corridor's traffic stampedes
// between A and B every measurement period; under HN-SPF the two trunks
// share. The demo prints a small "strip chart" of trunk utilization.

#include <cstdio>
#include <string>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

std::string bar(double utilization) {
  const int width = 32;
  const int fill = std::min(width, static_cast<int>(utilization * width + 0.5));
  std::string s(static_cast<std::size_t>(fill), '#');
  s.resize(width, '.');
  return s;
}

void demo(metrics::MetricKind kind) {
  const auto two = net::builders::two_region(6);
  sim::NetworkConfig cfg;
  cfg.metric = kind;
  sim::Network net{two.topo, cfg};

  traffic::TrafficMatrix m{two.topo.node_count()};
  const double per_pair =
      95e3 / static_cast<double>(2 * two.region1.size() * two.region2.size());
  for (const net::NodeId a : two.region1) {
    for (const net::NodeId b : two.region2) {
      m.set(a, b, per_pair);
      m.set(b, a, per_pair);
    }
  }
  net.add_traffic(m);
  net.run_for(util::SimTime::from_sec(200));  // let dynamics develop
  net.reset_stats();

  std::printf("\n--- %s ---\n", to_string(kind));
  std::printf("%5s  %-32s  %-32s\n", "t(s)", "trunk A", "trunk B");
  const std::size_t first = 20;  // 200 s / 10 s buckets
  for (int i = 0; i < 20; ++i) {
    net.run_for(cfg.stats_bucket);
    const double ua = net.link_utilization(two.link_a, first + i);
    const double ub = net.link_utilization(two.link_b, first + i);
    std::printf("%5d  %s  %s\n", (i + 1) * 10, bar(ua).c_str(), bar(ub).c_str());
  }
  const auto ind = net.indicators(to_string(kind));
  std::printf("round-trip delay %.0f ms, drops %.2f/s\n",
              ind.round_trip_delay_ms, ind.packets_dropped_per_sec);
}

}  // namespace

int main() {
  std::printf("Two regions, two equal 56 kb/s trunks, 95 kb/s of inter-region"
              " traffic.\nOne trunk alone cannot carry it; the routing metric"
              " decides whether the\ntrunks alternate (oscillate) or"
              " cooperate.\n");
  demo(metrics::MetricKind::kDspf);
  demo(metrics::MetricKind::kHnSpf);
  std::printf("\nUnder D-SPF the bars flip sides every few periods — the"
              " paper's routing\noscillation. Under HN-SPF the movement limits"
              " shed only the routes with\ncheap alternates, so both trunks"
              " stay loaded and delay drops.\n");
  return 0;
}
