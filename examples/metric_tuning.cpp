// metric_tuning: tailoring the HNM parameter set to a network.
//
// "We designed the HN-SPF module so that these values would be easy to
// change, and envisioned that parameter sets would be tailored to the needs
// of individual networks" (section 4.4). This example runs the same
// overloaded network under three tunings of the 56 kb/s line-type entry:
//
//   * paper defaults      — flat to 50%, max 3 hops;
//   * early-shedding      — flat only to 25%: routes divert sooner, trading
//                           path length for queueing headroom;
//   * near-static         — flat to 90% with a low cap: the metric barely
//                           reacts, approaching min-hop behaviour.
//
// A fourth run goes beyond parameter tables: a FunctionMetricFactory
// injects a per-link hybrid (HN-SPF on terrestrial lines, a static cost on
// satellite lines, whose delay is propagation-dominated) through the same
// NetworkConfig seam the built-in metrics use.

#include <cstdio>
#include <memory>

#include "src/exp/experiment.h"
#include "src/metrics/metric_factory.h"
#include "src/metrics/minhop_metric.h"

namespace {

using namespace arpanet;

sim::ScenarioConfig base_config() {
  return sim::ScenarioConfig{}
      .with_metric(metrics::MetricKind::kHnSpf)
      .with_shape(sim::TrafficShape::kPeakHour)
      .with_load_bps(430e3)
      .with_warmup(util::SimTime::from_sec(120))
      .with_window(util::SimTime::from_sec(240))
      .with_seed(0xbeef);
}

void print_row(const sim::ScenarioResult& r) {
  const auto& ind = r.indicators;
  std::printf("  %-16s %10.1f %10.1f %9.2f %8.2f %9.3f\n", ind.label.c_str(),
              ind.internode_traffic_kbps, ind.round_trip_delay_ms,
              ind.packets_dropped_per_sec, ind.actual_path_hops,
              ind.path_ratio());
}

void run_tuning(const exp::Experiment& e, const char* label,
                const core::LineTypeParams& t56) {
  sim::NetworkConfig ncfg;
  ncfg.line_params.set(net::LineType::kTerrestrial56, t56);
  print_row(e.run(base_config().with_network(ncfg).with_label(label)));
}

void run_hybrid(const exp::Experiment& e) {
  const auto factory = std::make_shared<metrics::FunctionMetricFactory>(
      "hybrid-sat",
      [](const net::Link& link, const core::LineParamsTable& params) {
        if (link.type == net::LineType::kSatellite56) {
          // Propagation dominates a satellite hop: advertise a flat cost
          // instead of chasing queueing noise.
          return std::unique_ptr<metrics::LinkMetric>(
              std::make_unique<metrics::MinHopMetric>(2.0));
        }
        return metrics::make_metric(metrics::MetricKind::kHnSpf, link, params);
      });
  print_row(e.run(base_config().with_metric_factory(factory)));
}

}  // namespace

int main() {
  const exp::Experiment e = exp::Experiment::arpanet87();
  std::printf("HNM parameter tailoring on an overloaded (430 kb/s) network\n\n");
  std::printf("  %-16s %10s %10s %9s %8s %9s\n", "tuning", "del(kbps)",
              "RTT(ms)", "drops/s", "hops", "ratio");

  run_tuning(e, "paper-default",
             {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.50});
  run_tuning(e, "early-shedding",
             {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.25});
  run_tuning(e, "near-static",
             {.base_min = 30.0, .max_cost = 45.0, .flat_threshold = 0.90});
  run_hybrid(e);

  std::printf("\nThe default is a compromise: early shedding lengthens paths"
              " to buy delay\nheadroom; the near-static tuning keeps paths"
              " short but lets hot trunks\ncongest (watch the drop column),"
              " drifting toward min-hop behaviour.\nThe hybrid row shows the"
              " open seam: any per-link metric can be injected\nwithout"
              " touching the simulator.\n");
  return 0;
}
