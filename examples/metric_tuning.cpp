// metric_tuning: tailoring the HNM parameter set to a network.
//
// "We designed the HN-SPF module so that these values would be easy to
// change, and envisioned that parameter sets would be tailored to the needs
// of individual networks" (section 4.4). This example runs the same
// overloaded network under three tunings of the 56 kb/s line-type entry:
//
//   * paper defaults      — flat to 50%, max 3 hops;
//   * early-shedding      — flat only to 25%: routes divert sooner, trading
//                           path length for queueing headroom;
//   * near-static         — flat to 90% with a low cap: the metric barely
//                           reacts, approaching min-hop behaviour.

#include <cstdio>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace {

using namespace arpanet;

void run(const char* label, const core::LineTypeParams& t56) {
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.line_params.set(net::LineType::kTerrestrial56, t56);
  sim::Network net{net87.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::peak_hour(net87.topo.node_count(),
                                                    430e3, util::Rng{0xbeef}));
  net.run_for(util::SimTime::from_sec(120));
  net.reset_stats();
  net.run_for(util::SimTime::from_sec(240));
  const auto ind = net.indicators(label);
  std::printf("  %-16s %10.1f %10.1f %9.2f %8.2f %9.3f\n", label,
              ind.internode_traffic_kbps, ind.round_trip_delay_ms,
              ind.packets_dropped_per_sec, ind.actual_path_hops,
              ind.path_ratio());
}

}  // namespace

int main() {
  std::printf("HNM parameter tailoring on an overloaded (430 kb/s) network\n\n");
  std::printf("  %-16s %10s %10s %9s %8s %9s\n", "tuning", "del(kbps)",
              "RTT(ms)", "drops/s", "hops", "ratio");

  run("paper-default",
      {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.50});
  run("early-shedding",
      {.base_min = 30.0, .max_cost = 90.0, .flat_threshold = 0.25});
  run("near-static",
      {.base_min = 30.0, .max_cost = 45.0, .flat_threshold = 0.90});

  std::printf("\nThe default is a compromise: early shedding lengthens paths"
              " to buy delay\nheadroom; the near-static tuning keeps paths"
              " short but lets hot trunks\ncongest (watch the drop column),"
              " drifting toward min-hop behaviour.\n");
  return 0;
}
