#include "src/core/hn_metric.h"

#include <gtest/gtest.h>

#include "src/core/mm1.h"
#include "src/net/line_type.h"

namespace arpanet::core {
namespace {

using net::LineType;
using util::DataRate;
using util::SimTime;

LineTypeParams params56() {
  return LineParamsTable::arpanet_defaults().for_type(LineType::kTerrestrial56);
}

HnMetric make56(SimTime prop = SimTime::zero()) {
  return HnMetric{params56(), DataRate::kbps(56), prop};
}

/// Drives the metric with a constant utilization long enough for both the
/// averaging filter and the movement limiter to converge; returns the
/// settled cost. (No early exit: the report can plateau at a clip bound
/// while the average is still moving.)
double settle(HnMetric& m, double utilization, int periods = 200) {
  double cost = m.last_reported();
  for (int i = 0; i < periods; ++i) cost = m.update_from_utilization(utilization);
  return cost;
}

TEST(HnMetricTest, StartsAtMaxAndEasesIn) {
  HnMetric m = make56();
  // "When a link comes up it starts with its highest cost."
  EXPECT_DOUBLE_EQ(m.last_reported(), 90.0);
  // Idle traffic pulls it down by at most the down-limit (15) per period.
  const double c1 = m.update_from_utilization(0.0);
  EXPECT_DOUBLE_EQ(c1, 90.0 - params56().down_limit());
  const double c2 = m.update_from_utilization(0.0);
  EXPECT_DOUBLE_EQ(c2, c1 - params56().down_limit());
  // Eventually reaches the floor.
  EXPECT_DOUBLE_EQ(settle(m, 0.0), 30.0);
}

TEST(HnMetricTest, SettledCostsMatchEquilibriumMap) {
  for (const double u : {0.0, 0.2, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0}) {
    HnMetric m = make56();
    EXPECT_NEAR(settle(m, u), m.equilibrium_cost(u), 1e-9) << u;
  }
}

TEST(HnMetricTest, FlatUntilThreshold) {
  HnMetric m = make56();
  EXPECT_DOUBLE_EQ(m.equilibrium_cost(0.0), 30.0);
  EXPECT_DOUBLE_EQ(m.equilibrium_cost(0.49), 30.0);
  EXPECT_DOUBLE_EQ(m.equilibrium_cost(0.5), 30.0);
  EXPECT_GT(m.equilibrium_cost(0.55), 30.0);
  EXPECT_DOUBLE_EQ(m.equilibrium_cost(1.0), 90.0);
}

TEST(HnMetricTest, ReportsAlwaysWithinBounds) {
  HnMetric m = make56();
  // Adversarial utilization sequence: extremes and mid values.
  const double seq[] = {1.0, 0.0, 1.0, 1.0, 0.0, 0.3, 0.99, 0.0, 1.0, 0.5};
  for (const double u : seq) {
    const double c = m.update_from_utilization(u);
    EXPECT_GE(c, m.min_cost());
    EXPECT_LE(c, m.max_cost());
  }
}

TEST(HnMetricTest, UpMovementLimited) {
  HnMetric m = make56();
  settle(m, 0.0);  // at the floor, 30
  // Sudden saturation: raw jumps to 90 but the report may rise only by
  // up_limit (16) per period.
  const double c1 = m.update_from_utilization(1.0);
  EXPECT_LE(c1, 30.0 + params56().up_limit());
  const double c2 = m.update_from_utilization(1.0);
  EXPECT_LE(c2, c1 + params56().up_limit());
  EXPECT_GT(c2, c1);
}

TEST(HnMetricTest, AveragingFilterHalvesSampleWeight) {
  HnMetric m = make56();
  m.reset_state(30.0, 0.0);
  (void)m.update_from_utilization(1.0);
  // avg = 0.5*1.0 + 0.5*0.0.
  EXPECT_DOUBLE_EQ(m.last_average_utilization(), 0.5);
  (void)m.update_from_utilization(1.0);
  EXPECT_DOUBLE_EQ(m.last_average_utilization(), 0.75);
}

/// The epsilon-problem fix: under a sustained oscillation the reported cost
/// marches up one unit per cycle because the down-limit is one unit smaller
/// than the up-limit (section 5.4).
TEST(HnMetricTest, MarchUpUnderOscillation) {
  HnMetric m = make56();
  // Sustained alternation between saturated and idle periods: the averaged
  // utilization cycles between 2/3 and 1/3, so the raw cost swings 50 <-> 10
  // — beyond both movement limits once the report sits between them. Start
  // at the floor with the average already in its cycle.
  m.reset_state(30.0, 1.0 / 3.0);
  double before = m.last_reported();  // 30 (clipped at the floor)
  for (int cycle = 0; cycle < 3; ++cycle) {
    (void)m.update_from_utilization(1.0);                 // up, clamped at +16
    const double after = m.update_from_utilization(0.0);  // down, clamped at -15
    // Each full cycle leaves the reported cost one unit higher.
    EXPECT_NEAR(after - before, 1.0, 1e-9) << cycle;
    before = after;
  }
}

TEST(HnMetricTest, SatelliteMinIsTwiceTerrestrialButSameMax) {
  HnMetric sat{params56(), DataRate::kbps(56), SimTime::from_ms(130)};
  HnMetric terr{params56(), DataRate::kbps(56), SimTime::zero()};
  EXPECT_DOUBLE_EQ(sat.min_cost(), 60.0);
  EXPECT_DOUBLE_EQ(terr.min_cost(), 30.0);
  EXPECT_DOUBLE_EQ(sat.equilibrium_cost(1.0), terr.equilibrium_cost(1.0));
}

TEST(HnMetricTest, DelayEntryMatchesUtilizationEntry) {
  HnMetric a = make56(SimTime::from_ms(10));
  HnMetric b = make56(SimTime::from_ms(10));
  for (const double u : {0.1, 0.5, 0.8}) {
    const SimTime d =
        delay_from_utilization(u, DataRate::kbps(56), SimTime::from_ms(10));
    // Tolerance covers the microsecond quantization of SimTime.
    EXPECT_NEAR(a.update_from_delay(d), b.update_from_utilization(u), 0.01);
  }
}

TEST(HnMetricTest, OnLinkUpResetsToMax) {
  HnMetric m = make56();
  settle(m, 0.0);
  EXPECT_DOUBLE_EQ(m.last_reported(), 30.0);
  m.on_link_up();
  EXPECT_DOUBLE_EQ(m.last_reported(), 90.0);
  EXPECT_DOUBLE_EQ(m.last_average_utilization(), 1.0);
}

TEST(HnMetricTest, RejectsBadParams) {
  LineTypeParams bad = params56();
  bad.flat_threshold = 1.5;
  EXPECT_THROW((HnMetric{bad, DataRate::kbps(56), SimTime::zero()}),
               std::invalid_argument);
  bad = params56();
  bad.max_cost = bad.base_min;  // no range
  EXPECT_THROW((HnMetric{bad, DataRate::kbps(56), SimTime::zero()}),
               std::invalid_argument);
}

TEST(HnMetricTest, SampleClampedToUnitInterval) {
  HnMetric m = make56();
  m.reset_state(30.0, 0.0);
  (void)m.update_from_utilization(42.0);  // absurd input
  EXPECT_LE(m.last_average_utilization(), 1.0);
  (void)m.update_from_utilization(-3.0);
  EXPECT_GE(m.last_average_utilization(), 0.0);
}

// ---- parameterized sweep over every line type ----

class HnAllTypes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(LineTypes, HnAllTypes,
                         ::testing::Range(0, net::kLineTypeCount));

TEST_P(HnAllTypes, EquilibriumCostMonotoneAndBounded) {
  const auto type = static_cast<LineType>(GetParam());
  const auto& info = net::info(type);
  const auto params =
      LineParamsTable::arpanet_defaults().for_type(type);
  HnMetric m{params, info.rate, info.default_prop_delay};
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0 + 1e-9; u += 0.01) {
    const double c = m.equilibrium_cost(u);
    EXPECT_GE(c, m.min_cost());
    EXPECT_LE(c, m.max_cost());
    EXPECT_GE(c, prev);  // monotone non-decreasing in utilization
    prev = c;
  }
  EXPECT_DOUBLE_EQ(m.equilibrium_cost(1.0), params.max_cost);
}

TEST_P(HnAllTypes, DynamicsConvergeFromBothEnds) {
  const auto type = static_cast<LineType>(GetParam());
  const auto& info = net::info(type);
  const auto params = LineParamsTable::arpanet_defaults().for_type(type);
  for (const double u : {0.0, 0.3, 0.6, 0.9}) {
    HnMetric from_top{params, info.rate, info.default_prop_delay};
    HnMetric from_bottom{params, info.rate, info.default_prop_delay};
    from_bottom.reset_state(from_bottom.min_cost(), 0.0);
    EXPECT_NEAR(settle(from_top, u), settle(from_bottom, u), 1e-9)
        << to_string(type) << " u=" << u;
  }
}

}  // namespace
}  // namespace arpanet::core
