// The allocation-free event engine (sim/event.h, sim/event_queue.h): typed
// SimEvent dispatch, the SmallFn fallback, deterministic (time, seq)
// ordering, and the slab/freelist behind the compact heap.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/event_queue.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

TEST(SmallFnTest, InvokesInlineCallable) {
  int hits = 0;
  SmallFn fn{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, AcceptsMoveOnlyCallable) {
  auto payload = std::make_unique<int>(41);
  SmallFn fn{[p = std::move(payload)]() { ++*p; }};
  SmallFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
}

TEST(SmallFnTest, OversizedCallableFallsBackToHeap) {
  // 64 bytes of captured state exceeds kInlineBytes; the callable must
  // still work (via the heap path) and destroy its capture exactly once.
  auto guard = std::make_shared<int>(7);
  std::weak_ptr<int> watch = guard;
  {
    struct Big {
      std::shared_ptr<int> keep;
      double pad[7];
    };
    static_assert(sizeof(Big) > SmallFn::kInlineBytes);
    SmallFn fn{[big = Big{std::move(guard), {}}]() { EXPECT_EQ(*big.keep, 7); }};
    fn();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "heap-stored callable leaked its capture";
}

TEST(EventQueueTest, SimultaneousEventsPopInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = SimTime::from_ms(5);
  for (int i = 0; i < 8; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  SimTime at;
  while (!q.empty()) q.pop(at).fire();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(at, t);
}

TEST(EventQueueTest, FifoTieBreakSurvivesInterleavedPops) {
  // Popping between schedules recycles slab slots; recycled slots must not
  // perturb the (time, seq) order of events that are still pending.
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ms(1), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ms(3), [&] { order.push_back(3); });
  SimTime at;
  q.pop(at).fire();  // t=1ms; frees a slot
  q.schedule(SimTime::from_ms(3), [&] { order.push_back(33); });
  q.schedule(SimTime::from_ms(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop(at).fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 33}));
}

TEST(EventQueueTest, PeakSizeIsAHighWaterMark) {
  EventQueue q;
  EXPECT_EQ(q.peak_size(), 0u);
  for (int i = 0; i < 5; ++i) q.schedule(SimTime::from_ms(i), [] {});
  EXPECT_EQ(q.peak_size(), 5u);
  SimTime at;
  while (!q.empty()) (void)q.pop(at);
  EXPECT_EQ(q.size(), 0u);
  q.schedule(SimTime::from_ms(9), [] {});
  EXPECT_EQ(q.peak_size(), 5u) << "draining must not reset the peak";
}

TEST(EventQueueTest, PopMovesTheEventOut) {
  // A move-only capture can only work if pop() moves rather than copies.
  EventQueue q;
  auto value = std::make_unique<int>(99);
  int seen = 0;
  q.schedule(SimTime::from_ms(1), [v = std::move(value), &seen] { seen = *v; });
  SimTime at;
  SimEvent ev = q.pop(at);
  EXPECT_TRUE(q.empty());
  ev.fire();
  EXPECT_EQ(seen, 99);
}

/// Records which typed events were dispatched to it.
class RecordingSink : public EventSink {
 public:
  void handle_event(SimEvent& ev) override {
    kinds.push_back(ev.kind());
    indices.push_back(ev.index());
  }

  std::vector<SimEvent::Kind> kinds;
  std::vector<std::uint32_t> indices;
};

TEST(EventQueueTest, TypedEventsDispatchThroughTheirSink) {
  EventQueue q;
  RecordingSink sink;
  q.schedule(SimTime::from_ms(2), SimEvent::measurement_period(sink, 4));
  q.schedule(SimTime::from_ms(1), SimEvent::source_tick(sink, 7));
  q.schedule(SimTime::from_ms(3),
             SimEvent::propagation_arrival(sink, /*link=*/2, /*packet=*/5));
  SimTime at;
  while (!q.empty()) q.pop(at).fire();
  ASSERT_EQ(sink.kinds.size(), 3u);
  EXPECT_EQ(sink.kinds[0], SimEvent::Kind::kSourceTick);
  EXPECT_EQ(sink.indices[0], 7u);
  EXPECT_EQ(sink.kinds[1], SimEvent::Kind::kMeasurementPeriod);
  EXPECT_EQ(sink.indices[1], 4u);
  EXPECT_EQ(sink.kinds[2], SimEvent::Kind::kPropagationArrival);
}

TEST(EventQueueTest, TransmitCompleteCarriesItsPayload) {
  EventQueue q;
  class PayloadSink : public EventSink {
   public:
    void handle_event(SimEvent& ev) override { captured = std::move(ev); }
    SimEvent captured;
  } sink;
  q.schedule(SimTime::from_ms(1),
             SimEvent::transmit_complete(sink, /*node=*/3, /*link=*/9,
                                         /*packet=*/12,
                                         /*queue_delay=*/SimTime::from_us(70),
                                         /*tx_time=*/SimTime::from_us(800),
                                         /*is_update=*/true));
  SimTime at;
  q.pop(at).fire();
  EXPECT_EQ(sink.captured.kind(), SimEvent::Kind::kTransmitComplete);
  EXPECT_EQ(sink.captured.index(), 3u);
  EXPECT_EQ(sink.captured.link(), 9u);
  EXPECT_EQ(sink.captured.packet(), 12u);
  EXPECT_EQ(sink.captured.t1(), SimTime::from_us(70));
  EXPECT_EQ(sink.captured.t2(), SimTime::from_us(800));
  EXPECT_TRUE(sink.captured.flag());
}

TEST(EventQueueTest, MixedTimesPopInTimeOrderUnderChurn) {
  // Deterministic pseudo-random schedule/pop churn; the popped times must
  // come out nondecreasing and FIFO among ties no matter how the slab
  // recycles slots.
  EventQueue q;
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state >> 33);
  };
  // As in a real simulation, new events are scheduled at or after the
  // current time (the last popped timestamp).
  SimTime now = SimTime::zero();
  int scheduled = 0;
  for (int round = 0; round < 2000; ++round) {
    if (q.empty() || next() % 3 != 0) {
      q.schedule(now + SimTime::from_us(next() % 50), [] {});
      ++scheduled;
    } else {
      SimTime at;
      (void)q.pop(at);
      EXPECT_GE(at, now) << "time went backwards at round " << round;
      now = at;
    }
  }
  EXPECT_LE(q.peak_size(), static_cast<std::size_t>(scheduled));
}

}  // namespace
}  // namespace arpanet::sim
