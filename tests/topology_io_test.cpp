#include "src/net/topology_io.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"

namespace arpanet::net {
namespace {

TEST(TopologyIoTest, ParsesBasicTopology) {
  const Topology t = parse_topology(R"(
# two sites
node MIT
node BBN
trunk MIT BBN 56kb-terrestrial
)");
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.trunk_count(), 1u);
  EXPECT_EQ(t.link(0).type, LineType::kTerrestrial56);
  EXPECT_EQ(t.link(0).prop_delay,
            info(LineType::kTerrestrial56).default_prop_delay);
}

TEST(TopologyIoTest, ParsesPropOverrideAndComments) {
  const Topology t = parse_topology(
      "node a\nnode b   # site b\ntrunk a b 9.6kb-satellite prop_ms=140.5\n");
  EXPECT_EQ(t.link(0).prop_delay, util::SimTime::from_ms(140.5));
  EXPECT_EQ(t.link(0).type, LineType::kSatellite9_6);
}

TEST(TopologyIoTest, LineTypeNamesRoundTrip) {
  for (int i = 0; i < kLineTypeCount; ++i) {
    const LineType type = all_line_types()[i].type;
    EXPECT_EQ(line_type_from_string(to_string(type)), type);
  }
  EXPECT_THROW((void)line_type_from_string("fddi"), std::invalid_argument);
}

TEST(TopologyIoTest, ErrorsCarryLineNumbers) {
  const auto expect_error = [](std::string_view text, std::string_view what) {
    try {
      (void)parse_topology(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string_view{e.what()}.find(what), std::string_view::npos)
          << e.what();
    }
  };
  expect_error("node a\nnode a\n", "line 2");
  expect_error("nod a\n", "unknown directive");
  expect_error("node a\nnode b\ntrunk a b 56kb-terrestrial prop=3\n", "prop_ms=");
  expect_error("node a\ntrunk a b 56kb-terrestrial\n", "no node named b");
  expect_error("node a\nnode b\ntrunk a b warp-drive\n", "unknown line type");
  expect_error("node a\nnode b\ntrunk a b 56kb-terrestrial prop_ms=-1\n",
               "bad propagation");
  expect_error("node a\nnode b\ntrunk a a 56kb-terrestrial\n", "self-loop");
}

TEST(TopologyIoTest, RoundTripsArpanet87) {
  const builders::Arpanet87 original = builders::arpanet87();
  const Topology parsed =
      parse_topology(topology_to_string(original.topo));
  ASSERT_EQ(parsed.node_count(), original.topo.node_count());
  ASSERT_EQ(parsed.link_count(), original.topo.link_count());
  for (std::size_t i = 0; i < parsed.link_count(); ++i) {
    const Link& a = original.topo.link(static_cast<LinkId>(i));
    const Link& b = parsed.link(static_cast<LinkId>(i));
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.prop_delay, b.prop_delay);
    EXPECT_EQ(a.reverse, b.reverse);
  }
  for (NodeId n = 0; n < parsed.node_count(); ++n) {
    EXPECT_EQ(parsed.node_name(n), original.topo.node_name(n));
  }
}

TEST(TopologyIoTest, EmptyInputIsEmptyTopology) {
  const Topology t = parse_topology("\n# nothing here\n\n");
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_EQ(t.link_count(), 0u);
}

}  // namespace
}  // namespace arpanet::net
