#include "src/routing/spf.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/net/builders/builders.h"
#include "src/routing/routing_table.h"
#include "src/util/rng.h"

namespace arpanet::routing {
namespace {

using net::LineType;
using net::Topology;

Topology diamond() {
  // a -> b -> d and a -> c -> d.
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, LineType::kTerrestrial56);  // links 0,1
  t.add_duplex(a, c, LineType::kTerrestrial56);  // links 2,3
  t.add_duplex(b, d, LineType::kTerrestrial56);  // links 4,5
  t.add_duplex(c, d, LineType::kTerrestrial56);  // links 6,7
  return t;
}

TEST(SpfTest, ShortestPathOnDiamond) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 5.0;  // a->b expensive: route to d must go a->c->d
  const SpfTree tree = Spf::compute(t, 0, costs);
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  EXPECT_EQ(tree.first_hop[3], 2u);  // a->c
  EXPECT_EQ(tree.hops[3], 2);
}

TEST(SpfTest, RootFields) {
  const Topology t = diamond();
  const LinkCosts costs(t.link_count(), 1.0);
  const SpfTree tree = Spf::compute(t, 2, costs);
  EXPECT_EQ(tree.root, 2u);
  EXPECT_DOUBLE_EQ(tree.dist[2], 0.0);
  EXPECT_EQ(tree.parent_link[2], net::kInvalidLink);
  EXPECT_EQ(tree.hops[2], 0);
}

TEST(SpfTest, TieBreaksByLowestLinkId) {
  const Topology t = diamond();
  const LinkCosts costs(t.link_count(), 1.0);
  const SpfTree tree = Spf::compute(t, 0, costs);
  // Both a->b->d and a->c->d cost 2; canonical parent of d is the
  // lower-id in-link (b->d is link 4, c->d is link 6).
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  EXPECT_EQ(tree.parent_link[3], 4u);
  EXPECT_EQ(tree.first_hop[3], 0u);
}

TEST(SpfTest, RejectsNonPositiveCosts) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[3] = 0.0;
  EXPECT_THROW((void)Spf::compute(t, 0, costs), std::invalid_argument);
  costs[3] = -1.0;
  EXPECT_THROW((void)Spf::compute(t, 0, costs), std::invalid_argument);
}

TEST(SpfTest, RejectsWrongCostVectorSize) {
  const Topology t = diamond();
  const LinkCosts costs(3, 1.0);
  EXPECT_THROW((void)Spf::compute(t, 0, costs), std::invalid_argument);
}

TEST(SpfTest, HopsCountTreeEdges) {
  const Topology t = net::builders::ring(6);
  const LinkCosts costs(t.link_count(), 1.0);
  const SpfTree tree = Spf::compute(t, 0, costs);
  EXPECT_EQ(tree.hops[3], 3);  // opposite side of a 6-ring
  EXPECT_EQ(tree.hops[1], 1);
  EXPECT_EQ(tree.hops[5], 1);
}

TEST(SpfTest, UsesLink) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 5.0;
  const SpfTree tree = Spf::compute(t, 0, costs);
  EXPECT_TRUE(tree.uses_link(t, 2));   // a->c in tree
  EXPECT_FALSE(tree.uses_link(t, 0));  // a->b not in tree
}

// ---- incremental SPF ----

TEST(IncrementalSpfTest, SkipsIncreaseOnNonTreeLink) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 5.0;  // a->b not in tree from a
  IncrementalSpf inc{t, 0, costs};
  const long before = inc.skipped_updates();
  inc.set_cost(0, 6.0);  // increase on non-tree link: no work
  EXPECT_EQ(inc.skipped_updates(), before + 1);
  EXPECT_DOUBLE_EQ(inc.tree().dist[3], 2.0);
}

TEST(IncrementalSpfTest, AppliesDecrease) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 5.0;
  IncrementalSpf inc{t, 0, costs};
  inc.set_cost(0, 0.5);  // now a->b->d is cheaper
  EXPECT_DOUBLE_EQ(inc.tree().dist[1], 0.5);
  EXPECT_DOUBLE_EQ(inc.tree().dist[3], 1.5);
  EXPECT_EQ(inc.tree().first_hop[3], 0u);
}

TEST(IncrementalSpfTest, AppliesIncreaseOnTreeLink) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  IncrementalSpf inc{t, 0, costs};
  inc.set_cost(0, 10.0);  // a->b was (tied) in tree; push all through c
  EXPECT_DOUBLE_EQ(inc.tree().dist[1], 3.0);  // a->c->d->b
  EXPECT_DOUBLE_EQ(inc.tree().dist[3], 2.0);
  EXPECT_EQ(inc.tree().first_hop[1], 2u);
}

TEST(IncrementalSpfTest, NoopOnEqualCost) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  IncrementalSpf inc{t, 0, costs};
  inc.set_cost(0, 1.0);
  EXPECT_EQ(inc.skipped_updates(), 0);
  EXPECT_EQ(inc.incremental_updates(), 0);
}

/// Property: after any stream of random cost changes, the incremental tree
/// is identical to a full recompute — distances, parents, first hops, hops.
TEST(IncrementalSpfTest, MatchesFullRecomputeOnRandomGraphs) {
  util::Rng rng{2024};
  for (int trial = 0; trial < 20; ++trial) {
    const Topology t = net::builders::random_connected(
        16, 12, rng, LineType::kTerrestrial56);
    LinkCosts costs(t.link_count());
    for (double& c : costs) c = 1.0 + rng.uniform_index(5);
    IncrementalSpf inc{t, 0, costs};
    for (int step = 0; step < 60; ++step) {
      const auto link = static_cast<net::LinkId>(
          rng.uniform_index(t.link_count()));
      const double new_cost = 1.0 + static_cast<double>(rng.uniform_index(5));
      inc.set_cost(link, new_cost);
      costs[link] = new_cost;

      const SpfTree full = Spf::compute(t, 0, costs);
      for (net::NodeId v = 0; v < t.node_count(); ++v) {
        ASSERT_DOUBLE_EQ(inc.tree().dist[v], full.dist[v])
            << "trial " << trial << " step " << step << " node " << v;
        ASSERT_EQ(inc.tree().parent_link[v], full.parent_link[v]);
        ASSERT_EQ(inc.tree().first_hop[v], full.first_hop[v]);
        ASSERT_EQ(inc.tree().hops[v], full.hops[v]);
      }
    }
    EXPECT_GT(inc.skipped_updates() + inc.incremental_updates(), 0);
  }
}

TEST(IncrementalSpfTest, ResetReplacesAllCosts) {
  const Topology t = diamond();
  IncrementalSpf inc{t, 0, LinkCosts(t.link_count(), 1.0)};
  LinkCosts costs(t.link_count(), 2.0);
  costs[2] = 0.5;
  inc.reset(costs);
  EXPECT_EQ(inc.tree().first_hop[3], 2u);
}

// ---- min-hop lengths ----

TEST(MinHopTest, RingDistances) {
  const Topology t = net::builders::ring(8);
  const auto d = min_hop_lengths(t);
  EXPECT_EQ(d[0][4], 4);
  EXPECT_EQ(d[0][7], 1);
  EXPECT_EQ(d[3][3], 0);
  EXPECT_EQ(d[2][6], 4);
}

// ---- forwarding tables / path trace ----

TEST(ForwardingTest, TraceFollowsShortestPath) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 5.0;
  const auto tables = ForwardingTables::compute_all(t, costs);
  const PathTrace trace = trace_path(t, tables, 0, 3);
  EXPECT_TRUE(trace.reached);
  EXPECT_FALSE(trace.looped);
  EXPECT_EQ(trace.hops(), 2);
  EXPECT_EQ(trace.links[0], 2u);
}

TEST(ForwardingTest, DetectsLoopFromInconsistentTables) {
  const Topology t = diamond();
  const LinkCosts costs(t.link_count(), 1.0);
  auto tables = ForwardingTables::compute_all(t, costs);
  // Sabotage: b forwards to a for destination d, a forwards to b.
  tables.set_next_hop(0, 3, 0);  // a -> b
  tables.set_next_hop(1, 3, 1);  // b -> a (link 1 is b->a)
  const PathTrace trace = trace_path(t, tables, 0, 3);
  EXPECT_TRUE(trace.looped);
  EXPECT_FALSE(trace.reached);
}

TEST(ForwardingTest, ConsistentTablesNeverLoop) {
  util::Rng rng{555};
  const Topology t = net::builders::random_connected(12, 8, rng);
  LinkCosts costs(t.link_count());
  for (double& c : costs) c = 1.0 + rng.uniform(0.0, 3.0);
  const auto tables = ForwardingTables::compute_all(t, costs);
  for (net::NodeId s = 0; s < t.node_count(); ++s) {
    for (net::NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      const PathTrace trace = trace_path(t, tables, s, d);
      EXPECT_TRUE(trace.reached);
      EXPECT_FALSE(trace.looped);
    }
  }
}

}  // namespace
}  // namespace arpanet::routing
