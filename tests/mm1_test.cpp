#include "src/core/mm1.h"

#include <gtest/gtest.h>

#include "src/net/line_type.h"

namespace arpanet::core {
namespace {

using util::DataRate;
using util::SimTime;

TEST(Mm1Test, ServiceTimeOf56k) {
  // 600 bits / 56 kb/s = 10.714 ms — the paper's network-wide average.
  EXPECT_NEAR(mean_service_time(DataRate::kbps(56)).ms(), 10.714, 0.001);
}

TEST(Mm1Test, IdleDelayGivesZeroUtilization) {
  const auto rate = DataRate::kbps(56);
  const auto prop = SimTime::from_ms(10);
  const SimTime idle = mean_service_time(rate) + prop;
  EXPECT_DOUBLE_EQ(utilization_from_delay(idle, rate, prop), 0.0);
  // Below the floor (e.g. measurement noise) also clamps to zero.
  EXPECT_DOUBLE_EQ(utilization_from_delay(SimTime::from_ms(1), rate, prop), 0.0);
}

TEST(Mm1Test, RoundTripThroughModel) {
  const auto rate = DataRate::kbps(56);
  const auto prop = SimTime::from_ms(10);
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    const SimTime d = delay_from_utilization(rho, rate, prop);
    EXPECT_NEAR(utilization_from_delay(d, rate, prop), rho, 1e-4) << rho;
  }
}

TEST(Mm1Test, DelayGrowsWithUtilization) {
  const auto rate = DataRate::kbps(9.6);
  const auto prop = SimTime::zero();
  SimTime prev = SimTime::zero();
  for (double rho = 0.0; rho < 1.0; rho += 0.05) {
    const SimTime d = delay_from_utilization(rho, rate, prop);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Mm1Test, UtilizationClampsAtCeiling) {
  const auto rate = DataRate::kbps(56);
  const auto prop = SimTime::zero();
  // An hour of measured delay is beyond any stable queue: clamp.
  EXPECT_DOUBLE_EQ(
      utilization_from_delay(SimTime::from_sec(3600), rate, prop),
      kMaxUtilization);
  // And the forward direction clamps rho > ceiling.
  EXPECT_EQ(delay_from_utilization(5.0, rate, prop),
            delay_from_utilization(kMaxUtilization, rate, prop));
}

TEST(Mm1Test, PropagationDelayExcludedFromQueueEstimate) {
  const auto rate = DataRate::kbps(56);
  // Same system time, different propagation: same utilization estimate.
  const SimTime system = SimTime::from_ms(40);
  const double terr = utilization_from_delay(system + SimTime::from_ms(10),
                                             rate, SimTime::from_ms(10));
  const double sat = utilization_from_delay(system + SimTime::from_ms(130),
                                            rate, SimTime::from_ms(130));
  EXPECT_DOUBLE_EQ(terr, sat);
  EXPECT_GT(terr, 0.5);
}

TEST(Mm1Test, SlowerLineSaturatesAtLowerDelay) {
  // The same 100 ms measured delay implies far higher utilization on a
  // 56 kb/s line (service 10.7 ms) than it would suggest relative to a
  // 9.6 kb/s line (service 62.5 ms).
  const SimTime d = SimTime::from_ms(100);
  const double fast = utilization_from_delay(d, DataRate::kbps(56), SimTime::zero());
  const double slow = utilization_from_delay(d, DataRate::kbps(9.6), SimTime::zero());
  EXPECT_GT(fast, slow);
}

}  // namespace
}  // namespace arpanet::core
