// Property fuzz of the HNM transform (core::HnMetric): for every line type
// and a thousand random delay sequences, every reported cost must obey the
// paper's hard invariants simultaneously —
//   * clip bounds: min_cost(prop) <= cost <= max_cost (section 4.4),
//   * movement limits: consecutive reports move at most up_limit() up and
//     down_limit() down (section 4.3), and
//   * the flat region: once the averaged utilization settles below the
//     line's flat threshold, the cost settles at min_cost (section 4.2).
// The delay sequences are adversarial on purpose: mixtures of idle periods,
// random jumps, saturation bursts and link restarts.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/hn_metric.h"
#include "src/core/line_params.h"
#include "src/net/line_type.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace arpanet::core {
namespace {

using net::LineTypeInfo;
using util::Rng;
using util::SimTime;

constexpr int kSeeds = 1000;
constexpr int kPeriodsPerSeed = 48;
constexpr double kSlack = 1e-9;

/// One random measured-delay value: idle, moderate, or saturated, so that
/// the transform is exercised across the whole utilization range.
SimTime random_delay(Rng& rng, SimTime prop_delay) {
  const double roll = rng.uniform();
  if (roll < 0.3) {
    // Near-idle: delay barely above the propagation floor.
    return prop_delay + SimTime::from_us(static_cast<std::int64_t>(
                            rng.uniform(0.0, 5'000.0)));
  }
  if (roll < 0.8) {
    // Moderate queueing: up to a quarter second of delay.
    return prop_delay + SimTime::from_us(static_cast<std::int64_t>(
                            rng.uniform(0.0, 250'000.0)));
  }
  // Saturation burst: multi-second delays, far past any M/M/1 inversion.
  return SimTime::from_us(
      static_cast<std::int64_t>(rng.uniform(1e6, 20e6)));
}

TEST(HnMetricPropertyTest, RandomDelaySequencesKeepEveryInvariant) {
  const LineParamsTable table = LineParamsTable::arpanet_defaults();
  const LineTypeInfo* types = net::all_line_types();
  long reports_checked = 0;

  for (int t = 0; t < net::kLineTypeCount; ++t) {
    const LineTypeInfo& info = types[t];
    const LineTypeParams& params = table.for_type(info.type);
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng{0x5eed0000ULL + static_cast<std::uint64_t>(seed) * 8 +
              static_cast<std::uint64_t>(t)};
      HnMetric metric{params, info.rate, info.default_prop_delay};
      double previous = metric.last_reported();

      for (int period = 0; period < kPeriodsPerSeed; ++period) {
        // Occasionally restart the link: the next report starts over from
        // the maximum (section 5.4), so the movement baseline resets too.
        if (rng.bernoulli(0.02)) {
          metric.on_link_up();
          previous = metric.last_reported();
        }
        const double cost =
            metric.update_from_delay(random_delay(rng, info.default_prop_delay));
        ++reports_checked;

        // Clip bounds.
        ASSERT_GE(cost, metric.min_cost() - kSlack)
            << info.name << " seed " << seed << " period " << period;
        ASSERT_LE(cost, metric.max_cost() + kSlack)
            << info.name << " seed " << seed << " period " << period;

        // Exact per-period movement limits against the previous report.
        ASSERT_LE(cost - previous, params.up_limit() + kSlack)
            << info.name << " seed " << seed << " period " << period;
        ASSERT_LE(previous - cost, params.down_limit() + kSlack)
            << info.name << " seed " << seed << " period " << period;
        previous = cost;
      }
    }

    // Flat region: hold the line near idle until the movement limiter has
    // walked the cost all the way down; it must settle exactly at the
    // minimum and stay there.
    HnMetric metric{params, info.rate, info.default_prop_delay};
    double cost = metric.last_reported();
    for (int period = 0; period < 64; ++period) {
      cost = metric.update_from_delay(info.default_prop_delay);
    }
    EXPECT_NEAR(cost, metric.min_cost(), 1e-9) << info.name;
    EXPECT_NEAR(metric.update_from_delay(info.default_prop_delay),
                metric.min_cost(), 1e-9)
        << info.name << ": cost moved inside the flat region";

    // And the static equilibrium map agrees below the threshold.
    for (double u = 0.0; u <= params.flat_threshold; u += 0.05) {
      EXPECT_NEAR(metric.equilibrium_cost(u), metric.min_cost(), 1e-9)
          << info.name << " at utilization " << u;
    }
  }

  // 8 line types x 1000 seeds x 48 periods.
  EXPECT_EQ(reports_checked,
            static_cast<long>(net::kLineTypeCount) * kSeeds * kPeriodsPerSeed);
}

}  // namespace
}  // namespace arpanet::core
