// Partitioner contract tests (src/net/partition.h): determinism for a fixed
// (spec, seed, K), non-empty shards, an edge cut no worse than round-robin
// on the structured generator families, and hard failure on impossible
// shard counts. The sharded engine's reproducibility rests on the first
// property and its lookahead quality on the third.

#include "src/net/partition.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/builders/registry.h"
#include "src/net/graph_spec.h"
#include "src/net/topology.h"

namespace arpanet::net {
namespace {

Topology build(const GraphSpec& spec) {
  return TopologyBuilder::registry().build(spec);
}

Partition round_robin(const Topology& topo, int shards) {
  Partition part;
  part.shards = shards;
  part.shard_of.resize(topo.node_count());
  for (NodeId v = 0; v < topo.node_count(); ++v) {
    part.shard_of[v] = static_cast<std::uint32_t>(v % static_cast<NodeId>(shards));
  }
  return part;
}

std::vector<std::size_t> shard_sizes(const Partition& part) {
  std::vector<std::size_t> sizes(static_cast<std::size_t>(part.shards), 0);
  for (const std::uint32_t s : part.shard_of) ++sizes[s];
  return sizes;
}

TEST(PartitionTest, DeterministicForFixedSpecSeedAndShardCount) {
  const Topology topo = build(GraphSpec{"hier-as"}.with_nodes(300).with_seed(7));
  for (const int k : {1, 2, 4, 7}) {
    const Partition a = partition_topology(topo, k, 1987);
    const Partition b = partition_topology(topo, k, 1987);
    EXPECT_EQ(a.shard_of, b.shard_of) << "k=" << k;
  }
  // A different seed may move the regions, but stays deterministic too.
  const Partition c = partition_topology(topo, 4, 42);
  const Partition d = partition_topology(topo, 4, 42);
  EXPECT_EQ(c.shard_of, d.shard_of);
}

TEST(PartitionTest, EveryShardNonEmptyAndEveryNodeAssigned) {
  const GraphSpec specs[] = {
      GraphSpec{"hier-as"}.with_nodes(300).with_seed(7),
      GraphSpec{"waxman"}.with_nodes(120).with_seed(7),
      GraphSpec{"fat-tree"}.with_nodes(80),
      GraphSpec{"leo-grid"}.with_nodes(64),
  };
  for (const GraphSpec& spec : specs) {
    const Topology topo = build(spec);
    for (const int k : {1, 2, 4, 8}) {
      const Partition part = partition_topology(topo, k, 1987);
      ASSERT_EQ(part.shard_of.size(), topo.node_count());
      const std::vector<std::size_t> sizes = shard_sizes(part);
      for (int s = 0; s < k; ++s) {
        EXPECT_GT(sizes[static_cast<std::size_t>(s)], 0u)
            << spec.family() << " k=" << k << " shard " << s;
      }
      for (const std::uint32_t s : part.shard_of) {
        EXPECT_LT(s, static_cast<std::uint32_t>(k));
      }
    }
  }
}

TEST(PartitionTest, RegionsStayBalancedWithinCeilingCap) {
  const Topology topo = build(GraphSpec{"hier-as"}.with_nodes(300).with_seed(7));
  for (const int k : {2, 4, 8}) {
    const Partition part = partition_topology(topo, k, 1987);
    const std::size_t cap =
        (topo.node_count() + static_cast<std::size_t>(k) - 1) /
        static_cast<std::size_t>(k);
    for (const std::size_t size : shard_sizes(part)) {
      EXPECT_LE(size, cap) << "k=" << k;
    }
  }
}

TEST(PartitionTest, EdgeCutNoWorseThanRoundRobinOnStructuredFamilies) {
  const GraphSpec specs[] = {
      GraphSpec{"hier-as"}.with_nodes(300).with_seed(7),
      GraphSpec{"fat-tree"}.with_nodes(80),
  };
  for (const GraphSpec& spec : specs) {
    const Topology topo = build(spec);
    for (const int k : {2, 4}) {
      const Partition bfs = partition_topology(topo, k, 1987);
      const Partition rr = round_robin(topo, k);
      EXPECT_LE(bfs.edge_cut(topo), rr.edge_cut(topo))
          << spec.family() << " k=" << k;
    }
  }
}

TEST(PartitionTest, SingleShardCutsNothing) {
  const Topology topo = build(GraphSpec{"leo-grid"}.with_nodes(64));
  const Partition part = partition_topology(topo, 1, 1987);
  EXPECT_EQ(part.edge_cut(topo), 0u);
}

TEST(PartitionDeathTest, MoreShardsThanNodesAborts) {
  const Topology topo = build(GraphSpec{"leo-grid"}.with_nodes(64));
  EXPECT_DEATH((void)partition_topology(topo, 65, 1987), "exceed");
  EXPECT_DEATH((void)partition_topology(topo, 0, 1987), "shards");
}

}  // namespace
}  // namespace arpanet::net
