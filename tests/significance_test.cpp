#include "src/routing/significance.h"

#include <gtest/gtest.h>

namespace arpanet::routing {
namespace {

TEST(SignificanceTest, FirstCallAlwaysReports) {
  SignificanceFilter f{SignificanceFilter::fixed_config(14.0)};
  EXPECT_TRUE(f.should_report(30.0));
  EXPECT_DOUBLE_EQ(f.last_reported(), 30.0);
}

TEST(SignificanceTest, SmallChangesSuppressed) {
  SignificanceFilter f{SignificanceFilter::fixed_config(14.0)};
  (void)f.should_report(30.0);
  EXPECT_FALSE(f.should_report(35.0));
  EXPECT_FALSE(f.should_report(40.0));  // vs last *reported* (30), still < 14
  EXPECT_TRUE(f.should_report(44.0));   // 14 above 30
  EXPECT_DOUBLE_EQ(f.last_reported(), 44.0);
}

TEST(SignificanceTest, DownwardChangesAlsoCount) {
  SignificanceFilter f{SignificanceFilter::fixed_config(14.0)};
  (void)f.should_report(60.0);
  EXPECT_FALSE(f.should_report(50.0));
  EXPECT_TRUE(f.should_report(46.0));
}

/// "The maximum time between routing updates for each PSN is 50 seconds":
/// with 10 s periods, at most 5 quiet periods pass before a forced report.
TEST(SignificanceTest, ForcedReportAfterMaxQuietPeriods) {
  SignificanceFilter f{SignificanceFilter::fixed_config(1e30)};  // min-hop style
  (void)f.should_report(1.0);
  int quiet = 0;
  while (!f.should_report(1.0)) ++quiet;
  EXPECT_EQ(quiet, 4);  // reported on the 5th period
}

TEST(SignificanceTest, DspfThresholdDecaysUntilSatisfied) {
  SignificanceFilter f{SignificanceFilter::dspf_config()};  // 64, -12.8/period
  (void)f.should_report(10.0);
  // A persistent +20 change is below 64 but crosses the decaying threshold
  // (64 -> 51.2 -> 38.4 -> 25.6 -> 12.8) on the 4th quiet period's check.
  EXPECT_FALSE(f.should_report(30.0));  // threshold 64
  EXPECT_FALSE(f.should_report(30.0));  // 51.2
  EXPECT_FALSE(f.should_report(30.0));  // 38.4
  EXPECT_FALSE(f.should_report(30.0));  // 25.6
  EXPECT_TRUE(f.should_report(30.0));   // 12.8 <= 20
}

TEST(SignificanceTest, ThresholdResetsAfterReport) {
  SignificanceFilter f{SignificanceFilter::dspf_config()};
  (void)f.should_report(10.0);
  (void)f.should_report(30.0);  // decay once
  EXPECT_LT(f.working_threshold(), 64.0);
  (void)f.should_report(200.0);  // big change -> report, reset
  EXPECT_DOUBLE_EQ(f.working_threshold(), 64.0);
}

TEST(SignificanceTest, ForceReportSetsBaseline) {
  SignificanceFilter f{SignificanceFilter::fixed_config(14.0)};
  (void)f.should_report(30.0);
  f.force_report(44.0);
  EXPECT_DOUBLE_EQ(f.last_reported(), 44.0);
  EXPECT_FALSE(f.should_report(50.0));  // only 6 above the forced baseline
}

TEST(SignificanceTest, RejectsBadConfig) {
  EXPECT_THROW(SignificanceFilter(SignificanceFilter::Config{-1.0, 0.0, 5}),
               std::invalid_argument);
  EXPECT_THROW(SignificanceFilter(SignificanceFilter::Config{1.0, -0.5, 5}),
               std::invalid_argument);
  EXPECT_THROW(SignificanceFilter(SignificanceFilter::Config{1.0, 0.0, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::routing

// Simulator-level: the ablation hook must actually replace the threshold.
#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace arpanet::sim {
namespace {

TEST(SignificanceOverrideTest, ZeroThresholdReportsEveryPeriod) {
  const auto net87 = net::builders::arpanet87();
  auto run = [&](double override_value) {
    NetworkConfig cfg;
    cfg.metric = metrics::MetricKind::kHnSpf;
    cfg.significance_threshold_override = override_value;
    Network net{net87.topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::peak_hour(
        net87.topo.node_count(), 400e3, util::Rng{4}));
    net.run_for(util::SimTime::from_sec(120));
    return net.stats().updates_originated;
  };
  const long always = run(0.0);
  const long shipped = run(-1.0);
  const long starved = run(100.0);
  // Threshold 0: one update per node per period (47 nodes x 12 periods).
  EXPECT_GT(always, 47 * 10);
  EXPECT_LT(shipped, always / 2);
  EXPECT_LE(starved, shipped);
}

}  // namespace
}  // namespace arpanet::sim
