// Fixture: layer, determinism and assert violations in a util-layer file.

#pragma once

#include <cassert>
#include <cstdlib>

#include "src/sim/engine.h"

namespace fixture {

inline int roll() {
  const int r = rand();  // seed-uncontrolled RNG
  assert(r >= 0);        // raw assert instead of ARPA_CHECK
  return r;
}

}  // namespace fixture
