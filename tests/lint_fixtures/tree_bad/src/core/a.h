// Fixture: one half of a file-level include cycle.

#pragma once

#include "src/core/b.h"

namespace fixture {
inline int a_value();
}  // namespace fixture
