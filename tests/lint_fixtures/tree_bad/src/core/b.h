// Fixture: the other half of a file-level include cycle.

#pragma once

#include "src/core/a.h"

namespace fixture {
inline int b_value();
}  // namespace fixture
