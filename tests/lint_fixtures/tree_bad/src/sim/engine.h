// Fixture: every hot-path-alloc and directive violation arpalint must catch.
// ARPALINT-HOTPATH

#pragma once

#include <unordered_map>
#include <vector>

namespace fixture {

// ARPALINT-ALLOW(bogus-rule): misspelled rule names must be rejected
inline int leak_in_hot_path() {
  int* p = new int{7};  // operator new in a hot region
  std::vector<int> v;
  v.push_back(*p);  // allocating member call without an ALLOW
  delete p;
  return v.front();
}

inline int nondeterministic_sum(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> table;
  table.emplace(1, 2);
  int sum = 0;
  for (const auto& [k, v] : table) sum += k + v;  // unordered iteration
  (void)unused;
  return sum;
}

}  // namespace fixture

// ARPALINT-HOTPATH-END
