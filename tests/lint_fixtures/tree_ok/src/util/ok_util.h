// Fixture: the legal counterparts of everything tree_bad trips over —
// arpalint must stay silent on this whole tree.

#pragma once

#include <map>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// ARPALINT-HOTPATH-BEGIN
inline int hot_but_clean(std::vector<int>& scratch, void* buf) {
  // ARPALINT-ALLOW(hot-path-alloc): scratch retains capacity across calls
  scratch.push_back(1);
  int* p = new (buf) int{2};  // placement new is allocation-free
  return scratch.back() + *p;
}
// ARPALINT-HOTPATH-END

// Lookups (not iteration) on unordered containers are deterministic.
inline int lookup(const std::unordered_map<int, int>& table, int key) {
  const auto it = table.find(key);
  return it == table.end() ? -1 : it->second;
}

// Value-keyed ordered containers iterate deterministically.
inline std::map<std::string, int> make_index() { return {}; }

}  // namespace fixture
