// Fixture: a sim-layer file including an obs/ header that carries a
// util-layer override — legal only because the override lowers the
// target's rank.

#pragma once

#include "src/obs/meta.h"
#include "src/util/ok_util.h"

namespace fixture {
inline fixture::Meta tagged() { return {}; }
}  // namespace fixture
