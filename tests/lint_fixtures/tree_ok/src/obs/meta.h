// Fixture: a legitimate layer override — this file lives under obs/ but
// declares itself util-layer so lower layers may include it, and its own
// includes stay within the overridden rank.
// ARPALINT-LAYER(util): pure value type with no project includes

#pragma once

#include <cstdint>

namespace fixture {
struct Meta {
  std::uint64_t id = 0;
};
}  // namespace fixture
