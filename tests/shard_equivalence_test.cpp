// The sharded engine's headline contract: running one network at K=1 and
// K=4 produces the SAME simulation — identical per-PSN routing state,
// identical per-link reported costs, identical integer packet totals and
// stability telemetry — with faults active (a trunk flap and a mid-run
// line-type upgrade). The conservative lookahead plus the deterministic
// mailbox drain order make the parallel run a reordering of the same event
// set, not an approximation of it.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/builders/registry.h"
#include "src/net/graph_spec.h"
#include "src/net/topology.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network.h"
#include "src/traffic/traffic_matrix.h"
#include "src/util/units.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

// Everything worth comparing, in exactly-representable quantities: link
// ids, longs, and doubles that are produced by identical single operations
// (reported costs, max over movements) rather than cross-shard summation —
// summing doubles in a different order is the one place the merge may
// legitimately differ in the last ulp, so bits_delivered and the delay
// summaries stay out of the fingerprint.
struct Fingerprint {
  std::vector<net::LinkId> first_hops;  ///< per (node, dst), flattened
  std::vector<double> reported_costs;   ///< per link
  long generated = 0;
  long delivered = 0;
  long dropped_queue = 0;
  long dropped_unreachable = 0;
  long dropped_loop = 0;
  long updates_originated = 0;
  long update_packets_sent = 0;
  StabilityStats stability;
  long upgrades = 0;
};

Fingerprint run_with_shards(int shards) {
  const net::Topology topo = net::TopologyBuilder::registry().build(
      net::GraphSpec{"waxman"}.with_nodes(48).with_seed(7));

  NetworkConfig cfg;
  cfg.shards = shards;
  Network net{topo, cfg};

  const SimTime warmup = SimTime::from_sec(30);
  const SimTime window = SimTime::from_sec(60);

  FaultPlan plan;
  plan.flap_link(2, warmup + SimTime::from_sec(10), SimTime::from_sec(8));
  plan.upgrade_line(6, warmup + SimTime::from_sec(25),
                    net::LineType::kMultiTrunk112);
  net.install_faults(plan, warmup + window);

  net.add_traffic(
      traffic::TrafficMatrix::uniform(topo.node_count(), 600e3));
  net.run_for(warmup);
  net.reset_stats();
  net.run_for(window);

  // Drain: no new packets, run until every flooded update has been consumed
  // everywhere, so the routing state compared below is the settled one.
  net.stop_traffic();
  for (int i = 0; i < 30 && net.updates_in_flight() > 0; ++i) {
    net.run_for(SimTime::from_sec(5));
  }
  EXPECT_EQ(net.updates_in_flight(), 0u) << "shards=" << shards;

  Fingerprint fp;
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(topo.node_count());
       ++v) {
    const auto& hops = net.psn(v).tree().first_hop;
    fp.first_hops.insert(fp.first_hops.end(), hops.begin(), hops.end());
  }
  for (net::LinkId l = 0; l < static_cast<net::LinkId>(topo.link_count());
       ++l) {
    fp.reported_costs.push_back(net.last_reported_cost(l));
  }
  const NetworkStats& st = net.stats();
  fp.generated = st.packets_generated;
  fp.delivered = st.packets_delivered;
  fp.dropped_queue = st.packets_dropped_queue;
  fp.dropped_unreachable = st.packets_dropped_unreachable;
  fp.dropped_loop = st.packets_dropped_loop;
  fp.updates_originated = st.updates_originated;
  fp.update_packets_sent = st.update_packets_sent;
  fp.stability = net.stability();
  fp.upgrades = static_cast<long>(net.upgrades_applied().size());
  return fp;
}

TEST(ShardEquivalenceTest, FourShardsMatchSingleShardUnderFaults) {
  const Fingerprint one = run_with_shards(1);
  const Fingerprint four = run_with_shards(4);

  EXPECT_EQ(one.first_hops, four.first_hops);
  // Reported costs are produced by the same metric arithmetic on the same
  // measured periods in both runs — bitwise equality, not tolerance.
  ASSERT_EQ(one.reported_costs.size(), four.reported_costs.size());
  for (std::size_t l = 0; l < one.reported_costs.size(); ++l) {
    EXPECT_EQ(one.reported_costs[l], four.reported_costs[l]) << "link " << l;
  }

  EXPECT_GT(one.generated, 0);
  EXPECT_EQ(one.generated, four.generated);
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.dropped_queue, four.dropped_queue);
  EXPECT_EQ(one.dropped_unreachable, four.dropped_unreachable);
  EXPECT_EQ(one.dropped_loop, four.dropped_loop);
  EXPECT_GT(one.updates_originated, 0);
  EXPECT_EQ(one.updates_originated, four.updates_originated);
  EXPECT_EQ(one.update_packets_sent, four.update_packets_sent);

  EXPECT_EQ(one.stability.route_changes, four.stability.route_changes);
  EXPECT_EQ(one.stability.flat_oscillations, four.stability.flat_oscillations);
  EXPECT_EQ(one.stability.max_movement, four.stability.max_movement);
  EXPECT_EQ(one.stability.faults_applied, four.stability.faults_applied);
  EXPECT_EQ(one.stability.reconverge_sec, four.stability.reconverge_sec);
  // Both halves of the one upgraded trunk, in both runs.
  EXPECT_EQ(one.upgrades, 2);
  EXPECT_EQ(four.upgrades, 2);
}

TEST(ShardEquivalenceTest, TwoShardsMatchSingleShardUnderFaults) {
  const Fingerprint one = run_with_shards(1);
  const Fingerprint two = run_with_shards(2);
  EXPECT_EQ(one.first_hops, two.first_hops);
  EXPECT_EQ(one.generated, two.generated);
  EXPECT_EQ(one.delivered, two.delivered);
  EXPECT_EQ(one.updates_originated, two.updates_originated);
  EXPECT_EQ(one.stability.route_changes, two.stability.route_changes);
}

}  // namespace
}  // namespace arpanet::sim
