#include "src/net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/builders/builders.h"
#include "src/routing/spf.h"

namespace arpanet::net {
namespace {

TEST(TopologyTest, AddNodeAssignsDenseIds) {
  Topology t;
  EXPECT_EQ(t.add_node("a"), 0u);
  EXPECT_EQ(t.add_node("b"), 1u);
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.node_name(0), "a");
  EXPECT_EQ(t.node_by_name("b"), 1u);
}

TEST(TopologyTest, DuplicateNameThrows) {
  Topology t;
  t.add_node("a");
  EXPECT_THROW(t.add_node("a"), std::invalid_argument);
}

TEST(TopologyTest, UnknownNameThrows) {
  Topology t;
  t.add_node("a");
  EXPECT_THROW((void)t.node_by_name("zz"), std::out_of_range);
}

TEST(TopologyTest, DuplexCreatesTwoSimplexLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId fwd = t.add_duplex(a, b, LineType::kTerrestrial56);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.trunk_count(), 1u);
  const Link& f = t.link(fwd);
  const Link& r = t.link(f.reverse);
  EXPECT_EQ(f.from, a);
  EXPECT_EQ(f.to, b);
  EXPECT_EQ(r.from, b);
  EXPECT_EQ(r.to, a);
  EXPECT_EQ(r.reverse, fwd);
  EXPECT_EQ(f.rate, info(LineType::kTerrestrial56).rate);
}

TEST(TopologyTest, DefaultPropDelayFromLineType) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId sat = t.add_duplex(a, b, LineType::kSatellite56);
  EXPECT_EQ(t.link(sat).prop_delay, info(LineType::kSatellite56).default_prop_delay);
}

TEST(TopologyTest, PropDelayOverride) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId l =
      t.add_duplex(a, b, LineType::kTerrestrial56, util::SimTime::from_ms(25));
  EXPECT_EQ(t.link(l).prop_delay, util::SimTime::from_ms(25));
}

TEST(TopologyTest, SelfLoopThrows) {
  Topology t;
  const NodeId a = t.add_node("a");
  EXPECT_THROW(t.add_duplex(a, a, LineType::kTerrestrial56), std::invalid_argument);
}

TEST(TopologyTest, OutOfRangeNodeThrows) {
  Topology t;
  const NodeId a = t.add_node("a");
  EXPECT_THROW(t.add_duplex(a, 7, LineType::kTerrestrial56), std::out_of_range);
}

TEST(TopologyTest, OutLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c");
  t.add_duplex(a, b, LineType::kTerrestrial56);
  t.add_duplex(a, c, LineType::kTerrestrial56);
  EXPECT_EQ(t.out_links(a).size(), 2u);
  EXPECT_EQ(t.out_links(b).size(), 1u);
}

TEST(TopologyTest, Connectivity) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  t.add_node("c");  // isolated
  t.add_duplex(a, b, LineType::kTerrestrial56);
  EXPECT_FALSE(t.is_connected());
}

TEST(LineTypeTest, TableIsComplete) {
  for (int i = 0; i < kLineTypeCount; ++i) {
    const LineTypeInfo& ti = all_line_types()[i];
    EXPECT_EQ(static_cast<int>(ti.type), i);
    EXPECT_FALSE(to_string(ti.type).empty());
    EXPECT_GT(ti.rate.bits_per_sec(), 0.0);
  }
}

TEST(LineTypeTest, SatelliteHasLongPropagation) {
  EXPECT_GT(info(LineType::kSatellite56).default_prop_delay,
            info(LineType::kTerrestrial56).default_prop_delay * 10);
  EXPECT_TRUE(info(LineType::kSatellite9_6).satellite);
  EXPECT_FALSE(info(LineType::kMultiTrunk112).satellite);
}

// ---- builders ----

TEST(BuildersTest, TwoRegionShape) {
  const builders::TwoRegionNet net = builders::two_region(6);
  EXPECT_EQ(net.topo.node_count(), 12u);
  EXPECT_TRUE(net.topo.is_connected());
  const Link& a = net.topo.link(net.link_a);
  const Link& b = net.topo.link(net.link_b);
  // Same bandwidth and propagation delay, as figure 1 requires.
  EXPECT_EQ(a.rate, b.rate);
  EXPECT_EQ(a.prop_delay, b.prop_delay);
  // A and B are the only inter-region trunks: removing them disconnects.
  // (Checked indirectly: endpoints are in different regions.)
  EXPECT_NE(a.from, b.from);
}

TEST(BuildersTest, Arpanet87Shape) {
  const builders::Arpanet87 net = builders::arpanet87();
  EXPECT_EQ(net.topo.node_count(), 47u);
  EXPECT_EQ(net.topo.trunk_count(), 75u);
  EXPECT_TRUE(net.topo.is_connected());
  // Every node has at least two trunks (survivability).
  for (NodeId n = 0; n < net.topo.node_count(); ++n) {
    EXPECT_GE(net.topo.out_links(n).size(), 2u) << net.topo.node_name(n);
  }
  // Average degree around 3, like the real ARPANET.
  const double avg_degree =
      2.0 * static_cast<double>(net.topo.trunk_count()) /
      static_cast<double>(net.topo.node_count());
  EXPECT_GT(avg_degree, 2.5);
  EXPECT_LT(avg_degree, 3.5);
}

/// "The ARPANET topology is rich with alternate paths" (section 5.2): no
/// trunk may be a bridge — every route must have an alternate that avoids
/// any single trunk.
TEST(BuildersTest, Arpanet87HasNoBridgeTrunks) {
  const builders::Arpanet87 net = builders::arpanet87();
  const Topology& t = net.topo;
  for (std::size_t trunk = 0; trunk < t.link_count(); trunk += 2) {
    // BFS that refuses to cross either direction of this trunk.
    std::vector<bool> seen(t.node_count(), false);
    std::vector<NodeId> stack{0};
    seen[0] = true;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const LinkId l : t.out_links(n)) {
        if (l == trunk || l == trunk + 1) continue;
        const NodeId m = t.link(l).to;
        if (!seen[m]) {
          seen[m] = true;
          ++reached;
          stack.push_back(m);
        }
      }
    }
    EXPECT_EQ(reached, t.node_count())
        << "bridge trunk: " << t.node_name(t.link(trunk).from) << " - "
        << t.node_name(t.link(trunk).to);
  }
}

/// Mean minimum path length should resemble Table 1's ~3.2-4.0 hops.
TEST(BuildersTest, Arpanet87PathLengthsResembleTable1) {
  const builders::Arpanet87 net = builders::arpanet87();
  const auto d = routing::min_hop_lengths(net.topo);
  double sum = 0;
  int pairs = 0;
  int diameter = 0;
  for (NodeId s = 0; s < net.topo.node_count(); ++s) {
    for (NodeId t2 = 0; t2 < net.topo.node_count(); ++t2) {
      if (s == t2) continue;
      sum += d[s][t2];
      diameter = std::max(diameter, d[s][t2]);
      ++pairs;
    }
  }
  const double mean = sum / pairs;
  EXPECT_GT(mean, 2.8);
  EXPECT_LT(mean, 4.5);
  EXPECT_LE(diameter, 12);
}

TEST(BuildersTest, Arpanet87HasHeterogeneousTrunking) {
  const builders::Arpanet87 net = builders::arpanet87();
  int sat = 0;
  int slow = 0;
  int multi = 0;
  for (const Link& l : net.topo.links()) {
    if (info(l.type).satellite) ++sat;
    if (l.type == LineType::kTerrestrial9_6) ++slow;
    if (l.type == LineType::kMultiTrunk112) ++multi;
  }
  EXPECT_GT(sat, 0);
  EXPECT_GT(slow, 0);
  EXPECT_GT(multi, 0);
}

TEST(BuildersTest, RingAndGrid) {
  const Topology r = builders::ring(5);
  EXPECT_EQ(r.node_count(), 5u);
  EXPECT_EQ(r.trunk_count(), 5u);
  EXPECT_TRUE(r.is_connected());

  const Topology g = builders::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.trunk_count(), 17u);  // 2*w*h - w - h
  EXPECT_TRUE(g.is_connected());
}

TEST(BuildersTest, RandomConnectedIsConnectedAndDeterministic) {
  util::Rng rng1{123};
  util::Rng rng2{123};
  const Topology a = builders::random_connected(20, 10, rng1);
  const Topology b = builders::random_connected(20, 10, rng2);
  EXPECT_TRUE(a.is_connected());
  EXPECT_EQ(a.trunk_count(), b.trunk_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.link(i).from, b.link(i).from);
    EXPECT_EQ(a.link(i).to, b.link(i).to);
  }
}

}  // namespace
}  // namespace arpanet::net
