#include <gtest/gtest.h>

#include "src/core/mm1.h"
#include "src/metrics/delay_measurement.h"
#include "src/metrics/dspf_metric.h"
#include "src/metrics/hnspf_metric.h"
#include "src/metrics/metric_factory.h"
#include "src/metrics/minhop_metric.h"
#include "src/net/builders/builders.h"

namespace arpanet::metrics {
namespace {

using util::DataRate;
using util::SimTime;

// ---- D-SPF ----

TEST(DspfMetricTest, BiasMatchesPaperValues) {
  // (10.7 + 2) / 6.4 -> 2 units for 56 kb/s; (62.5 + 2) / 6.4 -> 10 for 9.6.
  EXPECT_DOUBLE_EQ(DspfMetric(DataRate::kbps(56), SimTime::zero()).bias(), 2.0);
  EXPECT_DOUBLE_EQ(DspfMetric(DataRate::kbps(9.6), SimTime::zero()).bias(), 10.0);
}

TEST(DspfMetricTest, IdleLineReportsBias) {
  DspfMetric m{DataRate::kbps(56), SimTime::zero()};
  PeriodMeasurement idle;
  idle.avg_delay = SimTime::from_ms(5);  // below the bias floor
  EXPECT_DOUBLE_EQ(m.on_period(idle), m.bias());
}

TEST(DspfMetricTest, CostIsQuantizedDelay) {
  DspfMetric m{DataRate::kbps(56), SimTime::zero()};
  PeriodMeasurement meas;
  meas.avg_delay = SimTime::from_ms(64);  // 10 units
  EXPECT_DOUBLE_EQ(m.on_period(meas), 10.0);
}

TEST(DspfMetricTest, ClipsAt254) {
  DspfMetric m{DataRate::kbps(9.6), SimTime::zero()};
  PeriodMeasurement meas;
  meas.avg_delay = SimTime::from_sec(60);
  EXPECT_DOUBLE_EQ(m.on_period(meas), 254.0);
}

/// The paper's section 3.2 range complaint: a loaded 9.6 line can look 127x
/// worse than an idle 56 line.
TEST(DspfMetricTest, RangeRatioIs127) {
  DspfMetric slow{DataRate::kbps(9.6), SimTime::zero()};
  DspfMetric fast{DataRate::kbps(56), SimTime::zero()};
  PeriodMeasurement loaded;
  loaded.avg_delay = SimTime::from_sec(10);
  EXPECT_DOUBLE_EQ(slow.on_period(loaded) / fast.bias(), 127.0);
}

TEST(DspfMetricTest, ThresholdDecays) {
  const DspfMetric m{DataRate::kbps(56), SimTime::zero()};
  EXPECT_TRUE(m.threshold_decays());
  EXPECT_GT(m.change_threshold(), 0.0);
}

// ---- min-hop ----

TEST(MinHopMetricTest, ConstantCost) {
  MinHopMetric m;
  PeriodMeasurement loaded;
  loaded.avg_delay = SimTime::from_sec(10);
  EXPECT_DOUBLE_EQ(m.on_period(loaded), 1.0);
  EXPECT_DOUBLE_EQ(m.initial_cost(), 1.0);
  EXPECT_FALSE(m.threshold_decays());
}

// ---- HN-SPF adapter ----

TEST(HnSpfMetricTest, InitialCostIsMax) {
  const auto params = core::LineParamsTable::arpanet_defaults();
  HnSpfMetric m{params.for_type(net::LineType::kTerrestrial56),
                DataRate::kbps(56), SimTime::zero()};
  EXPECT_DOUBLE_EQ(m.initial_cost(), 90.0);
}

TEST(HnSpfMetricTest, PeriodUpdateUsesMeasuredDelay) {
  const auto params = core::LineParamsTable::arpanet_defaults();
  HnSpfMetric m{params.for_type(net::LineType::kTerrestrial56),
                DataRate::kbps(56), SimTime::zero()};
  PeriodMeasurement meas;
  meas.avg_delay = core::delay_from_utilization(0.9, DataRate::kbps(56),
                                                SimTime::zero());
  double cost = 0;
  for (int i = 0; i < 50; ++i) cost = m.on_period(meas);
  EXPECT_NEAR(cost, m.hnm().equilibrium_cost(0.9), 1e-9);
}

TEST(HnSpfMetricTest, ChangeThresholdIsLittleLessThanHalfHop) {
  const auto params = core::LineParamsTable::arpanet_defaults();
  HnSpfMetric m{params.for_type(net::LineType::kTerrestrial56),
                DataRate::kbps(56), SimTime::zero()};
  EXPECT_DOUBLE_EQ(m.change_threshold(), 14.0);
  EXPECT_FALSE(m.threshold_decays());
}

// ---- factory ----

TEST(MetricFactoryTest, BuildsEachKind) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto l = t.add_duplex(a, b, net::LineType::kSatellite56);
  const auto params = core::LineParamsTable::arpanet_defaults();
  const auto& link = t.link(l);

  const auto minhop = make_metric(MetricKind::kMinHop, link, params);
  EXPECT_DOUBLE_EQ(minhop->initial_cost(), 1.0);

  const auto dspf = make_metric(MetricKind::kDspf, link, params);
  EXPECT_TRUE(dspf->threshold_decays());

  const auto hn = make_metric(MetricKind::kHnSpf, link, params);
  EXPECT_DOUBLE_EQ(hn->initial_cost(), 90.0);
}

// ---- delay measurement ----

TEST(DelayMeasurementTest, AveragesPacketDelays) {
  DelayMeasurement meas{DataRate::kbps(56), SimTime::from_ms(10)};
  // Two packets: (queue 5 + tx 10) and (queue 15 + tx 10), prop 10 added to
  // each: delays 25 and 35, average 30.
  meas.record_packet(SimTime::from_ms(5), SimTime::from_ms(10));
  meas.record_packet(SimTime::from_ms(15), SimTime::from_ms(10));
  const PeriodMeasurement m = meas.end_period(SimTime::from_sec(10));
  EXPECT_EQ(m.packets, 2);
  EXPECT_NEAR(m.avg_delay.ms(), 30.0, 0.001);
  EXPECT_NEAR(m.busy_fraction, 0.002, 1e-6);  // 20 ms busy of 10 s
}

TEST(DelayMeasurementTest, IdlePeriodReportsFloor) {
  DelayMeasurement meas{DataRate::kbps(56), SimTime::from_ms(10)};
  const PeriodMeasurement m = meas.end_period(SimTime::from_sec(10));
  EXPECT_EQ(m.packets, 0);
  // Floor = one average transmission (10.714 ms) + propagation (10 ms).
  EXPECT_NEAR(m.avg_delay.ms(), 20.714, 0.01);
  EXPECT_DOUBLE_EQ(m.busy_fraction, 0.0);
}

TEST(DelayMeasurementTest, PeriodsAreIndependent) {
  DelayMeasurement meas{DataRate::kbps(56), SimTime::zero()};
  meas.record_packet(SimTime::from_ms(100), SimTime::from_ms(10));
  (void)meas.end_period(SimTime::from_sec(10));
  // Next period is fresh.
  const PeriodMeasurement m2 = meas.end_period(SimTime::from_sec(10));
  EXPECT_EQ(m2.packets, 0);
  EXPECT_DOUBLE_EQ(m2.busy_fraction, 0.0);
}

TEST(MetricKindTest, Names) {
  EXPECT_STREQ(to_string(MetricKind::kMinHop), "min-hop");
  EXPECT_STREQ(to_string(MetricKind::kDspf), "D-SPF");
  EXPECT_STREQ(to_string(MetricKind::kHnSpf), "HN-SPF");
}

}  // namespace
}  // namespace arpanet::metrics
