// The allocation-accounting interposer (src/util/alloc_guard.h): the
// replaced operator new must count every heap allocation this thread makes,
// guards must nest independently, and reserved containers must register
// zero allocations — the property the steady-state assertion in
// stress_test.cpp builds on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/alloc_guard.h"

namespace arpanet::util {
namespace {

TEST(AllocGuardTest, CountsThisThreadsAllocationsAndBytes) {
  const AllocGuard guard;
  auto* p = new std::uint64_t{41};
  EXPECT_GE(guard.allocations(), 1u);
  EXPECT_GE(guard.bytes(), sizeof(std::uint64_t));
  delete p;
  // Frees never decrement: the counters are monotonic totals, so a scope
  // that allocates-and-frees still shows its churn.
  EXPECT_GE(guard.allocations(), 1u);
}

TEST(AllocGuardTest, GuardsNestIndependently) {
  const AllocGuard outer;
  auto first = std::make_unique<int>(1);
  const std::uint64_t outer_before_inner = outer.allocations();
  {
    const AllocGuard inner;
    auto second = std::make_unique<int>(2);
    EXPECT_GE(inner.allocations(), 1u);
    EXPECT_GE(outer.allocations(), outer_before_inner + inner.allocations());
  }
  EXPECT_GE(outer.allocations(), 2u);
}

TEST(AllocGuardTest, ReservedVectorChurnCountsZero) {
  std::vector<std::uint64_t> v;
  v.reserve(256);
  const AllocGuard guard;
  for (std::uint64_t i = 0; i < 256; ++i) v.push_back(i);
  for (int i = 0; i < 200; ++i) v.pop_back();
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(guard.allocations(), 0u)
      << "pushes within reserved capacity must not touch the allocator";
  EXPECT_EQ(guard.bytes(), 0u);
}

TEST(AllocGuardTest, LifetimeTotalsAreMonotonic) {
  const std::uint64_t before = thread_allocations();
  const std::uint64_t bytes_before = thread_alloc_bytes();
  char* p = new char[64];
  // Escape the pointer: the standard permits eliding a new/delete pair
  // whose result is unused, which would skip the counted operator.
  asm volatile("" : : "g"(p) : "memory");
  EXPECT_GT(thread_allocations(), before);
  EXPECT_GE(thread_alloc_bytes(), bytes_before + 64);
  delete[] p;
}

}  // namespace
}  // namespace arpanet::util
