// PSN-level behaviours exercised through small purpose-built networks:
// direction independence, down-link advertisement, node crash/restart,
// forwarding edge cases.

#include <gtest/gtest.h>

#include "src/analysis/convergence.h"
#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace arpanet::sim {
namespace {

using net::LineType;
using util::SimTime;

TEST(PsnTest, DirectionsAreIndependent) {
  // Load only a->b; the reverse direction must keep its idle cost.
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto ab = t.add_duplex(a, b, LineType::kTerrestrial56, SimTime::from_ms(5));
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  Network net{t, cfg};
  traffic::TrafficMatrix m{2};
  m.set(a, b, 45e3);  // ~80% of a->b only
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(300));

  const double fwd = net.psn(a).reported_cost(ab);
  const double rev = net.psn(b).reported_cost(t.link(ab).reverse);
  EXPECT_GT(fwd, 50.0);  // loaded direction shed territory
  EXPECT_LT(rev, 40.0);  // reverse stays at its floor
}

TEST(PsnTest, DownLinkAdvertisesSentinelCost) {
  const auto two = net::builders::two_region(4);
  NetworkConfig cfg;
  Network net{two.topo, cfg};
  net.run_for(SimTime::from_sec(30));
  net.set_trunk_up(two.link_a, false);
  net.run_for(SimTime::from_sec(5));  // flood
  // Every PSN's map shows the sentinel for both directions.
  const auto& link = two.topo.link(two.link_a);
  for (net::NodeId n = 0; n < two.topo.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(net.psn(n).spf().costs()[link.id], Psn::kDownLinkCost);
    EXPECT_DOUBLE_EQ(net.psn(n).spf().costs()[link.reverse], Psn::kDownLinkCost);
  }
}

TEST(PsnTest, NodeCrashIsRoutedAround) {
  // Ring of 6: node 3 crashes; 0<->2 traffic keeps flowing the short way,
  // 0->... traffic that used 3 reroutes the long way around.
  const net::Topology t = net::builders::ring(6);
  NetworkConfig cfg;
  Network net{t, cfg};
  traffic::TrafficMatrix m{6};
  m.set(0, 2, 5e3);
  m.set(2, 4, 5e3);  // 2->3->4 normally; must go 2->1->0->5->4 after crash
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  net.set_node_up(3, false);
  net.run_for(SimTime::from_sec(30));
  net.reset_stats();
  net.run_for(SimTime::from_sec(120));
  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 300);
  EXPECT_EQ(s.packets_dropped_unreachable, 0);
  // The long detour shows up in hop counts: 2->4 is now 4 hops.
  EXPECT_GT(s.path_hops.mean(), 2.5);

  // Restart: after recovery and ease-in, paths shorten again.
  net.set_node_up(3, true);
  net.run_for(SimTime::from_sec(120));
  net.reset_stats();
  net.run_for(SimTime::from_sec(120));
  EXPECT_LT(net.stats().path_hops.mean(), 2.5);
  EXPECT_TRUE(analysis::costs_converged(net));
}

TEST(PsnTest, ReportedCostQueriesValidateLink) {
  const net::Topology t = net::builders::ring(4);
  Network net{t, NetworkConfig{}};
  // Link 2 belongs to node 1, not node 0.
  EXPECT_THROW((void)net.psn(0).reported_cost(2), std::out_of_range);
}

TEST(PsnTest, MinHopNetworkStillSendsReliabilityUpdates) {
  const net::Topology t = net::builders::ring(4);
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kMinHop;
  Network net{t, cfg};
  net.run_for(SimTime::from_sec(200));
  // Static metric, no traffic: only the 50 s reliability rule fires.
  // ~4 updates per node in 200 s (first at ~50 s).
  EXPECT_GE(net.stats().updates_originated, 3 * 4);
  EXPECT_LE(net.stats().updates_originated, 5 * 4);
}

TEST(PsnTest, HopCountMatchesTraceLength) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, LineType::kTerrestrial56);
  t.add_duplex(b, c, LineType::kTerrestrial56);
  t.add_duplex(c, d, LineType::kTerrestrial56);
  Network net{t, NetworkConfig{}};
  traffic::TrafficMatrix m{4};
  m.set(a, d, 3e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  EXPECT_DOUBLE_EQ(net.stats().path_hops.mean(), 3.0);
  EXPECT_DOUBLE_EQ(net.stats().path_hops.min(), 3.0);
  EXPECT_DOUBLE_EQ(net.stats().path_hops.max(), 3.0);
}

}  // namespace
}  // namespace arpanet::sim
