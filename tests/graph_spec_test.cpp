// GraphSpec (src/net/graph_spec.h): the fluent validated builder, label
// derivation, spec-string parsing, and the ARPA_CHECK argument invariants
// the header promises (malformed specs are programming errors and abort).

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/net/graph_spec.h"

namespace arpanet::net {
namespace {

TEST(GraphSpecTest, FluentSettersAccumulate) {
  const GraphSpec spec = GraphSpec{"ba"}
                             .with_nodes(10'000)
                             .with_seed(42)
                             .with_param("m", 2);
  EXPECT_EQ(spec.family(), "ba");
  EXPECT_EQ(spec.nodes(), 10'000u);
  EXPECT_EQ(spec.seed(), 42u);
  EXPECT_TRUE(spec.has_param("m"));
  EXPECT_DOUBLE_EQ(spec.param("m", 0.0), 2.0);
}

TEST(GraphSpecTest, ParamFallbackWhenUnset) {
  const GraphSpec spec = GraphSpec{"waxman"};
  EXPECT_FALSE(spec.has_param("alpha"));
  EXPECT_DOUBLE_EQ(spec.param("alpha", 0.4), 0.4);
}

TEST(GraphSpecTest, ParamsStaySortedWhateverTheCallOrder) {
  const GraphSpec a =
      GraphSpec{"waxman"}.with_param("beta", 0.1).with_param("alpha", 0.5);
  const GraphSpec b =
      GraphSpec{"waxman"}.with_param("alpha", 0.5).with_param("beta", 0.1);
  EXPECT_EQ(a.params(), b.params());
  ASSERT_EQ(a.params().size(), 2u);
  EXPECT_EQ(a.params()[0].first, "alpha");
}

TEST(GraphSpecTest, WithParamReplacesAnExistingKey) {
  const GraphSpec spec =
      GraphSpec{"ba"}.with_param("m", 2).with_param("m", 3);
  ASSERT_EQ(spec.params().size(), 1u);
  EXPECT_DOUBLE_EQ(spec.param("m", 0.0), 3.0);
}

TEST(GraphSpecTest, LabelDerivesFromAxes) {
  const GraphSpec spec =
      GraphSpec{"ba"}.with_nodes(10'000).with_seed(42).with_param("m", 2);
  EXPECT_EQ(spec.label(), "ba-n10000-s42-m2");
}

TEST(GraphSpecTest, ExplicitLabelWins) {
  const GraphSpec spec =
      GraphSpec{"ba"}.with_nodes(64).with_label("my-graph");
  EXPECT_EQ(spec.label(), "my-graph");
}

TEST(GraphSpecTest, ParseRoundTripsTheSimSpecSyntax) {
  const GraphSpec spec = GraphSpec::parse("ba:nodes=10000,seed=7,m=2");
  EXPECT_EQ(spec.family(), "ba");
  EXPECT_EQ(spec.nodes(), 10'000u);
  EXPECT_EQ(spec.seed(), 7u);
  EXPECT_DOUBLE_EQ(spec.param("m", 0.0), 2.0);
}

TEST(GraphSpecTest, ParseBareFamilyUsesDefaults) {
  const GraphSpec spec = GraphSpec::parse("leo-grid");
  EXPECT_EQ(spec.family(), "leo-grid");
  EXPECT_EQ(spec.nodes(), 0u);  // 0 = family default
}

TEST(GraphSpecTest, ParseRejectsMalformedInputWithAnException) {
  EXPECT_THROW((void)GraphSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("ba:m"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("ba:=2"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("ba:m=abc"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("ba:nodes=-5"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("ba:seed=1.5"), std::invalid_argument);
}

TEST(GraphSpecDeathTest, EmptyFamilyAborts) {
  EXPECT_DEATH((void)GraphSpec{}.with_family(""), "family");
}

TEST(GraphSpecDeathTest, ZeroNodesAborts) {
  EXPECT_DEATH((void)GraphSpec{"ba"}.with_nodes(0), "nodes");
}

TEST(GraphSpecDeathTest, EmptyParamKeyAborts) {
  EXPECT_DEATH((void)GraphSpec{"ba"}.with_param("", 1.0), "key");
}

TEST(GraphSpecDeathTest, NonFiniteParamValueAborts) {
  EXPECT_DEATH(
      (void)GraphSpec{"ba"}.with_param("m",
                                       std::numeric_limits<double>::infinity()),
      "finite");
}

TEST(GraphSpecDeathTest, EmptyLabelAborts) {
  EXPECT_DEATH((void)GraphSpec{"ba"}.with_label(""), "label");
}

}  // namespace
}  // namespace arpanet::net
