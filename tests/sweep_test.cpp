// The sweep engine: axis expansion, deterministic per-cell seeding, and the
// acceptance property — a SweepRunner on N worker threads produces
// byte-identical CSV output to a single-threaded run of the same spec.

#include <gtest/gtest.h>

#include <set>

#include "src/exp/experiment.h"
#include "src/net/builders/builders.h"

namespace arpanet::exp {
namespace {

using metrics::MetricKind;
using sim::ScenarioConfig;
using sim::TrafficShape;
using util::SimTime;

SweepOptions threads(int n) {
  SweepOptions opts;
  opts.threads = n;
  return opts;
}

/// A small, fast base scenario on the two-region network.
ScenarioConfig fast_base() {
  return ScenarioConfig{}
      .with_shape(TrafficShape::kUniform)
      .with_load_bps(50e3)
      .with_warmup(SimTime::from_sec(15))
      .with_window(SimTime::from_sec(45));
}

TEST(SweepSpecTest, EmptyAxesFallBackToBase) {
  SweepSpec spec;
  spec.base = fast_base().with_metric(MetricKind::kDspf).with_seed(7);
  EXPECT_EQ(spec.cell_count(), 1u);

  const NamedTopology topo{"t", net::builders::ring(4)};
  const auto cells = expand_cells(spec, topo);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].metric, MetricKind::kDspf);
  EXPECT_EQ(cells[0].seed, 7u);
  EXPECT_EQ(cells[0].topology, "t");
  EXPECT_EQ(cells[0].topo, &topo.topo);
}

TEST(SweepSpecTest, ExpandsCrossProductInDeterministicOrder) {
  SweepSpec spec;
  spec.base = fast_base();
  spec.over_metrics({MetricKind::kDspf, MetricKind::kHnSpf})
      .over_loads_bps({40e3, 60e3})
      .over_seeds({1, 2, 3});
  EXPECT_EQ(spec.cell_count(), 12u);

  const NamedTopology topo{"t", net::builders::ring(4)};
  const auto cells = expand_cells(spec, topo);
  ASSERT_EQ(cells.size(), 12u);
  // Ordering: metric-major, then load, then seed; indexes are dense.
  EXPECT_EQ(cells[0].metric, MetricKind::kDspf);
  EXPECT_DOUBLE_EQ(cells[0].offered_load_bps, 40e3);
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[3].offered_load_bps, 60e3);
  EXPECT_EQ(cells[6].metric, MetricKind::kHnSpf);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(SweepSpecTest, LoadRangeIsInclusiveAndValidated) {
  SweepSpec spec;
  spec.over_load_range_bps(250e3, 550e3, 75e3);
  ASSERT_EQ(spec.loads_bps.size(), 5u);
  EXPECT_DOUBLE_EQ(spec.loads_bps.front(), 250e3);
  EXPECT_DOUBLE_EQ(spec.loads_bps.back(), 550e3);

  EXPECT_THROW((void)SweepSpec{}.over_load_range_bps(100, 50, 10),
               std::invalid_argument);
  EXPECT_THROW((void)SweepSpec{}.over_load_range_bps(0, 50, 0),
               std::invalid_argument);
  EXPECT_THROW((void)SweepSpec{}.over_loads_bps({10e3, -1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)SweepSpec{}.over_replicas(0), std::invalid_argument);
}

TEST(SweepSpecTest, ReplicasDeriveConsecutiveSeeds) {
  SweepSpec spec;
  spec.base.seed = 100;
  spec.over_replicas(3);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST(SweepSeedTest, DerivedSeedsDifferAcrossEveryAxis) {
  const std::uint64_t base =
      derive_cell_seed("t", MetricKind::kHnSpf, 400e3, TrafficShape::kPeakHour, 1);
  EXPECT_NE(base, derive_cell_seed("u", MetricKind::kHnSpf, 400e3,
                                   TrafficShape::kPeakHour, 1));
  EXPECT_NE(base, derive_cell_seed("t", MetricKind::kDspf, 400e3,
                                   TrafficShape::kPeakHour, 1));
  EXPECT_NE(base, derive_cell_seed("t", MetricKind::kHnSpf, 401e3,
                                   TrafficShape::kPeakHour, 1));
  EXPECT_NE(base, derive_cell_seed("t", MetricKind::kHnSpf, 400e3,
                                   TrafficShape::kUniform, 1));
  EXPECT_NE(base, derive_cell_seed("t", MetricKind::kHnSpf, 400e3,
                                   TrafficShape::kPeakHour, 2));
  // And it is a pure function: same axes, same stream.
  EXPECT_EQ(base, derive_cell_seed("t", MetricKind::kHnSpf, 400e3,
                                   TrafficShape::kPeakHour, 1));
}

TEST(SweepRunnerTest, ParallelCsvIsByteIdenticalToSerial) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  spec.over_metrics({MetricKind::kDspf, MetricKind::kHnSpf})
      .over_loads_bps({40e3, 70e3})
      .over_seeds({11, 22});

  const SweepResult serial = e.sweep(spec, threads(1));
  const SweepResult parallel = e.sweep(spec, threads(4));

  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(parallel.size(), 8u);
  EXPECT_EQ(serial.threads_used, 1);
  EXPECT_EQ(parallel.threads_used, 4);
  // The acceptance property: identical bytes, any thread count.
  EXPECT_EQ(serial.csv(), parallel.csv());

  // Telemetry is populated per run.
  for (const SweepRun& r : parallel.runs) {
    EXPECT_GT(r.result.events_processed, 0u);
    EXPECT_GT(r.result.wall_seconds, 0.0);
    EXPECT_GE(r.worker, 0);
    EXPECT_LT(r.worker, 4);
  }
  EXPECT_GT(parallel.total_events(), 0u);
  EXPECT_GT(parallel.elapsed_seconds, 0.0);
}

TEST(SweepRunnerTest, SweepCellMatchesEquivalentSingleRun) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  spec.over_metrics({MetricKind::kHnSpf}).over_loads_bps({60e3});

  const SweepResult sweep = e.sweep(spec, threads(2));
  ASSERT_EQ(sweep.size(), 1u);
  const auto single = e.run(sweep.at(0).cell.to_config(spec.base));

  // Same derived config => bit-identical simulation outcome.
  EXPECT_EQ(single.stats.packets_generated,
            sweep.at(0).result.stats.packets_generated);
  EXPECT_EQ(single.stats.packets_delivered,
            sweep.at(0).result.stats.packets_delivered);
  EXPECT_DOUBLE_EQ(single.indicators.round_trip_delay_ms,
                   sweep.at(0).result.indicators.round_trip_delay_ms);
  EXPECT_EQ(single.events_processed, sweep.at(0).result.events_processed);
}

TEST(SweepRunnerTest, ResultsLandInCellOrderNotCompletionOrder) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  // Mixed window lengths: later cells finish before earlier ones.
  spec.over_loads_bps({90e3, 30e3, 60e3, 45e3});

  const SweepResult r = e.sweep(spec, threads(4));
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.at(0).cell.offered_load_bps, 90e3);
  EXPECT_DOUBLE_EQ(r.at(1).cell.offered_load_bps, 30e3);
  EXPECT_DOUBLE_EQ(r.at(2).cell.offered_load_bps, 60e3);
  EXPECT_DOUBLE_EQ(r.at(3).cell.offered_load_bps, 45e3);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r.at(i).cell.index, i);
}

TEST(SweepRunnerTest, InvalidBaseConfigRethrowsOnCallingThread) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  spec.base.window = SimTime::zero();  // direct write: caught at run time
  spec.over_loads_bps({40e3, 50e3});
  EXPECT_THROW((void)e.sweep(spec, threads(2)),
               std::invalid_argument);
}

TEST(SweepRunnerTest, ProgressCallbackSeesEveryCellExactlyOnce) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  spec.over_seeds({1, 2, 3, 4, 5});

  std::set<std::size_t> seen;
  SweepOptions opts;
  opts.threads = 3;
  opts.on_run_done = [&](const SweepRun& r) { seen.insert(r.cell.index); };
  const SweepResult result = e.sweep(spec, opts);
  EXPECT_EQ(result.size(), 5u);
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepResultTest, CsvAndJsonCarryAxesAndTelemetry) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  spec.over_metrics({MetricKind::kMinHop});

  const SweepResult r = e.sweep(spec, threads(1));
  const std::string csv = r.csv();
  EXPECT_NE(csv.find("index,topology,metric"), std::string::npos);
  EXPECT_NE(csv.find("two-region,min-hop,uniform"), std::string::npos);
  // Telemetry columns only on request.
  EXPECT_EQ(csv.find("wall_sec"), std::string::npos);
  EXPECT_NE(r.csv(/*include_telemetry=*/true).find("wall_sec"),
            std::string::npos);

  std::ostringstream json;
  r.write_json(json);
  EXPECT_NE(json.str().find("\"runs\": ["), std::string::npos);
  EXPECT_NE(json.str().find("\"derived_seed\""), std::string::npos);
  EXPECT_NE(json.str().find("\"events_per_sec\""), std::string::npos);

  std::ostringstream summary;
  r.write_summary(summary);
  EXPECT_NE(summary.str().find("events/sec"), std::string::npos);
}

TEST(SweepTopologyAxisTest, SweepsAcrossNamedTopologies) {
  const Experiment e = Experiment::two_region(4);
  SweepSpec spec;
  spec.base = fast_base();
  std::vector<NamedTopology> topos;
  topos.push_back({"ring4", net::builders::ring(4)});
  topos.push_back({"grid2x3", net::builders::grid(2, 3)});
  spec.over_topologies(std::move(topos));

  const SweepResult r = e.sweep(spec, threads(2));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0).cell.topology, "ring4");
  EXPECT_EQ(r.at(1).cell.topology, "grid2x3");
  // Different topologies, different streams and different outcomes.
  EXPECT_NE(r.at(0).cell.derived_seed, r.at(1).cell.derived_seed);
}

}  // namespace
}  // namespace arpanet::exp
