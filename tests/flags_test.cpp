#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace arpanet::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags{static_cast<int>(argv.size()), argv.data()};
}

TEST(FlagsTest, ParsesValuesAndBooleans) {
  const Flags f = make({"--metric=hnspf", "--multipath", "--load-kbps=420.5"});
  EXPECT_EQ(f.get_string("metric", "x"), "hnspf");
  EXPECT_TRUE(f.get_bool("multipath"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_DOUBLE_EQ(f.get_double("load-kbps", 0), 420.5);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_string("metric", "hnspf"), "hnspf");
  EXPECT_DOUBLE_EQ(f.get_double("x", 3.5), 3.5);
  EXPECT_EQ(f.get_long("n", 7), 7);
}

TEST(FlagsTest, NumericValidation) {
  const Flags f = make({"--n=abc", "--d=1.2.3"});
  EXPECT_THROW((void)f.get_long("n", 0), std::invalid_argument);
  EXPECT_THROW((void)f.get_double("d", 0), std::invalid_argument);
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = make({"input.topo", "--verbose", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.topo");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(FlagsTest, UnknownTracksUnqueriedFlags) {
  const Flags f = make({"--known=1", "--typo=2"});
  (void)f.get_long("known", 0);
  const auto unknown = f.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, EmptyValueIsPresent) {
  const Flags f = make({"--name="});
  ASSERT_TRUE(f.get("name").has_value());
  EXPECT_EQ(*f.get("name"), "");
}

}  // namespace
}  // namespace arpanet::util
