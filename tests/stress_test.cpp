// Failure-injection and long-haul robustness sweeps. These are the "keeps
// running no matter what" tests: random trunk flaps, saturation, metric
// churn — invariants must hold throughout.

#include <gtest/gtest.h>

#include "src/analysis/convergence.h"
#include "src/net/builders/builders.h"
#include "src/sim/network.h"
#include "src/sim/scenario.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

/// Random trunk flaps while traffic flows: the network must never lose
/// conservation, never deadlock, and must converge once flapping stops.
/// Parameterized over metric kinds.
class FlapStress : public ::testing::TestWithParam<metrics::MetricKind> {};

INSTANTIATE_TEST_SUITE_P(Metrics, FlapStress,
                         ::testing::Values(metrics::MetricKind::kMinHop,
                                           metrics::MetricKind::kDspf,
                                           metrics::MetricKind::kHnSpf));

TEST_P(FlapStress, RandomTrunkFlapsNeverBreakInvariants) {
  const auto net87 = net::builders::arpanet87();
  NetworkConfig cfg;
  cfg.metric = GetParam();
  Network net{net87.topo, cfg};
  net.add_traffic(
      traffic::TrafficMatrix::peak_hour(net87.topo.node_count(), 300e3,
                                        util::Rng{7}));
  util::Rng rng{GetParam() == metrics::MetricKind::kDspf ? 21u : 22u};

  // Flap random non-critical trunks. To keep the network connected we only
  // ever have one trunk down at a time.
  net::LinkId down = net::kInvalidLink;
  for (int round = 0; round < 12; ++round) {
    net.run_for(SimTime::from_sec(15));
    if (down != net::kInvalidLink) {
      net.set_trunk_up(down, true);
      down = net::kInvalidLink;
    } else {
      const auto trunk = static_cast<net::LinkId>(
          2 * rng.uniform_index(net87.topo.trunk_count()));
      net.set_trunk_up(trunk, false);
      down = trunk;
    }
  }
  if (down != net::kInvalidLink) net.set_trunk_up(down, true);

  // Quiesce and drain.
  net.run_for(SimTime::from_sec(60));
  net.stop_traffic();
  net.run_for(SimTime::from_sec(60));

  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 10'000);
  EXPECT_EQ(s.packets_generated,
            s.packets_delivered + s.packets_dropped_queue +
                s.packets_dropped_unreachable + s.packets_dropped_loop);
  // SPF forwarding between consistent maps never loops.
  EXPECT_EQ(s.packets_dropped_loop, 0);
  // After the last recovery and a quiet minute, all PSNs agree again.
  EXPECT_TRUE(analysis::costs_converged(net));
}

TEST(StressTest, SustainedSaturationStaysLive) {
  // 3x network capacity for five simulated minutes: the simulator must stay
  // live (updates flowing, packets delivered at capacity), not wedge.
  const auto two = net::builders::two_region(4);
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.queue_capacity = 15;
  Network net{two.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(two.topo.node_count(), 600e3));
  net.run_for(SimTime::from_sec(300));
  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 50'000);
  EXPECT_GT(s.packets_dropped_queue, 10'000);
  EXPECT_GT(s.updates_originated, 50);  // control plane survived
}

// Allocation counters misbehave only as noise under sanitizers (ASan/TSan
// shadow structures and interceptors allocate through our operator new), so
// the zero assertion applies to plain optimized builds only; the counters
// themselves are still exercised everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ARPANET_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ARPANET_TEST_SANITIZED 1
#endif
#endif

TEST(StressTest, Arpanet87BatteryWindowIsAllocationFree) {
  // Mirror the bench battery's arpanet87 cell (src/obs/bench_report.cpp):
  // HN-SPF, 600 kb/s peak-hour load, 60 s warm-up, 120 s window. After
  // warm-up every pool and scratch buffer must be at its high-water mark,
  // so the guarded measurement window performs zero heap allocations.
  const auto net87 = net::builders::arpanet87();
  auto cfg = ScenarioConfig{}
                 .with_metric(metrics::MetricKind::kHnSpf)
                 .with_load_bps(600e3)
                 .with_warmup(SimTime::from_sec(60))
                 .with_window(SimTime::from_sec(120));
  const ScenarioResult r = run_scenario(net87.topo, cfg, "alloc-guard");

  // run_scenario wraps exactly the measurement window in an AllocGuard and
  // reports through the counters catalog.
  EXPECT_EQ(r.counters.alloc_guard_scopes, 1u);
#if defined(NDEBUG) && !defined(ARPANET_TEST_SANITIZED)
  EXPECT_EQ(r.counters.alloc_guard_bytes_peak, 0u)
      << "steady-state measurement window allocated on the heap; find the "
         "site with util::AllocGuard and pre-reserve it (see "
         "docs/static_analysis.md)";
#else
  // Debug/sanitized builds allocate in DCHECK plumbing and interceptors;
  // just prove the plumbing reported something sane.
  SUCCEED() << "bytes_peak=" << r.counters.alloc_guard_bytes_peak;
#endif
  EXPECT_GT(r.stats.packets_delivered, 10'000);
}

TEST(StressTest, FlapStormWindowIsAllocationFree) {
  // The fault engine under fire: a 1 Hz flap storm on one trunk running
  // through the entire arpanet87 measurement window. Fault actions are
  // first-class SimEvents and the plan is compiled and pre-sized at install
  // time, so even a storm keeps the guarded window allocation-free.
  const auto net87 = net::builders::arpanet87();
  auto cfg = ScenarioConfig{}
                 .with_metric(metrics::MetricKind::kHnSpf)
                 .with_load_bps(600e3)
                 .with_warmup(SimTime::from_sec(60))
                 .with_window(SimTime::from_sec(120))
                 .with_faults("flap:link=0,period_s=1,dwell_s=0.4");
  const ScenarioResult r = run_scenario(net87.topo, cfg, "flap-storm");

  EXPECT_EQ(r.counters.alloc_guard_scopes, 1u);
#if defined(NDEBUG) && !defined(ARPANET_TEST_SANITIZED)
  EXPECT_EQ(r.counters.alloc_guard_bytes_peak, 0u)
      << "fault injection allocated inside the measurement window; fault "
         "state must be pre-sized at install time (see docs/faults.md)";
#else
  SUCCEED() << "bytes_peak=" << r.counters.alloc_guard_bytes_peak;
#endif
  // ~120 down/up pairs land inside the window.
  EXPECT_GT(r.stability.faults_applied, 100);
  EXPECT_GT(r.stats.packets_delivered, 10'000);
}

TEST(StressTest, DelayPercentilesOrdered) {
  const auto net87 = net::builders::arpanet87();
  NetworkConfig cfg;
  Network net{net87.topo, cfg};
  net.add_traffic(
      traffic::TrafficMatrix::peak_hour(net87.topo.node_count(), 420e3,
                                        util::Rng{3}));
  net.run_for(SimTime::from_sec(180));
  const auto ind = net.indicators("x");
  EXPECT_GT(ind.delay_p50_ms, 0.0);
  EXPECT_LE(ind.delay_p50_ms, ind.delay_p95_ms);
  EXPECT_LE(ind.delay_p95_ms, ind.delay_p99_ms);
  // Mean sits between median and p99 for this right-skewed distribution.
  EXPECT_GT(ind.delay_p99_ms, ind.round_trip_delay_ms / 2.0);
}

}  // namespace
}  // namespace arpanet::sim
