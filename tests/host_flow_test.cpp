#include "src/sim/host_flow.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"

namespace arpanet::sim {
namespace {

using net::LineType;
using util::SimTime;

net::Topology two_nodes() {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, LineType::kTerrestrial56, SimTime::from_ms(10));
  return t;
}

TEST(HostFlowTest, MessagesCompleteOnCleanLink) {
  const net::Topology topo = two_nodes();
  Network net{topo, NetworkConfig{}};
  HostFlowLayer host{net, HostFlowConfig{}};
  host.add_pair(0, 1, 10e3);
  net.run_for(SimTime::from_sec(120));

  EXPECT_GT(host.messages_offered(), 100);
  // Everything offered completes (minus the handful still in flight).
  EXPECT_GE(host.messages_completed(), host.messages_offered() - 5);
  EXPECT_EQ(host.messages_abandoned(), 0);
  EXPECT_EQ(host.retransmissions(), 0);
  // Message RTT: ~4 packets serialized + propagation both ways, light load.
  EXPECT_GT(host.message_delay_ms().mean(), 40.0);
  EXPECT_LT(host.message_delay_ms().mean(), 1000.0);
  EXPECT_NEAR(host.goodput_bps(), 10e3, 2.5e3);
}

TEST(HostFlowTest, WindowThrottlesOverload) {
  // Offer 3x the link under window 1: the source is throttled rather than
  // the network flooded — the closed loop keeps queue drops near zero.
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.queue_capacity = 20;
  Network open_net{topo, cfg};
  traffic::TrafficMatrix m{2};
  m.set(0, 1, 168e3);
  open_net.add_traffic(m);  // open loop, same offered load
  open_net.run_for(SimTime::from_sec(120));

  Network closed_net{topo, cfg};
  HostFlowConfig hcfg;
  hcfg.window = 1;
  HostFlowLayer host{closed_net, hcfg};
  host.add_pair(0, 1, 168e3);
  closed_net.run_for(SimTime::from_sec(120));

  EXPECT_GT(open_net.stats().packets_dropped_queue, 5000);
  EXPECT_LT(closed_net.stats().packets_dropped_queue,
            open_net.stats().packets_dropped_queue / 50);
  // The window caps goodput near one message per RTT, far below offered.
  EXPECT_LT(host.goodput_bps(), 60e3);
  EXPECT_GT(host.goodput_bps(), 5e3);
}

TEST(HostFlowTest, LargerWindowRaisesGoodput) {
  // On a long-delay (satellite) link the window-1 scheme is RTT-bound at
  // roughly one message per round trip; window 8 approaches link capacity.
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_duplex(a, b, LineType::kSatellite56);
  auto run = [&](int window) {
    Network net{topo, NetworkConfig{}};
    HostFlowConfig hcfg;
    hcfg.window = window;
    HostFlowLayer host{net, hcfg};
    host.add_pair(0, 1, 168e3);
    net.run_for(SimTime::from_sec(120));
    return host.goodput_bps();
  };
  const double w1 = run(1);
  const double w8 = run(8);
  EXPECT_GT(w8, 2.5 * w1);
  EXPECT_LT(w1, 20e3);  // ~ message_bits / RTT
}

TEST(HostFlowTest, RecoversFromPacketLossViaRetransmission) {
  // Tiny queues + competing open-loop noise force message-packet drops;
  // the RFNM timeout must recover them.
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.queue_capacity = 8;
  Network net{topo, cfg};
  traffic::TrafficMatrix noise{2};
  noise.set(0, 1, 38e3);  // enough contention for occasional tail drops
  net.add_traffic(noise);

  HostFlowConfig hcfg;
  hcfg.rfnm_timeout = SimTime::from_sec(2);
  hcfg.mean_message_bits = 2000;  // short messages: bursts fit the queue
  HostFlowLayer host{net, hcfg};
  host.add_pair(0, 1, 2e3);
  net.run_for(SimTime::from_sec(400));

  EXPECT_GT(host.retransmissions(), 0);  // losses happened and were retried
  EXPECT_EQ(host.messages_abandoned(), 0);
  EXPECT_GT(host.messages_completed(), 0.8 * host.messages_offered() - 10);
}

TEST(HostFlowTest, RunsOverTheFullNetwork) {
  const auto net87 = net::builders::arpanet87();
  Network net{net87.topo, NetworkConfig{}};
  HostFlowLayer host{net, HostFlowConfig{}};
  host.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 150e3));
  net.run_for(SimTime::from_sec(90));
  EXPECT_GT(host.messages_completed(), 1000);
  EXPECT_EQ(host.messages_abandoned(), 0);
}

TEST(HostFlowTest, RejectsBadConfig) {
  const net::Topology topo = two_nodes();
  Network net{topo, NetworkConfig{}};
  HostFlowConfig bad;
  bad.window = 0;
  EXPECT_THROW((HostFlowLayer{net, bad}), std::invalid_argument);
  HostFlowLayer ok{net, HostFlowConfig{}};
  EXPECT_THROW(ok.add_pair(1, 1, 1e3), std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::sim
