#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/net/dot_export.h"
#include "src/sim/network.h"

namespace arpanet::sim {
namespace {

using net::LineType;
using util::SimTime;

// ---- PacketTracer unit behaviour ----

TEST(PacketTracerTest, RecordsInOrder) {
  PacketTracer tracer{16};
  tracer.record(SimTime::from_ms(1), TraceEventKind::kOriginated, 7, 0);
  tracer.record(SimTime::from_ms(2), TraceEventKind::kEnqueued, 7, 0, 3);
  tracer.record(SimTime::from_ms(3), TraceEventKind::kDelivered, 7, 1);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kOriginated);
  EXPECT_EQ(events[1].link, 3u);
  EXPECT_EQ(events[2].node, 1u);
}

TEST(PacketTracerTest, RingBufferKeepsMostRecent) {
  PacketTracer tracer{4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record(SimTime::from_us(static_cast<std::int64_t>(i)),
                  TraceEventKind::kEnqueued, i, 0);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().packet_id, 6u);
  EXPECT_EQ(events.back().packet_id, 9u);
  EXPECT_EQ(tracer.recorded_total(), 10u);
}

TEST(PacketTracerTest, FilterKeepsOnlyThatPacket) {
  PacketTracer tracer{16};
  tracer.filter_packet(5);
  tracer.record(SimTime::zero(), TraceEventKind::kEnqueued, 4, 0);
  tracer.record(SimTime::zero(), TraceEventKind::kEnqueued, 5, 0);
  EXPECT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].packet_id, 5u);
}

TEST(PacketTracerTest, KindNames) {
  EXPECT_STREQ(to_string(TraceEventKind::kDroppedQueue), "dropped-queue");
  EXPECT_STREQ(to_string(TraceEventKind::kTransmitted), "transmitted");
}

// ---- end-to-end: trace a packet across the simulator ----

TEST(PacketTracerTest, TracesAPacketHopByHop) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_duplex(a, b, LineType::kTerrestrial56);  // links 0,1
  t.add_duplex(b, c, LineType::kTerrestrial56);  // links 2,3

  NetworkConfig cfg;
  Network net{t, cfg};
  PacketTracer tracer;
  net.attach_tracer(&tracer);
  traffic::TrafficMatrix m{3};
  m.set(a, c, 2e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(20));

  // Find a delivered data packet and check its life cycle:
  // originated@a -> enqueued@a(link0) -> transmitted@a -> enqueued@b(link2)
  // -> transmitted@b -> delivered@c.
  std::uint64_t candidate = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEventKind::kDelivered && e.node == c) {
      candidate = e.packet_id;
      break;
    }
  }
  ASSERT_NE(candidate, 0u);
  const auto life = tracer.events_for(candidate);
  ASSERT_EQ(life.size(), 6u);
  EXPECT_EQ(life[0].kind, TraceEventKind::kOriginated);
  EXPECT_EQ(life[0].node, a);
  EXPECT_EQ(life[1].kind, TraceEventKind::kEnqueued);
  EXPECT_EQ(life[1].link, 0u);
  EXPECT_EQ(life[2].kind, TraceEventKind::kTransmitted);
  EXPECT_EQ(life[3].kind, TraceEventKind::kEnqueued);
  EXPECT_EQ(life[3].node, b);
  EXPECT_EQ(life[3].link, 2u);
  EXPECT_EQ(life[5].kind, TraceEventKind::kDelivered);
  EXPECT_EQ(life[5].node, c);
  // Timestamps are non-decreasing.
  for (std::size_t i = 1; i < life.size(); ++i) {
    EXPECT_GE(life[i].at, life[i - 1].at);
  }
}

// ---- dot export ----

TEST(DotExportTest, ContainsNodesEdgesAndStyles) {
  const auto net87 = net::builders::arpanet87();
  const std::string dot = net::to_dot(net87.topo);
  EXPECT_NE(dot.find("graph arpanet {"), std::string::npos);
  EXPECT_NE(dot.find("\"MIT\""), std::string::npos);
  EXPECT_NE(dot.find("\"HAWAII\" -- \"AMES\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // satellite trunks
  EXPECT_NE(dot.find("penwidth=0.5"), std::string::npos);   // 9.6 kb/s tails
  EXPECT_NE(dot.find("penwidth=2.0"), std::string::npos);   // multi-trunk
}

TEST(DotExportTest, LabelerIsApplied) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, LineType::kTerrestrial56);
  const std::string dot = net::to_dot(
      t, [](const net::Link& link) { return std::to_string(link.id) + "!"; });
  EXPECT_NE(dot.find("label=\"0!\""), std::string::npos);
}

}  // namespace
}  // namespace arpanet::sim
