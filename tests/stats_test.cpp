#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/histogram.h"
#include "src/stats/indicators.h"
#include "src/stats/summary.h"
#include "src/stats/time_series.h"

namespace arpanet::stats {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, EmptyIsSafe) {
  const Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, MergeEqualsCombined) {
  Summary a;
  Summary b;
  Summary all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamped into first bin
  h.add(100.0);  // clamped into last bin
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bins()[0], 2);
  EXPECT_EQ(h.bins()[9], 2);
}

TEST(HistogramTest, Quantile) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts{util::SimTime::from_sec(10)};
  ts.add(util::SimTime::from_sec(5), 1.0);
  ts.add(util::SimTime::from_sec(9), 2.0);
  ts.add(util::SimTime::from_sec(25), 4.0);
  EXPECT_EQ(ts.bucket_count(), 3u);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 4.0);
  EXPECT_DOUBLE_EQ(ts.bucket(99), 0.0);  // out of range reads as zero
  EXPECT_EQ(ts.bucket_start(2), util::SimTime::from_sec(20));
}

TEST(TimeSeriesTest, RejectsNegativeTimeAndZeroWidth) {
  EXPECT_THROW(TimeSeries(util::SimTime::zero()), std::invalid_argument);
  TimeSeries ts{util::SimTime::from_sec(1)};
  EXPECT_THROW(ts.add(util::SimTime::from_us(-1), 1.0), std::invalid_argument);
}

TEST(IndicatorsTest, PathRatio) {
  NetworkIndicators ind;
  ind.actual_path_hops = 4.91;
  ind.minimum_path_hops = 3.97;
  EXPECT_NEAR(ind.path_ratio(), 1.237, 0.001);
  ind.minimum_path_hops = 0.0;
  EXPECT_DOUBLE_EQ(ind.path_ratio(), 0.0);
}

TEST(IndicatorsTest, Table1PrintsAllRows) {
  NetworkIndicators before;
  before.label = "D-SPF";
  NetworkIndicators after;
  after.label = "HN-SPF";
  std::ostringstream os;
  print_table1(os, before, after);
  const std::string out = os.str();
  EXPECT_NE(out.find("Internode Traffic"), std::string::npos);
  EXPECT_NE(out.find("Round Trip Delay"), std::string::npos);
  EXPECT_NE(out.find("Path Ratio"), std::string::npos);
  EXPECT_NE(out.find("D-SPF"), std::string::npos);
  EXPECT_NE(out.find("HN-SPF"), std::string::npos);
}

}  // namespace
}  // namespace arpanet::stats
