#include <gtest/gtest.h>

#include "src/analysis/dynamic_trace.h"
#include "src/analysis/equilibrium.h"
#include "src/analysis/metric_map.h"
#include "src/analysis/response_map.h"
#include "src/analysis/shed_cost.h"
#include "src/net/builders/builders.h"

namespace arpanet::analysis {
namespace {

using metrics::MetricKind;
using net::LineType;

const core::LineParamsTable kParams = core::LineParamsTable::arpanet_defaults();

// ---- metric maps ----

TEST(MetricMapTest, HopUnits) {
  const MetricMap hn{MetricKind::kHnSpf, LineType::kTerrestrial56, kParams,
                     util::SimTime::zero()};
  const MetricMap dspf{MetricKind::kDspf, LineType::kTerrestrial56, kParams,
                       util::SimTime::zero()};
  EXPECT_DOUBLE_EQ(hn.hop_unit(), 30.0);
  EXPECT_DOUBLE_EQ(dspf.hop_unit(), 2.0);
}

TEST(MetricMapTest, NormalizedAnchors) {
  const MetricMap hn{MetricKind::kHnSpf, LineType::kTerrestrial56, kParams,
                     util::SimTime::zero()};
  EXPECT_DOUBLE_EQ(hn.normalized_cost(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hn.normalized_cost(0.5), 1.0);
  EXPECT_DOUBLE_EQ(hn.normalized_cost(1.0), 3.0);
  const MetricMap dspf{MetricKind::kDspf, LineType::kTerrestrial56, kParams,
                       util::SimTime::zero()};
  EXPECT_DOUBLE_EQ(dspf.normalized_cost(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dspf.normalized_cost(1.0), 127.0);
  const MetricMap mh{MetricKind::kMinHop, LineType::kTerrestrial56, kParams,
                     util::SimTime::zero()};
  EXPECT_DOUBLE_EQ(mh.normalized_cost(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mh.normalized_cost(1.0), 1.0);
}

TEST(MetricMapTest, DspfSteeperThanHnAtHighUtilization) {
  const MetricMap hn{MetricKind::kHnSpf, LineType::kTerrestrial56, kParams,
                     util::SimTime::zero()};
  const MetricMap dspf{MetricKind::kDspf, LineType::kTerrestrial56, kParams,
                       util::SimTime::zero()};
  EXPECT_GT(dspf.normalized_cost(0.95), 3.0 * hn.normalized_cost(0.95));
}

// ---- response map ----

struct ResponseFixture {
  net::Topology topo = net::builders::grid(4, 4);
  traffic::TrafficMatrix matrix =
      traffic::TrafficMatrix::uniform(topo.node_count(), 1e6);
  NetworkResponseMap map = NetworkResponseMap::build(topo, matrix);
};

TEST(ResponseMapTest, BaseIsOneAndMonotoneNonIncreasing) {
  const ResponseFixture f;
  // At one hop (ties in favor) the average link carries its base traffic.
  EXPECT_NEAR(f.map.traffic_fraction(1.0), 1.0, 1e-9);
  double prev = 1e9;
  for (double c = 0.8; c <= 9.0; c += 0.2) {
    const double frac = f.map.traffic_fraction(c);
    EXPECT_LE(frac, prev + 1e-9) << c;
    prev = frac;
  }
}

TEST(ResponseMapTest, HighCostShedsMostTraffic) {
  const ResponseFixture f;
  // Figure 8: "If the link reports a cost of 4, then over 90% of its base
  // traffic will be shed" — grids are less path-diverse than the ARPANET,
  // so allow a looser bound here (the fig08 bench checks the real one).
  EXPECT_LT(f.map.traffic_fraction(5.0), 0.35);
  EXPECT_LT(f.map.traffic_fraction(8.9), f.map.traffic_fraction(1.5));
}

TEST(ResponseMapTest, BelowOneHopAttractsNoExtraTraffic) {
  const ResponseFixture f;
  // Any cost in (0,1] (ties favor) yields the same routes.
  EXPECT_NEAR(f.map.traffic_fraction(0.8), f.map.traffic_fraction(1.0), 1e-9);
}

TEST(ResponseMapTest, EpsilonProblem) {
  const ResponseFixture f;
  // The paper's "epsilon problem": a tiny cost change around a tie sheds a
  // large amount of traffic. Crossing from one hop (ties favor) to just
  // above loses all tie-won routes.
  const double before = f.map.traffic_fraction(1.0);
  const double after = f.map.traffic_fraction(1.3);
  EXPECT_LT(after, 0.8 * before);
}

TEST(ResponseMapTest, RejectsBadGrid) {
  const ResponseFixture f;
  NetworkResponseMap::Config cfg;
  cfg.step = 0.0;
  EXPECT_THROW((void)NetworkResponseMap::build(f.topo, f.matrix, cfg),
               std::invalid_argument);
  cfg = NetworkResponseMap::Config{};
  cfg.max_cost = cfg.min_cost - 1;
  EXPECT_THROW((void)NetworkResponseMap::build(f.topo, f.matrix, cfg),
               std::invalid_argument);
}

TEST(ResponseMapTest, LinkTrafficAtCostMatchesManualCount) {
  // Two-node network: all 0->1 traffic uses the only link at any cost.
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, LineType::kTerrestrial56);
  traffic::TrafficMatrix m{2};
  m.set(a, b, 500.0);
  EXPECT_DOUBLE_EQ(
      NetworkResponseMap::link_traffic_at_cost(t, m, 0, 5.5), 500.0);
  EXPECT_DOUBLE_EQ(
      NetworkResponseMap::link_traffic_at_cost(t, m, 1, 0.875), 0.0);
}

// ---- shed cost ----

TEST(ShedCostTest, LongRoutesShedEasierThanShortOnes) {
  const net::builders::Arpanet87 net = net::builders::arpanet87();
  const auto matrix =
      traffic::TrafficMatrix::uniform(net.topo.node_count(), 1e6);
  const ShedCostResult r = shed_cost_study(net.topo, matrix);

  // Figure 7's shape: short routes need a high reported cost to shed; long
  // routes have only-slightly-longer alternates.
  const auto& by_len = r.by_route_length;
  ASSERT_GT(by_len.size(), 6u);
  ASSERT_GT(by_len[1].count(), 0);
  ASSERT_GT(by_len[5].count(), 0);
  EXPECT_GT(by_len[1].mean(), by_len[5].mean());
  // Section 5.2: the average link sheds everything around 4 hops, the worst
  // around 8; allow generous bands for the synthetic topology.
  EXPECT_GT(r.shed_all.mean(), 2.0);
  EXPECT_LT(r.shed_all.mean(), 6.5);
  EXPECT_LE(r.shed_all.max(), 13.0);
  EXPECT_EQ(r.unshed_routes, 0);
}

// ---- equilibrium ----

struct EquilibriumFixture {
  ResponseFixture f;
  MetricMap hn{MetricKind::kHnSpf, LineType::kTerrestrial56, kParams,
               util::SimTime::zero()};
  MetricMap dspf{MetricKind::kDspf, LineType::kTerrestrial56, kParams,
                 util::SimTime::zero()};
  MetricMap minhop{MetricKind::kMinHop, LineType::kTerrestrial56, kParams,
                   util::SimTime::zero()};
};

TEST(EquilibriumTest, FixedPointProperty) {
  const EquilibriumFixture e;
  for (const double load : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const EquilibriumPoint p =
        EquilibriumModel{e.f.map, e.hn}.equilibrium(load);
    // cost == M(u(cost)) within bisection tolerance.
    const double back = e.hn.normalized_cost(
        EquilibriumModel{e.f.map, e.hn}.utilization_at(p.cost_hops, load));
    EXPECT_NEAR(back, p.cost_hops, 1e-6) << load;
  }
}

TEST(EquilibriumTest, MinHopSaturatesAtCapacity) {
  const EquilibriumFixture e;
  const EquilibriumModel m{e.f.map, e.minhop};
  EXPECT_NEAR(m.equilibrium(0.5).utilization, 0.5, 1e-6);
  EXPECT_TRUE(m.equilibrium(1.5).oversubscribed);
  EXPECT_DOUBLE_EQ(m.equilibrium(1.5).cost_hops, 1.0);
}

TEST(EquilibriumTest, LightLoadAllMetricsAgree) {
  const EquilibriumFixture e;
  // Under light load nothing sheds: every metric sits at one hop.
  for (const MetricMap* map : {&e.hn, &e.dspf, &e.minhop}) {
    const EquilibriumPoint p = EquilibriumModel{e.f.map, *map}.equilibrium(0.3);
    EXPECT_NEAR(p.cost_hops, 1.0, 0.05);
    EXPECT_NEAR(p.utilization, 0.3, 0.05);
  }
}

/// Figure 10's ordering: under overload HN-SPF sustains higher equilibrium
/// utilization than D-SPF (and min-hop pins at 1.0 = oversubscription).
TEST(EquilibriumTest, HnSustainsMoreTrafficThanDspfUnderOverload) {
  const EquilibriumFixture e;
  for (const double load : {1.5, 2.0, 3.0}) {
    const auto hn = EquilibriumModel{e.f.map, e.hn}.equilibrium(load);
    const auto dspf = EquilibriumModel{e.f.map, e.dspf}.equilibrium(load);
    EXPECT_GT(hn.utilization, dspf.utilization) << load;
  }
}

// ---- dynamic traces ----

TEST(DynamicTraceTest, DspfDivergesFromFarStartUnderHeavyLoad) {
  const EquilibriumFixture e;
  // Start far from equilibrium at 100% offered load: unbounded oscillation
  // between extremes (figure 11).
  const auto trace = trace_dspf(e.f.map, e.dspf, 1.0, 1.0, 60);
  const double amplitude = tail_amplitude(trace);
  EXPECT_GT(amplitude, 5.0);
}

TEST(DynamicTraceTest, DspfStableUnderLightLoad) {
  const EquilibriumFixture e;
  const auto trace = trace_dspf(e.f.map, e.dspf, 0.4, 3.0, 60);
  EXPECT_LT(tail_amplitude(trace), 0.75);
}

TEST(DynamicTraceTest, HnOscillationBoundedByMovementLimits) {
  const EquilibriumFixture e;
  const auto trace = trace_hnspf(
      e.f.map, kParams.for_type(LineType::kTerrestrial56),
      LineType::kTerrestrial56, 1.0, 80, /*start_at_max=*/false);
  // Amplitude bounded by roughly one hop (up_limit+down_limit = 31 units).
  EXPECT_LT(tail_amplitude(trace), 1.2);
  // And it stays within the legal cost band.
  for (const TraceStep& s : trace) {
    EXPECT_GE(s.cost_hops, 1.0 - 1e-9);
    EXPECT_LE(s.cost_hops, 3.0 + 1e-9);
  }
}

TEST(DynamicTraceTest, HnEaseInDescendsFromMax) {
  const EquilibriumFixture e;
  const auto trace = trace_hnspf(
      e.f.map, kParams.for_type(LineType::kTerrestrial56),
      LineType::kTerrestrial56, 0.6, 30, /*start_at_max=*/true);
  EXPECT_NEAR(trace.front().cost_hops, 3.0, 1e-9);
  // Monotone-ish descent: each step moves at most down_limit (half hop).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].cost_hops, trace[i - 1].cost_hops + 1e-9);
    EXPECT_GE(trace[i].cost_hops, trace[i - 1].cost_hops - 0.5 - 1e-9);
  }
  // Utilization is pulled in gradually, not all at once.
  EXPECT_LT(trace[0].utilization, trace.back().utilization);
}

TEST(DynamicTraceTest, TailAmplitudeOfConstantTraceIsZero) {
  std::vector<TraceStep> flat(10, TraceStep{2.0, 0.5});
  EXPECT_DOUBLE_EQ(tail_amplitude(flat), 0.0);
  EXPECT_DOUBLE_EQ(tail_amplitude({}), 0.0);
}

}  // namespace
}  // namespace arpanet::analysis
