// The calendar queue (sim/event_queue.h): randomized order equivalence
// against the binary-heap semantics it replaced, resize/overflow boundary
// behavior, and the compact SimEvent union layout (sim/event.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/event_queue.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

class NullSink : public EventSink {
 public:
  void handle_event(SimEvent& ev) override { (void)ev; }
};

/// The old binary heap's exact semantics: pop the minimum (time, seq) pair,
/// FIFO among equal times. The calendar queue must reproduce this order
/// bit-for-bit.
class ReferenceHeap {
 public:
  void schedule(std::int64_t at_us, std::uint64_t payload) {
    heap_.push_back(Entry{at_us, seq_++, payload});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::pair<std::int64_t, std::uint64_t> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Entry e = heap_.back();
    heap_.pop_back();
    return {e.at_us, e.payload};
  }

 private:
  struct Entry {
    std::int64_t at_us;
    std::uint64_t seq;
    std::uint64_t payload;

    [[nodiscard]] bool operator>(const Entry& o) const {
      return at_us != o.at_us ? at_us > o.at_us : seq > o.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

struct Lcg {
  std::uint64_t state;

  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// Drives the calendar queue and the reference heap through the same
/// schedule/pop sequence and demands identical (time, payload) pop streams.
/// As in a real simulation, schedule times are >= the last popped time.
void run_equivalence(EventQueue& q, Lcg& rng, std::uint64_t rounds,
                     std::uint64_t pop_bias,
                     const std::function<std::int64_t(Lcg&)>& gap) {
  ReferenceHeap ref;
  NullSink sink;
  std::int64_t now_us = 0;
  std::uint64_t payload = 0;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (q.empty() || rng.next() % 4 >= pop_bias) {
      const std::int64_t at = now_us + gap(rng);
      ref.schedule(at, payload);
      q.schedule(SimTime::from_us(at),
                 SimEvent::host_flow_timeout(sink, /*pair_index=*/0, payload,
                                             /*generation=*/1));
      ++payload;
    } else {
      SimTime at;
      const SimEvent ev = q.pop(at);
      const auto [ref_at, ref_payload] = ref.pop();
      ASSERT_EQ(at.us(), ref_at) << "pop time diverged at round " << round;
      ASSERT_EQ(ev.id(), ref_payload)
          << "pop order diverged at round " << round;
      ASSERT_GE(at.us(), now_us);
      now_us = at.us();
    }
  }
  // Drain both completely; the tails must match too.
  while (!q.empty()) {
    SimTime at;
    const SimEvent ev = q.pop(at);
    ASSERT_FALSE(ref.empty());
    const auto [ref_at, ref_payload] = ref.pop();
    ASSERT_EQ(at.us(), ref_at);
    ASSERT_EQ(ev.id(), ref_payload);
  }
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarQueueTest, MatchesHeapOrderOnNearFutureChurn) {
  // Dense near-future gaps (the simulator's dominant distribution),
  // including zero gaps that merge into the day being drained.
  EventQueue q;
  Lcg rng{12345};
  run_equivalence(q, rng, 20000, /*pop_bias=*/1,
                  [](Lcg& r) { return static_cast<std::int64_t>(r.next() % 200); });
  EXPECT_GT(q.peak_size(), 1000u) << "churn never built a real population";
  EXPECT_GT(q.resizes(), 0u) << "growth never re-derived the geometry";
}

TEST(CalendarQueueTest, MatchesHeapOrderAcrossWideSpansAndOverflow) {
  // Mostly near-future, but every ~16th event lands minutes-to-an-hour out:
  // exercises the sorted overflow list, its migration back into the window,
  // and overflow-pressure resizes.
  EventQueue q;
  Lcg rng{99991};
  run_equivalence(q, rng, 20000, /*pop_bias=*/2, [](Lcg& r) {
    if (r.next() % 16 == 0) {
      return static_cast<std::int64_t>(r.next() % 3'600'000'000ULL);
    }
    return static_cast<std::int64_t>(r.next() % 5000);
  });
  EXPECT_GT(q.overflow_scheduled(), 0u)
      << "the wide-span workload never hit the overflow path";
}

TEST(CalendarQueueTest, MatchesHeapOrderThroughGrowAndShrinkBoundaries) {
  // Alternating build-up and drain-down phases cross the grow and shrink
  // resize triggers repeatedly; order must hold through every relink.
  EventQueue q;
  Lcg rng{777};
  for (int phase = 0; phase < 4; ++phase) {
    // pop_bias 0: schedule-only (grow); pop_bias 3: pop 3 of 4 (shrink).
    run_equivalence(q, rng, 3000, /*pop_bias=*/phase % 2 == 0 ? 0 : 3,
                    [](Lcg& r) {
                      return static_cast<std::int64_t>(r.next() % 10000);
                    });
  }
  EXPECT_GT(q.resizes(), 1u);
}

TEST(CalendarQueueTest, FifoTieBreakSurvivesAResize) {
  EventQueue q;
  NullSink sink;
  const SimTime tie = SimTime::from_ms(500);
  // Interleave the tied events with enough fill to cross the grow trigger
  // (population > 2x buckets) mid-sequence.
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.schedule(tie, SimEvent::host_flow_timeout(sink, 0, i, 1));
    for (int j = 0; j < 10; ++j) {
      q.schedule(SimTime::from_us(static_cast<std::int64_t>(i * 10 + j)),
                 SimEvent::host_flow_timeout(sink, 1, 0, 0));
    }
  }
  EXPECT_GT(q.resizes(), 0u);
  std::uint64_t expected = 0;
  SimTime at;
  while (!q.empty()) {
    const SimEvent ev = q.pop(at);
    if (at == tie) {
      EXPECT_EQ(ev.id(), expected) << "FIFO tie-break broken after resize";
      ++expected;
    }
  }
  EXPECT_EQ(expected, 100u);
}

TEST(CalendarQueueTest, SameTickFifoIsKindAgnostic) {
  // Fault actions ride the same calendar queue as every other event kind; at
  // a shared tick the pop order is the scheduling order, regardless of kind.
  // The fault engine's determinism contract (docs/faults.md) rests on this:
  // a link-down landing on a measurement tick must always dispatch in the
  // order it was scheduled.
  EventQueue q;
  NullSink sink;
  const SimTime tie = SimTime::from_ms(250);
  for (std::uint32_t i = 0; i < 90; ++i) {
    switch (i % 3) {
      case 0:
        q.schedule(tie, SimEvent::fault_action(sink, i));
        break;
      case 1:
        q.schedule(tie, SimEvent::host_flow_timeout(sink, i, i, 1));
        break;
      default:
        q.schedule(tie, SimEvent::source_tick(sink, i));
        break;
    }
    // Off-tie fill keeps the bucket array churning between tied inserts.
    q.schedule(SimTime::from_us(i), SimEvent::measurement_period(sink, 0));
  }
  std::uint32_t expected = 0;
  SimTime at;
  while (!q.empty()) {
    const SimEvent ev = q.pop(at);
    if (at != tie) continue;
    const SimEvent::Kind want = expected % 3 == 0
                                    ? SimEvent::Kind::kFaultAction
                                : expected % 3 == 1
                                    ? SimEvent::Kind::kHostFlowTimeout
                                    : SimEvent::Kind::kSourceTick;
    EXPECT_EQ(ev.kind(), want) << "kind order broken at " << expected;
    EXPECT_EQ(ev.index(), expected) << "FIFO broken across kinds";
    ++expected;
  }
  EXPECT_EQ(expected, 90u);
}

TEST(CalendarQueueTest, ReAnchorsAfterDrainingToEmpty) {
  // An idle gap (queue fully drained, next event much later) must re-anchor
  // the window instead of scanning the dead days in between.
  EventQueue q;
  NullSink sink;
  SimTime at;
  q.schedule(SimTime::from_us(10), SimEvent::host_flow_timeout(sink, 0, 1, 0));
  (void)q.pop(at);
  EXPECT_TRUE(q.empty());
  q.schedule(SimTime::from_sec(7200.0),
             SimEvent::host_flow_timeout(sink, 0, 2, 0));
  q.schedule(SimTime::from_sec(3600.0),
             SimEvent::host_flow_timeout(sink, 0, 3, 0));
  EXPECT_EQ(q.next_time(), SimTime::from_sec(3600.0));
  EXPECT_EQ(q.pop(at).id(), 3u);
  EXPECT_EQ(q.pop(at).id(), 2u);
  EXPECT_EQ(at, SimTime::from_sec(7200.0));
}

// ---------------------------------------------------------------------------
// The compact SimEvent slab slot
// ---------------------------------------------------------------------------

TEST(SimEventLayoutTest, UnionKeepsTheSlabSlotToOneCacheLine) {
  // Before the union, the SmallFn sat beside the typed payload and the slot
  // was 128 bytes; overlapping them pins the event at a single cache line —
  // a 50% cut, comfortably past the 40% the redesign promised.
  EXPECT_EQ(sizeof(SimEvent), 64u);
  constexpr std::size_t kPreUnionSize = 128;
  EXPECT_LE(sizeof(SimEvent) * 10, kPreUnionSize * 6)
      << "slab slot regressed above 60% of the pre-union layout";
  EXPECT_EQ(alignof(SimEvent), alignof(void*));
}

TEST(SimEventLayoutTest, TypedPayloadRoundTripsThroughMoves) {
  NullSink sink;
  SimEvent ev = SimEvent::transmit_complete(
      sink, /*node=*/3, /*link=*/9, /*packet=*/12,
      /*queue_delay=*/SimTime::from_us(70), /*tx_time=*/SimTime::from_us(800),
      /*is_update=*/true);
  SimEvent moved = std::move(ev);
  SimEvent assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.kind(), SimEvent::Kind::kTransmitComplete);
  EXPECT_EQ(assigned.index(), 3u);
  EXPECT_EQ(assigned.link(), 9u);
  EXPECT_EQ(assigned.packet(), 12u);
  EXPECT_EQ(assigned.t1(), SimTime::from_us(70));
  EXPECT_EQ(assigned.t2(), SimTime::from_us(800));
  EXPECT_TRUE(assigned.flag());
}

TEST(SimEventLayoutTest, SmallFnMoveOutOfTheSlabRunsExactlyOnce) {
  // pop() moves the callback event out of its slab slot and the slot is
  // recycled for the next schedule; the callable must fire exactly once and
  // a later occupant of the same slot must not resurrect it.
  EventQueue q;
  int first_runs = 0;
  int second_runs = 0;
  q.schedule(SimTime::from_us(5), [&first_runs] { ++first_runs; });
  SimTime at;
  {
    SimEvent ev = q.pop(at);
    EXPECT_TRUE(q.empty());
    ev.fire();
  }
  EXPECT_EQ(first_runs, 1);
  // The freed slot is reused (same slab, new occupant).
  q.schedule(SimTime::from_us(9), [&second_runs] { ++second_runs; });
  EXPECT_EQ(q.slab_slots(), 1u) << "slot was not recycled";
  q.pop(at).fire();
  EXPECT_EQ(first_runs, 1);
  EXPECT_EQ(second_runs, 1);
}

TEST(SimEventLayoutTest, CallbackAndTypedEventsCrossAssignCleanly) {
  // Move-assigning across the union's two alternatives must destroy the
  // outgoing callable (union lifetime management, checked under ASan).
  NullSink sink;
  auto guard = std::make_shared<int>(1);
  std::weak_ptr<int> watch = guard;
  SimEvent ev = SimEvent::callback(SmallFn{[keep = std::move(guard)] {}});
  ev = SimEvent::dv_tick(sink, 4);
  EXPECT_TRUE(watch.expired()) << "callable leaked when replaced by typed";
  EXPECT_EQ(ev.kind(), SimEvent::Kind::kDvTick);
  ev = SimEvent::callback(SmallFn{[] {}});
  EXPECT_EQ(ev.kind(), SimEvent::Kind::kCallback);
}

}  // namespace
}  // namespace arpanet::sim
