#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace arpanet::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng{11};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng{13};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng{17};
  std::array<int, 8> counts{};
  for (int i = 0; i < 8'000; ++i) ++counts[rng.uniform_index(8)];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng{19};
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng{23};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng{29};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependentAndStable) {
  const Rng parent{99};
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(2);
  Rng s1_again = parent.split(1);
  int same12 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s1.next();
    EXPECT_EQ(a, s1_again.next());  // same id -> same stream
    if (a == s2.next()) ++same12;
  }
  EXPECT_EQ(same12, 0);  // different id -> different stream
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng p1{5};
  Rng p2{5};
  (void)p1.split(123);
  EXPECT_EQ(p1.next(), p2.next());
}

}  // namespace
}  // namespace arpanet::util
