#include "src/analysis/convergence.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"

namespace arpanet::analysis {
namespace {

using util::SimTime;

TEST(ConvergenceTest, FreshNetworkIsConverged) {
  const auto net87 = net::builders::arpanet87();
  sim::Network net{net87.topo, sim::NetworkConfig{}};
  // Before any measurement period, all PSNs hold the identical initial map.
  EXPECT_TRUE(costs_converged(net));
}

TEST(ConvergenceTest, TrunkFailureSettlesQuickly) {
  const auto net87 = net::builders::arpanet87();
  sim::Network net{net87.topo, sim::NetworkConfig{}};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 200e3));
  net.run_for(SimTime::from_sec(120));

  const auto report = measure_convergence(
      net, [&] { net.set_trunk_up(0, false); });
  EXPECT_TRUE(report.converged);
  // Flooding is fast: well under one measurement period.
  EXPECT_LT(report.settle_time, SimTime::from_sec(10));
  EXPECT_GT(report.updates_originated, 0);
  EXPECT_GT(report.update_packets, 0);
}

TEST(ConvergenceTest, DivergedCostsDetected) {
  const auto net87 = net::builders::arpanet87();
  sim::Network net{net87.topo, sim::NetworkConfig{}};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 300e3));
  // Mid-flood there are instants of divergence; catch one by stepping the
  // simulator right after a disturbance without letting flooding finish.
  net.run_for(SimTime::from_sec(60));
  net.set_trunk_up(0, false);  // local PSNs update immediately
  EXPECT_FALSE(costs_converged(net));  // remote PSNs haven't heard yet
}

TEST(ConvergenceTest, TimesOutWhenDisturbanceRepeats) {
  const auto net87 = net::builders::arpanet87();
  sim::Network net{net87.topo, sim::NetworkConfig{}};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 200e3));
  net.run_for(SimTime::from_sec(30));
  // A max_wait of ~0 cannot observe convergence.
  const auto report =
      measure_convergence(net, [&] { net.set_trunk_up(2, false); },
                          SimTime::from_ms(10), SimTime::from_ms(20));
  EXPECT_FALSE(report.converged);
}

TEST(MilnetBuilderTest, ShapeAndConnectivity) {
  const net::Topology topo = net::builders::milnet_like();
  EXPECT_EQ(topo.node_count(), 112u);
  EXPECT_TRUE(topo.is_connected());
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    EXPECT_GE(topo.out_links(n).size(), 2u) << topo.node_name(n);
  }
  int satellite = 0;
  int slow = 0;
  for (const net::Link& l : topo.links()) {
    if (net::info(l.type).satellite) ++satellite;
    if (l.type == net::LineType::kTerrestrial9_6) ++slow;
  }
  EXPECT_GE(satellite, 8);  // four satellite trunks, two simplex links each
  EXPECT_GT(slow, 20);      // the MILNET's slow-tail character
  // Deterministic: same builder call, same graph.
  const net::Topology again = net::builders::milnet_like();
  EXPECT_EQ(topo.link_count(), again.link_count());
}

TEST(ClusteredBuilderTest, RespectsSpecAndValidates) {
  util::Rng rng{5};
  net::builders::ClusterSpec spec;
  spec.clusters = 4;
  spec.nodes_per_cluster = 8;
  const net::Topology topo = net::builders::clustered(spec, rng);
  EXPECT_EQ(topo.node_count(), 32u);
  EXPECT_TRUE(topo.is_connected());

  net::builders::ClusterSpec bad;
  bad.clusters = 2;
  util::Rng rng2{5};
  EXPECT_THROW((void)net::builders::clustered(bad, rng2), std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::analysis
