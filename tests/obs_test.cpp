// The observability subsystem (src/obs/): the Counters registry and its
// merge semantics, Stopwatch/ScopedTimer, the deterministic JsonWriter, the
// TraceSink hooks, and the counters a real scenario run actually produces.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "src/net/builders/builders.h"
#include "src/obs/counters.h"
#include "src/obs/json_export.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace_sink.h"
#include "src/sim/network.h"
#include "src/sim/scenario.h"

namespace arpanet::obs {
namespace {

using util::SimTime;

TEST(CountersTest, CatalogCoversEveryFieldOnce) {
  const auto catalog = Counters::catalog();
  EXPECT_EQ(catalog.size(), 11u);

  std::set<std::string> names;
  for (const Counters::Entry& e : catalog) names.insert(e.name);
  EXPECT_EQ(names.size(), catalog.size()) << "duplicate catalog names";

  // Writing through each member pointer must hit a distinct field: after
  // setting entry i to i+1, reading every entry back must agree.
  Counters c;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    c.*catalog[i].member = i + 1;
  }
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(c.*catalog[i].member, i + 1) << catalog[i].name;
  }
}

TEST(CountersTest, MergeSumsTotalsAndMaxesWatermarks) {
  Counters a;
  a.spf_full = 3;
  a.updates_originated = 10;
  a.event_queue_peak_depth = 40;
  Counters b;
  b.spf_full = 4;
  b.updates_originated = 1;
  b.event_queue_peak_depth = 25;

  a += b;
  EXPECT_EQ(a.spf_full, 7u);
  EXPECT_EQ(a.updates_originated, 11u);
  // Peak depth is a high-water mark: merging runs takes the max, because
  // two sequential runs never hold both queues at once.
  EXPECT_EQ(a.event_queue_peak_depth, 40u);

  Counters c;
  c.event_queue_peak_depth = 99;
  a += c;
  EXPECT_EQ(a.event_queue_peak_depth, 99u);
}

TEST(StopwatchTest, MeasuresElapsedTimeAndScopedTimerAccumulates) {
  const Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);

  double sink = 1.5;  // ScopedTimer adds, never overwrites
  {
    const ScopedTimer timer{sink};
  }
  EXPECT_GE(sink, 1.5);
  EXPECT_LT(sink, 2.5) << "an empty scope took over a second";
}

TEST(JsonExportTest, DoubleFormattingIsFixed) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(1.5), "1.5");
  EXPECT_EQ(json_double(1.0 / 3.0), "0.3333333333");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(JsonExportTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape(std::string_view{"\n\t", 2}), "\\u000a\\u0009");
}

TEST(JsonExportTest, WriterEmitsDeterministicDocument) {
  std::ostringstream os;
  {
    JsonWriter w{os};
    w.begin_object();
    w.member("name", "bench");
    w.member("count", std::uint64_t{3});
    w.key("values").begin_array();
    w.value(1.5);
    w.value(false);
    w.end_array();
    w.key("empty").begin_object().end_object();
    w.end_object();
  }
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"count\": 3,\n"
            "  \"values\": [\n"
            "    1.5,\n"
            "    false\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

TEST(JsonExportTest, CompactModeOmitsWhitespace) {
  std::ostringstream os;
  {
    JsonWriter w{os, /*indent=*/0};
    w.begin_object();
    w.member("a", std::int64_t{1});
    w.key("b").begin_array().value(2.0).end_array();
    w.end_object();
  }
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2]})");
}

TEST(JsonExportTest, WriterDiesOnUnbalancedScopes) {
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter w{os};
        w.begin_object();
        w.end_array();
      },
      "unbalanced end_array");
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter w{os};
        w.begin_object();
        // destructor fires with the object still open
      },
      "unclosed scope");
}

// One loaded run, shared by the end-to-end expectations below.
class NetworkObservabilityTest : public ::testing::Test {
 protected:
  static constexpr double kLoadBps = 260e3;

  void run(sim::Network& net, obs::TraceSink* sink) {
    if (sink) net.attach_trace_sink(sink);
    net.add_traffic(traffic::TrafficMatrix::uniform(
        net.topology().node_count(), kLoadBps));
    net.run_for(SimTime::from_sec(60));
  }
};

TEST_F(NetworkObservabilityTest, CountersReflectRealWork) {
  const net::Topology topo = net::builders::ring(6);
  sim::NetworkConfig cfg;
  sim::Network net{topo, cfg};
  run(net, nullptr);

  const Counters c = net.counters();
  // Construction alone is one full SPF per PSN.
  EXPECT_EQ(c.spf_full, topo.node_count());
  EXPECT_GT(c.spf_incremental, 0u);
  EXPECT_GT(c.updates_originated, 0u);
  EXPECT_GT(c.update_packets_sent, 0u);
  EXPECT_GT(c.packets_forwarded, 0u);
  EXPECT_GT(c.events_processed, 0u);
  EXPECT_GT(c.event_queue_peak_depth, 0u);
  EXPECT_GT(c.invariant_period_checks, 0u);
  EXPECT_EQ(c.events_processed, net.simulator().events_processed());

  // Unlike NetworkStats, counters survive a stats reset.
  net.reset_stats();
  EXPECT_EQ(net.counters().updates_originated, c.updates_originated);
}

TEST_F(NetworkObservabilityTest, TraceSinkReceivesBothSeries) {
  const net::Topology topo = net::builders::ring(6);
  RecordingTraceSink sink{topo.link_count()};
  sim::NetworkConfig cfg;
  sim::Network net{topo, cfg};
  run(net, &sink);

  EXPECT_EQ(sink.link_count(), topo.link_count());
  EXPECT_GT(sink.total_samples(), 0u);
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    // One utilization sample per 10-second period in 60 seconds; the PSNs'
    // period clocks are staggered, so a link sees 5 or 6 closes.
    EXPECT_GE(sink.utilizations(l).size(), 5u) << "link " << l;
    EXPECT_LE(sink.utilizations(l).size(), 6u) << "link " << l;
    SimTime last = SimTime::zero();
    for (const auto& [at, cost] : sink.costs(l)) {
      EXPECT_GE(at, last);
      EXPECT_GT(cost, 0.0);
      last = at;
    }
    for (const auto& [at, busy] : sink.utilizations(l)) {
      EXPECT_GE(busy, 0.0);
      // A packet whose transmission straddles the period boundary books its
      // whole serialization time into the period it completes in, so a
      // saturated line can read slightly above 1.
      EXPECT_LE(busy, 1.5);
    }
  }

  // The cost series must mirror what the network recorded as last reported.
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    if (sink.costs(l).empty()) continue;
    EXPECT_DOUBLE_EQ(sink.costs(l).back().second, net.last_reported_cost(l));
  }
}

TEST_F(NetworkObservabilityTest, ScenarioResultCarriesCounters) {
  const net::Topology topo = net::builders::ring(5);
  const auto cfg = sim::ScenarioConfig{}
                       .with_load_bps(150e3)
                       .with_warmup(SimTime::from_sec(20))
                       .with_window(SimTime::from_sec(40));
  const sim::ScenarioResult result = sim::run_scenario(topo, cfg, "obs");
  EXPECT_EQ(result.counters.spf_full, topo.node_count());
  EXPECT_EQ(result.counters.events_processed, result.events_processed);
  EXPECT_GT(result.counters.packets_forwarded, 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
}

}  // namespace
}  // namespace arpanet::obs
