// The observability subsystem (src/obs/): the Counters registry and its
// merge semantics, Stopwatch/ScopedTimer, the deterministic JsonWriter, the
// TraceSink hooks, and the counters a real scenario run actually produces.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/builders/builders.h"
#include "src/obs/counters.h"
#include "src/obs/json_export.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace_sink.h"
#include "src/sim/network.h"
#include "src/sim/scenario.h"

namespace arpanet::obs {
namespace {

using util::SimTime;

TEST(CountersTest, CatalogCoversEveryFieldOnce) {
  const auto catalog = Counters::catalog();
  EXPECT_EQ(catalog.size(), 19u);

  std::set<std::string> names;
  for (const Counters::Entry& e : catalog) names.insert(e.name);
  EXPECT_EQ(names.size(), catalog.size()) << "duplicate catalog names";

  // Writing through each member pointer must hit a distinct field: after
  // setting entry i to i+1, reading every entry back must agree.
  Counters c;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    c.*catalog[i].member = i + 1;
  }
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(c.*catalog[i].member, i + 1) << catalog[i].name;
  }
}

TEST(CountersTest, MergeSumsTotalsAndMaxesWatermarks) {
  Counters a;
  a.spf_full = 3;
  a.updates_originated = 10;
  a.event_queue_peak_depth = 40;
  Counters b;
  b.spf_full = 4;
  b.updates_originated = 1;
  b.event_queue_peak_depth = 25;

  a += b;
  EXPECT_EQ(a.spf_full, 7u);
  EXPECT_EQ(a.updates_originated, 11u);
  // Peak depth is a high-water mark: merging runs takes the max, because
  // two sequential runs never hold both queues at once.
  EXPECT_EQ(a.event_queue_peak_depth, 40u);

  Counters c;
  c.event_queue_peak_depth = 99;
  a += c;
  EXPECT_EQ(a.event_queue_peak_depth, 99u);
}

TEST(StopwatchTest, MeasuresElapsedTimeAndScopedTimerAccumulates) {
  const Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);

  double sink = 1.5;  // ScopedTimer adds, never overwrites
  {
    const ScopedTimer timer{sink};
  }
  EXPECT_GE(sink, 1.5);
  EXPECT_LT(sink, 2.5) << "an empty scope took over a second";
}

TEST(JsonExportTest, DoubleFormattingIsFixed) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(1.5), "1.5");
  EXPECT_EQ(json_double(1.0 / 3.0), "0.3333333333");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(JsonExportTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape(std::string_view{"\n\t", 2}), "\\u000a\\u0009");
}

TEST(JsonExportTest, WriterEmitsDeterministicDocument) {
  std::ostringstream os;
  {
    JsonWriter w{os};
    w.begin_object();
    w.member("name", "bench");
    w.member("count", std::uint64_t{3});
    w.key("values").begin_array();
    w.value(1.5);
    w.value(false);
    w.end_array();
    w.key("empty").begin_object().end_object();
    w.end_object();
  }
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"count\": 3,\n"
            "  \"values\": [\n"
            "    1.5,\n"
            "    false\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

TEST(JsonExportTest, CompactModeOmitsWhitespace) {
  std::ostringstream os;
  {
    JsonWriter w{os, /*indent=*/0};
    w.begin_object();
    w.member("a", std::int64_t{1});
    w.key("b").begin_array().value(2.0).end_array();
    w.end_object();
  }
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2]})");
}

TEST(JsonExportTest, WriterDiesOnUnbalancedScopes) {
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter w{os};
        w.begin_object();
        w.end_array();
      },
      "unbalanced end_array");
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter w{os};
        w.begin_object();
        // destructor fires with the object still open
      },
      "unclosed scope");
}

// One loaded run, shared by the end-to-end expectations below.
class NetworkObservabilityTest : public ::testing::Test {
 protected:
  static constexpr double kLoadBps = 260e3;

  void run(sim::Network& net, obs::TraceSink* sink) {
    if (sink) net.attach_trace_sink(sink);
    net.add_traffic(traffic::TrafficMatrix::uniform(
        net.topology().node_count(), kLoadBps));
    net.run_for(SimTime::from_sec(60));
  }
};

TEST_F(NetworkObservabilityTest, CountersReflectRealWork) {
  const net::Topology topo = net::builders::ring(6);
  sim::NetworkConfig cfg;
  sim::Network net{topo, cfg};
  run(net, nullptr);

  const Counters c = net.counters();
  // Construction alone is one full SPF per PSN.
  EXPECT_EQ(c.spf_full, topo.node_count());
  EXPECT_GT(c.spf_incremental, 0u);
  EXPECT_GT(c.updates_originated, 0u);
  EXPECT_GT(c.update_packets_sent, 0u);
  EXPECT_GT(c.packets_forwarded, 0u);
  EXPECT_GT(c.events_processed, 0u);
  EXPECT_GT(c.event_queue_peak_depth, 0u);
  EXPECT_GT(c.invariant_period_checks, 0u);
  EXPECT_EQ(c.events_processed, net.simulator().events_processed());

  // Unlike NetworkStats, counters survive a stats reset.
  net.reset_stats();
  EXPECT_EQ(net.counters().updates_originated, c.updates_originated);
}

TEST_F(NetworkObservabilityTest, TraceSinkReceivesBothSeries) {
  const net::Topology topo = net::builders::ring(6);
  RecordingTraceSink sink{topo.link_count()};
  sim::NetworkConfig cfg;
  sim::Network net{topo, cfg};
  run(net, &sink);

  EXPECT_EQ(sink.link_count(), topo.link_count());
  EXPECT_GT(sink.total_samples(), 0u);
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    // One utilization sample per 10-second period in 60 seconds; the PSNs'
    // period clocks are staggered, so a link sees 5 or 6 closes.
    EXPECT_GE(sink.utilizations(l).size(), 5u) << "link " << l;
    EXPECT_LE(sink.utilizations(l).size(), 6u) << "link " << l;
    SimTime last = SimTime::zero();
    for (const auto& [at, cost] : sink.costs(l)) {
      EXPECT_GE(at, last);
      EXPECT_GT(cost, 0.0);
      last = at;
    }
    for (const auto& [at, busy] : sink.utilizations(l)) {
      EXPECT_GE(busy, 0.0);
      // A packet whose transmission straddles the period boundary books its
      // whole serialization time into the period it completes in, so a
      // saturated line can read slightly above 1.
      EXPECT_LE(busy, 1.5);
    }
  }

  // The cost series must mirror what the network recorded as last reported.
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    if (sink.costs(l).empty()) continue;
    EXPECT_DOUBLE_EQ(sink.costs(l).back().second, net.last_reported_cost(l));
  }
}

namespace {

/// Formats one sample exactly as StreamingTraceSink's CSV writer does, so
/// the comparison below is representation-exact.
std::string csv_line(const char* series, net::LinkId link, SimTime at,
                     double value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s,%u,%lld,%.10g", series, link,
                static_cast<long long>(at.us()), value);
  return buf;
}

}  // namespace

TEST_F(NetworkObservabilityTest, StreamingSinkMatchesRecordingSink) {
  const net::Topology topo = net::builders::ring(6);

  RecordingTraceSink recording{topo.link_count()};
  {
    sim::Network net{topo, sim::NetworkConfig{}};
    run(net, &recording);
  }

  std::ostringstream os;
  {
    StreamingTraceSink streaming{os, StreamingTraceSink::Format::kCsv};
    sim::Network net{topo, sim::NetworkConfig{}};
    run(net, &streaming);
    EXPECT_EQ(streaming.records_written(), recording.total_samples());
  }  // destructor flushes

  // Same seed, same config: the streamed lines must be exactly the
  // recording sink's samples. Split the CSV back into per-link series and
  // compare representations.
  std::vector<std::vector<std::string>> cost_lines(topo.link_count());
  std::vector<std::vector<std::string>> util_lines(topo.link_count());
  std::istringstream in{os.str()};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "series,link,t_us,value");
  while (std::getline(in, line)) {
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    const auto link = static_cast<net::LinkId>(
        std::stoul(line.substr(c1 + 1, c2 - c1 - 1)));
    ASSERT_LT(link, topo.link_count());
    (line.compare(0, 4, "cost") == 0 ? cost_lines : util_lines)[link]
        .push_back(line);
  }

  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    ASSERT_EQ(cost_lines[l].size(), recording.costs(l).size()) << "link " << l;
    for (std::size_t i = 0; i < cost_lines[l].size(); ++i) {
      const auto& [at, cost] = recording.costs(l)[i];
      EXPECT_EQ(cost_lines[l][i], csv_line("cost", l, at, cost));
    }
    ASSERT_EQ(util_lines[l].size(), recording.utilizations(l).size());
    for (std::size_t i = 0; i < util_lines[l].size(); ++i) {
      const auto& [at, busy] = recording.utilizations(l)[i];
      EXPECT_EQ(util_lines[l][i], csv_line("utilization", l, at, busy));
    }
  }
}

TEST(StreamingTraceSinkTest, JsonlRecordsAreWellFormedAndBuffered) {
  std::ostringstream os;
  StreamingTraceSink sink{os, StreamingTraceSink::Format::kJsonl};
  sink.on_cost_reported(3, SimTime::from_ms(12.5), 42.5);
  sink.on_utilization(0, SimTime::from_sec(10), 0.75);
  EXPECT_EQ(sink.records_written(), 2u);
  // Small writes stay in the buffer until flush (or destruction).
  EXPECT_TRUE(os.str().empty());
  sink.flush();
  EXPECT_EQ(os.str(),
            "{\"series\":\"cost\",\"link\":3,\"t_us\":12500,\"value\":42.5}\n"
            "{\"series\":\"utilization\",\"link\":0,\"t_us\":10000000,"
            "\"value\":0.75}\n");
}

TEST(StreamingTraceSinkTest, LargeRunsFlushInChunks) {
  std::ostringstream os;
  StreamingTraceSink sink{os, StreamingTraceSink::Format::kCsv};
  // Push well past kFlushBytes; the stream must have received data before
  // any explicit flush.
  for (int i = 0; i < 5000; ++i) {
    sink.on_cost_reported(1, SimTime::from_us(i), 10.0 + i);
  }
  EXPECT_GT(os.str().size(), 0u);
  sink.flush();
  // Header plus every record, no truncation.
  std::istringstream in{os.str()};
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 5001u);
}

TEST(StreamingTraceSinkTest, FileConstructorWritesAndThrowsOnBadPath) {
  const std::string path =
      ::testing::TempDir() + "/streaming_trace_sink_test.csv";
  {
    StreamingTraceSink sink{path, StreamingTraceSink::Format::kCsv};
    sink.on_cost_reported(2, SimTime::from_ms(1), 5.0);
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string header;
  std::string record;
  EXPECT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "series,link,t_us,value");
  EXPECT_TRUE(std::getline(in, record));
  EXPECT_EQ(record, "cost,2,1000,5");

  EXPECT_THROW(
      (StreamingTraceSink{"/nonexistent-dir/trace.csv",
                          StreamingTraceSink::Format::kCsv}),
      std::runtime_error);
}

TEST_F(NetworkObservabilityTest, ScenarioResultCarriesCounters) {
  const net::Topology topo = net::builders::ring(5);
  const auto cfg = sim::ScenarioConfig{}
                       .with_load_bps(150e3)
                       .with_warmup(SimTime::from_sec(20))
                       .with_window(SimTime::from_sec(40));
  const sim::ScenarioResult result = sim::run_scenario(topo, cfg, "obs");
  EXPECT_EQ(result.counters.spf_full, topo.node_count());
  EXPECT_EQ(result.counters.events_processed, result.events_processed);
  EXPECT_GT(result.counters.packets_forwarded, 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
}

}  // namespace
}  // namespace arpanet::obs
