// Simulator validation: the discrete-event substrate against queueing
// theory and conservation laws. These tests justify trusting the Table-1 /
// fig-13 numbers the simulator produces.

#include <gtest/gtest.h>

#include "src/core/mm1.h"
#include "src/net/builders/builders.h"
#include "src/sim/network.h"

namespace arpanet::sim {
namespace {

using net::LineType;
using util::SimTime;

net::Topology two_nodes(SimTime prop = SimTime::from_ms(10)) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, LineType::kTerrestrial56, prop);
  return t;
}

/// The queueing law the whole metric is built on: a Poisson-fed 56 kb/s
/// link at utilization rho shows mean system time ~ S/(1-rho), i.e. the
/// measured one-way delay matches core::delay_from_utilization.
class Mm1Validation : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Utilizations, Mm1Validation,
                         ::testing::Values(0.2, 0.4, 0.6, 0.75));

TEST_P(Mm1Validation, MeasuredDelayMatchesTheory) {
  const double rho = GetParam();
  const auto prop = SimTime::from_ms(10);
  const net::Topology topo = two_nodes(prop);
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kMinHop;  // routing out of the picture
  cfg.queue_capacity = 500;                   // effectively infinite
  Network net{topo, cfg};

  traffic::TrafficMatrix m{2};
  m.set(0, 1, rho * 56e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  net.reset_stats();
  net.run_for(SimTime::from_sec(1200));  // long window: tight confidence

  const double expected_ms =
      core::delay_from_utilization(rho, util::DataRate::kbps(56), prop).ms();
  const double measured_ms = net.stats().one_way_delay_ms.mean();
  // Service times are shifted-exponential rather than exactly exponential,
  // so allow 12% (M/G/1 waiting is slightly below M/M/1 here).
  EXPECT_NEAR(measured_ms, expected_ms, 0.12 * expected_ms) << "rho=" << rho;
  EXPECT_EQ(net.stats().packets_dropped_queue, 0);
}

/// Conservation: once sources stop and queues drain, every generated packet
/// was delivered or dropped — nothing is lost or duplicated by the
/// forwarding machinery.
class Conservation
    : public ::testing::TestWithParam<std::tuple<metrics::MetricKind, double>> {};

INSTANTIATE_TEST_SUITE_P(
    MetricsAndLoads, Conservation,
    ::testing::Combine(::testing::Values(metrics::MetricKind::kMinHop,
                                         metrics::MetricKind::kDspf,
                                         metrics::MetricKind::kHnSpf),
                       ::testing::Values(100e3, 500e3)));

TEST_P(Conservation, GeneratedEqualsDeliveredPlusDropped) {
  const auto [kind, load] = GetParam();
  const auto net87 = net::builders::arpanet87();
  NetworkConfig cfg;
  cfg.metric = kind;
  Network net{net87.topo, cfg};
  net.add_traffic(
      traffic::TrafficMatrix::peak_hour(net87.topo.node_count(), load,
                                        util::Rng{42}));
  net.run_for(SimTime::from_sec(90));
  net.stop_traffic();
  net.run_for(SimTime::from_sec(60));  // drain

  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_generated, 1000);
  EXPECT_EQ(s.packets_generated,
            s.packets_delivered + s.packets_dropped_queue +
                s.packets_dropped_unreachable + s.packets_dropped_loop);
}

TEST(ConservationDv, HoldsForDistanceVectorToo) {
  const auto two = net::builders::two_region(5);
  NetworkConfig cfg;
  cfg.algorithm = routing::RoutingAlgorithm::kDistanceVector;
  cfg.hop_limit = 50;
  Network net{two.topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(two.topo.node_count(), 80e3));
  net.run_for(SimTime::from_sec(90));
  net.stop_traffic();
  net.run_for(SimTime::from_sec(60));
  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.packets_generated,
            s.packets_delivered + s.packets_dropped_queue +
                s.packets_dropped_unreachable + s.packets_dropped_loop);
}

/// Routing updates are high priority: they keep flowing (and reach remote
/// nodes) even when every data queue on the path is saturated.
TEST(UpdatePriorityTest, UpdatesPropagateThroughSaturation) {
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  cfg.queue_capacity = 10;
  Network net{topo, cfg};
  traffic::TrafficMatrix m{2};
  m.set(0, 1, 150e3);  // ~2.7x the trunk: permanently saturated
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(120));
  EXPECT_GT(net.stats().packets_dropped_queue, 1000);  // truly saturated
  // Node 1 still learned node 0's latest reported cost for link 0, which
  // by now reflects the overload (well above the idle floor).
  const double remote_view = net.psn(1).spf().costs()[0];
  EXPECT_DOUBLE_EQ(remote_view, net.psn(0).reported_cost(0));
  EXPECT_GT(remote_view, 70.0);
}

/// The busy-fraction bookkeeping agrees with offered load.
TEST(UtilizationAccounting, BusySecondsMatchOfferedLoad) {
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kMinHop;
  Network net{topo, cfg};
  traffic::TrafficMatrix m{2};
  m.set(0, 1, 28e3);  // rho = 0.5
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(600));
  // Average the per-bucket utilization over the run (skip the last,
  // possibly partial, bucket).
  const auto& series = net.link_busy_series(0);
  double sum = 0;
  const std::size_t buckets = series.bucket_count() - 1;
  for (std::size_t i = 0; i < buckets; ++i) {
    sum += series.bucket(i) / static_cast<double>(cfg.stats_bucket.us());
  }
  EXPECT_NEAR(sum / static_cast<double>(buckets), 0.5, 0.05);
}

/// Delivered hop counts always match a real path: never fewer hops than the
/// minimum-hop distance.
TEST(PathSanity, HopsNeverBeatMinimum) {
  const auto net87 = net::builders::arpanet87();
  NetworkConfig cfg;
  Network net{net87.topo, cfg};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 200e3));
  net.run_for(SimTime::from_sec(120));
  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 1000);
  EXPECT_GE(s.path_hops.mean(), s.min_hops.mean());
  EXPECT_GE(s.path_hops.min(), 1.0);
}

}  // namespace
}  // namespace arpanet::sim
