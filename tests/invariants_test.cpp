// The invariant layer (src/analysis/invariants.h, src/util/check.h):
// positive coverage that valid state passes and every scenario run
// self-audits, plus death tests proving ARPA_CHECK actually kills the
// process on each class of paper-invariant violation.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/core/hn_metric.h"
#include "src/core/line_params.h"
#include "src/net/builders/builders.h"
#include "src/routing/spf.h"
#include "src/sim/network.h"
#include "src/sim/psn.h"
#include "src/sim/scenario.h"
#include "src/util/check.h"

namespace {

using arpanet::core::HnMetric;
using arpanet::core::LineTypeParams;
using arpanet::util::SimTime;
namespace analysis = arpanet::analysis;
namespace builders = arpanet::net::builders;

HnMetric terrestrial56_metric() {
  return HnMetric{LineTypeParams{}, arpanet::util::DataRate::kbps(56),
                  SimTime::from_ms(10)};
}

TEST(CheckMacroTest, PassingChecksAreSilent) {
  ARPA_CHECK(1 + 1 == 2) << "never evaluated";
  ARPA_DCHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(CheckMacroTest, FailureAbortsWithFileAndMessage) {
  EXPECT_DEATH(ARPA_CHECK(false) << "metric " << 42 << " out of range",
               "ARPA_CHECK failed: false.*metric 42 out of range");
}

TEST(CheckMacroTest, DcheckCompiledOutUnderNdebug) {
  bool evaluated = false;
  const auto touch = [&evaluated] {
    evaluated = true;
    return true;
  };
#ifdef NDEBUG
  ARPA_DCHECK(touch());
  EXPECT_FALSE(evaluated) << "NDEBUG ARPA_DCHECK must not evaluate";
#else
  ARPA_DCHECK(touch());
  EXPECT_TRUE(evaluated);
#endif
}

TEST(CostBoundsTest, InRangeCostsPass) {
  using analysis::Cost;
  analysis::check_cost_in_bounds(Cost{30.0}, Cost{30.0}, Cost{90.0});
  analysis::check_cost_in_bounds(Cost{90.0}, Cost{30.0}, Cost{90.0});
  SUCCEED();
}

TEST(CostBoundsTest, DeathOnOutOfBoundsCost) {
  using analysis::Cost;
  EXPECT_DEATH(
      analysis::check_cost_in_bounds(Cost{90.5}, Cost{30.0}, Cost{90.0}),
      "above line-type maximum");
  EXPECT_DEATH(
      analysis::check_cost_in_bounds(Cost{29.0}, Cost{30.0}, Cost{90.0}),
      "below line-type minimum");
}

TEST(CostBoundsTest, DeathOnMisClippedHnSpfCost) {
  // A cost that escaped the Clip step of the figure 3 transform — e.g. a
  // raw cost reported directly — lies above the line's maximum and must be
  // fatal when it reaches the invariant layer.
  const HnMetric metric = terrestrial56_metric();
  const double mis_clipped = metric.max_cost() + metric.params().up_limit();
  EXPECT_DEATH(analysis::check_cost_in_bounds(analysis::Cost{mis_clipped},
                                              analysis::Cost{metric.min_cost()},
                                              analysis::Cost{metric.max_cost()}),
               "above line-type maximum");
}

TEST(MovementLimitTest, LimitedMovesPass) {
  const LineTypeParams params;  // up_limit 16, down_limit 15
  using analysis::Cost;
  analysis::check_movement_limited(Cost{60.0}, Cost{60.0 + params.up_limit()},
                                   params);
  analysis::check_movement_limited(Cost{60.0}, Cost{60.0 - params.down_limit()},
                                   params);
  // Report-to-report checks widen by the significance threshold.
  analysis::check_movement_limited(
      Cost{60.0}, Cost{60.0 + params.up_limit() + params.change_threshold()},
      params, params.change_threshold());
  SUCCEED();
}

TEST(MovementLimitTest, DeathOnViolation) {
  const LineTypeParams params;
  using analysis::Cost;
  EXPECT_DEATH(analysis::check_movement_limited(
                   Cost{60.0}, Cost{60.0 + params.up_limit() + 0.5}, params),
               "above the per-update up limit");
  EXPECT_DEATH(analysis::check_movement_limited(
                   Cost{60.0}, Cost{60.0 - params.down_limit() - 0.5}, params),
               "below the per-update down limit");
}

TEST(UtilizationRangeTest, FiniteNonNegativeFractionsPass) {
  using analysis::Utilization;
  analysis::check_utilization_in_range(Utilization{0.0});
  analysis::check_utilization_in_range(Utilization{0.73});
  // A transmission straddling the period boundary is attributed wholly to
  // the period it completes in, so slightly-above-1 is legitimate.
  analysis::check_utilization_in_range(Utilization{1.2});
  SUCCEED();
}

TEST(UtilizationRangeTest, DeathOnNegativeOrNonFinite) {
  using analysis::Utilization;
  EXPECT_DEATH(analysis::check_utilization_in_range(Utilization{-0.01}),
               "not a finite non-negative fraction");
  EXPECT_DEATH(analysis::check_utilization_in_range(
                   Utilization{std::numeric_limits<double>::quiet_NaN()}),
               "not a finite non-negative fraction");
}

TEST(FlatRegionTest, ArpanetDefaultsHaveThePaperShape) {
  analysis::check_flat_region(terrestrial56_metric());
  // Satellite propagation raises the minimum but must keep the shape.
  analysis::check_flat_region(HnMetric{LineTypeParams{},
                                       arpanet::util::DataRate::kbps(56),
                                       SimTime::from_ms(130)});
  SUCCEED();
}

TEST(MonotonicTimeTest, NonDecreasingSequencePasses) {
  analysis::MonotonicTimeChecker checker;
  checker.observe(SimTime::from_us(10));
  checker.observe(SimTime::from_us(10));  // simultaneous events are legal
  checker.observe(SimTime::from_us(11));
  EXPECT_EQ(checker.observed(), 3);
}

TEST(MonotonicTimeTest, DeathOnBackwardsTimestamp) {
  analysis::MonotonicTimeChecker checker{"event time"};
  checker.observe(SimTime::from_us(10));
  EXPECT_DEATH(checker.observe(SimTime::from_us(9)),
               "event time went backwards");
}

TEST(SpfTreeCheckTest, ComputedTreesPass) {
  const arpanet::net::Topology topo = builders::ring(5);
  const std::vector<double> costs(topo.link_count(), 30.0);
  const auto tree = arpanet::routing::Spf::compute(topo, 0, costs);
  analysis::check_spf_tree(topo, tree, costs);
  SUCCEED();
}

TEST(SpfTreeCheckTest, DeathOnCorruptedParent) {
  const arpanet::net::Topology topo = builders::ring(5);
  const std::vector<double> costs(topo.link_count(), 30.0);
  auto tree = arpanet::routing::Spf::compute(topo, 0, costs);
  // Point node 2's parent at a link that does not end at node 2.
  for (const arpanet::net::Link& l : topo.links()) {
    if (l.to != 2) {
      tree.parent_link[2] = l.id;
      break;
    }
  }
  EXPECT_DEATH(analysis::check_spf_tree(topo, tree, costs), "ends at node");
}

TEST(PeriodMovementHookTest, EveryMeasurementPeriodIsCheckedExactly) {
  // The per-update-period hook enforces the movement bound at the cadence
  // the paper states it (every measurement period, no threshold slack), so
  // a long loaded run racks up node_count x periods checks.
  const arpanet::net::Topology topo = builders::ring(5);
  arpanet::sim::NetworkConfig cfg;
  arpanet::sim::Network net{topo, cfg};
  net.add_traffic(arpanet::traffic::TrafficMatrix::uniform(
      topo.node_count(), 200e3));
  net.run_for(SimTime::from_sec(100));
  // ~10 periods of 10 s on each of the 10 simplex links; the staggered
  // period clocks cost each node at most one close inside the window.
  EXPECT_GE(net.counters().invariant_period_checks, 9u * topo.link_count());
  EXPECT_LE(net.counters().invariant_period_checks, 10u * topo.link_count());
}

TEST(PeriodMovementHookTest, DeathOnOverLimitPeriodMove) {
  // A candidate cost that jumps more than up_limit in one period must kill
  // the process the moment the period closes — with no threshold widening:
  // one unit past the limit is enough.
  const LineTypeParams params;  // terrestrial56: up_limit 16
  const arpanet::net::Topology topo = builders::ring(4);
  arpanet::sim::NetworkConfig cfg;
  arpanet::sim::Network net{topo, cfg};
  EXPECT_DEATH(
      net.on_period_measured(0, analysis::Cost{60.0},
                             analysis::Cost{60.0 + params.up_limit() + 1.0},
                             analysis::Utilization{0.5}),
      "above the per-update up limit");
}

TEST(PeriodMovementHookTest, DownSentinelPeriodsAreExempt) {
  // Link-down periods report the kDownLinkCost sentinel on either side of
  // the transition; neither direction is a metric movement.
  const arpanet::net::Topology topo = builders::ring(4);
  arpanet::sim::NetworkConfig cfg;
  arpanet::sim::Network net{topo, cfg};
  using analysis::Cost;
  using analysis::Utilization;
  net.on_period_measured(0, Cost{arpanet::sim::Psn::kDownLinkCost},
                         Cost{90.0}, Utilization{0.0});
  net.on_period_measured(0, Cost{90.0},
                         Cost{arpanet::sim::Psn::kDownLinkCost},
                         Utilization{0.0});
  SUCCEED();
}

TEST(ScenarioAuditTest, EveryScenarioRunSelfAudits) {
  const arpanet::net::Topology topo = builders::ring(5);
  const auto cfg = arpanet::sim::ScenarioConfig{}
                       .with_load_bps(50e3)
                       .with_warmup(SimTime::from_sec(30))
                       .with_window(SimTime::from_sec(60));
  const auto result = arpanet::sim::run_scenario(topo, cfg, "audit");
  EXPECT_EQ(result.audit.costs_checked,
            static_cast<long>(topo.link_count()));
  EXPECT_EQ(result.audit.maps_checked, static_cast<long>(topo.link_count()));
  EXPECT_EQ(result.audit.trees_checked,
            static_cast<long>(topo.node_count()));
}

TEST(ScenarioAuditTest, TracesAreMovementCheckedWhenTracked) {
  const arpanet::net::Topology topo = builders::ring(5);
  auto cfg = arpanet::sim::ScenarioConfig{}
                 .with_load_bps(150e3)
                 .with_warmup(SimTime::from_sec(30))
                 .with_window(SimTime::from_sec(120));
  cfg.network.track_reported_costs = true;
  const auto result = arpanet::sim::run_scenario(topo, cfg, "audit");
  EXPECT_GT(result.audit.trace_steps_checked, 0);
}

TEST(ScenarioAuditTest, AuditCanBeDisabled) {
  const arpanet::net::Topology topo = builders::ring(4);
  const auto cfg = arpanet::sim::ScenarioConfig{}
                       .with_load_bps(20e3)
                       .with_warmup(SimTime::from_sec(10))
                       .with_window(SimTime::from_sec(20))
                       .with_self_audit(false);
  const auto result = arpanet::sim::run_scenario(topo, cfg, "no-audit");
  EXPECT_EQ(result.audit.costs_checked, 0);
  EXPECT_EQ(result.audit.trees_checked, 0);
}

}  // namespace
