// The generated topology families (src/net/builders/registry.h): the
// registry front door, per-family determinism (same GraphSpec + seed =>
// byte-identical graph), structural sanity per family, the CSR adjacency's
// consistency with the link records, and the prop_us round trip that keeps
// generated delays lossless through topology_io.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/builders/registry.h"
#include "src/net/dot_export.h"
#include "src/net/graph_spec.h"
#include "src/net/topology_io.h"
#include "src/exp/sweep.h"
#include "src/routing/flooding.h"
#include "src/routing/spf.h"

namespace arpanet::net {
namespace {

Topology build(const GraphSpec& spec) {
  return TopologyBuilder::registry().build(spec);
}

// ---- determinism: the contract that makes a GraphSpec a sweep axis ----

TEST(GeneratorsTest, EveryFamilyIsByteDeterministic) {
  const GraphSpec specs[] = {
      GraphSpec{"hier-as"}.with_nodes(300).with_seed(7),
      GraphSpec{"waxman"}.with_nodes(120).with_seed(7),
      GraphSpec{"ba"}.with_nodes(200).with_seed(7).with_param("m", 2),
      GraphSpec{"fat-tree"}.with_nodes(80),
      GraphSpec{"leo-grid"}.with_nodes(64),
  };
  for (const GraphSpec& spec : specs) {
    const std::string once = topology_to_string(build(spec));
    const std::string twice = topology_to_string(build(spec));
    EXPECT_EQ(once, twice) << spec.label();
  }
}

TEST(GeneratorsTest, SeedChangesTheRandomFamilies) {
  const GraphSpec base = GraphSpec{"ba"}.with_nodes(200).with_param("m", 2);
  const std::string s1 =
      topology_to_string(build(GraphSpec{base}.with_seed(1)));
  const std::string s2 =
      topology_to_string(build(GraphSpec{base}.with_seed(2)));
  EXPECT_NE(s1, s2);
}

// ---- structural sanity per family ----

TEST(GeneratorsTest, EveryFamilyBuildsAConnectedGraph) {
  const GraphSpec specs[] = {
      GraphSpec{"hier-as"}.with_nodes(500).with_seed(3),
      GraphSpec{"waxman"}.with_nodes(200).with_seed(3),
      GraphSpec{"ba"}.with_nodes(400).with_seed(3),
      GraphSpec{"fat-tree"}.with_nodes(245),
      GraphSpec{"leo-grid"}.with_nodes(100),
  };
  for (const GraphSpec& spec : specs) {
    const Topology topo = build(spec);
    EXPECT_TRUE(topo.is_connected()) << spec.label();
    EXPECT_GT(topo.node_count(), 0u) << spec.label();
  }
}

TEST(GeneratorsTest, BarabasiAlbertHasAHeavyTail) {
  const Topology topo =
      build(GraphSpec{"ba"}.with_nodes(2000).with_seed(11).with_param("m", 2));
  // Every non-seed node attaches with m = 2 trunks, so the minimum degree
  // is 2 while preferential attachment should concentrate a hub well above
  // the mean degree (~4).
  std::size_t max_degree = 0;
  std::size_t min_degree = topo.node_count();
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    max_degree = std::max(max_degree, topo.out_links(n).size());
    min_degree = std::min(min_degree, topo.out_links(n).size());
  }
  EXPECT_GE(min_degree, 2u);
  EXPECT_GE(max_degree, 20u);  // hubs: far above the mean degree of ~4
}

TEST(GeneratorsTest, FatTreeHasTheKAryStructure) {
  // nodes = 80 fits exactly k = 8: (k/2)^2 = 16 cores + k pods of k
  // switches = 80, and k^3/2 = 256 trunks (512 directed links).
  const Topology topo = build(GraphSpec{"fat-tree"}.with_nodes(80));
  EXPECT_EQ(topo.node_count(), 80u);
  EXPECT_EQ(topo.link_count(), 512u);
  // Bisection: removing any single trunk cannot disconnect a fat-tree;
  // every edge switch still reaches every other through (k/2)^2 cores.
  EXPECT_TRUE(topo.is_connected());
}

TEST(GeneratorsTest, FatTreeRejectsImpossibleShapes) {
  // Below the smallest (k = 2) fabric: rejected by the registry node range.
  EXPECT_THROW((void)build(GraphSpec{"fat-tree"}.with_nodes(4)),
               std::invalid_argument);
  // An explicit odd arity: rejected by the family builder.
  EXPECT_THROW(
      (void)build(GraphSpec{"fat-tree"}.with_nodes(80).with_param("k", 3)),
      std::invalid_argument);
}

TEST(GeneratorsTest, LeoGridDelaysFollowTheOrbitModel) {
  const Topology topo = build(GraphSpec{"leo-grid"}.with_nodes(64));
  // 8 planes x 8 satellites. Intra-plane links all share one delay (the
  // constant arc length of the orbit); inter-plane delays shrink toward the
  // seam (cos factor) but are floored at 10% of the equatorial spacing.
  std::set<std::int64_t> intra_delays;
  std::int64_t inter_max = 0;
  std::int64_t inter_min = std::numeric_limits<std::int64_t>::max();
  for (std::size_t l = 0; l < topo.link_count(); l += 2) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    const bool same_plane =
        link.from / 8 == link.to / 8;  // ids are plane-major
    if (same_plane) {
      intra_delays.insert(link.prop_delay.us());
    } else {
      inter_max = std::max(inter_max, link.prop_delay.us());
      inter_min = std::min(inter_min, link.prop_delay.us());
    }
  }
  EXPECT_EQ(intra_delays.size(), 1u);
  EXPECT_GT(*intra_delays.begin(), 0);
  EXPECT_GT(inter_min, 0);
  EXPECT_GE(inter_min * 10, inter_max);  // floor = 0.1 x equatorial spacing
}

TEST(GeneratorsTest, HierAsKeepsStubsDualHomed) {
  const Topology topo = build(GraphSpec{"hier-as"}.with_nodes(400).with_seed(5));
  // Every node in the hierarchy is at least dual-homed except nothing:
  // core is a ring (degree >= 2), transits and stubs attach twice.
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    EXPECT_GE(topo.out_links(n).size(), 2u) << "node " << n;
  }
}

// ---- CSR adjacency vs the link records ----

TEST(GeneratorsTest, CsrAdjacencyMatchesTheLinkRecords) {
  const Topology topo =
      build(GraphSpec{"waxman"}.with_nodes(150).with_seed(9));
  std::size_t seen = 0;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    const std::span<const LinkId> lids = topo.out_links(n);
    const std::span<const NodeId> tos = topo.out_targets(n);
    ASSERT_EQ(lids.size(), tos.size());
    for (std::size_t i = 0; i < lids.size(); ++i) {
      const Link& link = topo.link(lids[i]);
      EXPECT_EQ(link.from, n);
      EXPECT_EQ(link.to, tos[i]);
      EXPECT_EQ(topo.out_pos(lids[i]), i);
      ++seen;
    }
  }
  EXPECT_EQ(seen, topo.link_count());
}

TEST(GeneratorsTest, SpfOverGeneratedGraphsIsSymmetric) {
  // All families emit duplex trunks with equal delays both ways, so with
  // symmetric costs the root->v distance must equal v->root.
  const Topology topo =
      build(GraphSpec{"ba"}.with_nodes(120).with_seed(13).with_param("m", 2));
  routing::LinkCosts costs(topo.link_count());
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    costs[l] = 1.0 + topo.link(static_cast<LinkId>(l)).prop_delay.ms();
  }
  const routing::SpfTree from0 = routing::Spf::compute(topo, 0, costs);
  for (NodeId v = 0; v < topo.node_count(); v += 17) {
    const routing::SpfTree back = routing::Spf::compute(topo, v, costs);
    EXPECT_DOUBLE_EQ(from0.dist[v], back.dist[0]) << "node " << v;
  }
}

TEST(GeneratorsTest, IncrementalSpfMatchesFullRecomputeOnGeneratedGraphs) {
  const Topology topo =
      build(GraphSpec{"leo-grid"}.with_nodes(100));
  routing::LinkCosts costs(topo.link_count(), 1.0);
  routing::IncrementalSpf inc{topo, 0, costs};
  // Walk a few cost changes and confirm the resident tree never diverges
  // from a from-scratch Dijkstra.
  for (std::size_t l = 0; l < topo.link_count(); l += 37) {
    costs[l] = 1.0 + static_cast<double>(l % 5);
    inc.set_cost(static_cast<LinkId>(l), costs[l]);
    const routing::SpfTree fresh = routing::Spf::compute(topo, 0, costs);
    ASSERT_EQ(inc.tree().dist, fresh.dist) << "after link " << l;
    ASSERT_EQ(inc.tree().first_hop, fresh.first_hop) << "after link " << l;
  }
}

TEST(GeneratorsTest, FloodCopyCountAgreesWithCsrFanout) {
  const Topology topo = build(GraphSpec{"fat-tree"}.with_nodes(80));
  const NodeId node = 12;
  const std::span<const LinkId> out = topo.out_links(node);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(routing::flood_copy_count(topo, node, kInvalidLink), out.size());
  // Arrived over the reverse of our first out-link: one fewer copy.
  const LinkId in = topo.link(out[0]).reverse;
  EXPECT_EQ(routing::flood_copy_count(topo, node, in), out.size() - 1);
}

// ---- registry validation ----

TEST(GeneratorsTest, RegistryRejectsUnknownFamily) {
  try {
    (void)build(GraphSpec{"erdos"}.with_nodes(10));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown topology family"),
              std::string::npos);
  }
}

TEST(GeneratorsTest, RegistryRejectsUnknownParameter) {
  try {
    (void)build(GraphSpec{"ba"}.with_nodes(100).with_param("gamma", 1.0));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("has no parameter 'gamma'"),
              std::string::npos);
  }
}

TEST(GeneratorsTest, RegistryRejectsOutOfRangeParameter) {
  EXPECT_THROW(
      (void)build(GraphSpec{"ba"}.with_nodes(100).with_param("m", 99)),
      std::invalid_argument);
}

TEST(GeneratorsTest, RegistryRejectsOutOfRangeNodeCounts) {
  EXPECT_THROW((void)build(GraphSpec{"waxman"}.with_nodes(100'000)),
               std::invalid_argument);
  EXPECT_THROW((void)build(GraphSpec{"arpanet87"}.with_nodes(48)),
               std::invalid_argument);
}

TEST(GeneratorsTest, LegacyFamiliesAreReachableThroughTheRegistry) {
  EXPECT_EQ(build(GraphSpec{"arpanet87"}).node_count(), 47u);
  EXPECT_EQ(build(GraphSpec{"ring"}.with_nodes(6)).node_count(), 6u);
  EXPECT_EQ(build(GraphSpec{"grid"}
                      .with_nodes(12)
                      .with_param("width", 4)
                      .with_param("height", 3))
                .node_count(),
            12u);
}

// ---- sweep integration ----

TEST(GeneratorsTest, SweepMaterializesTopologySpecsUnderTheirLabels) {
  exp::SweepSpec spec;
  spec.over_topology_specs({
      GraphSpec{"ring"}.with_nodes(6),
      GraphSpec{"ba"}.with_nodes(50).with_seed(2).with_param("m", 1),
  });
  const std::vector<exp::NamedTopology> topos = spec.materialize_topologies();
  ASSERT_EQ(topos.size(), 2u);
  EXPECT_EQ(topos[0].name, "ring-n6-s428279590");
  EXPECT_EQ(topos[0].topo.node_count(), 6u);
  EXPECT_EQ(topos[1].name, "ba-n50-s2-m1");
  EXPECT_EQ(topos[1].topo.node_count(), 50u);
}

TEST(GeneratorsTest, SweepRejectsBadTopologySpecsAtSpecTime) {
  exp::SweepSpec spec;
  EXPECT_THROW(spec.over_topology_specs({GraphSpec{"nope"}.with_nodes(5)}),
               std::invalid_argument);
}

// ---- IO at generated-family scale ----

TEST(GeneratorsTest, GeneratedDelaysRoundTripThroughTopologyIo) {
  const Topology original = build(GraphSpec{"leo-grid"}.with_nodes(64));
  const std::string text = topology_to_string(original);
  const Topology reparsed = parse_topology(text);
  EXPECT_EQ(topology_to_string(reparsed), text);
  ASSERT_EQ(reparsed.link_count(), original.link_count());
  for (std::size_t l = 0; l < original.link_count(); ++l) {
    EXPECT_EQ(reparsed.link(static_cast<LinkId>(l)).prop_delay.us(),
              original.link(static_cast<LinkId>(l)).prop_delay.us());
  }
}

TEST(GeneratorsTest, DotExportRefusesGeneratedScale) {
  const Topology big =
      build(GraphSpec{"ba"}.with_nodes(3000).with_seed(1));
  try {
    (void)to_dot(big);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dot export refused"),
              std::string::npos);
  }
  // At or under the cap it still works.
  const Topology small = build(GraphSpec{"ring"}.with_nodes(8));
  EXPECT_NE(to_dot(small).find("graph arpanet"), std::string::npos);
}

}  // namespace
}  // namespace arpanet::net
