#include <gtest/gtest.h>

#include "src/traffic/poisson_source.h"
#include "src/traffic/traffic_matrix.h"

namespace arpanet::traffic {
namespace {

TEST(TrafficMatrixTest, UniformSplitsEvenly) {
  const TrafficMatrix m = TrafficMatrix::uniform(4, 1200.0);
  EXPECT_NEAR(m.total_bps(), 1200.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 100.0);  // 12 ordered pairs
  EXPECT_DOUBLE_EQ(m.at(3, 2), 100.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(TrafficMatrixTest, SetAddValidate) {
  TrafficMatrix m{3};
  m.set(0, 1, 50.0);
  m.add(0, 1, 25.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 75.0);
  EXPECT_THROW(m.set(1, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(m.set(0, 2, -1.0), std::invalid_argument);
}

TEST(TrafficMatrixTest, ScaleAndNormalize) {
  TrafficMatrix m = TrafficMatrix::uniform(3, 600.0);
  m.scale(2.0);
  EXPECT_NEAR(m.total_bps(), 1200.0, 1e-9);
  m.normalize_total(300.0);
  EXPECT_NEAR(m.total_bps(), 300.0, 1e-9);
}

TEST(TrafficMatrixTest, GravityProportionalToWeights) {
  const TrafficMatrix m = TrafficMatrix::gravity({1.0, 2.0, 1.0}, 1000.0);
  EXPECT_NEAR(m.total_bps(), 1000.0, 1e-9);
  // Pair (0,1) has weight 2, pair (0,2) weight 1.
  EXPECT_NEAR(m.at(0, 1) / m.at(0, 2), 2.0, 1e-9);
}

TEST(TrafficMatrixTest, PeakHourIsDeterministicAndSkewed) {
  const TrafficMatrix a = TrafficMatrix::peak_hour(20, 1e6, util::Rng{5});
  const TrafficMatrix b = TrafficMatrix::peak_hour(20, 1e6, util::Rng{5});
  EXPECT_NEAR(a.total_bps(), 1e6, 1e-3);
  double max_pair = 0;
  double min_pair = 1e18;
  for (net::NodeId s = 0; s < 20; ++s) {
    for (net::NodeId d = 0; d < 20; ++d) {
      EXPECT_DOUBLE_EQ(a.at(s, d), b.at(s, d));
      if (s == d) continue;
      max_pair = std::max(max_pair, a.at(s, d));
      min_pair = std::min(min_pair, a.at(s, d));
    }
  }
  // Skew: the busiest pair is much larger than the quietest.
  EXPECT_GT(max_pair / min_pair, 5.0);
}

TEST(PoissonProcessTest, MeanGapMatchesRate) {
  PoissonProcess p{50.0, util::Rng{31}};  // 50 pkts/sec
  double total = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) total += p.next_gap().sec();
  EXPECT_NEAR(total / n, 0.02, 0.001);
}

TEST(PoissonProcessTest, RejectsZeroRate) {
  EXPECT_THROW(PoissonProcess(0.0, util::Rng{1}), std::invalid_argument);
}

TEST(PacketSizerTest, MeanAndFloor) {
  PacketSizer sizer{600.0};
  util::Rng rng{37};
  double total = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double bits = sizer.sample(rng);
    EXPECT_GE(bits, 32.0);
    total += bits;
  }
  EXPECT_NEAR(total / n, 600.0, 5.0);
}

TEST(PacketSizerTest, RejectsMeanBelowFloor) {
  EXPECT_THROW(PacketSizer(10.0, 32.0), std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::traffic
