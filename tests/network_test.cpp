// Integration tests: PSNs + SPF + metrics + flooding + traffic, end to end.

#include "src/sim/network.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

namespace arpanet::sim {
namespace {

using metrics::MetricKind;
using net::LineType;
using util::SimTime;

net::Topology two_nodes() {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  t.add_duplex(a, b, LineType::kTerrestrial56, SimTime::from_ms(10));
  return t;
}

net::Topology line3() {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_duplex(a, b, LineType::kTerrestrial56, SimTime::from_ms(5));
  t.add_duplex(b, c, LineType::kTerrestrial56, SimTime::from_ms(5));
  return t;
}

TEST(NetworkTest, DeliversPacketsOnPointToPoint) {
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.metric = MetricKind::kHnSpf;
  Network net{topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(2, 10e3));  // light load
  net.run_for(SimTime::from_sec(60));
  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 500);
  EXPECT_EQ(s.packets_dropped_queue, 0);
  EXPECT_EQ(s.packets_dropped_unreachable, 0);
  EXPECT_DOUBLE_EQ(s.path_hops.mean(), 1.0);
  // One-way delay: ~10 ms prop + ~10.7 ms transmission + light queueing.
  EXPECT_GT(s.one_way_delay_ms.mean(), 15.0);
  EXPECT_LT(s.one_way_delay_ms.mean(), 40.0);
}

TEST(NetworkTest, ForwardsAcrossIntermediateNode) {
  const net::Topology topo = line3();
  NetworkConfig cfg;
  Network net{topo, cfg};
  traffic::TrafficMatrix m{3};
  m.set(0, 2, 5e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_delivered, 200);
  EXPECT_DOUBLE_EQ(net.stats().path_hops.mean(), 2.0);
  EXPECT_DOUBLE_EQ(net.stats().min_hops.mean(), 2.0);
}

TEST(NetworkTest, DeterministicForSeed) {
  const net::Topology topo = line3();
  auto run = [&](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.seed = seed;
    Network net{topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::uniform(3, 30e3));
    net.run_for(SimTime::from_sec(120));
    return std::tuple{net.stats().packets_delivered,
                      net.stats().one_way_delay_ms.mean(),
                      net.stats().updates_originated};
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(std::get<0>(run(1)), std::get<0>(run(2)));
}

TEST(NetworkTest, OverloadCausesQueueDrops) {
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.queue_capacity = 10;
  Network net{topo, cfg};
  // 2x the 56 kb/s capacity in one direction.
  traffic::TrafficMatrix m{2};
  m.set(0, 1, 112e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_dropped_queue, 100);
  // Drop series recorded them in time buckets.
  double total = 0;
  for (const double v : net.drop_series().values()) total += v;
  EXPECT_DOUBLE_EQ(total,
                   static_cast<double>(net.stats().packets_dropped_queue));
}

TEST(NetworkTest, RoutingUpdatesFlowAndAreCounted) {
  const net::Topology topo = line3();
  NetworkConfig cfg;
  Network net{topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(3, 20e3));
  net.run_for(SimTime::from_sec(120));
  const NetworkStats& s = net.stats();
  // The 50 s reliability rule alone forces ~2+ updates per node.
  EXPECT_GE(s.updates_originated, 6);
  EXPECT_GT(s.update_packets_sent, s.updates_originated);
}

TEST(NetworkTest, CostsPropagateToAllNodes) {
  const net::Topology topo = line3();
  NetworkConfig cfg;
  cfg.metric = MetricKind::kHnSpf;
  Network net{topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(3, 20e3));
  net.run_for(SimTime::from_sec(180));
  // After several measurement periods, node 2's view of link 0 (node 0's
  // outgoing link) equals what node 0 last reported.
  const double reported = net.psn(0).reported_cost(0);
  EXPECT_DOUBLE_EQ(net.psn(2).spf().costs()[0], reported);
  EXPECT_DOUBLE_EQ(net.psn(1).spf().costs()[0], reported);
}

TEST(NetworkTest, HnCostsEaseInFromMax) {
  const net::Topology topo = two_nodes();
  NetworkConfig cfg;
  cfg.metric = MetricKind::kHnSpf;
  cfg.track_reported_costs = true;
  Network net{topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(2, 5e3));
  net.run_for(SimTime::from_sec(120));
  const auto& trace = net.reported_cost_trace(0);
  ASSERT_GE(trace.size(), 3u);
  // Starts high (eased in from 90) and declines toward the floor (~31).
  EXPECT_GT(trace.front().second, 70.0);
  EXPECT_LT(trace.back().second, 40.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].second, trace[i - 1].second);
  }
}

TEST(NetworkTest, TrunkDownReroutesTraffic) {
  // Square: a-b-d and a-c-d. Kill a-b; traffic a->d must keep flowing via c.
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  const auto ab = t.add_duplex(a, b, LineType::kTerrestrial56);
  t.add_duplex(a, c, LineType::kTerrestrial56);
  t.add_duplex(b, d, LineType::kTerrestrial56);
  t.add_duplex(c, d, LineType::kTerrestrial56);

  NetworkConfig cfg;
  cfg.metric = MetricKind::kHnSpf;
  Network net{t, cfg};
  traffic::TrafficMatrix m{4};
  m.set(a, d, 10e3);
  net.add_traffic(m);
  net.run_for(SimTime::from_sec(60));
  net.set_trunk_up(ab, false);
  net.run_for(SimTime::from_sec(30));  // let the update flood + reroute
  net.reset_stats();
  net.run_for(SimTime::from_sec(120));
  const NetworkStats& s = net.stats();
  EXPECT_GT(s.packets_delivered, 500);
  // All deliveries go the c way: still 2 hops.
  EXPECT_DOUBLE_EQ(s.path_hops.mean(), 2.0);
  // And the b-side trunk is idle.
  const std::size_t bucket = static_cast<std::size_t>(
      (net.now() - SimTime::from_sec(60)).us() / cfg.stats_bucket.us());
  EXPECT_DOUBLE_EQ(net.link_utilization(t.link(ab).id, bucket), 0.0);
}

TEST(NetworkTest, TrunkBackUpIsEasedIn) {
  net::Topology t = two_nodes();
  // Second parallel trunk so the network stays connected.
  const auto extra = t.add_duplex(0, 1, LineType::kTerrestrial56);
  NetworkConfig cfg;
  cfg.metric = MetricKind::kHnSpf;
  Network net{t, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(2, 10e3));
  net.run_for(SimTime::from_sec(100));
  net.set_trunk_up(extra, false);
  net.run_for(SimTime::from_sec(100));
  EXPECT_DOUBLE_EQ(net.psn(0).reported_cost(extra), Psn::kDownLinkCost);
  net.set_trunk_up(extra, true);
  // Immediately after up: advertised at its maximum cost (ease-in).
  EXPECT_DOUBLE_EQ(net.psn(0).reported_cost(extra), 90.0);
  net.run_for(SimTime::from_sec(100));
  EXPECT_LT(net.psn(0).reported_cost(extra), 90.0);
}

TEST(NetworkTest, IndicatorsAreConsistent) {
  const net::Topology topo = line3();
  NetworkConfig cfg;
  Network net{topo, cfg};
  net.add_traffic(traffic::TrafficMatrix::uniform(3, 30e3));
  net.run_for(SimTime::from_sec(60));
  net.reset_stats();
  net.run_for(SimTime::from_sec(120));
  const auto ind = net.indicators("test");
  EXPECT_NEAR(ind.internode_traffic_kbps, 30.0, 6.0);
  EXPECT_GT(ind.round_trip_delay_ms, 0.0);
  EXPECT_GE(ind.actual_path_hops, ind.minimum_path_hops);
  EXPECT_GT(ind.update_period_per_node_sec, 0.0);
  // 50 s reliability cap, plus slack for the staggered period phases.
  EXPECT_LE(ind.update_period_per_node_sec, 55.0);
}

TEST(NetworkTest, MetricKindsAllRun) {
  const net::Topology topo = line3();
  for (const MetricKind kind :
       {MetricKind::kMinHop, MetricKind::kDspf, MetricKind::kHnSpf}) {
    NetworkConfig cfg;
    cfg.metric = kind;
    Network net{topo, cfg};
    net.add_traffic(traffic::TrafficMatrix::uniform(3, 20e3));
    net.run_for(SimTime::from_sec(60));
    EXPECT_GT(net.stats().packets_delivered, 100) << to_string(kind);
  }
}

TEST(NetworkTest, RejectsDisconnectedTopologyAndBadMatrix) {
  net::Topology t;
  t.add_node("a");
  t.add_node("b");
  EXPECT_THROW((Network{t, NetworkConfig{}}), std::invalid_argument);

  const net::Topology ok = two_nodes();
  Network net{ok, NetworkConfig{}};
  EXPECT_THROW(net.add_traffic(traffic::TrafficMatrix{5}),
               std::invalid_argument);
}

TEST(ScenarioTest, RunScenarioProducesIndicators) {
  const net::Topology topo = line3();
  ScenarioConfig cfg;
  cfg.offered_load_bps = 20e3;
  cfg.warmup = SimTime::from_sec(30);
  cfg.window = SimTime::from_sec(60);
  cfg.shape = TrafficShape::kUniform;
  const ScenarioResult r = run_scenario(topo, cfg, "x");
  EXPECT_EQ(r.indicators.label, "x");
  EXPECT_GT(r.stats.packets_delivered, 100);
}

}  // namespace
}  // namespace arpanet::sim
