// ScenarioConfig: fluent builder validation, label derivation, and the
// aggregate-init compatibility the transition depends on.

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

namespace arpanet::sim {
namespace {

using metrics::MetricKind;
using util::SimTime;

TEST(ScenarioBuilderTest, ChainsAndSetsEveryField) {
  NetworkConfig net;
  net.queue_capacity = 25;
  const ScenarioConfig cfg = ScenarioConfig{}
                                 .with_metric(MetricKind::kDspf)
                                 .with_load_bps(414e3)
                                 .with_shape(TrafficShape::kUniform)
                                 .with_warmup(SimTime::from_sec(30))
                                 .with_window(SimTime::from_sec(90))
                                 .with_seed(0xabcd)
                                 .with_label("D-SPF(Aug)")
                                 .with_network(net);
  EXPECT_EQ(cfg.metric, MetricKind::kDspf);
  EXPECT_DOUBLE_EQ(cfg.offered_load_bps, 414e3);
  EXPECT_EQ(cfg.shape, TrafficShape::kUniform);
  EXPECT_EQ(cfg.warmup, SimTime::from_sec(30));
  EXPECT_EQ(cfg.window, SimTime::from_sec(90));
  EXPECT_EQ(cfg.seed, 0xabcdu);
  EXPECT_EQ(cfg.label, "D-SPF(Aug)");
  EXPECT_EQ(cfg.network.queue_capacity, 25);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ScenarioBuilderTest, RejectsNegativeLoad) {
  EXPECT_THROW((void)ScenarioConfig{}.with_load_bps(-1.0),
               std::invalid_argument);
  // Zero load is a legal idle scenario.
  EXPECT_NO_THROW((void)ScenarioConfig{}.with_load_bps(0.0));
}

TEST(ScenarioBuilderTest, RejectsZeroOrNegativeWindow) {
  EXPECT_THROW((void)ScenarioConfig{}.with_window(SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioConfig{}.with_window(SimTime::from_sec(-5)),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioConfig{}.with_warmup(SimTime::from_sec(-1)),
               std::invalid_argument);
  // Zero warmup is legal (measure from cold start).
  EXPECT_NO_THROW((void)ScenarioConfig{}.with_warmup(SimTime::zero()));
}

TEST(ScenarioBuilderTest, RejectsNullMetricFactory) {
  EXPECT_THROW((void)ScenarioConfig{}.with_metric_factory(nullptr),
               std::invalid_argument);
}

TEST(ScenarioBuilderTest, FailedSetterLeavesConfigUnchanged) {
  ScenarioConfig cfg;
  const double before = cfg.offered_load_bps;
  EXPECT_THROW((void)cfg.with_load_bps(-7.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cfg.offered_load_bps, before);
}

TEST(ScenarioBuilderTest, ValidateCatchesDirectFieldWrites) {
  ScenarioConfig cfg;
  cfg.offered_load_bps = -10.0;  // aggregate writes bypass the setters
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  ScenarioConfig zero_window;
  zero_window.window = SimTime::zero();
  EXPECT_THROW(zero_window.validate(), std::invalid_argument);

  ScenarioConfig bad_queue;
  bad_queue.network.queue_capacity = 0;
  EXPECT_THROW(bad_queue.validate(), std::invalid_argument);
}

TEST(ScenarioBuilderTest, AggregateInitStillWorks) {
  // The transition keeps ScenarioConfig an aggregate: existing call sites
  // use field assignment and designated initializers.
  // GCC's -Wmissing-field-initializers fires on designated initializers even
  // though the omitted members take their defaulted values — the exact
  // behaviour this test asserts. Silence it for the demonstration.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
  const ScenarioConfig designated{.metric = MetricKind::kMinHop,
                                  .offered_load_bps = 123e3,
                                  .shape = TrafficShape::kUniform};
#pragma GCC diagnostic pop
  EXPECT_EQ(designated.metric, MetricKind::kMinHop);
  EXPECT_DOUBLE_EQ(designated.offered_load_bps, 123e3);

  ScenarioConfig assigned;
  assigned.metric = MetricKind::kDspf;
  assigned.offered_load_bps = 366e3;
  EXPECT_NO_THROW(assigned.validate());
}

TEST(ScenarioBuilderTest, EffectiveLabelPrefersExplicitThenFactoryThenKind) {
  ScenarioConfig cfg;
  cfg.metric = MetricKind::kDspf;
  EXPECT_EQ(cfg.effective_label(), "D-SPF");

  cfg.with_metric_factory(
      std::make_shared<metrics::KindMetricFactory>(MetricKind::kMinHop));
  EXPECT_EQ(cfg.effective_label(), "min-hop");

  cfg.with_label("custom");
  EXPECT_EQ(cfg.effective_label(), "custom");
}

TEST(ScenarioBuilderTest, ExplicitMatrixMustMatchTopology) {
  const net::Topology topo = net::builders::ring(4);
  ScenarioConfig cfg = ScenarioConfig{}.with_matrix(traffic::TrafficMatrix{7});
  EXPECT_THROW((void)scenario_matrix(topo, cfg), std::invalid_argument);

  traffic::TrafficMatrix m{4};
  m.set(0, 2, 10e3);
  cfg.with_matrix(m);
  const auto built = scenario_matrix(topo, cfg);
  EXPECT_DOUBLE_EQ(built.at(0, 2), 10e3);
  EXPECT_DOUBLE_EQ(built.total_bps(), 10e3);
}

TEST(ScenarioBuilderTest, RunScenarioValidatesBeforeRunning) {
  const net::Topology topo = net::builders::ring(4);
  ScenarioConfig cfg;
  cfg.window = SimTime::zero();
  EXPECT_THROW((void)run_scenario(topo, cfg, "x"), std::invalid_argument);
}

TEST(ScenarioBuilderTest, RunScenarioReportsTelemetryAndDefaultLabel) {
  const net::Topology topo = net::builders::ring(4);
  const ScenarioConfig cfg = ScenarioConfig{}
                                 .with_shape(TrafficShape::kUniform)
                                 .with_load_bps(40e3)
                                 .with_warmup(SimTime::from_sec(10))
                                 .with_window(SimTime::from_sec(30));
  const ScenarioResult r = run_scenario(topo, cfg, /*label=*/"");
  EXPECT_EQ(r.indicators.label, "HN-SPF");  // derived from the default metric
  EXPECT_GT(r.events_processed, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.events_per_sec(), 0.0);
  EXPECT_GT(r.stats.packets_delivered, 0);
}

}  // namespace
}  // namespace arpanet::sim
