#include "src/core/line_params.h"

#include <gtest/gtest.h>

namespace arpanet::core {
namespace {

using net::LineType;

class AllLineTypes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(LineTypes, AllLineTypes,
                         ::testing::Range(0, net::kLineTypeCount));

/// Section 4.4: "the maximum value for a particular line is approximately
/// three times the minimum value for a zero-propagation-delay line of the
/// same type."
TEST_P(AllLineTypes, MaxIsThreeTimesZeroPropMin) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(static_cast<LineType>(GetParam()));
  EXPECT_NEAR(p.max_cost / p.base_min, 3.0, 1e-9);
}

TEST_P(AllLineTypes, FlatRegionThenLinearRise) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(static_cast<LineType>(GetParam()));
  // Raw cost equals base_min exactly at the threshold and max at 1.
  EXPECT_NEAR(p.raw_cost(p.flat_threshold), p.base_min, 1e-9);
  EXPECT_NEAR(p.raw_cost(1.0), p.max_cost, 1e-9);
  // Below the threshold raw is under the minimum (the clip flattens it).
  EXPECT_LT(p.raw_cost(p.flat_threshold / 2), p.base_min);
}

TEST_P(AllLineTypes, MovementLimitsFollowHalfHopRule) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(static_cast<LineType>(GetParam()));
  // "a little more than a half-hop" up...
  EXPECT_GT(p.up_limit(), p.base_min / 2.0);
  EXPECT_LE(p.up_limit(), p.base_min / 2.0 + 1.0 + 1e-9);
  // ...down exactly one unit less (the march-up asymmetry)...
  EXPECT_NEAR(p.up_limit() - p.down_limit(), 1.0, 1e-9);
  // ...and the update threshold a little less than a half-hop.
  EXPECT_LT(p.change_threshold(), p.base_min / 2.0);
  EXPECT_GT(p.change_threshold(), 0.0);
}

TEST(LineParamsTest, FiftyPercentThresholdFor56kTerrestrial) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(LineType::kTerrestrial56);
  EXPECT_DOUBLE_EQ(p.flat_threshold, 0.5);
  EXPECT_DOUBLE_EQ(p.base_min, 30.0);
  EXPECT_DOUBLE_EQ(p.max_cost, 90.0);
}

TEST(LineParamsTest, MinCostGrowsSlowlyWithPropagation) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(LineType::kTerrestrial56);
  const double zero = p.min_cost(util::SimTime::zero());
  const double terr = p.min_cost(util::SimTime::from_ms(10));
  const double sat = p.min_cost(util::SimTime::from_ms(130));
  EXPECT_DOUBLE_EQ(zero, 30.0);
  EXPECT_GT(terr, zero);
  EXPECT_LT(terr, 35.0);  // "slowly increasing"
  EXPECT_DOUBLE_EQ(sat, 60.0);
  // Capped at 2x: longer propagation doesn't raise it further.
  EXPECT_DOUBLE_EQ(p.min_cost(util::SimTime::from_ms(500)), 60.0);
}

/// Section 4.4 anchor: "a fully utilized 9.6 kb/s line can report a value
/// only about 7 times greater than that by an idle 56 kb/s line."
TEST(LineParamsTest, SaturatedSlowLineVsIdleFastLine) {
  const auto table = LineParamsTable::arpanet_defaults();
  const double max96 = table.for_type(LineType::kTerrestrial9_6).max_cost;
  const double idle56 = table.for_type(LineType::kTerrestrial56).base_min;
  EXPECT_NEAR(max96 / idle56, 7.0, 0.01);
}

/// Section 4.4 anchor: "an idle 56 kb/s satellite line appears more
/// favorable than an idle 9.6 kb/s line."
TEST(LineParamsTest, IdleSatellite56CheaperThanIdle96) {
  const auto table = LineParamsTable::arpanet_defaults();
  const double idle_sat56 = table.for_type(LineType::kSatellite56)
                                .min_cost(util::SimTime::from_ms(130));
  const double idle_terr96 = table.for_type(LineType::kTerrestrial9_6)
                                 .min_cost(util::SimTime::from_ms(10));
  EXPECT_LT(idle_sat56, idle_terr96);
}

/// Section 4.4 anchor: "a 56 kb/s satellite trunk can appear no more than
/// twice as expensive as its terrestrial counterpart" at any utilization.
TEST(LineParamsTest, SatellitePenaltyBoundedByTwo) {
  const auto table = LineParamsTable::arpanet_defaults();
  const LineTypeParams& p = table.for_type(LineType::kSatellite56);
  const double sat_min = p.min_cost(util::SimTime::from_ms(130));
  const double terr_min = p.min_cost(util::SimTime::from_ms(0));
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    const double sat = std::clamp(p.raw_cost(u), sat_min, p.max_cost);
    const double terr = std::clamp(p.raw_cost(u), terr_min, p.max_cost);
    EXPECT_LE(sat / terr, 2.0 + 1e-9) << u;
  }
  // Equal when saturated (satellite bandwidth is used under load).
  EXPECT_DOUBLE_EQ(std::clamp(p.raw_cost(1.0), sat_min, p.max_cost),
                   std::clamp(p.raw_cost(1.0), terr_min, p.max_cost));
}

TEST(LineParamsTest, SetOverridesEntry) {
  auto table = LineParamsTable::arpanet_defaults();
  table.set(LineType::kTerrestrial56,
            {.base_min = 10.0, .max_cost = 30.0, .flat_threshold = 0.3});
  EXPECT_DOUBLE_EQ(table.for_type(LineType::kTerrestrial56).base_min, 10.0);
}

}  // namespace
}  // namespace arpanet::core
