#include "src/util/units.h"

#include <gtest/gtest.h>

namespace arpanet::util {
namespace {

TEST(SimTimeTest, FactoriesRoundTrip) {
  EXPECT_EQ(SimTime::from_us(1500).us(), 1500);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(1.5).ms(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::from_sec(2.5).sec(), 2.5);
  EXPECT_EQ(SimTime::from_ms(1.5).us(), 1500);
  EXPECT_EQ(SimTime::from_sec(1.0).us(), 1'000'000);
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().us(), 0);
}

TEST(SimTimeTest, RoundsToNearestMicrosecond) {
  EXPECT_EQ(SimTime::from_ms(0.0006).us(), 1);
  EXPECT_EQ(SimTime::from_ms(0.0004).us(), 0);
}

TEST(SimTimeTest, Arithmetic) {
  const auto a = SimTime::from_ms(10);
  const auto b = SimTime::from_ms(3);
  EXPECT_EQ((a + b).ms(), 13.0);
  EXPECT_EQ((a - b).ms(), 7.0);
  EXPECT_EQ((a * 3).ms(), 30.0);
  auto c = a;
  c += b;
  EXPECT_EQ(c.ms(), 13.0);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::from_ms(1), SimTime::from_ms(2));
  EXPECT_GE(SimTime::from_sec(1), SimTime::from_ms(1000));
  EXPECT_LT(SimTime::from_sec(1), SimTime::max());
}

TEST(DataRateTest, TransmissionTime) {
  const auto rate = DataRate::kbps(56.0);
  // 600 bits at 56 kb/s = 10.714 ms.
  EXPECT_NEAR(rate.transmission_time(600).ms(), 10.714, 0.001);
  EXPECT_DOUBLE_EQ(rate.bits_per_sec(), 56'000.0);
  EXPECT_DOUBLE_EQ(rate.kilobits_per_sec(), 56.0);
}

TEST(DataRateTest, FasterLineShorterTime) {
  const auto slow = DataRate::kbps(9.6).transmission_time(600);
  const auto fast = DataRate::kbps(230.4).transmission_time(600);
  EXPECT_GT(slow, fast);
  EXPECT_NEAR(slow.ms(), 62.5, 0.01);
}

}  // namespace
}  // namespace arpanet::util
