// MetricFactory: the open injection point behind NetworkConfig. Covers the
// closed-set KindMetricFactory (parity with make_metric), the ad-hoc
// FunctionMetricFactory, and end-to-end injection through a scenario run.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/line_params.h"
#include "src/metrics/dspf_metric.h"
#include "src/metrics/metric_factory.h"
#include "src/metrics/minhop_metric.h"
#include "src/net/builders/builders.h"
#include "src/sim/scenario.h"

namespace arpanet::metrics {
namespace {

using sim::ScenarioConfig;
using sim::TrafficShape;
using util::SimTime;

net::Link test_link() {
  net::Topology topo = net::builders::ring(4);
  return topo.links()[0];
}

TEST(KindMetricFactoryTest, MatchesMakeMetricForEveryKind) {
  const net::Link link = test_link();
  const core::LineParamsTable params;
  for (MetricKind kind :
       {MetricKind::kMinHop, MetricKind::kDspf, MetricKind::kHnSpf}) {
    const KindMetricFactory factory{kind};
    EXPECT_EQ(factory.kind(), kind);
    EXPECT_EQ(factory.name(), to_string(kind));

    const auto from_factory = factory.create(link, params);
    const auto from_free_fn = make_metric(kind, link, params);
    ASSERT_NE(from_factory, nullptr);
    ASSERT_NE(from_free_fn, nullptr);
    EXPECT_DOUBLE_EQ(from_factory->initial_cost(), from_free_fn->initial_cost());
    EXPECT_DOUBLE_EQ(from_factory->change_threshold(),
                     from_free_fn->change_threshold());
    EXPECT_EQ(from_factory->threshold_decays(), from_free_fn->threshold_decays());
  }
}

TEST(KindMetricFactoryTest, BoundsMatchTheBuiltInMetricRanges) {
  const net::Link link = test_link();
  const core::LineParamsTable params;

  const auto minhop = KindMetricFactory{MetricKind::kMinHop}.bounds(link, params);
  ASSERT_TRUE(minhop.has_value());
  EXPECT_DOUBLE_EQ(minhop->min_cost, MinHopMetric{}.initial_cost());
  EXPECT_DOUBLE_EQ(minhop->max_cost, MinHopMetric{}.initial_cost());

  const auto dspf = KindMetricFactory{MetricKind::kDspf}.bounds(link, params);
  ASSERT_TRUE(dspf.has_value());
  EXPECT_DOUBLE_EQ(dspf->min_cost,
                   (DspfMetric{link.rate, link.prop_delay}.bias()));
  EXPECT_DOUBLE_EQ(dspf->max_cost, DspfMetric::kMaxUnits);

  const auto hnspf = KindMetricFactory{MetricKind::kHnSpf}.bounds(link, params);
  ASSERT_TRUE(hnspf.has_value());
  const core::LineTypeParams& p = params.for_type(link.type);
  EXPECT_DOUBLE_EQ(hnspf->min_cost, p.min_cost(link.prop_delay));
  EXPECT_DOUBLE_EQ(hnspf->max_cost, p.max_cost);
}

TEST(FunctionMetricFactoryTest, InvokesTheCallable) {
  int calls = 0;
  const FunctionMetricFactory factory{
      "fixed-cost", [&calls](const net::Link&, const core::LineParamsTable&) {
        ++calls;
        return std::make_unique<MinHopMetric>(3.0);
      }};
  EXPECT_EQ(factory.name(), "fixed-cost");

  const auto metric = factory.create(test_link(), core::LineParamsTable{});
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(metric->initial_cost(), 3.0);
}

TEST(FunctionMetricFactoryTest, RejectsNullCallableAndNullResult) {
  EXPECT_THROW((FunctionMetricFactory{"null", nullptr}),
               std::invalid_argument);

  const FunctionMetricFactory returns_null{
      "bad", [](const net::Link&, const core::LineParamsTable&) {
        return std::unique_ptr<LinkMetric>{};
      }};
  EXPECT_THROW((void)returns_null.create(test_link(), core::LineParamsTable{}),
               std::logic_error);
}

TEST(MetricFactoryInjectionTest, NetworkUsesInjectedFactory) {
  // A custom factory that reproduces min-hop exactly must yield a simulation
  // bit-identical to selecting MetricKind::kMinHop — same code path, same
  // RNG stream, only the construction seam differs.
  const net::Topology topo = net::builders::two_region(4).topo;

  ScenarioConfig by_kind = ScenarioConfig{}
                               .with_metric(MetricKind::kMinHop)
                               .with_shape(TrafficShape::kUniform)
                               .with_load_bps(40e3)
                               .with_warmup(SimTime::from_sec(10))
                               .with_window(SimTime::from_sec(30));

  ScenarioConfig by_factory = by_kind;
  by_factory.with_metric_factory(std::make_shared<FunctionMetricFactory>(
      "custom-min-hop",
      [](const net::Link& link, const core::LineParamsTable& params) {
        return make_metric(MetricKind::kMinHop, link, params);
      }));

  const auto kind_result = sim::run_scenario(topo, by_kind, "");
  const auto factory_result = sim::run_scenario(topo, by_factory, "");

  EXPECT_EQ(kind_result.stats.packets_generated,
            factory_result.stats.packets_generated);
  EXPECT_EQ(kind_result.stats.packets_delivered,
            factory_result.stats.packets_delivered);
  EXPECT_DOUBLE_EQ(kind_result.indicators.round_trip_delay_ms,
                   factory_result.indicators.round_trip_delay_ms);
  EXPECT_EQ(kind_result.events_processed, factory_result.events_processed);

  // The injected factory names the result.
  EXPECT_EQ(factory_result.indicators.label, "custom-min-hop");
  EXPECT_EQ(kind_result.indicators.label, "min-hop");
}

ScenarioConfig custom_factory_config(double declared_min, double declared_max) {
  // A fixed-cost custom metric whose factory declares absolute bounds; the
  // invariant layer must validate its costs against the declaration instead
  // of only recognizing the built-in kinds.
  return ScenarioConfig{}
      .with_metric_factory(std::make_shared<FunctionMetricFactory>(
          "fixed-5",
          [](const net::Link&, const core::LineParamsTable&) {
            return std::make_unique<MinHopMetric>(5.0);
          },
          [declared_min, declared_max](const net::Link&,
                                       const core::LineParamsTable&) {
            return CostBounds{declared_min, declared_max};
          }))
      .with_shape(TrafficShape::kUniform)
      .with_load_bps(40e3)
      .with_warmup(SimTime::from_sec(10))
      .with_window(SimTime::from_sec(30));
}

TEST(MetricFactoryBoundsTest, AuditValidatesCustomFactoryAgainstItsBounds) {
  const net::Topology topo = net::builders::ring(4);
  // Honest declaration: the constant cost 5 lies inside [4, 6], so the
  // end-of-run audit bounds-checks every link and passes.
  const auto result =
      sim::run_scenario(topo, custom_factory_config(4.0, 6.0), "");
  EXPECT_EQ(result.audit.costs_checked, static_cast<long>(topo.link_count()));
}

TEST(MetricFactoryBoundsTest, DeathWhenCostsViolateDeclaredBounds) {
  const net::Topology topo = net::builders::ring(4);
  // The factory promises [10, 20] but its metric reports the constant 5:
  // the audit must treat the factory's declaration as binding and abort.
  EXPECT_DEATH(
      (void)sim::run_scenario(topo, custom_factory_config(10.0, 20.0), ""),
      "below line-type minimum");
}

}  // namespace
}  // namespace arpanet::metrics
