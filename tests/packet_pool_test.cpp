// The pooled packet slab (sim/packet_pool.h) and the ring-buffer output
// queues (sim/ring_queue.h) behind the PSN hot paths.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/sim/packet.h"
#include "src/sim/packet_pool.h"
#include "src/sim/ring_queue.h"

namespace arpanet::sim {
namespace {

TEST(PacketPoolTest, AcquireGrowsThenRecyclesSlots) {
  PacketPool pool;
  const PacketHandle a = pool.acquire();
  const PacketHandle b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_EQ(pool.in_use(), 2u);

  pool.release(a);
  EXPECT_EQ(pool.in_use(), 1u);
  const PacketHandle c = pool.acquire();
  EXPECT_EQ(c, a) << "freed slot must be recycled before the slab grows";
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.acquired(), 3u);
}

TEST(PacketPoolTest, PeakInUseIsAHighWaterMark) {
  PacketPool pool;
  std::vector<PacketHandle> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.peak_in_use(), 5u);
  for (const PacketHandle h : held) pool.release(h);
  EXPECT_EQ(pool.in_use(), 0u);
  (void)pool.acquire();
  EXPECT_EQ(pool.peak_in_use(), 5u);
}

TEST(PacketPoolTest, SlotAddressesAreStableAcrossGrowth) {
  PacketPool pool;
  const PacketHandle first = pool.acquire();
  Packet* addr = &pool.at(first);
  // Force the slab through many growth steps; a deque never relocates
  // existing elements, so the first slot must stay put.
  for (int i = 0; i < 1000; ++i) (void)pool.acquire();
  EXPECT_EQ(&pool.at(first), addr);
}

TEST(PacketPoolTest, ReleaseDropsPooledUpdateReferences) {
  PacketPool pool;
  UpdatePool updates;
  pool.attach_update_pool(&updates);

  const UpdateHandle uh = updates.acquire();
  updates.at(uh).origin = 7;
  EXPECT_EQ(updates.in_use(), 1u);

  const PacketHandle h = pool.acquire();
  pool.at(h).update = uh;
  pool.release(h);
  EXPECT_EQ(updates.in_use(), 0u)
      << "a parked slot must not pin routing-update slots";

  // The freed slot is recycled with its reports capacity intact and its
  // identity fields reset.
  const UpdateHandle again = updates.acquire();
  EXPECT_EQ(again, uh);
  EXPECT_EQ(updates.at(again).origin, net::kInvalidNode);
  EXPECT_EQ(updates.recycled(), 1u);
}

TEST(UpdatePoolTest, AddRefKeepsSlotAliveUntilLastRelease) {
  UpdatePool updates;
  const UpdateHandle h = updates.acquire();
  updates.add_ref(h);
  updates.release(h);
  EXPECT_EQ(updates.in_use(), 1u) << "one reference should still be live";
  updates.release(h);
  EXPECT_EQ(updates.in_use(), 0u);
}

TEST(PacketPoolTest, AcquireWithPacketMovesItIn) {
  PacketPool pool;
  Packet pkt;
  pkt.dst = 3;
  pkt.bits = 568.0;
  const PacketHandle h = pool.acquire(std::move(pkt));
  EXPECT_EQ(pool.at(h).dst, 3u);
  EXPECT_DOUBLE_EQ(pool.at(h).bits, 568.0);
}

TEST(RingQueueTest, FifoOrderAcrossWrapAround) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  // Fill, drain partially, refill past the old tail so the ring wraps, then
  // grow: order must stay FIFO throughout.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  for (int i = 6; i < 20; ++i) q.push_back(i);  // forces growth while wrapped
  EXPECT_EQ(q.size(), 16u);
  for (int i = 4; i < 20; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, CapacityIsPowerOfTwoAndReused) {
  RingQueue<int> q;
  for (int i = 0; i < 9; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  EXPECT_EQ(cap & (cap - 1), 0u) << "capacity must be a power of two";
  EXPECT_GE(cap, 9u);
  // Steady-state churn below capacity must not grow the buffer.
  for (int i = 0; i < 1000; ++i) {
    q.pop_front();
    q.push_back(100 + i);
  }
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueueTest, PopResetsTheSlot) {
  RingQueue<std::shared_ptr<int>> q;
  auto payload = std::make_shared<int>(5);
  std::weak_ptr<int> watch = payload;
  q.push_back(std::move(payload));
  q.pop_front();
  EXPECT_TRUE(watch.expired()) << "popped slot must not pin its old value";
}

}  // namespace
}  // namespace arpanet::sim
