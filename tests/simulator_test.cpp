#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace arpanet::sim {
namespace {

using util::SimTime;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ms(30), [&] { order.push_back(3); });
  q.schedule(SimTime::from_ms(10), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTime at;
    q.pop(at).fire();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(SimTime::from_ms(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTime at;
    q.pop(at).fire();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_ms(42), [&] { seen = sim.now(); });
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(seen, SimTime::from_ms(42));
  EXPECT_EQ(sim.now(), SimTime::from_sec(1));  // left at the horizon
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(SimTime::from_ms(10), [&] {
    times.push_back(sim.now().ms());
    sim.schedule_in(SimTime::from_ms(10), [&] { times.push_back(sim.now().ms()); });
  });
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(times, (std::vector<double>{10.0, 20.0}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  sim.schedule_at(SimTime::from_ms(999), [&] { ++fired; });
  sim.run_until(SimTime::from_ms(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(SimTime::from_sec(2));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::from_ms(50), [] {});
  sim.run_until(SimTime::from_ms(100));
  EXPECT_THROW(sim.schedule_at(SimTime::from_ms(10), [] {}), std::logic_error);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  sim.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, EventsCanCascadeAtSameTime) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(SimTime::zero(), recurse);
  };
  sim.schedule_at(SimTime::from_ms(1), recurse);
  sim.run_until(SimTime::from_ms(2));
  EXPECT_EQ(depth, 5);
}

}  // namespace
}  // namespace arpanet::sim
