// tools/bench_report's engine (src/obs/bench_report.h): the smoke battery
// must validate, produce byte-identical masked JSON at any sweep thread
// count, and match the checked-in golden file tests/golden/bench_smoke.json
// (regenerate with: bench_report --scenario=smoke --threads=1 --mask
// --out=tests/golden/bench_smoke.json — or copy the diff this test prints).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/bench_report.h"

namespace arpanet::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchBatteryTest, KnownBatteriesExpandAndUnknownThrows) {
  const auto smoke = bench_battery("smoke");
  EXPECT_EQ(smoke.size(), 3u);
  const auto full = bench_battery("battery");
  EXPECT_EQ(full.size(), 4u);
  for (const BenchScenario& s : full) {
    EXPECT_GT(s.topo.node_count(), 0u);
    EXPECT_GT(s.offered_load_bps, 0.0);
    EXPECT_GT(s.window, util::SimTime::zero());
  }
  EXPECT_THROW((void)bench_battery("nope"), std::invalid_argument);
}

TEST(MaskWallTimeTest, BlanksExactlyTheWallTimeFields) {
  const std::string doc =
      "{\n"
      "  \"elapsed_sec\": 1.25,\n"
      "  \"wall_sec\": 0.5,\n"
      "  \"events_per_sec\": 123456.7,\n"
      "  \"events\": 42\n"
      "}";
  EXPECT_EQ(mask_wall_time_fields(doc),
            "{\n"
            "  \"elapsed_sec\": 0,\n"
            "  \"wall_sec\": 0,\n"
            "  \"events_per_sec\": 0,\n"
            "  \"events\": 42\n"
            "}");
}

TEST(BenchReportTest, SmokeBatteryValidatesAndMatchesGolden) {
  const BenchReport report = run_bench_battery("smoke", /*threads=*/1);
  ASSERT_EQ(report.cells.size(), 6u);  // 3 scenarios x {HN-SPF, D-SPF}

  const auto errors = report.validate();
  EXPECT_TRUE(errors.empty()) << "validation failed: " << errors.front();

  // The acceptance bar for the counters themselves: real full, incremental
  // AND skipped SPF work in every cell.
  for (const BenchCell& c : report.cells) {
    EXPECT_GT(c.counters.spf_full, 0u) << c.topology << "/" << c.metric;
    EXPECT_GT(c.counters.spf_incremental, 0u) << c.topology << "/" << c.metric;
    EXPECT_GT(c.counters.spf_skipped, 0u) << c.topology << "/" << c.metric;
    EXPECT_GT(c.events_per_sec(), 0.0) << c.topology << "/" << c.metric;
    // Schema v5: the stability section is live exactly where faults run.
    if (c.fault_spec.empty()) {
      EXPECT_EQ(c.stability_faults_applied, 0) << c.topology << "/" << c.metric;
    } else {
      EXPECT_GT(c.stability_faults_applied, 0) << c.topology << "/" << c.metric;
      EXPECT_GT(c.stability_route_changes, 0) << c.topology << "/" << c.metric;
    }
  }

  // Schema v6: the shard-scaling section runs the same scenario at K=1 and
  // K=4 and must report the identical event total for both — the sharded
  // engine's equivalence contract, pinned here and in validate().
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].shards, 1);
  EXPECT_EQ(report.shards[1].shards, 4);
  EXPECT_EQ(report.shards[0].events, report.shards[1].events);
  EXPECT_GT(report.shards[0].events, 0u);

  const std::string masked = mask_wall_time_fields(report.json());
  const std::string golden =
      read_file(std::string{GOLDEN_DIR} + "/bench_smoke.json");
  EXPECT_EQ(masked, golden)
      << "bench_report smoke output drifted from tests/golden/"
         "bench_smoke.json; if the change is intentional, regenerate the "
         "golden file";
}

TEST(BenchReportTest, MaskedJsonIsThreadCountIndependent) {
  const std::string one =
      mask_wall_time_fields(run_bench_battery("smoke", /*threads=*/1).json());
  const std::string four =
      mask_wall_time_fields(run_bench_battery("smoke", /*threads=*/4).json());
  EXPECT_EQ(one, four);
}

TEST(BenchReportTest, ValidateFlagsDeadCells) {
  BenchReport report;
  EXPECT_FALSE(report.validate().empty()) << "empty report must not validate";

  report.battery = "synthetic";
  BenchCell cell;
  cell.topology = "t";
  cell.metric = "m";
  report.cells.push_back(cell);  // all counters zero
  const auto errors = report.validate();
  EXPECT_GE(errors.size(), 4u);
}

}  // namespace
}  // namespace arpanet::obs
