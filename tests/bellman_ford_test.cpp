#include "src/routing/bellman_ford.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/routing/spf.h"

namespace arpanet::routing {
namespace {

using net::LineType;
using net::Topology;

TEST(BellmanFordTest, ConvergesOnRing) {
  const Topology t = net::builders::ring(6);
  DistributedBellmanFord bf{t};
  const std::vector<double> queues(t.link_count(), 0.0);
  const int rounds = bf.run_to_convergence(queues);
  EXPECT_LT(rounds, 10);
  // With zero queues every link metric is the bias (1): distance = hops.
  EXPECT_DOUBLE_EQ(bf.distance(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(bf.distance(0, 1), 1.0);
}

/// With static costs Bellman-Ford must agree with Dijkstra.
TEST(BellmanFordTest, AgreesWithSpfOnStaticCosts) {
  util::Rng rng{77};
  const Topology t = net::builders::random_connected(14, 10, rng);
  std::vector<double> queues(t.link_count());
  for (double& q : queues) q = static_cast<double>(rng.uniform_index(6));

  DistributedBellmanFord bf{t};
  bf.run_to_convergence(queues);

  LinkCosts costs(t.link_count());
  for (std::size_t i = 0; i < costs.size(); ++i) costs[i] = queues[i] + 1.0;
  for (net::NodeId src = 0; src < t.node_count(); ++src) {
    const SpfTree tree = Spf::compute(t, src, costs);
    for (net::NodeId dst = 0; dst < t.node_count(); ++dst) {
      EXPECT_NEAR(bf.distance(src, dst), tree.dist[dst], 1e-9);
    }
  }
}

TEST(BellmanFordTest, NoLoopsAfterConvergence) {
  util::Rng rng{78};
  const Topology t = net::builders::random_connected(12, 8, rng);
  std::vector<double> queues(t.link_count(), 2.0);
  DistributedBellmanFord bf{t};
  bf.run_to_convergence(queues);
  for (net::NodeId s = 0; s < t.node_count(); ++s) {
    for (net::NodeId d = 0; d < t.node_count(); ++d) {
      EXPECT_FALSE(bf.has_loop(s, d));
    }
  }
}

/// The historical failure mode (section 2.1): with a volatile instantaneous
/// queue-length metric, next-hop tables mid-convergence can contain loops.
/// We reproduce a classic bounce: after convergence, the queue on one
/// node's only good link spikes, and for the next round(s) its neighbor
/// still advertises the old (now invalid) short distance — a transient
/// two-node loop.
TEST(BellmanFordTest, VolatileMetricCausesTransientLoops) {
  // Path graph a - b - c - d (built as a "ring" of 4 for simplicity, then
  // we only look at traffic toward d=3).
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, LineType::kTerrestrial56);  // 0,1
  t.add_duplex(b, c, LineType::kTerrestrial56);  // 2,3
  t.add_duplex(c, d, LineType::kTerrestrial56);  // 4,5
  t.add_duplex(a, c, LineType::kTerrestrial56);  // 6,7 alternate path

  DistributedBellmanFord bf{t};
  std::vector<double> queues(t.link_count(), 0.0);
  bf.run_to_convergence(queues);
  EXPECT_FALSE(bf.has_loop(a, d));

  // Queue spike on c->d: c's route to d is suddenly terrible, but b and a
  // still advertise distances computed from the old metric.
  queues[4] = 50.0;
  bool saw_loop = false;
  for (int round = 0; round < 6 && !saw_loop; ++round) {
    bf.run_round(queues);
    for (net::NodeId s = 0; s < t.node_count() && !saw_loop; ++s) {
      saw_loop = bf.has_loop(s, d);
    }
  }
  EXPECT_TRUE(saw_loop);
  // And once the metric is static long enough, the loop resolves.
  bf.run_to_convergence(queues);
  for (net::NodeId s = 0; s < t.node_count(); ++s) {
    EXPECT_FALSE(bf.has_loop(s, d));
  }
}

TEST(BellmanFordTest, RejectsBadInput) {
  const Topology t = net::builders::ring(4);
  EXPECT_THROW(DistributedBellmanFord(t, 0.0), std::invalid_argument);
  DistributedBellmanFord bf{t};
  const std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(bf.run_round(wrong_size), std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::routing
