#include "src/routing/flooding.h"

#include <gtest/gtest.h>

namespace arpanet::routing {
namespace {

RoutingUpdate make_update(net::NodeId origin, std::uint64_t seq) {
  RoutingUpdate u;
  u.origin = origin;
  u.seq = seq;
  u.reports = {{0, 30.0}, {2, 45.0}};
  return u;
}

TEST(FloodingTest, AcceptsFirstUpdateFromOrigin) {
  FloodingState state{5};
  EXPECT_TRUE(state.accept(make_update(1, 1)));
  EXPECT_EQ(state.last_seq(1), 1u);
}

TEST(FloodingTest, RejectsDuplicateAndOlder) {
  FloodingState state{5};
  EXPECT_TRUE(state.accept(make_update(1, 3)));
  EXPECT_FALSE(state.accept(make_update(1, 3)));  // duplicate
  EXPECT_FALSE(state.accept(make_update(1, 2)));  // stale
  EXPECT_TRUE(state.accept(make_update(1, 4)));   // newer
  EXPECT_EQ(state.accepted(), 2);
  EXPECT_EQ(state.duplicates(), 2);
}

TEST(FloodingTest, OriginsAreIndependent) {
  FloodingState state{5};
  EXPECT_TRUE(state.accept(make_update(1, 7)));
  EXPECT_TRUE(state.accept(make_update(2, 1)));
  EXPECT_EQ(state.last_seq(1), 7u);
  EXPECT_EQ(state.last_seq(2), 1u);
}

TEST(FloodingTest, SequenceGapsAreFine) {
  FloodingState state{3};
  EXPECT_TRUE(state.accept(make_update(0, 5)));
  EXPECT_TRUE(state.accept(make_update(0, 50)));
}

TEST(FloodingTest, WireBitsGrowWithReports) {
  RoutingUpdate small = make_update(0, 1);
  RoutingUpdate large = small;
  for (int i = 0; i < 10; ++i) large.reports.push_back({5, 1.0});
  EXPECT_GT(large.wire_bits(), small.wire_bits());
  EXPECT_DOUBLE_EQ(small.wire_bits(), 128.0 + 32.0 * 2);
}

}  // namespace
}  // namespace arpanet::routing
