// FaultPlan unit battery: string-spec parsing, fluent construction,
// compilation to primitive actions (flap repetition, regional-outage trunk
// dedup, min-cut partitions, upgrade passthrough), and — via death tests —
// the ARPA_CHECK validation rules: nonexistent links/nodes, overlapping
// down-intervals on one trunk (within and across fault kinds), and events
// scheduled past the scenario end.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/net/builders/builders.h"
#include "src/sim/fault_plan.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

SimTime sec(double s) { return SimTime::from_sec(s); }

// ---------------------------------------------------------------------------
// Parsing

TEST(FaultPlanParse, FlapSweepForm) {
  const FaultPlan plan = FaultPlan::parse("flap:link=3,period_s=10,dwell_s=2");
  ASSERT_EQ(plan.size(), 1u);
  const FaultSpec& s = plan.specs()[0];
  EXPECT_EQ(s.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(s.link, 3u);
  EXPECT_EQ(s.dwell, sec(2));
  EXPECT_EQ(s.period, sec(10));
  // at_s defaults to period_s, count to 0 (= until horizon) when repeating.
  EXPECT_EQ(s.at, sec(10));
  EXPECT_EQ(s.count, 0);
}

TEST(FaultPlanParse, SingleFlapDefaults) {
  const FaultPlan plan = FaultPlan::parse("flap:link=2,at_s=24,dwell_s=6");
  ASSERT_EQ(plan.size(), 1u);
  const FaultSpec& s = plan.specs()[0];
  EXPECT_EQ(s.at, sec(24));
  EXPECT_EQ(s.period, SimTime::zero());
  EXPECT_EQ(s.count, 1);
}

TEST(FaultPlanParse, AllKindsAndMultiFault) {
  const FaultPlan plan = FaultPlan::parse(
      "crash:node=4,at_s=30,dwell_s=10;"
      "outage:nodes=1+2+5,at_s=50,dwell_s=5;"
      "partition:a=0+1,b=3+4,at_s=60,dwell_s=5;"
      "upgrade:link=1,at_s=70,type=112kb-multitrunk");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.specs()[0].node, 4u);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kRegionalOutage);
  EXPECT_EQ(plan.specs()[1].region, (std::vector<net::NodeId>{1, 2, 5}));
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kPartition);
  EXPECT_EQ(plan.specs()[2].side_a, (std::vector<net::NodeId>{0, 1}));
  EXPECT_EQ(plan.specs()[2].side_b, (std::vector<net::NodeId>{3, 4}));
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::kLineUpgrade);
  EXPECT_EQ(plan.specs()[3].new_type, net::LineType::kMultiTrunk112);
}

TEST(FaultPlanParse, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse("flap"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("meteor:node=1,at_s=1,dwell_s=1"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("flap:dwell_s=2"),  // link missing
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("flap:link=1,dwell_s=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("flap:link=1,dwell_s=2,bogus=3"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("flap:link=1,dwell_s=2,link=1"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("upgrade:link=1,at_s=1,type=4mb-fiber"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("outage:nodes=,at_s=1,dwell_s=1"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Compilation

TEST(FaultPlanCompile, SingleFlapEmitsDownUpPair) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(2, sec(24), sec(6));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(60));
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].op, FaultAction::Op::kLinkDown);
  EXPECT_EQ(actions[0].at, sec(24));
  EXPECT_EQ(actions[0].link, 2u);
  EXPECT_EQ(actions[1].op, FaultAction::Op::kLinkUp);
  EXPECT_EQ(actions[1].at, sec(30));
}

TEST(FaultPlanCompile, RepeatingFlapRunsUntilHorizon) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(10), sec(2), sec(10), /*count=*/0);
  const std::vector<FaultAction> actions = plan.compile(topo, sec(45));
  // Occurrences at 10, 20, 30, 40: 40+2 <= 45 still fits; 50 does not.
  ASSERT_EQ(actions.size(), 8u);
  EXPECT_EQ(actions.front().at, sec(10));
  EXPECT_EQ(actions.back().at, sec(42));
  // Time-sorted, alternating down/up for a single flapped trunk.
  for (std::size_t i = 1; i < actions.size(); ++i) {
    EXPECT_GE(actions[i].at, actions[i - 1].at);
  }
}

TEST(FaultPlanCompile, CountedFlapEmitsExactly) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(5), sec(1), sec(4), /*count=*/3);
  EXPECT_EQ(plan.compile(topo, sec(60)).size(), 6u);
}

TEST(FaultPlanCompile, CrashEmitsNodeActions) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.crash_node(4, sec(10), sec(5));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(30));
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].op, FaultAction::Op::kNodeDown);
  EXPECT_EQ(actions[0].node, 4u);
  EXPECT_EQ(actions[1].op, FaultAction::Op::kNodeUp);
}

TEST(FaultPlanCompile, RegionalOutageDeduplicatesInteriorTrunks) {
  // Nodes 1 and 2 are ring neighbors: the trunk between them touches both,
  // but must be taken down exactly once. Ring degree 2 => trunks {0-1},
  // {1-2}, {2-3}: three down + three up actions.
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.regional_outage({1, 2}, sec(10), sec(5));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(30));
  ASSERT_EQ(actions.size(), 6u);
  std::vector<net::LinkId> downed;
  for (const FaultAction& a : actions) {
    if (a.op == FaultAction::Op::kLinkDown) downed.push_back(a.link);
  }
  std::sort(downed.begin(), downed.end());
  EXPECT_EQ(downed.size(), 3u);
  EXPECT_EQ(std::adjacent_find(downed.begin(), downed.end()), downed.end())
      << "a trunk interior to the region was downed twice";
}

TEST(FaultPlanCompile, PartitionCutsRingInTwoPlaces) {
  // Separating opposite ring nodes requires cutting exactly two trunks.
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.partition({0}, {3}, sec(10), sec(5));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(30));
  ASSERT_EQ(actions.size(), 4u);  // two trunks x (down + up)
  int downs = 0;
  for (const FaultAction& a : actions) {
    if (a.op == FaultAction::Op::kLinkDown) ++downs;
  }
  EXPECT_EQ(downs, 2);
}

TEST(FaultPlanCompile, PartitionGridMinCutMatchesCornerDegree) {
  // Cutting a 3x3 grid corner from the opposite corner severs exactly the
  // corner's two trunks — the min cut, not any larger separator.
  const net::Topology topo = net::builders::grid(3, 3);
  FaultPlan plan;
  plan.partition({0}, {8}, sec(10), sec(5));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(30));
  EXPECT_EQ(actions.size(), 4u);
}

TEST(FaultPlanCompile, UpgradeEmitsOneAction) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.upgrade_line(1, sec(15), net::LineType::kMultiTrunk224);
  const std::vector<FaultAction> actions = plan.compile(topo, sec(30));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].op, FaultAction::Op::kUpgrade);
  EXPECT_EQ(actions[0].new_type, net::LineType::kMultiTrunk224);
}

TEST(FaultPlanCompile, ActionsAreTimeSortedAcrossFaults) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.crash_node(4, sec(20), sec(5));
  plan.flap_link(0, sec(5), sec(2));
  const std::vector<FaultAction> actions = plan.compile(topo, sec(40));
  ASSERT_EQ(actions.size(), 4u);
  for (std::size_t i = 1; i < actions.size(); ++i) {
    EXPECT_GE(actions[i].at, actions[i - 1].at);
  }
  EXPECT_EQ(actions[0].op, FaultAction::Op::kLinkDown);
  EXPECT_EQ(actions[1].op, FaultAction::Op::kLinkUp);
  EXPECT_EQ(actions[2].op, FaultAction::Op::kNodeDown);
}

// ---------------------------------------------------------------------------
// Validation death tests (ISSUE 8 satellite: invalid FaultPlans abort via
// ARPA_CHECK with attributable messages).

using FaultPlanDeathTest = ::testing::Test;

TEST(FaultPlanDeathTest, FaultOnNonexistentLinkDies) {
  const net::Topology topo = net::builders::ring(6);  // 12 simplex links
  FaultPlan plan;
  plan.flap_link(99, sec(5), sec(2));
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "nonexistent link");
}

TEST(FaultPlanDeathTest, CrashOnNonexistentNodeDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.crash_node(42, sec(5), sec(2));
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "nonexistent node");
}

TEST(FaultPlanDeathTest, OverlappingDownIntervalsDie) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(5), sec(10));
  plan.flap_link(0, sec(8), sec(10));  // second down lands mid-first-dwell
  EXPECT_DEATH((void)plan.compile(topo, sec(60)),
               "overlapping down-intervals on trunk");
}

TEST(FaultPlanDeathTest, CrossKindOverlapOnAdjacentTrunkDies) {
  // A crash of node 0 holds its adjacent trunks down; a flap of one of
  // those trunks over the same interval must be rejected even though the
  // two faults are of different kinds.
  const net::Topology topo = net::builders::ring(6);
  const net::LinkId adjacent = topo.out_links(0)[0];
  FaultPlan plan;
  plan.crash_node(0, sec(10), sec(10));
  plan.flap_link(adjacent, sec(15), sec(2));
  EXPECT_DEATH((void)plan.compile(topo, sec(60)),
               "overlapping down-intervals on trunk");
}

TEST(FaultPlanDeathTest, RepeatingFlapWithPeriodNotExceedingDwellDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(5), sec(3), sec(3), /*count=*/0);
  EXPECT_DEATH((void)plan.compile(topo, sec(60)),
               "overlapping down-intervals");
}

TEST(FaultPlanDeathTest, EventPastScenarioEndDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(25), sec(10));  // heals at 35 > horizon 30
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "past scenario end");
}

TEST(FaultPlanDeathTest, UpgradePastScenarioEndDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.upgrade_line(0, sec(35), net::LineType::kTerrestrial9_6);
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "past scenario end");
}

TEST(FaultPlanDeathTest, ZeroDwellDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.flap_link(0, sec(5), SimTime::zero());
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "dwell must be > 0");
}

TEST(FaultPlanDeathTest, PartitionWithOverlappingSidesDies) {
  const net::Topology topo = net::builders::ring(6);
  FaultPlan plan;
  plan.partition({0, 1}, {1, 3}, sec(5), sec(2));
  EXPECT_DEATH((void)plan.compile(topo, sec(30)), "sides overlap");
}

}  // namespace
}  // namespace arpanet::sim
