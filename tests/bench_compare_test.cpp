// The benchmark trend checker (src/obs/bench_compare.h): schema gating,
// deterministic-work diffs, and the events_per_sec noise band.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/bench_compare.h"
#include "src/obs/bench_report.h"

namespace arpanet::obs {
namespace {

/// A minimal two-cell document in the real writer's shape. `rate` scales
/// both cells' events_per_sec; `events` sets the first cell's event count.
std::string doc(double rate, long events = 1000) {
  std::ostringstream os;
  os << R"({
  "schema": "arpanet-bench-metrics",
  "schema_version": )"
     << kBenchSchemaVersion << R"(,
  "battery": "smoke",
  "elapsed_sec": 1.5,
  "scenarios": [
    {
      "topology": "ring6",
      "metric": "HN-SPF",
      "spf": { "full": 6, "incremental": 120 },
      "packets": { "generated": 400, "delivered": 398 },
      "events": )"
     << events << R"(,
      "wall_sec": 0.5,
      "events_per_sec": )"
     << rate << R"(
    },
    {
      "topology": "ring6",
      "metric": "D-SPF",
      "spf": { "full": 6, "incremental": 95 },
      "packets": { "generated": 400, "delivered": 391 },
      "events": 900,
      "wall_sec": 0.4,
      "events_per_sec": )"
     << rate * 0.9 << R"(
    }
  ]
})";
  return os.str();
}

/// Like doc(), but with a one-cell "micro" array. `checksum` perturbs the
/// deterministic digest; `ops_rate` scales the micro throughput.
std::string micro_doc(double rate, double ops_rate,
                      std::uint64_t checksum = 42) {
  std::string d = doc(rate);
  std::ostringstream os;
  os << R"(,
  "micro": [
    {
      "name": "hold_near_future",
      "ops": 404096,
      "checksum": )"
     << checksum << R"(,
      "wall_sec": 0.1,
      "ops_per_sec": )"
     << ops_rate << R"(
    }
  ]
})";
  d.replace(d.rfind('}'), 1, os.str());
  return d;
}

TEST(BenchCompareTest, IdenticalDocumentsPass) {
  const CompareReport r = compare_bench_reports(doc(1e6), doc(1e6));
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_EQ(r.cells[0].topology, "ring6");
  EXPECT_EQ(r.cells[0].metric, "HN-SPF");
  EXPECT_DOUBLE_EQ(r.cells[0].ratio, 1.0);
}

TEST(BenchCompareTest, SlowdownWithinNoiseBandPasses) {
  CompareOptions opt;
  opt.rate_noise = 0.10;
  const CompareReport r = compare_bench_reports(doc(1e6), doc(0.95e6), opt);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
}

TEST(BenchCompareTest, SlowdownBeyondNoiseBandFails) {
  CompareOptions opt;
  opt.rate_noise = 0.10;
  const CompareReport r = compare_bench_reports(doc(1e6), doc(0.8e6), opt);
  EXPECT_FALSE(r.ok());
  // Both cells regressed by 20%.
  EXPECT_EQ(r.violations.size(), 2u);
  EXPECT_NE(r.violations[0].find("events_per_sec"), std::string::npos);
}

TEST(BenchCompareTest, SpeedupAlwaysPasses) {
  const CompareReport r = compare_bench_reports(doc(1e6), doc(2e6));
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.cells[0].ratio, 2.0);
}

TEST(BenchCompareTest, DeterministicWorkDriftFailsEvenWhenFaster) {
  // The event count changed: the simulation itself changed, which no noise
  // band excuses (work_noise defaults to exact).
  const CompareReport r =
      compare_bench_reports(doc(1e6, 1000), doc(2e6, 1001));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("events"), std::string::npos);
}

TEST(BenchCompareTest, WorkNoiseAllowsBoundedDrift) {
  CompareOptions opt;
  opt.work_noise = 0.01;
  const CompareReport r =
      compare_bench_reports(doc(1e6, 1000), doc(1e6, 1005), opt);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
}

TEST(BenchCompareTest, MaskedBaselineSkipsTheRateCheck) {
  // A golden-style masked baseline has events_per_sec 0. Wall-derived
  // fields are excluded from the work diff, so the comparison passes on the
  // deterministic fields alone and the rate ratio is marked unavailable.
  const CompareReport r = compare_bench_reports(doc(0.0), doc(5e6));
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(r.cells[0].ratio, 0.0);
}

TEST(BenchCompareTest, BatteryMismatchIsAViolation) {
  std::string other = doc(1e6);
  other.replace(other.find("\"smoke\""), 7, "\"battery\"");
  const CompareReport r = compare_bench_reports(doc(1e6), other);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("battery"), std::string::npos);
}

TEST(BenchCompareTest, WrongSchemaThrows) {
  std::string bad = doc(1e6);
  bad.replace(bad.find("arpanet-bench-metrics"), 21, "some-other-document42");
  EXPECT_THROW((void)compare_bench_reports(bad, doc(1e6)),
               std::invalid_argument);
  EXPECT_THROW((void)compare_bench_reports(doc(1e6), "{ not json"),
               std::invalid_argument);
}

TEST(BenchCompareTest, CellSetMismatchIsAViolation) {
  std::string fewer = doc(1e6);
  // Drop the second scenario object entirely.
  const std::size_t cut = fewer.rfind("    {");
  const std::size_t end = fewer.rfind("    }");
  fewer.erase(cut - 2, end + 6 - (cut - 2));  // also removes the comma
  const CompareReport r = compare_bench_reports(doc(1e6), fewer);
  EXPECT_FALSE(r.ok());
}

TEST(BenchCompareTest, RealSmokeBatteryComparesCleanAgainstItself) {
  const std::string json = run_bench_battery("smoke", /*threads=*/1).json();
  CompareOptions opt;
  // Same machine, seconds apart — but ctest runs test binaries concurrently
  // and the K=4 shard cell multiplies oversubscription jitter, so the band
  // is wide. The deterministic work fields still compare exactly.
  opt.rate_noise = 0.9;
  const std::string again = run_bench_battery("smoke", /*threads=*/1).json();
  const CompareReport r = compare_bench_reports(json, again, opt);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.cells.size(), 6u);  // 3 scenarios x 2 metrics
  for (const CellDelta& d : r.cells) EXPECT_GT(d.ratio, 0.0);
  EXPECT_EQ(r.micro.size(), 2u);  // hold_near_future + hold_wide_span
  for (const CellDelta& d : r.micro) EXPECT_GT(d.ratio, 0.0);
  EXPECT_EQ(r.topo.size(), 5u);  // one per generated family
  for (const CellDelta& d : r.topo) EXPECT_GT(d.ratio, 0.0);
  EXPECT_EQ(r.shards.size(), 2u);  // leo-grid64 at K=1 and K=4
  for (const CellDelta& d : r.shards) EXPECT_GT(d.ratio, 0.0);
}

TEST(BenchCompareTest, TextReportNamesEveryCellAndViolation) {
  const CompareReport r = compare_bench_reports(doc(1e6), doc(0.5e6));
  std::ostringstream os;
  r.write_text(os);
  EXPECT_NE(os.str().find("ring6/HN-SPF"), std::string::npos);
  EXPECT_NE(os.str().find("VIOLATION"), std::string::npos);
}

TEST(BenchCompareTest, MicroCellsCompareRatesWithinNoise) {
  CompareOptions opt;
  opt.rate_noise = 0.10;
  const CompareReport ok =
      compare_bench_reports(micro_doc(1e6, 4e6), micro_doc(1e6, 3.8e6), opt);
  EXPECT_TRUE(ok.ok()) << (ok.violations.empty() ? "" : ok.violations.front());
  ASSERT_EQ(ok.micro.size(), 1u);
  EXPECT_EQ(ok.micro[0].topology, "hold_near_future");

  const CompareReport slow =
      compare_bench_reports(micro_doc(1e6, 4e6), micro_doc(1e6, 3e6), opt);
  EXPECT_FALSE(slow.ok());
  EXPECT_NE(slow.violations[0].find("ops_per_sec"), std::string::npos);
}

TEST(BenchCompareTest, MicroChecksumDriftIsAViolation) {
  // A changed pop-order digest means the queue's total order changed — no
  // rate noise excuses that.
  const CompareReport r =
      compare_bench_reports(micro_doc(1e6, 4e6, /*checksum=*/42),
                            micro_doc(1e6, 8e6, /*checksum=*/43));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("micro hold_near_future"), std::string::npos);
}

TEST(BenchCompareTest, MicroCellCountMismatchIsAViolation) {
  const CompareReport r =
      compare_bench_reports(micro_doc(1e6, 4e6), doc(1e6));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("micro cell count"), std::string::npos);
}

TEST(BenchCompareTest, RatesFromArtifactAnchorsTheNoiseBand) {
  // Committed baseline was measured on a faster machine (2e6); the rolling
  // artifact from this machine says 1e6. Current at 0.95e6 is within 10% of
  // the artifact but 52% below the committed baseline: rolling mode passes.
  CompareOptions opt;
  opt.rate_noise = 0.10;
  const std::string committed = micro_doc(2e6, 8e6);
  const std::string previous = micro_doc(1e6, 4e6);
  const std::string current = micro_doc(0.95e6, 3.9e6);
  const CompareReport strict = compare_bench_reports(committed, current, opt);
  EXPECT_FALSE(strict.ok());
  const CompareReport rolling =
      compare_bench_reports(committed, current, previous, opt);
  EXPECT_TRUE(rolling.ok())
      << (rolling.violations.empty() ? "" : rolling.violations.front());
  ASSERT_EQ(rolling.cells.size(), 2u);
  EXPECT_TRUE(rolling.cells[0].rate_from_artifact);
  EXPECT_DOUBLE_EQ(rolling.cells[0].baseline_events_per_sec, 1e6);
  ASSERT_EQ(rolling.micro.size(), 1u);
  EXPECT_TRUE(rolling.micro[0].rate_from_artifact);
  std::ostringstream os;
  rolling.write_text(os);
  EXPECT_NE(os.str().find("[rolling]"), std::string::npos);
}

TEST(BenchCompareTest, RatesFromFallsBackWhenTheArtifactLacksACell) {
  // A rates artifact whose cells do not match (different topology names)
  // contributes nothing; every rate anchors to the committed baseline.
  std::string foreign = micro_doc(9e6, 9e6);
  std::size_t at;
  while ((at = foreign.find("ring6")) != std::string::npos) {
    foreign.replace(at, 5, "gridX");
  }
  while ((at = foreign.find("hold_near_future")) != std::string::npos) {
    foreign.replace(at, 16, "something_else99");
  }
  const CompareReport r = compare_bench_reports(
      micro_doc(1e6, 4e6), micro_doc(1e6, 4e6), foreign);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  for (const CellDelta& d : r.cells) {
    EXPECT_FALSE(d.rate_from_artifact);
    EXPECT_DOUBLE_EQ(d.ratio, 1.0);
  }
  ASSERT_EQ(r.micro.size(), 1u);
  EXPECT_FALSE(r.micro[0].rate_from_artifact);
}

TEST(BenchCompareTest, UnparsableRatesDocumentThrows) {
  EXPECT_THROW((void)compare_bench_reports(micro_doc(1e6, 4e6),
                                           micro_doc(1e6, 4e6), "{ not json"),
               std::invalid_argument);
}

}  // namespace
}  // namespace arpanet::obs
