// The fault engine's verification battery (ISSUE 8 tentpole):
//
//   * Differential: a fault plan whose net effect is identity (a flap that
//     fully heals during warm-up) reconverges to byte-identical routing
//     state — per-PSN cost maps, SPF trees, reported costs — of the
//     fault-free run.
//   * Determinism: a sweep with faults active produces byte-identical CSV
//     and identical stability telemetry on 1 and 4 worker threads.
//   * Property: randomized fault plans (>= 200 plan x seed combinations
//     across two topologies) keep every paper invariant intact through
//     every transition — the in-run ARPA_CHECK layer (cost bounds,
//     movement limits, flat region) plus the end-of-run partition-aware
//     self-audit.
//   * Partition audit: a mid-partition network passes audit_network (the
//     old full-reachability assumption was a false positive) and the
//     component-aware route check sees both sides.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/builders/builders.h"
#include "src/sim/fault_plan.h"
#include "src/sim/network.h"
#include "src/sim/scenario.h"
#include "src/util/rng.h"

namespace arpanet::sim {
namespace {

using util::SimTime;

SimTime sec(double s) { return SimTime::from_sec(s); }

NetworkConfig hnspf_config() {
  NetworkConfig cfg;
  cfg.metric = metrics::MetricKind::kHnSpf;
  return cfg;
}

/// Asserts every piece of routing state two networks expose is identical:
/// each PSN's cost map, SPF tree (distances, parents, first hops) and each
/// link's reported cost. Exact ==, no tolerance: reconvergence after an
/// identity fault plan must reproduce the fault-free bytes.
void expect_routing_state_identical(const Network& a, const Network& b) {
  const net::Topology& topo = a.topology();
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const auto costs_a = a.psn(n).spf().costs();
    const auto costs_b = b.psn(n).spf().costs();
    ASSERT_EQ(costs_a.size(), costs_b.size());
    for (std::size_t l = 0; l < costs_a.size(); ++l) {
      EXPECT_EQ(costs_a[l], costs_b[l])
          << "PSN " << n << " cost map differs at link " << l;
    }
    const routing::SpfTree& ta = a.psn(n).tree();
    const routing::SpfTree& tb = b.psn(n).tree();
    for (net::NodeId v = 0; v < topo.node_count(); ++v) {
      EXPECT_EQ(ta.dist[v], tb.dist[v]) << "PSN " << n << " dist to " << v;
      EXPECT_EQ(ta.first_hop[v], tb.first_hop[v])
          << "PSN " << n << " first hop to " << v;
      EXPECT_EQ(ta.parent_link[v], tb.parent_link[v])
          << "PSN " << n << " parent of " << v;
    }
  }
  for (const net::Link& link : topo.links()) {
    EXPECT_EQ(a.psn(link.from).reported_cost(link.id),
              b.psn(link.from).reported_cost(link.id))
        << "reported cost differs on link " << link.id;
  }
}

// ---------------------------------------------------------------------------
// Differential test: identity fault plan == fault-free run.

TEST(FaultDifferentialTest, HealedFlapReconvergesToFaultFreeBytes) {
  const net::Topology topo = net::builders::ring(6);

  // No offered load: the runs differ only in the fault plan, and both end
  // on the idle steady state (every link at its metric minimum). 250 s
  // gives the healed link's metric 190 s to decay back (4 periods) and
  // every significance filter to pass several forced-report cycles.
  Network plain{topo, hnspf_config()};
  plain.run_for(sec(250));

  Network flapped{topo, hnspf_config()};
  FaultPlan plan;
  plan.flap_link(2, sec(30), sec(30));  // down 30 s, healed at t=60
  flapped.install_faults(plan, sec(250));
  flapped.run_for(sec(250));

  EXPECT_TRUE(flapped.link_admin_up(2));
  expect_routing_state_identical(plain, flapped);
}

TEST(FaultDifferentialTest, HealedCrashReconvergesToFaultFreeBytes) {
  const net::Topology topo = net::builders::grid(3, 3);

  Network plain{topo, hnspf_config()};
  plain.run_for(sec(250));

  Network crashed{topo, hnspf_config()};
  FaultPlan plan;
  plan.crash_node(4, sec(30), sec(25));  // the grid center, restored at t=55
  crashed.install_faults(plan, sec(250));
  crashed.run_for(sec(250));

  expect_routing_state_identical(plain, crashed);
}

// ---------------------------------------------------------------------------
// Sweep determinism with faults active: byte-identical CSV and identical
// stability telemetry at 1 vs 4 worker threads.

TEST(FaultDeterminismTest, SweepWithFaultsIsThreadCountInvariant) {
  exp::SweepSpec spec;
  spec.base = ScenarioConfig{}
                  .with_shape(TrafficShape::kUniform)
                  .with_load_bps(150e3)
                  .with_warmup(sec(15))
                  .with_window(sec(40))
                  .with_faults("flap:link=2,at_s=20,dwell_s=6");
  spec.over_metrics({metrics::MetricKind::kHnSpf, metrics::MetricKind::kDspf})
      .over_seeds({1, 2, 3});
  const exp::NamedTopology topo{"ring6", net::builders::ring(6)};

  exp::SweepOptions serial;
  serial.threads = 1;
  exp::SweepOptions parallel;
  parallel.threads = 4;
  const exp::SweepResult r1 = exp::SweepRunner{serial}.run(spec, topo);
  const exp::SweepResult r4 = exp::SweepRunner{parallel}.run(spec, topo);

  EXPECT_EQ(r1.csv(), r4.csv());
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    const StabilityStats& s1 = r1.at(i).result.stability;
    const StabilityStats& s4 = r4.at(i).result.stability;
    EXPECT_EQ(s1.faults_applied, 2) << "cell " << i;  // down + up, in-window
    EXPECT_EQ(s1.faults_applied, s4.faults_applied) << "cell " << i;
    EXPECT_EQ(s1.route_changes, s4.route_changes) << "cell " << i;
    EXPECT_EQ(s1.flat_oscillations, s4.flat_oscillations) << "cell " << i;
    EXPECT_EQ(s1.max_movement, s4.max_movement) << "cell " << i;
    EXPECT_EQ(s1.reconverge_sec, s4.reconverge_sec) << "cell " << i;
    EXPECT_GT(s1.route_changes, 0) << "cell " << i
                                   << ": a flap must move some first hop";
  }
}

// ---------------------------------------------------------------------------
// Partition-aware audit (ISSUE 8 satellite 1): a legitimately partitioned
// network passes audit_network; the old audit assumed full reachability.

TEST(FaultPartitionAuditTest, MidPartitionAuditDoesNotFalsePositive) {
  const net::Topology topo = net::builders::ring(6);
  Network net{topo, hnspf_config()};
  FaultPlan plan;
  plan.partition({0}, {3}, sec(30), sec(40));  // heals at t=70
  net.install_faults(plan, sec(120));

  // Stop mid-partition, off the 10 s measurement grid so no flood is in
  // flight and the quiescence-gated route audit actually runs.
  net.run_for(sec(57.3));
  ASSERT_EQ(net.updates_in_flight(), 0u);

  const analysis::AuditStats stats = analysis::audit_network(net);
  EXPECT_GT(stats.trees_checked, 0);
  // 6 nodes, all ordered pairs route-audited, cross-component included.
  EXPECT_EQ(stats.routes_checked, 30);

  // The cut really split the ring: some trunk is administratively down.
  int down_trunks = 0;
  for (const net::Link& l : topo.links()) {
    if (l.id < l.reverse && !net.link_admin_up(l.id)) ++down_trunks;
  }
  EXPECT_EQ(down_trunks, 2);

  // After the heal the same audit still passes and all trunks are up.
  net.run_for(sec(60));
  const analysis::AuditStats healed = analysis::audit_network(net);
  EXPECT_EQ(healed.routes_checked, 30);
  for (const net::Link& l : topo.links()) {
    EXPECT_TRUE(net.link_admin_up(l.id));
  }
}

// ---------------------------------------------------------------------------
// Property sweep: randomized fault plans x seeds, every paper invariant
// enforced through every transition (the PSN's in-run ARPA_CHECK layer and
// the end-of-run partition-aware self-audit both stay armed).

FaultPlan random_plan(util::Rng& rng, const net::Topology& topo) {
  FaultPlan plan;
  const int fault_count = 1 + static_cast<int>(rng.uniform_index(3));
  for (int k = 0; k < fault_count; ++k) {
    // Disjoint 11 s slots keep per-trunk down-intervals non-overlapping by
    // construction (the compiler would reject overlap as invalid).
    const double at = 12.0 + 11.0 * k + rng.uniform(0.0, 1.0);
    const double dwell = rng.uniform(2.0, 8.0);
    const auto node =
        static_cast<net::NodeId>(rng.uniform_index(topo.node_count()));
    const auto peer = static_cast<net::NodeId>(
        (node + 1 + rng.uniform_index(topo.node_count() - 1)) %
        topo.node_count());
    switch (rng.uniform_index(5)) {
      case 0:
        plan.flap_link(
            static_cast<net::LinkId>(rng.uniform_index(topo.link_count())),
            sec(at), sec(dwell));
        break;
      case 1:
        plan.crash_node(node, sec(at), sec(dwell));
        break;
      case 2:
        plan.regional_outage({node}, sec(at), sec(dwell));
        break;
      case 3:
        plan.partition({node}, {peer}, sec(at), sec(dwell));
        break;
      default:
        plan.upgrade_line(
            static_cast<net::LinkId>(rng.uniform_index(topo.link_count())),
            sec(at),
            net::all_line_types()[rng.uniform_index(net::kLineTypeCount)].type);
        break;
    }
  }
  return plan;
}

void run_property_sweep(const net::Topology& topo, const std::string& name,
                        std::uint64_t seed_base, int runs) {
  for (int i = 0; i < runs; ++i) {
    util::Rng rng{seed_base + static_cast<std::uint64_t>(i)};
    const FaultPlan plan = random_plan(rng, topo);
    ScenarioConfig cfg = ScenarioConfig{}
                             .with_shape(TrafficShape::kUniform)
                             .with_load_bps(120e3)
                             .with_warmup(sec(10))
                             .with_window(sec(37))
                             .with_seed(seed_base ^ (7919u * i))
                             .with_faults(plan);
    cfg.network.track_reported_costs = true;  // arm trace movement audits
    // check_invariants and self_audit default on: any violated bound,
    // movement limit, flat region or tree inconsistency aborts the run.
    const ScenarioResult result = run_scenario(topo, cfg, name);
    EXPECT_GT(result.stats.packets_delivered, 0)
        << name << " seed " << i << ": nothing delivered";
    EXPECT_GT(result.stability.faults_applied, 0)
        << name << " seed " << i << ": no fault action fired in the window";
    EXPECT_GT(result.audit.trees_checked, 0)
        << name << " seed " << i << ": self-audit did not run";
  }
}

TEST(FaultPropertyTest, RandomPlansOnRingHoldAllInvariants) {
  run_property_sweep(net::builders::ring(6), "ring6", 0x8a5fULL, 100);
}

TEST(FaultPropertyTest, RandomPlansOnGridHoldAllInvariants) {
  run_property_sweep(net::builders::grid(3, 3), "grid3x3", 0x1987ULL, 100);
}

}  // namespace
}  // namespace arpanet::sim
