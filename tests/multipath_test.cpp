#include "src/routing/multipath.h"

#include <gtest/gtest.h>

#include "src/net/builders/builders.h"
#include "src/sim/network.h"
#include "src/util/rng.h"

namespace arpanet::routing {
namespace {

using net::LineType;
using net::Topology;

Topology diamond() {
  Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, LineType::kTerrestrial56);  // 0,1
  t.add_duplex(a, c, LineType::kTerrestrial56);  // 2,3
  t.add_duplex(b, d, LineType::kTerrestrial56);  // 4,5
  t.add_duplex(c, d, LineType::kTerrestrial56);  // 6,7
  return t;
}

TEST(MultipathTest, EqualCostPathsBothListed) {
  const Topology t = diamond();
  const LinkCosts costs(t.link_count(), 1.0);
  const MultipathSets mp = MultipathSets::compute(t, 0, costs);
  const auto hops = mp.next_hops(3);  // a -> d: via b or via c
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 2u);
}

TEST(MultipathTest, UnequalCostsCollapseToOne) {
  const Topology t = diamond();
  LinkCosts costs(t.link_count(), 1.0);
  costs[0] = 1.5;  // a->b pricier
  const MultipathSets mp = MultipathSets::compute(t, 0, costs);
  const auto hops = mp.next_hops(3);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], 2u);
}

TEST(MultipathTest, SinglePathFirstHopIsAlwaysMember) {
  util::Rng rng{404};
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = net::builders::random_connected(14, 10, rng);
    LinkCosts costs(t.link_count());
    for (double& c : costs) c = 1.0 + static_cast<double>(rng.uniform_index(4));
    const SpfTree tree = Spf::compute(t, 0, costs);
    const MultipathSets mp = MultipathSets::compute(t, 0, costs);
    for (net::NodeId dst = 1; dst < t.node_count(); ++dst) {
      const auto hops = mp.next_hops(dst);
      ASSERT_FALSE(hops.empty());
      EXPECT_NE(std::ranges::find(hops, tree.first_hop[dst]), hops.end());
    }
  }
}

/// Loop-freedom: any walk that picks arbitrary members of the multipath
/// sets strictly reduces remaining distance, so it reaches the destination.
TEST(MultipathTest, ArbitraryChoicesNeverLoop) {
  util::Rng rng{405};
  const Topology t = net::builders::random_connected(16, 14, rng);
  LinkCosts costs(t.link_count());
  for (double& c : costs) c = 1.0 + static_cast<double>(rng.uniform_index(3));
  const auto all = compute_all_multipath(t, costs);
  for (net::NodeId src = 0; src < t.node_count(); ++src) {
    for (net::NodeId dst = 0; dst < t.node_count(); ++dst) {
      if (src == dst) continue;
      // Walk with randomized choices; must terminate within node_count hops.
      net::NodeId at = src;
      int steps = 0;
      while (at != dst) {
        const auto hops = all[at].next_hops(dst);
        ASSERT_FALSE(hops.empty());
        at = t.link(hops[rng.uniform_index(hops.size())]).to;
        ASSERT_LE(++steps, static_cast<int>(t.node_count()));
      }
    }
  }
}

/// The paper's section 4.5 motivation, measured: one large flow bigger than
/// any single trunk. Single-path routing cannot help; multipath carries it.
TEST(MultipathTest, LargeFlowNeedsMultipath) {
  const Topology t = diamond();
  auto run = [&](bool multipath) {
    sim::NetworkConfig cfg;
    cfg.metric = metrics::MetricKind::kHnSpf;
    cfg.multipath = multipath;
    sim::Network net{t, cfg};
    traffic::TrafficMatrix m{4};
    m.set(0, 3, 84e3);  // 1.5x a 56 kb/s trunk
    net.add_traffic(m);
    net.run_for(util::SimTime::from_sec(120));
    net.reset_stats();
    net.run_for(util::SimTime::from_sec(120));
    return net.indicators(multipath ? "ecmp" : "single");
  };
  const auto single = run(false);
  const auto ecmp = run(true);
  // Single path: capped at ~56 kb/s with heavy drops. ECMP: ~84 kb/s.
  EXPECT_LT(single.internode_traffic_kbps, 62.0);
  EXPECT_GT(ecmp.internode_traffic_kbps, 78.0);
  EXPECT_LT(ecmp.packets_dropped_per_sec, single.packets_dropped_per_sec);
}

TEST(MultipathTest, MultipathStillDeliversEverythingUnderLightLoad) {
  const auto net87 = net::builders::arpanet87();
  sim::NetworkConfig cfg;
  cfg.multipath = true;
  sim::Network net{net87.topo, cfg};
  net.add_traffic(
      traffic::TrafficMatrix::uniform(net87.topo.node_count(), 100e3));
  net.run_for(util::SimTime::from_sec(60));
  EXPECT_GT(net.stats().packets_delivered, 1000);
  EXPECT_EQ(net.stats().packets_dropped_loop, 0);
  EXPECT_EQ(net.stats().packets_dropped_unreachable, 0);
}

}  // namespace
}  // namespace arpanet::routing
